//! Micro-benchmark: raw packet-processing throughput of each instrumented
//! ICS target (the executions-per-second ceiling of a campaign).

use criterion::{criterion_group, criterion_main, Criterion};

use peachstar_coverage::TraceContext;
use peachstar_datamodel::emit::emit_default;
use peachstar_protocols::TargetId;

fn bench_targets(c: &mut Criterion) {
    let mut group = c.benchmark_group("targets");
    group.sample_size(30);
    for target_id in TargetId::ALL {
        let mut target = target_id.create();
        let packets: Vec<Vec<u8>> = target
            .data_models()
            .models()
            .iter()
            .map(|model| emit_default(model).expect("default packet emits"))
            .collect();
        group.bench_function(format!("process_{}", target_id.project_name()), |b| {
            b.iter(|| {
                let mut edges = 0usize;
                for packet in &packets {
                    let mut ctx = TraceContext::new();
                    let _ = target.process(packet, &mut ctx);
                    edges += ctx.trace().edges_hit();
                }
                edges
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_targets);
criterion_main!(benches);
