//! Micro-benchmark: raw packet-processing throughput of each instrumented
//! ICS target (the executions-per-second ceiling of a campaign).

use criterion::{criterion_group, criterion_main, Criterion};

use peachstar_coverage::TraceContext;
use peachstar_datamodel::emit::emit_default;
use peachstar_protocols::{DecodeSink, TargetId, WindowResults};

fn bench_targets(c: &mut Criterion) {
    let mut group = c.benchmark_group("targets");
    group.sample_size(30);
    for target_id in TargetId::ALL {
        let mut target = target_id.create();
        let packets: Vec<Vec<u8>> = target
            .data_models()
            .models()
            .iter()
            .map(|model| emit_default(model).expect("default packet emits"))
            .collect();
        group.bench_function(format!("process_{}", target_id.project_name()), |b| {
            b.iter(|| {
                let mut edges = 0usize;
                for packet in &packets {
                    let mut ctx = TraceContext::new();
                    let _ = target.process(packet, &mut ctx);
                    edges += ctx.trace().edges_hit();
                }
                edges
            });
        });
    }
    group.finish();
}

/// Whole-window dispatch: the same default packets cycled into a 64-packet
/// window and handed to `process_batch` — the exact call shape of the
/// batched campaign fast path, including each protocol's prescan override.
/// The `_summary` variants arm [`DecodeSink::Summary`], so their delta
/// against the plain entries is the pure cost of response assembly and
/// error-string formatting that summary-only campaigns skip.
fn bench_process_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("targets");
    group.sample_size(30);
    for target_id in TargetId::ALL {
        let mut target = target_id.create();
        let packets: Vec<Vec<u8>> = target
            .data_models()
            .models()
            .iter()
            .cycle()
            .take(64)
            .map(|model| emit_default(model).expect("default packet emits"))
            .collect();
        let refs: Vec<&[u8]> = packets.iter().map(Vec::as_slice).collect();
        for (suffix, sink) in [("", DecodeSink::Full), ("_summary", DecodeSink::Summary)] {
            group.bench_function(
                format!("process_batch_{}{suffix}", target_id.project_name()),
                |b| {
                    let mut ctx = TraceContext::new();
                    let mut results = WindowResults::new();
                    b.iter(|| {
                        target.process_batch(&refs, &mut ctx, &mut results, sink);
                        results.drain().count()
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_targets, bench_process_batch);
criterion_main!(benches);
