//! Micro-benchmark: coverage-map update cost (the per-execution overhead
//! the feedback loop adds to the baseline fuzzer).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use peachstar_coverage::{CoverageMap, EdgeId, TraceContext};

fn trace_with_edges(edges: usize) -> peachstar_coverage::TraceMap {
    let mut ctx = TraceContext::new();
    for i in 0..edges {
        ctx.edge(EdgeId::new((i as u32).wrapping_mul(2_654_435_761)));
    }
    ctx.into_trace()
}

fn bench_coverage(c: &mut Criterion) {
    let mut group = c.benchmark_group("coverage_map");
    group.sample_size(50);

    for edges in [16usize, 128, 1024] {
        let trace = trace_with_edges(edges);
        group.bench_function(format!("merge_{edges}_edges"), |b| {
            b.iter_batched(
                CoverageMap::new,
                |mut map| map.merge(&trace).new_edges,
                BatchSize::SmallInput,
            );
        });
        group.bench_function(format!("path_id_{edges}_edges"), |b| {
            b.iter(|| trace.path_id());
        });
    }

    // Repeated merging of an already-known trace: the steady-state cost.
    let trace = trace_with_edges(128);
    group.bench_function("merge_known_trace", |b| {
        let mut map = CoverageMap::new();
        map.merge(&trace);
        b.iter(|| map.merge(&trace).is_interesting());
    });
    group.finish();
}

criterion_group!(benches, bench_coverage);
criterion_main!(benches);
