//! Micro-benchmark: packet cracking throughput (Algorithm 2).
//!
//! The File Cracker runs on every valuable seed; its cost bounds how cheaply
//! Peach\* can afford to learn from feedback.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use peachstar::{FileCracker, PuzzleCorpus};
use peachstar_datamodel::emit::emit_default;
use peachstar_protocols::TargetId;

fn bench_cracker(c: &mut Criterion) {
    let mut group = c.benchmark_group("file_cracker");
    group.sample_size(30);
    for target in [TargetId::Modbus, TargetId::Lib60870, TargetId::Iec61850] {
        let models = target.create().data_models();
        let packets: Vec<Vec<u8>> = models
            .models()
            .iter()
            .map(|model| emit_default(model).expect("default packet emits"))
            .collect();
        group.bench_function(format!("crack_{}", target.project_name()), |b| {
            b.iter_batched(
                || (FileCracker::new(), PuzzleCorpus::new()),
                |(mut cracker, mut corpus)| {
                    for packet in &packets {
                        cracker.crack_into(&models, packet, &mut corpus);
                    }
                    corpus.len()
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cracker);
criterion_main!(benches);
