//! Macro-benchmark: end-to-end campaign throughput (executions per second),
//! the quantity the sparse trace recording and zero-allocation hot path are
//! meant to raise.
//!
//! One iteration runs a complete 2 000-execution campaign — generate,
//! execute, trace, merge, observe — so the median here divided by 2 000 is
//! the per-execution cost of the whole loop.

use criterion::{criterion_group, criterion_main, Criterion};

use peachstar::campaign::{Campaign, CampaignConfig};
use peachstar::strategy::StrategyKind;
use peachstar_protocols::TargetId;

const EXECUTIONS: u64 = 2_000;

fn bench_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign");
    group.sample_size(30);
    for (target, label) in [
        (TargetId::Modbus, "modbus"),
        (TargetId::Iec104, "iec104"),
    ] {
        for strategy in [StrategyKind::Peach, StrategyKind::PeachStar] {
            let name = format!(
                "{label}_{}_2k_execs",
                match strategy {
                    StrategyKind::Peach => "peach",
                    StrategyKind::PeachStar => "peachstar",
                }
            );
            group.bench_function(name, |b| {
                b.iter(|| {
                    let config = CampaignConfig::new(strategy)
                        .executions(EXECUTIONS)
                        .rng_seed(7)
                        .sample_interval(500);
                    let report = Campaign::new(target.create(), config).run();
                    report.final_paths()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
