//! Macro-benchmark: end-to-end campaign throughput (executions per second),
//! the quantity the sparse trace recording and zero-allocation hot path are
//! meant to raise.
//!
//! One iteration runs a complete 2 000-execution campaign — generate,
//! execute, trace, merge, observe — so the median here divided by 2 000 is
//! the per-execution cost of the whole loop.

use criterion::{criterion_group, criterion_main, Criterion};

use peachstar::campaign::{
    Campaign, CampaignConfig, ConnectionCampaign, ConnectionConfig, SessionConfig, ShardConfig,
    ShardedCampaign, TransportMode,
};
use peachstar::snapshot::{CampaignSnapshot, CheckpointConfig};
use peachstar::strategy::StrategyKind;
use peachstar_protocols::TargetId;

const EXECUTIONS: u64 = 2_000;

fn bench_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign");
    group.sample_size(30);
    for (target, label) in [
        (TargetId::Modbus, "modbus"),
        (TargetId::Iec104, "iec104"),
    ] {
        for strategy in [StrategyKind::Peach, StrategyKind::PeachStar] {
            let name = format!(
                "{label}_{}_2k_execs",
                match strategy {
                    StrategyKind::Peach => "peach",
                    StrategyKind::PeachStar => "peachstar",
                }
            );
            group.bench_function(name, |b| {
                b.iter(|| {
                    let config = CampaignConfig::new(strategy)
                        .executions(EXECUTIONS)
                        .rng_seed(7)
                        .sample_interval(500);
                    let report = Campaign::new(target.create(), config).run();
                    report.final_paths()
                });
            });
        }
    }
    group.finish();
}

/// Sharded end-to-end throughput: the same 2 000-execution campaign split
/// into reset-aligned windows (reset every 250 executions → 8 windows per
/// barrier round) and executed by 1 vs 4 workers. The 1-worker entry prices
/// the sharding machinery itself (snapshot buffering, barrier merge); the
/// 4-worker entry must beat it to demonstrate real scaling.
fn bench_campaign_sharded(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign");
    group.sample_size(30);
    for (target, label) in [(TargetId::Modbus, "modbus"), (TargetId::Iec104, "iec104")] {
        for strategy in [StrategyKind::Peach, StrategyKind::PeachStar] {
            for workers in [1usize, 4] {
                let name = format!(
                    "{label}_{}_sharded_{workers}w_2k_execs",
                    match strategy {
                        StrategyKind::Peach => "peach",
                        StrategyKind::PeachStar => "peachstar",
                    }
                );
                group.bench_function(name, |b| {
                    b.iter(|| {
                        let config = CampaignConfig::new(strategy)
                            .executions(EXECUTIONS)
                            .rng_seed(7)
                            .sample_interval(500)
                            .reset_interval(250);
                        let report = ShardedCampaign::new(
                            target.create(),
                            config,
                            ShardConfig::with_workers(workers),
                        )
                        .run();
                        report.final_paths()
                    });
                });
            }
        }
    }
    group.finish();
}

/// Batched end-to-end throughput: the same campaigns as [`bench_campaign`]
/// — identical config, identical reports for Peach — driven through
/// `Engine::run_batched` with 250-packet windows. The delta against the
/// unsuffixed entries is the pure dispatch amortisation: pooled packet
/// arena instead of a fresh seed per execution, one (devirtualised)
/// target call per window instead of per packet, and no per-execution
/// reset-policy checks.
fn bench_campaign_batched(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign");
    group.sample_size(30);
    for (target, label) in [(TargetId::Modbus, "modbus"), (TargetId::Iec104, "iec104")] {
        for strategy in [StrategyKind::Peach, StrategyKind::PeachStar] {
            let name = format!(
                "{label}_{}_batched_2k_execs",
                match strategy {
                    StrategyKind::Peach => "peach",
                    StrategyKind::PeachStar => "peachstar",
                }
            );
            group.bench_function(name, |b| {
                b.iter(|| {
                    let config = CampaignConfig::new(strategy)
                        .executions(EXECUTIONS)
                        .rng_seed(7)
                        .sample_interval(500)
                        .batch(250);
                    let report = Campaign::new(target.create(), config).run();
                    report.final_paths()
                });
            });
        }
    }
    group.finish();
}

/// Summary-only batched throughput: the same batched campaigns as
/// [`bench_campaign_batched`] with `summary_only()` armed, so the decoders
/// skip response assembly and error-string formatting. Reports are pinned
/// bit-identical to the full-decode runs (tests/batch_equivalence.rs); the
/// delta against the `_batched_` entries is pure decode-output cost.
fn bench_campaign_summary(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign");
    group.sample_size(30);
    for (target, label) in [(TargetId::Modbus, "modbus"), (TargetId::Iec104, "iec104")] {
        for strategy in [StrategyKind::Peach, StrategyKind::PeachStar] {
            let name = format!(
                "{label}_{}_summary_2k_execs",
                match strategy {
                    StrategyKind::Peach => "peach",
                    StrategyKind::PeachStar => "peachstar",
                }
            );
            group.bench_function(name, |b| {
                b.iter(|| {
                    let config = CampaignConfig::new(strategy)
                        .executions(EXECUTIONS)
                        .rng_seed(7)
                        .sample_interval(500)
                        .batch(250)
                        .summary_only();
                    let report = Campaign::new(target.create(), config).run();
                    report.final_paths()
                });
            });
        }
    }
    group.finish();
}

/// Session-campaign throughput: the same 2 000-execution budget reshaped
/// into 10-packet sessions (STARTDT + 8 mutated ASDUs + STOPDT) with
/// session-scoped resets. Prices the session machinery — the schedule
/// wrapper, the template replay and the per-session reset cadence — against
/// the single-packet entries above.
fn bench_campaign_sessions(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign");
    group.sample_size(30);
    for strategy in [StrategyKind::Peach, StrategyKind::PeachStar] {
        let name = format!(
            "iec104_{}_sessions_2k_execs",
            match strategy {
                StrategyKind::Peach => "peach",
                StrategyKind::PeachStar => "peachstar",
            }
        );
        group.bench_function(name, |b| {
            b.iter(|| {
                let config = CampaignConfig::new(strategy)
                    .executions(EXECUTIONS)
                    .rng_seed(7)
                    .sample_interval(500)
                    .sessions(SessionConfig::default());
                let report = Campaign::new(TargetId::Iec104.create(), config).run();
                report.final_paths()
            });
        });
    }
    group.finish();
}

/// Checkpointed throughput: the same campaigns as [`bench_campaign`] with a
/// snapshot written to disk at every 4th window boundary (plus the final
/// one). The delta against the unsuffixed entries is the full checkpoint
/// cost — state capture, canonical encoding and the atomic temp-file +
/// rename write — and the `ci/bench_compare.py` gate holds it under the
/// regression threshold, demonstrating that checkpointing is cheap enough
/// to leave on for real campaigns.
fn bench_campaign_checkpointed(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign");
    group.sample_size(30);
    let path = std::env::temp_dir().join(format!("peachstar-bench-{}.snap", std::process::id()));
    for (target, label) in [(TargetId::Modbus, "modbus"), (TargetId::Iec104, "iec104")] {
        for strategy in [StrategyKind::Peach, StrategyKind::PeachStar] {
            let name = format!(
                "{label}_{}_checkpointed_2k_execs",
                match strategy {
                    StrategyKind::Peach => "peach",
                    StrategyKind::PeachStar => "peachstar",
                }
            );
            let checkpoint = CheckpointConfig::new(path.clone(), 4);
            group.bench_function(name, |b| {
                b.iter(|| {
                    let config = CampaignConfig::new(strategy)
                        .executions(EXECUTIONS)
                        .rng_seed(7)
                        .sample_interval(500);
                    let report = Campaign::new(target.create(), config)
                        .run_checkpointed(&checkpoint)
                        .expect("checkpointed campaign");
                    report.final_paths()
                });
            });
        }
    }
    std::fs::remove_file(&path).ok();
    group.finish();
}

/// Framed-TCP end-to-end throughput: the same 2 000-execution campaigns as
/// [`bench_campaign`] driven over a loopback socket (one wire round-trip
/// per execution), plus a batched variant (one round-trip per 250-packet
/// window) and the 4-connection driver. The delta against the in-process
/// entries is the full wire cost — framing, syscalls, scheduling — and the
/// batched entry shows how window-sized round-trips amortise it; reports
/// stay bit-identical throughout (tests/transport_equivalence.rs).
fn bench_campaign_tcp(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign");
    group.sample_size(30);
    for strategy in [StrategyKind::Peach, StrategyKind::PeachStar] {
        let label = match strategy {
            StrategyKind::Peach => "peach",
            StrategyKind::PeachStar => "peachstar",
        };
        group.bench_function(format!("modbus_{label}_tcp_2k_execs"), |b| {
            b.iter(|| {
                let config = CampaignConfig::new(strategy)
                    .executions(EXECUTIONS)
                    .rng_seed(7)
                    .sample_interval(500)
                    .transport(TransportMode::FramedTcp);
                let report = Campaign::new(TargetId::Modbus.create(), config).run();
                report.final_paths()
            });
        });
        group.bench_function(format!("modbus_{label}_tcp_batched_2k_execs"), |b| {
            b.iter(|| {
                let config = CampaignConfig::new(strategy)
                    .executions(EXECUTIONS)
                    .rng_seed(7)
                    .sample_interval(500)
                    .batch(250)
                    .transport(TransportMode::FramedTcp);
                let report = Campaign::new(TargetId::Modbus.create(), config).run();
                report.final_paths()
            });
        });
        group.bench_function(format!("modbus_{label}_tcp_4conn_2k_execs"), |b| {
            b.iter(|| {
                let config = CampaignConfig::new(strategy)
                    .executions(EXECUTIONS)
                    .rng_seed(7)
                    .sample_interval(500)
                    .reset_interval(250);
                let report = ConnectionCampaign::new(
                    TargetId::Modbus.create(),
                    config,
                    ConnectionConfig::with_connections(4),
                )
                .run();
                report.final_paths()
            });
        });
    }
    group.finish();
}

/// Snapshot write+read round-trip in isolation: capture the final state of
/// a finished 2 000-execution Peach\* campaign once, then measure encode →
/// atomic write → read → decode against a tmpfs-backed path. This is the
/// unit the per-window checkpoint cadence multiplies.
fn bench_snapshot_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign");
    group.sample_size(30);
    let config = CampaignConfig::new(StrategyKind::PeachStar)
        .executions(EXECUTIONS)
        .rng_seed(7)
        .sample_interval(500);
    let (_, snapshot) = Campaign::new(TargetId::Modbus.create(), config).run_with_final_snapshot();
    let path = std::env::temp_dir().join(format!(
        "peachstar-bench-roundtrip-{}.snap",
        std::process::id()
    ));
    group.bench_function("modbus_peachstar_snapshot_roundtrip", |b| {
        b.iter(|| {
            snapshot.write_atomic(&path).expect("snapshot write");
            CampaignSnapshot::read_from(&path)
                .expect("snapshot read")
                .completed
        });
    });
    std::fs::remove_file(&path).ok();
    group.finish();
}

criterion_group!(
    benches,
    bench_campaign,
    bench_campaign_batched,
    bench_campaign_summary,
    bench_campaign_sharded,
    bench_campaign_sessions,
    bench_campaign_checkpointed,
    bench_campaign_tcp,
    bench_snapshot_roundtrip
);
criterion_main!(benches);
