//! Micro-benchmark: packet generation throughput, random (Peach) vs
//! semantic-aware (Peach\*), including the `leaves_only` and `repair`
//! ablations called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use peachstar::strategy::{
    GenerationStrategy, RandomGenerationStrategy, SemanticAwareConfig, SemanticAwareStrategy,
};
use peachstar::Seed;
use peachstar_datamodel::emit::emit_default;
use peachstar_protocols::TargetId;

fn primed_semantic(config: SemanticAwareConfig) -> SemanticAwareStrategy {
    let models = TargetId::Modbus.create().data_models();
    let mut strategy = SemanticAwareStrategy::new(config);
    for model in models.models() {
        let packet = emit_default(model).expect("default packet emits");
        strategy.observe(&Seed::new(packet, model.name(), false), true, &models);
    }
    strategy
}

fn bench_generation(c: &mut Criterion) {
    let models = TargetId::Modbus.create().data_models();
    let mut group = c.benchmark_group("generation");
    group.sample_size(30);

    group.bench_function("random_peach", |b| {
        b.iter_batched(
            || (RandomGenerationStrategy::new(), SmallRng::seed_from_u64(1)),
            |(mut strategy, mut rng)| {
                let mut bytes = 0usize;
                for _ in 0..100 {
                    bytes += strategy.next_packet(&models, &mut rng).len();
                }
                // Returning the strategy keeps its teardown (scratch
                // buffers) out of the timed region.
                (bytes, strategy)
            },
            BatchSize::SmallInput,
        );
    });

    let configs = [
        ("semantic_peachstar", SemanticAwareConfig::default()),
        (
            "semantic_leaves_only",
            SemanticAwareConfig {
                leaves_only: true,
                ..SemanticAwareConfig::default()
            },
        ),
        (
            "semantic_no_repair",
            SemanticAwareConfig {
                repair: false,
                ..SemanticAwareConfig::default()
            },
        ),
        (
            "semantic_donor_cap_1",
            SemanticAwareConfig {
                max_donors_per_field: 1,
                ..SemanticAwareConfig::default()
            },
        ),
    ];
    for (name, config) in configs {
        group.bench_function(name, |b| {
            b.iter_batched(
                || (primed_semantic(config), SmallRng::seed_from_u64(1)),
                |(mut strategy, mut rng)| {
                    let mut bytes = 0usize;
                    for _ in 0..100 {
                        bytes += strategy.next_packet(&models, &mut rng).len();
                    }
                    // Returning the strategy keeps the teardown of its
                    // corpus and remaining queue out of the timed region —
                    // dropping a primed strategy costs several times the
                    // 100 queue pops being measured and made these medians
                    // bimodal.
                    (bytes, strategy)
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
