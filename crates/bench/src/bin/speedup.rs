//! Reproduces the headline speed claim: Peach\* reaches the code coverage of
//! the original Peach at 1.2×–25× speed (average 5.7×).
//!
//! For each target, the baseline runs its full budget; the number of
//! executions each fuzzer needs to first reach the baseline's final path
//! count is then compared.
//!
//! Usage:
//!
//! ```text
//! cargo run -p peachstar-bench --release --bin speedup
//! ```

use peachstar_bench::{compare_target, default_budget, env_or};
use peachstar_protocols::TargetId;

fn main() {
    let repetitions = env_or("PEACHSTAR_REPETITIONS", 5);
    println!("=== Speed to reach the baseline's final coverage ===");
    println!(
        "{:<16} {:>12} {:>14} {:>14} {:>9}",
        "project", "peach paths", "peach execs", "peach* execs", "speedup"
    );

    let mut speedups = Vec::new();
    for target in TargetId::ALL {
        let executions = env_or("PEACHSTAR_EXECUTIONS", default_budget(target));
        let comparison = compare_target(target, executions, repetitions);
        let baseline_paths = comparison.peach_final_paths();
        let baseline_execs = comparison
            .peach_series
            .executions_to_reach(baseline_paths)
            .unwrap_or(executions);
        let star_execs = comparison.peachstar_executions_to_baseline();
        let speedup = comparison.speedup();
        println!(
            "{:<16} {:>12} {:>14} {:>14} {:>9}",
            target.project_name(),
            baseline_paths,
            baseline_execs,
            star_execs.map_or_else(|| "never".to_string(), |e| e.to_string()),
            speedup.map_or_else(|| "n/a".to_string(), |s| format!("{s:.1}x")),
        );
        if let Some(s) = speedup {
            speedups.push(s);
        }
    }
    println!("---");
    if speedups.is_empty() {
        println!("measured: Peach* did not reach the baseline coverage on any target");
    } else {
        let min = speedups.iter().copied().fold(f64::MAX, f64::min);
        let max = speedups.iter().copied().fold(f64::MIN, f64::max);
        let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
        println!("paper:    1.2x - 25x, average 5.7x");
        println!("measured: {min:.1}x - {max:.1}x, average {avg:.1}x");
    }
}
