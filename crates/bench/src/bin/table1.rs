//! Regenerates Table I of the paper: previously-unknown vulnerabilities
//! exposed by Peach\* per project, grouped by vulnerability type.
//!
//! Usage:
//!
//! ```text
//! cargo run -p peachstar-bench --release --bin table1
//! PEACHSTAR_EXECUTIONS=20000 cargo run -p peachstar-bench --release --bin table1
//! ```

use std::collections::BTreeMap;

use peachstar::campaign::{Campaign, CampaignConfig};
use peachstar::strategy::StrategyKind;
use peachstar_bench::{default_budget, env_or};
use peachstar_protocols::TargetId;

/// The paper's Table I, for the side-by-side comparison printed at the end:
/// (project, vulnerability type, count).
const PAPER_TABLE1: &[(&str, &str, usize)] = &[
    ("lib60870", "SEGV", 3),
    ("libmodbus", "Heap Use after Free", 1),
    ("libmodbus", "SEGV", 1),
    ("libiec_iccp_mod", "SEGV", 3),
    ("libiec_iccp_mod", "Heap Buffer Overflow", 1),
];

fn main() {
    let repetitions = env_or("PEACHSTAR_REPETITIONS", 3);
    println!("=== Table I: vulnerabilities exposed by Peach* ===");
    println!(
        "{:<18} {:<24} {:>7} {:>9}",
        "project", "vulnerability type", "found", "paper"
    );

    let mut total_found = 0usize;
    for target in TargetId::ALL {
        let executions = env_or("PEACHSTAR_EXECUTIONS", default_budget(target));
        // Aggregate unique fault sites across repetitions (the paper reports
        // the union of bugs found over its campaigns).
        let mut by_kind: BTreeMap<String, std::collections::HashSet<&'static str>> =
            BTreeMap::new();
        for repetition in 0..repetitions {
            let config = CampaignConfig::new(StrategyKind::PeachStar)
                .executions(executions)
                .rng_seed(4000 + repetition);
            let report = Campaign::new(target.create(), config).run();
            for bug in &report.bugs {
                by_kind
                    .entry(bug.fault.kind.to_string())
                    .or_default()
                    .insert(bug.fault.site);
            }
        }
        if by_kind.is_empty() {
            continue;
        }
        for (kind, sites) in &by_kind {
            let paper_count = PAPER_TABLE1
                .iter()
                .find(|(project, paper_kind, _)| {
                    *project == target.project_name()
                        && paper_kind.to_ascii_lowercase().contains(
                            &kind.replace('-', " ").to_ascii_lowercase()[..3.min(kind.len())],
                        )
                })
                .map_or(0, |(_, _, count)| *count);
            println!(
                "{:<18} {:<24} {:>7} {:>9}",
                target.project_name(),
                kind,
                sites.len(),
                paper_count
            );
            total_found += sites.len();
        }
    }
    println!("---");
    println!("paper:    9 previously unknown vulnerabilities (3 projects)");
    println!("measured: {total_found} unique planted faults rediscovered");
}
