//! Quantifies the Figure 2 insight of the paper: chunks belonging to
//! different packet types of the same protocol often conform to the same
//! construction rules, which is what makes cracked puzzles donatable across
//! packet types.
//!
//! For every target this binary prints the number of packet-type models, the
//! number of distinct construction rules and the fraction of rules shared by
//! at least two models.
//!
//! Usage:
//!
//! ```text
//! cargo run -p peachstar-bench --bin fig2_rule_overlap
//! ```

use peachstar_protocols::TargetId;

fn main() {
    println!("=== Figure 2 insight: construction-rule sharing across packet types ===");
    println!(
        "{:<16} {:>8} {:>8} {:>12}",
        "project", "models", "rules", "shared rules"
    );
    for target in TargetId::ALL {
        let models = target.create().data_models();
        let mut rules = std::collections::HashSet::new();
        for model in models.models() {
            for rule in model.rule_ids() {
                rules.insert(rule);
            }
        }
        println!(
            "{:<16} {:>8} {:>8} {:>11.1}%",
            target.project_name(),
            models.len(),
            rules.len(),
            models.rule_overlap() * 100.0
        );
    }
    println!("---");
    println!("A non-trivial shared-rule fraction is what lets a puzzle cracked from one");
    println!("packet type seed the generation of other packet types (paper §III).");
}
