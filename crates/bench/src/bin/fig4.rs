//! Regenerates Figure 4 of the paper: average number of paths covered by
//! Peach and Peach\* over the (simulated) 24-hour budget, for each of the six
//! ICS protocol targets, plus the final-path-gain summary (the paper's
//! "8.35 %–36.84 % more paths" claim).
//!
//! Usage:
//!
//! ```text
//! cargo run -p peachstar-bench --release --bin fig4
//! PEACHSTAR_EXECUTIONS=5000 PEACHSTAR_REPETITIONS=2 cargo run -p peachstar-bench --release --bin fig4
//! ```
//!
//! One CSV file per target is written to `target/experiments/fig4_<name>.csv`.

use std::fs;
use std::path::PathBuf;

use peachstar_bench::{compare_target, default_budget, env_or};
use peachstar_protocols::TargetId;

fn main() {
    let repetitions = env_or("PEACHSTAR_REPETITIONS", 10);
    let out_dir = PathBuf::from("target/experiments");
    fs::create_dir_all(&out_dir).expect("create output directory");

    println!("=== Figure 4: average paths covered within the 24h budget ===");
    println!(
        "{:<16} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "project", "execs", "Peach", "Peach*", "gain %", "speedup"
    );

    let mut gains = Vec::new();
    let mut speedups = Vec::new();
    for target in TargetId::ALL {
        let executions = env_or("PEACHSTAR_EXECUTIONS", default_budget(target));
        let comparison = compare_target(target, executions, repetitions);
        let gain = comparison.path_gain_percent();
        let speedup = comparison.speedup();
        println!(
            "{:<16} {:>10} {:>12} {:>12} {:>9.2}% {:>10}",
            target.project_name(),
            executions,
            comparison.peach_final_paths(),
            comparison.peachstar_final_paths(),
            gain,
            speedup.map_or_else(|| "n/a".to_string(), |s| format!("{s:.1}x")),
        );
        gains.push(gain);
        if let Some(s) = speedup {
            speedups.push(s);
        }

        let file = out_dir.join(format!(
            "fig4_{}.csv",
            target.project_name().to_ascii_lowercase()
        ));
        fs::write(&file, comparison.to_csv(executions)).expect("write csv");
    }

    let mean_gain = gains.iter().sum::<f64>() / gains.len() as f64;
    let max_gain = gains.iter().copied().fold(f64::MIN, f64::max);
    println!("---");
    println!(
        "paper:   +8.35%..+36.84% more paths, average +27.35%; speed 1.2x-25x (avg 5.7x)"
    );
    println!(
        "measured: gain avg {:+.2}% (max {:+.2}%); speedup avg {:.1}x",
        mean_gain,
        max_gain,
        if speedups.is_empty() {
            0.0
        } else {
            speedups.iter().sum::<f64>() / speedups.len() as f64
        }
    );
    println!("CSV series written to {}", out_dir.display());
}
