//! Benchmark harness for the `peachstar` reproduction of the DAC 2020
//! Peach\* paper.
//!
//! The binaries in `src/bin/` regenerate every figure and table of the
//! paper's evaluation section against the simulated ICS targets:
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `fig4` | Figure 4 (a)–(f): average paths covered over time, Peach vs Peach\*, plus the final-path-gain table (8.35 %–36.84 % claim) |
//! | `table1` | Table I: previously-unknown vulnerabilities found per project |
//! | `speedup` | the 1.2×–25× speed-to-same-coverage claim |
//! | `fig2_rule_overlap` | the Figure 2 insight: construction-rule sharing across packet types |
//!
//! The Criterion benches in `benches/` measure the micro-costs of the
//! design: packet cracking, semantic-aware vs random generation, coverage
//! map merging and raw target throughput.
//!
//! This crate's library part holds the shared experiment harness so that the
//! binaries stay thin and the integration tests can drive the same code.

use peachstar::campaign::{run_repetitions, CampaignConfig, CampaignReport};
use peachstar::stats::CoverageSeries;
use peachstar::strategy::StrategyKind;
use peachstar_protocols::TargetId;

/// Scale factor mapping executions to simulated hours for presentation:
/// the paper's 24-hour budget corresponds to the full execution budget.
pub const SIMULATED_HOURS: f64 = 24.0;

/// Standard execution budgets per target, scaled so that small targets
/// saturate and large targets keep growing — mirroring the relative sizes
/// the paper reports (thousands of paths on libiec61850, dozens on IEC104).
#[must_use]
pub fn default_budget(target: TargetId) -> u64 {
    match target {
        TargetId::Iec104 => 20_000,
        TargetId::Lib60870 => 25_000,
        TargetId::Modbus => 30_000,
        TargetId::Iccp => 30_000,
        TargetId::Dnp3 => 35_000,
        TargetId::Iec61850 => 40_000,
    }
}

/// Result of running both fuzzers on one target with repetitions.
#[derive(Debug, Clone)]
pub struct TargetComparison {
    /// Which target was fuzzed.
    pub target: TargetId,
    /// Averaged coverage series of the baseline.
    pub peach_series: CoverageSeries,
    /// Averaged coverage series of Peach\*.
    pub peachstar_series: CoverageSeries,
    /// Per-repetition reports of the baseline.
    pub peach_reports: Vec<CampaignReport>,
    /// Per-repetition reports of Peach\*.
    pub peachstar_reports: Vec<CampaignReport>,
}

impl TargetComparison {
    /// Final (averaged) paths of the baseline.
    #[must_use]
    pub fn peach_final_paths(&self) -> usize {
        self.peach_series.final_paths()
    }

    /// Final (averaged) paths of Peach\*.
    #[must_use]
    pub fn peachstar_final_paths(&self) -> usize {
        self.peachstar_series.final_paths()
    }

    /// Relative path gain of Peach\* over the baseline, in percent.
    #[must_use]
    pub fn path_gain_percent(&self) -> f64 {
        let base = self.peach_final_paths();
        if base == 0 {
            return 0.0;
        }
        (self.peachstar_final_paths() as f64 - base as f64) / base as f64 * 100.0
    }

    /// Executions Peach\* needed to reach the baseline's final path count,
    /// if it ever did.
    #[must_use]
    pub fn peachstar_executions_to_baseline(&self) -> Option<u64> {
        self.peachstar_series
            .executions_to_reach(self.peach_final_paths())
    }

    /// Speed-up factor of Peach\* reaching the baseline's final coverage.
    #[must_use]
    pub fn speedup(&self) -> Option<f64> {
        let baseline = self
            .peach_series
            .executions_to_reach(self.peach_final_paths())?;
        let ours = self.peachstar_executions_to_baseline()?;
        Some(baseline as f64 / ours.max(1) as f64)
    }

    /// Renders the two averaged series as one CSV table
    /// (`executions,hours,peach_paths,peachstar_paths`).
    #[must_use]
    pub fn to_csv(&self, budget: u64) -> String {
        let mut out = String::from("executions,hours,peach_paths,peachstar_paths\n");
        let n = self
            .peach_series
            .points()
            .len()
            .min(self.peachstar_series.points().len());
        for index in 0..n {
            let peach = self.peach_series.points()[index];
            let star = self.peachstar_series.points()[index];
            let hours = peach.executions as f64 / budget as f64 * SIMULATED_HOURS;
            out.push_str(&format!(
                "{},{:.2},{},{}\n",
                peach.executions, hours, peach.paths, star.paths
            ));
        }
        out
    }
}

/// Runs both fuzzers against `target` with `repetitions` repetitions each.
#[must_use]
pub fn compare_target(target: TargetId, executions: u64, repetitions: u64) -> TargetComparison {
    let base_config = CampaignConfig::new(StrategyKind::Peach)
        .executions(executions)
        .sample_interval((executions / 100).max(1))
        .rng_seed(1000);
    let (peach_series, peach_reports) =
        run_repetitions(|| target.create(), base_config, repetitions);
    let star_config = CampaignConfig {
        strategy: StrategyKind::PeachStar,
        ..base_config
    };
    let (peachstar_series, peachstar_reports) =
        run_repetitions(|| target.create(), star_config, repetitions);
    TargetComparison {
        target,
        peach_series,
        peachstar_series,
        peach_reports,
        peachstar_reports,
    }
}

/// Reads an environment variable as a number with a fallback, so the long
/// harness binaries can be shortened for smoke runs
/// (`PEACHSTAR_EXECUTIONS=2000 PEACHSTAR_REPETITIONS=2 cargo run --bin fig4`).
#[must_use]
pub fn env_or(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|value| value.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_are_positive_and_ordered_by_target_size() {
        for target in TargetId::ALL {
            assert!(default_budget(target) > 0);
        }
        assert!(default_budget(TargetId::Iec61850) > default_budget(TargetId::Iec104));
    }

    #[test]
    fn env_or_falls_back() {
        assert_eq!(env_or("PEACHSTAR_DOES_NOT_EXIST", 7), 7);
    }

    #[test]
    fn small_comparison_produces_csv_and_gain() {
        let comparison = compare_target(TargetId::Modbus, 1_500, 1);
        assert!(comparison.peach_final_paths() > 0);
        assert!(comparison.peachstar_final_paths() > 0);
        let csv = comparison.to_csv(1_500);
        assert!(csv.lines().count() > 2);
        assert!(csv.starts_with("executions,hours,peach_paths,peachstar_paths"));
        // The gain may be small on a tiny budget, but the API must not panic.
        let _ = comparison.path_gain_percent();
        let _ = comparison.speedup();
    }
}
