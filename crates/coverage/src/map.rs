//! The persistent, campaign-global coverage map.

use std::fmt;

use crate::stats::{bucket_for, CoverageStats, HitBucket};
use crate::trace::{PathId, SparseTrace, TraceMap};

/// Number of slots in the coverage bitmap (64 KiB, the classic AFL size).
pub const MAP_SIZE: usize = 1 << 16;

/// Outcome of merging one execution's [`TraceMap`] into the global map.
///
/// The fuzzer labels the seed that produced the trace *valuable* when the
/// outcome [`is_interesting`](MergeOutcome::is_interesting): valuable seeds
/// are retained and cracked into puzzles (paper §IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeOutcome {
    /// Number of map slots never hit by any previous execution.
    pub new_edges: usize,
    /// Number of slots whose hit-count bucket grew (e.g. 1 hit → many hits).
    pub new_buckets: usize,
    /// Whether the whole execution path (edge set + buckets) was new.
    pub new_path: bool,
    /// Stable identifier of the execution path.
    pub path_id: PathId,
}

impl MergeOutcome {
    /// `true` when the execution uncovered a map slot never seen before.
    #[must_use]
    pub fn has_new_edges(&self) -> bool {
        self.new_edges > 0
    }

    /// `true` when the execution should be treated as a valuable seed
    /// (new edge or new hit-count bucket).
    #[must_use]
    pub fn is_interesting(&self) -> bool {
        self.new_edges > 0 || self.new_buckets > 0
    }
}

/// Campaign-global accumulation of edge coverage.
///
/// This is the fuzzer-side view of the `shared_mem[]` region: per slot it
/// remembers the union of hit-count buckets observed so far, plus the set of
/// distinct path ids, so it can answer both "new edge?" and "new path?".
///
/// [`merge`](CoverageMap::merge) and [`peek`](CoverageMap::peek) walk the
/// trace's dirty-slot list, so their cost is O(edges hit by the execution)
/// rather than O([`MAP_SIZE`]).
///
/// ```
/// use peachstar_coverage::{CoverageMap, TraceContext, EdgeId};
///
/// let mut map = CoverageMap::new();
/// let mut ctx = TraceContext::new();
/// ctx.edge(EdgeId::new(77));
/// let outcome = map.merge(ctx.trace());
/// assert!(outcome.has_new_edges());
/// assert_eq!(map.edges_covered(), 1);
/// assert_eq!(map.paths_covered(), 1);
/// ```
#[derive(Clone)]
pub struct CoverageMap {
    /// Bitmask of observed [`HitBucket`]s per slot.
    buckets: Box<[u8; MAP_SIZE]>,
    edges_covered: usize,
    paths: std::collections::HashSet<PathId>,
    executions: u64,
    /// Reusable sort buffer for per-merge path-id hashing, so the campaign
    /// hot loop performs no allocation per execution.
    path_scratch: Vec<u16>,
}

impl CoverageMap {
    /// Creates an empty global coverage map.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: Box::new([0u8; MAP_SIZE]),
            edges_covered: 0,
            paths: std::collections::HashSet::new(),
            executions: 0,
            path_scratch: Vec::new(),
        }
    }

    /// The one accumulation body behind [`merge`](CoverageMap::merge) and
    /// [`merge_sparse`](CoverageMap::merge_sparse): the sharded engine's
    /// bit-identical guarantee depends on the two representations never
    /// drifting apart, so they must share this code.
    fn merge_hits(
        &mut self,
        hits: impl Iterator<Item = (usize, u8)>,
        path_id: PathId,
        trace_empty: bool,
    ) -> MergeOutcome {
        self.executions += 1;
        let mut new_edges = 0;
        let mut new_buckets = 0;
        for (slot, count) in hits {
            let bucket_bit = 1u8 << (bucket_for(count) as u8);
            let seen = self.buckets[slot];
            if seen == 0 {
                new_edges += 1;
                self.edges_covered += 1;
            } else if seen & bucket_bit == 0 {
                new_buckets += 1;
            }
            self.buckets[slot] = seen | bucket_bit;
        }
        let new_path = !trace_empty && self.paths.insert(path_id);
        MergeOutcome {
            new_edges,
            new_buckets,
            new_path,
            path_id,
        }
    }

    /// Merges a single execution's trace, returning what (if anything) it
    /// added to global coverage.
    pub fn merge(&mut self, trace: &TraceMap) -> MergeOutcome {
        let path_id = trace.path_id_with(&mut self.path_scratch);
        self.merge_hits(trace.iter_hits(), path_id, trace.is_empty())
    }

    /// Merges a buffered [`SparseTrace`] snapshot, returning what (if
    /// anything) it added to global coverage.
    ///
    /// Bit-identical to [`merge`](CoverageMap::merge) of the live
    /// [`TraceMap`] the snapshot was captured from: same counters, same
    /// [`MergeOutcome`], same path id. This is the merge-barrier entry point
    /// of sharded campaigns, whose workers buffer snapshots instead of
    /// keeping one 64 KiB trace map per execution alive.
    pub fn merge_sparse(&mut self, trace: &SparseTrace) -> MergeOutcome {
        self.merge_hits(trace.iter_hits(), trace.path_id(), trace.is_empty())
    }

    /// Absorbs everything another coverage map has seen: per-slot bucket
    /// masks, path-id set and execution count.
    ///
    /// This is the shard-sync primitive for engines that keep one map per
    /// worker and union them at a barrier (edge and bucket union are
    /// commutative, so the merged map is independent of absorb order).
    pub fn absorb(&mut self, other: &CoverageMap) {
        for slot in 0..MAP_SIZE {
            let theirs = other.buckets[slot];
            if theirs == 0 {
                continue;
            }
            if self.buckets[slot] == 0 {
                self.edges_covered += 1;
            }
            self.buckets[slot] |= theirs;
        }
        self.paths.extend(other.paths.iter().copied());
        self.executions += other.executions;
    }

    /// Checks what a trace *would* add, without updating the map.
    #[must_use]
    pub fn peek(&self, trace: &TraceMap) -> MergeOutcome {
        let mut new_edges = 0;
        let mut new_buckets = 0;
        for (slot, count) in trace.iter_hits() {
            let bucket_bit = 1u8 << (bucket_for(count) as u8);
            let seen = self.buckets[slot];
            if seen == 0 {
                new_edges += 1;
            } else if seen & bucket_bit == 0 {
                new_buckets += 1;
            }
        }
        let path_id = trace.path_id();
        MergeOutcome {
            new_edges,
            new_buckets,
            new_path: !trace.is_empty() && !self.paths.contains(&path_id),
            path_id,
        }
    }

    /// Number of distinct map slots covered so far.
    #[must_use]
    pub fn edges_covered(&self) -> usize {
        self.edges_covered
    }

    /// Number of distinct execution paths observed so far.
    ///
    /// This is the metric plotted in Figure 4 of the paper.
    #[must_use]
    pub fn paths_covered(&self) -> usize {
        self.paths.len()
    }

    /// Total number of traces merged.
    #[must_use]
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// Whether slot `slot` has ever been hit.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= MAP_SIZE`.
    #[must_use]
    pub fn is_covered(&self, slot: usize) -> bool {
        self.buckets[slot] != 0
    }

    /// Buckets observed for slot `slot`, as an iterator.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= MAP_SIZE`.
    pub fn buckets_for(&self, slot: usize) -> impl Iterator<Item = HitBucket> + '_ {
        let mask = self.buckets[slot];
        HitBucket::ALL
            .iter()
            .copied()
            .filter(move |bucket| mask & (1u8 << (*bucket as u8)) != 0)
    }

    /// Summary statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> CoverageStats {
        CoverageStats {
            edges_covered: self.edges_covered,
            paths_covered: self.paths.len(),
            executions: self.executions,
            map_density: self.edges_covered as f64 / MAP_SIZE as f64,
        }
    }

    /// Resets the map to the empty state.
    pub fn clear(&mut self) {
        self.buckets.fill(0);
        self.edges_covered = 0;
        self.paths.clear();
        self.executions = 0;
    }

    /// The covered slots in ascending slot order, as `(slot, bucket_mask)`.
    ///
    /// This is the serialisation view used by campaign snapshots: together
    /// with [`path_ids`](CoverageMap::path_ids) and
    /// [`executions`](CoverageMap::executions) it captures every observable
    /// field of the map (`edges_covered` is derived — the number of nonzero
    /// slots). The ascending order makes the encoding canonical.
    pub fn covered_slots(&self) -> impl Iterator<Item = (usize, u8)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &mask)| mask != 0)
            .map(|(slot, &mask)| (slot, mask))
    }

    /// The distinct path ids observed so far, in unspecified order.
    ///
    /// Snapshot encoders must sort these themselves to obtain a canonical
    /// byte stream (hash-set iteration order is not deterministic).
    pub fn path_ids(&self) -> impl Iterator<Item = PathId> + '_ {
        self.paths.iter().copied()
    }

    /// Rebuilds a map from the parts exposed by
    /// [`covered_slots`](CoverageMap::covered_slots),
    /// [`path_ids`](CoverageMap::path_ids) and
    /// [`executions`](CoverageMap::executions).
    ///
    /// `edges_covered` is recomputed from the nonzero slots, so a decoder
    /// cannot desynchronise the derived count from the bucket contents.
    ///
    /// # Panics
    ///
    /// Panics if a slot index is `>= MAP_SIZE`; callers deserialising
    /// untrusted bytes must bounds-check before constructing.
    #[must_use]
    pub fn from_parts(
        slots: impl IntoIterator<Item = (usize, u8)>,
        paths: impl IntoIterator<Item = PathId>,
        executions: u64,
    ) -> Self {
        let mut map = Self::new();
        for (slot, mask) in slots {
            assert!(slot < MAP_SIZE, "coverage slot {slot} out of range");
            if mask != 0 && map.buckets[slot] == 0 {
                map.edges_covered += 1;
            }
            map.buckets[slot] |= mask;
        }
        map.paths.extend(paths);
        map.executions = executions;
        map
    }
}

impl Default for CoverageMap {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for CoverageMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CoverageMap")
            .field("edges_covered", &self.edges_covered)
            .field("paths_covered", &self.paths.len())
            .field("executions", &self.executions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{EdgeId, TraceContext};

    fn trace_of(ids: &[u32]) -> TraceMap {
        let mut ctx = TraceContext::new();
        for &id in ids {
            ctx.edge(EdgeId::new(id));
        }
        ctx.into_trace()
    }

    #[test]
    fn first_merge_is_interesting() {
        let mut map = CoverageMap::new();
        let outcome = map.merge(&trace_of(&[1, 2, 3]));
        assert!(outcome.is_interesting());
        assert!(outcome.new_path);
        assert_eq!(map.paths_covered(), 1);
    }

    #[test]
    fn duplicate_merge_is_not_interesting() {
        let mut map = CoverageMap::new();
        map.merge(&trace_of(&[1, 2, 3]));
        let outcome = map.merge(&trace_of(&[1, 2, 3]));
        assert!(!outcome.is_interesting());
        assert!(!outcome.new_path);
        assert_eq!(map.paths_covered(), 1);
        assert_eq!(map.executions(), 2);
    }

    #[test]
    fn new_subset_path_without_new_edges() {
        let mut map = CoverageMap::new();
        map.merge(&trace_of(&[1, 2, 3]));
        // Prefix of the earlier trace: no new edges, but a distinct path.
        let outcome = map.merge(&trace_of(&[1, 2]));
        assert_eq!(outcome.new_edges, 0);
        assert!(outcome.new_path);
        assert_eq!(map.paths_covered(), 2);
    }

    #[test]
    fn bucket_growth_is_interesting() {
        let looped = |iterations: usize| {
            let mut ctx = TraceContext::new();
            for _ in 0..iterations {
                ctx.edge(EdgeId::new(9));
            }
            ctx.into_trace()
        };
        let mut map = CoverageMap::new();
        // Covers both map slots the loop can touch, each with a low count.
        map.merge(&looped(2));
        // Same slots but one of them is now hit ~40 times → new hit bucket.
        let outcome = map.merge(&looped(40));
        assert_eq!(outcome.new_edges, 0);
        assert!(outcome.new_buckets > 0);
        assert!(outcome.is_interesting());
    }

    #[test]
    fn peek_does_not_mutate() {
        let mut map = CoverageMap::new();
        map.merge(&trace_of(&[4, 5]));
        let trace = trace_of(&[6]);
        let peeked = map.peek(&trace);
        assert!(peeked.has_new_edges());
        assert_eq!(map.edges_covered(), 2);
        assert_eq!(map.paths_covered(), 1);
        // Now actually merge and observe the same verdict.
        let merged = map.merge(&trace);
        assert_eq!(peeked.new_edges, merged.new_edges);
    }

    #[test]
    fn empty_trace_is_not_a_path() {
        let mut map = CoverageMap::new();
        let outcome = map.merge(&TraceMap::new());
        assert!(!outcome.new_path);
        assert_eq!(map.paths_covered(), 0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut map = CoverageMap::new();
        map.merge(&trace_of(&[1, 2, 3]));
        map.clear();
        assert_eq!(map.edges_covered(), 0);
        assert_eq!(map.paths_covered(), 0);
        assert_eq!(map.executions(), 0);
    }

    #[test]
    fn merge_sparse_is_bit_identical_to_merge() {
        let traces = [
            trace_of(&[1, 2, 3]),
            trace_of(&[1, 2]),
            trace_of(&[7, 7, 7, 9]),
            trace_of(&[1, 2, 3]),
            TraceMap::new(),
        ];
        let mut dense = CoverageMap::new();
        let mut sparse = CoverageMap::new();
        for trace in &traces {
            let a = dense.merge(trace);
            let b = sparse.merge_sparse(&trace.to_sparse());
            assert_eq!(a, b);
        }
        assert_eq!(dense.edges_covered(), sparse.edges_covered());
        assert_eq!(dense.paths_covered(), sparse.paths_covered());
        assert_eq!(dense.executions(), sparse.executions());
    }

    #[test]
    fn absorb_unions_two_maps() {
        let mut a = CoverageMap::new();
        a.merge(&trace_of(&[1, 2, 3]));
        let mut b = CoverageMap::new();
        b.merge(&trace_of(&[3, 4]));
        b.merge(&trace_of(&[3, 4]));

        // The union must equal a map that merged every trace itself.
        let mut sequential = CoverageMap::new();
        sequential.merge(&trace_of(&[1, 2, 3]));
        sequential.merge(&trace_of(&[3, 4]));
        sequential.merge(&trace_of(&[3, 4]));

        a.absorb(&b);
        assert_eq!(a.edges_covered(), sequential.edges_covered());
        assert_eq!(a.paths_covered(), sequential.paths_covered());
        assert_eq!(a.executions(), 3);
        for slot in 0..MAP_SIZE {
            assert_eq!(
                a.buckets_for(slot).collect::<Vec<_>>(),
                sequential.buckets_for(slot).collect::<Vec<_>>(),
                "slot {slot} bucket masks differ"
            );
        }
    }

    #[test]
    fn absorb_is_order_independent() {
        let mut left = CoverageMap::new();
        left.merge(&trace_of(&[10, 11]));
        let mut right = CoverageMap::new();
        right.merge(&trace_of(&[11, 12]));

        let mut ab = left.clone();
        ab.absorb(&right);
        let mut ba = right.clone();
        ba.absorb(&left);
        assert_eq!(ab.edges_covered(), ba.edges_covered());
        assert_eq!(ab.paths_covered(), ba.paths_covered());
        assert_eq!(ab.executions(), ba.executions());
    }

    #[test]
    fn stats_snapshot() {
        let mut map = CoverageMap::new();
        map.merge(&trace_of(&[1, 2, 3]));
        let stats = map.stats();
        assert_eq!(stats.edges_covered, map.edges_covered());
        assert!(stats.edges_covered >= 2);
        assert_eq!(stats.paths_covered, 1);
        assert_eq!(stats.executions, 1);
        assert!(stats.map_density > 0.0);
    }
}
