//! Per-execution trace recording: [`EdgeId`], [`TraceContext`] and [`TraceMap`].

use std::fmt;

use crate::map::MAP_SIZE;

/// Identifier of a basic block / instrumentation site in the target.
///
/// Plays the role of the compile-time random `cur_location` value the paper's
/// instrumentation pass assigns to each basic block. Only the low bits that
/// index the trace map matter; the full 32-bit value is kept so that
/// diagnostics can refer to the original site.
///
/// ```
/// use peachstar_coverage::EdgeId;
/// let id = EdgeId::new(0xdead_beef);
/// assert_eq!(id.raw(), 0xdead_beef);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an identifier from a raw 32-bit value.
    #[must_use]
    pub const fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// Returns the raw 32-bit value.
    #[must_use]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Index of this block in the coverage bitmap.
    #[must_use]
    pub(crate) const fn slot(self) -> usize {
        (self.0 as usize) & (MAP_SIZE - 1)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "edge:{:08x}", self.0)
    }
}

impl From<u32> for EdgeId {
    fn from(raw: u32) -> Self {
        Self::new(raw)
    }
}

/// Stable identifier of a whole execution *path*.
///
/// Two executions that hit the same set of (edge, hit-bucket) pairs get the
/// same `PathId`. The fuzzer uses distinct path ids as its "paths covered"
/// metric — the quantity plotted on the Y axis of Figure 4 in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathId(u64);

impl PathId {
    /// Creates a path identifier from its raw hash value.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw 64-bit hash value.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for PathId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "path:{:016x}", self.0)
    }
}

/// Coverage bitmap produced by a single execution of the target.
///
/// Each byte counts how many times the corresponding edge hash was traversed,
/// exactly like the `shared_mem[]` array in the paper's instrumentation
/// snippet (saturating instead of wrapping so that loops cannot erase
/// evidence of having run).
///
/// A packet execution hits a few dozen of the 65 536 slots, so the map keeps
/// a *dirty list* of the slots touched at least once. Consumers
/// ([`iter_hits`](TraceMap::iter_hits), [`path_id`](TraceMap::path_id),
/// [`CoverageMap::merge`](crate::CoverageMap::merge)) walk only that list —
/// O(edges hit), not O([`MAP_SIZE`]) — and [`clear`](TraceMap::clear) zeroes
/// only the dirty slots instead of the whole 64 KiB.
#[derive(Clone)]
pub struct TraceMap {
    bytes: Box<[u8; MAP_SIZE]>,
    /// Slots hit at least once, in first-hit order. `MAP_SIZE` is `1 << 16`,
    /// so every slot index fits in a `u16` (enforced at compile time below).
    dirty: Vec<u16>,
}

// `record` narrows slot indices to `u16` for the dirty list; a larger map
// would truncate them silently, so reject that configuration at compile time.
const _: () = assert!(MAP_SIZE <= u16::MAX as usize + 1);

impl TraceMap {
    /// Creates an empty (all-zero) trace map.
    #[must_use]
    pub fn new() -> Self {
        Self {
            bytes: Box::new([0u8; MAP_SIZE]),
            dirty: Vec::new(),
        }
    }

    /// Number of distinct map slots hit at least once during the execution.
    #[must_use]
    pub fn edges_hit(&self) -> usize {
        self.dirty.len()
    }

    /// Returns `true` if no edge was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.dirty.is_empty()
    }

    /// Raw view of the bitmap bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes[..]
    }

    /// Hit count for map slot `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= MAP_SIZE`.
    #[must_use]
    pub fn hit_count(&self, index: usize) -> u8 {
        self.bytes[index]
    }

    /// Iterator over `(slot, hit_count)` pairs for slots hit at least once.
    ///
    /// Visits only the dirty slots, in first-hit order (not ascending slot
    /// order). Order-sensitive consumers must sort; [`path_id`] does.
    ///
    /// [`path_id`]: TraceMap::path_id
    pub fn iter_hits(&self) -> impl Iterator<Item = (usize, u8)> + '_ {
        self.dirty
            .iter()
            .map(|&slot| (slot as usize, self.bytes[slot as usize]))
    }

    /// Computes the stable identifier of this execution path.
    ///
    /// The hash covers every hit slot together with its bucketed hit count,
    /// so two executions with the same branches but very different loop
    /// counts map to different paths, while small loop-count jitter does not.
    ///
    /// The dirty list is sorted into ascending slot order before hashing, so
    /// the identifier is bit-identical to a dense full-map scan no matter in
    /// which order the edges were recorded.
    ///
    /// Allocates a sort buffer per call; hot paths that compute path ids per
    /// execution should hold a reusable buffer and call
    /// [`path_id_with`](TraceMap::path_id_with) instead (as
    /// [`CoverageMap::merge`](crate::CoverageMap::merge) does).
    #[must_use]
    pub fn path_id(&self) -> PathId {
        self.path_id_with(&mut Vec::new())
    }

    /// [`path_id`](TraceMap::path_id) with a caller-provided sort buffer, so
    /// repeated calls reuse one allocation.
    #[must_use]
    pub fn path_id_with(&self, scratch: &mut Vec<u16>) -> PathId {
        scratch.clear();
        scratch.extend_from_slice(&self.dirty);
        scratch.sort_unstable();
        fnv_path_id(scratch.iter().map(|&slot| (slot, self.bytes[slot as usize])))
    }

    /// Captures a compact, self-contained snapshot of this trace.
    ///
    /// The snapshot's [`path_id`](SparseTrace::path_id) and
    /// [`iter_hits`](SparseTrace::iter_hits) agree exactly with this map's,
    /// so a [`CoverageMap::merge_sparse`](crate::CoverageMap::merge_sparse)
    /// of the snapshot is bit-identical to a
    /// [`merge`](crate::CoverageMap::merge) of the live trace.
    #[must_use]
    pub fn to_sparse(&self) -> SparseTrace {
        let mut sparse = SparseTrace::default();
        self.snapshot_into(&mut sparse);
        sparse
    }

    /// [`to_sparse`](TraceMap::to_sparse) into a caller-provided snapshot,
    /// reusing its buffer — the batched execution hot path snapshots one
    /// trace per execution and pools the snapshots across windows, so the
    /// steady state allocates nothing.
    ///
    /// Note the snapshot's sort is not added cost relative to the live-merge
    /// path: [`CoverageMap::merge`](crate::CoverageMap::merge) sorts the same
    /// hit list per execution to compute the path id, while
    /// [`merge_sparse`](crate::CoverageMap::merge_sparse) consumes the
    /// already-sorted snapshot without sorting again.
    pub fn snapshot_into(&self, out: &mut SparseTrace) {
        out.hits.clear();
        out.hits.extend(
            self.dirty
                .iter()
                .map(|&slot| (slot, self.bytes[slot as usize])),
        );
        out.hits.sort_unstable_by_key(|&(slot, _)| slot);
    }

    /// Resets the map to the all-zero state by clearing only the slots that
    /// were actually hit, keeping the dirty list's allocation for reuse.
    pub fn clear(&mut self) {
        for &slot in &self.dirty {
            self.bytes[slot as usize] = 0;
        }
        self.dirty.clear();
    }

    /// Replaces this map's contents with a [`SparseTrace`] snapshot, so a
    /// trace recorded elsewhere (a supervised execution on a watchdog worker
    /// thread ships its trace back as a snapshot) can be re-materialised
    /// into the dense representation the per-execution pipeline consumes.
    ///
    /// The round trip is lossless: `map.load_sparse(&s)` makes
    /// `map.to_sparse() == s`, and `path_id`/`iter_hits` agree with the
    /// original trace the snapshot was taken from.
    pub fn load_sparse(&mut self, sparse: &SparseTrace) {
        self.clear();
        for &(slot, count) in &sparse.hits {
            self.bytes[slot as usize] = count;
            self.dirty.push(slot);
        }
    }

    pub(crate) fn record(&mut self, slot: usize) {
        let byte = &mut self.bytes[slot];
        if *byte == 0 {
            self.dirty.push(slot as u16);
        }
        *byte = byte.saturating_add(1);
    }
}

impl Default for TraceMap {
    fn default() -> Self {
        Self::new()
    }
}

/// FNV-1a over `(slot, hit-bucket)` pairs in ascending slot order — the one
/// path hash shared by [`TraceMap::path_id_with`] and
/// [`SparseTrace::path_id`], so the two representations can never drift.
fn fnv_path_id<I: Iterator<Item = (u16, u8)>>(sorted_hits: I) -> PathId {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for (slot, count) in sorted_hits {
        let bucket = crate::stats::bucket_for(count) as u8;
        for byte in u32::from(slot)
            .to_le_bytes()
            .into_iter()
            .chain(std::iter::once(bucket))
        {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    PathId::new(hash)
}

/// A compact, immutable snapshot of one execution's [`TraceMap`]: the hit
/// slots with their saturating counts, in ascending slot order.
///
/// A trace map owns a 64 KiB bitmap, so buffering one per execution (as a
/// sharded campaign worker does between merge barriers) would cost megabytes;
/// a snapshot costs a few bytes per edge actually hit. Snapshots are what
/// workers ship to the merge barrier, where
/// [`CoverageMap::merge_sparse`](crate::CoverageMap::merge_sparse) folds them
/// into the campaign-global map with outcomes bit-identical to merging the
/// live trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SparseTrace {
    /// `(slot, hit count)` pairs, ascending by slot.
    hits: Vec<(u16, u8)>,
}

impl SparseTrace {
    /// Creates an empty snapshot (a reusable buffer for
    /// [`TraceMap::snapshot_into`]).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct map slots hit during the execution.
    #[must_use]
    pub fn edges_hit(&self) -> usize {
        self.hits.len()
    }

    /// `true` if no edge was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.hits.is_empty()
    }

    /// Iterator over `(slot, hit_count)` pairs, in ascending slot order.
    pub fn iter_hits(&self) -> impl Iterator<Item = (usize, u8)> + '_ {
        self.hits
            .iter()
            .map(|&(slot, count)| (slot as usize, count))
    }

    /// The stable path identifier — bit-identical to
    /// [`TraceMap::path_id`] of the trace this snapshot was taken from.
    #[must_use]
    pub fn path_id(&self) -> PathId {
        fnv_path_id(self.hits.iter().copied())
    }

    /// Overwrites this snapshot with the contents of `other`, reusing the
    /// existing buffer — the pooled-copy counterpart of
    /// [`TraceMap::snapshot_into`] for consumers that already hold a
    /// snapshot (a watchdog reply) rather than a live trace.
    pub fn copy_from(&mut self, other: &SparseTrace) {
        self.hits.clone_from(&other.hits);
    }

    /// Rebuilds a snapshot from `(slot, hit count)` pairs — the
    /// deserialisation counterpart of [`iter_hits`](SparseTrace::iter_hits)
    /// for consumers that receive a trace over a wire (a framed-TCP
    /// transport reply) rather than from a live [`TraceMap`].
    ///
    /// Pairs are sorted into ascending slot order, zero-count entries are
    /// dropped and duplicate slots keep their first count, so a round trip
    /// through `iter_hits` → `from_hits` is exactly the identity: the
    /// rebuilt snapshot is `==` to the original, with the same
    /// [`path_id`](SparseTrace::path_id). (A `u16` slot is always in range —
    /// the map holds `1 << 16` slots.)
    #[must_use]
    pub fn from_hits(pairs: impl IntoIterator<Item = (u16, u8)>) -> Self {
        let mut hits: Vec<(u16, u8)> = pairs
            .into_iter()
            .filter(|&(_, count)| count != 0)
            .collect();
        hits.sort_by_key(|&(slot, _)| slot);
        hits.dedup_by_key(|&mut (slot, _)| slot);
        Self { hits }
    }
}

impl fmt::Debug for TraceMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceMap")
            .field("edges_hit", &self.edges_hit())
            .field("path_id", &self.path_id())
            .finish()
    }
}

/// Execution context threaded through an instrumented target.
///
/// Holds the `prev_location` register and the per-execution [`TraceMap`]. One
/// context corresponds to one packet fed to the target; the fuzzer reuses a
/// single context across a whole campaign via [`TraceContext::reset`], which
/// clears only the slots the previous execution dirtied instead of
/// reallocating the 64 KiB map.
///
/// ```
/// use peachstar_coverage::{EdgeId, TraceContext};
///
/// let mut ctx = TraceContext::new();
/// ctx.edge(EdgeId::new(1));
/// ctx.edge(EdgeId::new(2));
/// assert_eq!(ctx.trace().edges_hit(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TraceContext {
    prev_location: u32,
    trace: TraceMap,
}

impl TraceContext {
    /// Creates a fresh context with an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self {
            prev_location: 0,
            trace: TraceMap::new(),
        }
    }

    /// Records traversal of the instrumentation site `id`.
    ///
    /// Implements the paper's hashing scheme: the map slot is
    /// `cur ^ prev`, and `prev` is then set to `cur >> 1` so that the
    /// direction of an edge (A→B vs B→A) and tight self-loops remain
    /// distinguishable.
    pub fn edge<I: Into<EdgeId>>(&mut self, id: I) {
        let id = id.into();
        let cur = id.slot() as u32;
        let slot = (cur ^ self.prev_location) as usize & (MAP_SIZE - 1);
        self.trace.record(slot);
        self.prev_location = cur >> 1;
    }

    /// Read access to the per-execution trace.
    #[must_use]
    pub fn trace(&self) -> &TraceMap {
        &self.trace
    }

    /// Consumes the context and returns the trace.
    #[must_use]
    pub fn into_trace(self) -> TraceMap {
        self.trace
    }

    /// Clears the trace and the previous-location register so the context can
    /// be reused for another execution.
    ///
    /// Only the dirty slots of the trace are zeroed — no allocation, no
    /// 64 KiB memset — so resetting costs O(edges hit by the last execution).
    pub fn reset(&mut self) {
        self.prev_location = 0;
        self.trace.clear();
    }

    /// Replaces the context's trace with a snapshot recorded elsewhere —
    /// the dense-side counterpart of [`TraceMap::load_sparse`] for executors
    /// whose edges were recorded remotely (a framed-TCP transport client
    /// re-materialising the server's reply trace). The previous-location
    /// register is cleared: the loaded trace represents a *finished*
    /// execution, not one to be extended.
    pub fn load_sparse(&mut self, sparse: &SparseTrace) {
        self.prev_location = 0;
        self.trace.load_sparse(sparse);
    }
}

impl Default for TraceContext {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace() {
        let trace = TraceMap::new();
        assert!(trace.is_empty());
        assert_eq!(trace.edges_hit(), 0);
        assert_eq!(trace.iter_hits().count(), 0);
    }

    #[test]
    fn edge_direction_matters() {
        let mut ab = TraceContext::new();
        ab.edge(EdgeId::new(0x10));
        ab.edge(EdgeId::new(0x20));

        let mut ba = TraceContext::new();
        ba.edge(EdgeId::new(0x20));
        ba.edge(EdgeId::new(0x10));

        assert_ne!(ab.trace().path_id(), ba.trace().path_id());
    }

    #[test]
    fn repeated_edges_saturate() {
        let mut ctx = TraceContext::new();
        for _ in 0..1000 {
            ctx.edge(EdgeId::new(0x7));
            ctx.edge(EdgeId::new(0x8));
        }
        // The steady-state slots are hit ~1000 times and must saturate
        // instead of wrapping back to small counts.
        let max = ctx.trace().iter_hits().map(|(_, c)| c).max().unwrap();
        assert_eq!(max, u8::MAX);
    }

    #[test]
    fn same_sequence_same_path_id() {
        let run = || {
            let mut ctx = TraceContext::new();
            for id in [1u32, 5, 9, 5, 1] {
                ctx.edge(EdgeId::new(id));
            }
            ctx.into_trace().path_id()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reset_clears_state() {
        let mut ctx = TraceContext::new();
        ctx.edge(EdgeId::new(3));
        ctx.reset();
        assert!(ctx.trace().is_empty());
    }

    #[test]
    fn reused_context_matches_fresh_context() {
        let ids = [7u32, 11, 13, 7, 500_000];
        let mut fresh = TraceContext::new();
        for id in ids {
            fresh.edge(EdgeId::new(id));
        }

        let mut reused = TraceContext::new();
        // Pollute with an unrelated execution, then reset.
        for id in [1u32, 2, 3, 4] {
            reused.edge(EdgeId::new(id));
        }
        reused.reset();
        for id in ids {
            reused.edge(EdgeId::new(id));
        }

        assert_eq!(fresh.trace().path_id(), reused.trace().path_id());
        assert_eq!(fresh.trace().edges_hit(), reused.trace().edges_hit());
        assert_eq!(fresh.trace().as_bytes(), reused.trace().as_bytes());
    }

    #[test]
    fn path_id_is_independent_of_hit_order() {
        // Two contexts hitting the same slots in different first-hit order
        // must produce the same path id (the dirty list is sorted).
        let mut a = TraceMap::new();
        a.record(10);
        a.record(20);
        let mut b = TraceMap::new();
        b.record(20);
        b.record(10);
        assert_eq!(a.path_id(), b.path_id());
    }

    #[test]
    fn iter_hits_visits_each_dirty_slot_once() {
        let mut trace = TraceMap::new();
        trace.record(42);
        trace.record(42);
        trace.record(7);
        let hits: Vec<(usize, u8)> = trace.iter_hits().collect();
        assert_eq!(hits, vec![(42, 2), (7, 1)]);
    }

    #[test]
    fn clear_zeroes_only_dirty_slots() {
        let mut trace = TraceMap::new();
        trace.record(1);
        trace.record(65_535);
        trace.clear();
        assert!(trace.is_empty());
        assert!(trace.as_bytes().iter().all(|&b| b == 0));
        assert_eq!(trace.iter_hits().count(), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(EdgeId::new(0xab).to_string(), "edge:000000ab");
        assert_eq!(PathId::new(0x1).to_string(), "path:0000000000000001");
    }

    #[test]
    fn sparse_snapshot_matches_trace() {
        let mut ctx = TraceContext::new();
        for id in [900u32, 3, 77, 3, 900, 12] {
            ctx.edge(EdgeId::new(id));
        }
        let trace = ctx.trace();
        let sparse = trace.to_sparse();
        assert_eq!(sparse.edges_hit(), trace.edges_hit());
        assert_eq!(sparse.path_id(), trace.path_id());
        assert!(!sparse.is_empty());
        // Same (slot, count) multiset; the snapshot is sorted by slot.
        let mut from_trace: Vec<(usize, u8)> = trace.iter_hits().collect();
        from_trace.sort_unstable();
        let from_sparse: Vec<(usize, u8)> = sparse.iter_hits().collect();
        assert_eq!(from_sparse, from_trace);
        let slots: Vec<usize> = sparse.iter_hits().map(|(slot, _)| slot).collect();
        assert!(slots.windows(2).all(|w| w[0] < w[1]), "ascending slot order");
    }

    #[test]
    fn snapshot_into_reuses_the_buffer_and_matches_to_sparse() {
        let mut reused = SparseTrace::new();
        for ids in [vec![1u32, 2, 3], vec![900, 3, 77, 3], vec![5]] {
            let mut ctx = TraceContext::new();
            for id in &ids {
                ctx.edge(EdgeId::new(*id));
            }
            ctx.trace().snapshot_into(&mut reused);
            assert_eq!(reused, ctx.trace().to_sparse(), "ids {ids:?}");
            assert_eq!(reused.path_id(), ctx.trace().path_id());
        }
    }

    #[test]
    fn load_sparse_roundtrips_and_replaces_previous_contents() {
        let mut ctx = TraceContext::new();
        for id in [900u32, 3, 77, 3, 12] {
            ctx.edge(EdgeId::new(id));
        }
        let sparse = ctx.trace().to_sparse();
        let mut map = TraceMap::new();
        // Dirty the destination first: load_sparse must fully replace it.
        map.record(5000);
        map.record(1);
        map.load_sparse(&sparse);
        assert_eq!(map.to_sparse(), sparse);
        assert_eq!(map.path_id(), ctx.trace().path_id());
        assert_eq!(map.edges_hit(), ctx.trace().edges_hit());
        // Loading an empty snapshot empties the map.
        map.load_sparse(&SparseTrace::new());
        assert!(map.is_empty());
        assert!(map.as_bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn sparse_copy_from_matches_clone() {
        let mut ctx = TraceContext::new();
        for id in [7u32, 11, 13] {
            ctx.edge(EdgeId::new(id));
        }
        let source = ctx.trace().to_sparse();
        let mut pooled = TraceMap::new().to_sparse();
        pooled.copy_from(&source);
        assert_eq!(pooled, source);
        pooled.copy_from(&SparseTrace::new());
        assert!(pooled.is_empty());
    }

    #[test]
    fn empty_sparse_snapshot() {
        let sparse = TraceMap::new().to_sparse();
        assert!(sparse.is_empty());
        assert_eq!(sparse.edges_hit(), 0);
        assert_eq!(sparse.path_id(), TraceMap::new().path_id());
    }

    #[test]
    fn from_hits_round_trips_iter_hits() {
        let mut ctx = TraceContext::new();
        for id in [900u32, 3, 77, 3, 12, 65_535] {
            ctx.edge(EdgeId::new(id));
        }
        let original = ctx.trace().to_sparse();
        let pairs: Vec<(u16, u8)> = original
            .iter_hits()
            .map(|(slot, count)| (slot as u16, count))
            .collect();
        let rebuilt = SparseTrace::from_hits(pairs);
        assert_eq!(rebuilt, original);
        assert_eq!(rebuilt.path_id(), original.path_id());
        // Unsorted input, zero counts and duplicate slots are normalised.
        let messy = SparseTrace::from_hits([(9, 2), (1, 0), (4, 1), (4, 7), (2, 1)]);
        let hits: Vec<(usize, u8)> = messy.iter_hits().collect();
        assert_eq!(hits, vec![(2, 1), (4, 1), (9, 2)]);
        assert!(SparseTrace::from_hits([]).is_empty());
    }

    #[test]
    fn context_load_sparse_rematerialises_a_finished_execution() {
        let mut recorder = TraceContext::new();
        for id in [41u32, 8, 19, 8] {
            recorder.edge(EdgeId::new(id));
        }
        let sparse = recorder.trace().to_sparse();
        let mut ctx = TraceContext::new();
        ctx.edge(EdgeId::new(5)); // stale state the load must replace
        ctx.load_sparse(&sparse);
        assert_eq!(ctx.trace().to_sparse(), sparse);
        assert_eq!(ctx.trace().path_id(), recorder.trace().path_id());
        // The prev-location register was cleared: a subsequent edge starts
        // the slot chain from zero, exactly like after reset().
        let mut fresh = TraceContext::new();
        fresh.edge(EdgeId::new(123));
        let mut loaded = TraceContext::new();
        loaded.load_sparse(&SparseTrace::new());
        loaded.edge(EdgeId::new(123));
        assert_eq!(loaded.trace().to_sparse(), fresh.trace().to_sparse());
    }
}
