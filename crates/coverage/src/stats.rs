//! Hit-count bucketing and coverage summary statistics.

use std::fmt;

/// AFL-style hit-count buckets.
///
/// Raw hit counts are too fine-grained to use as feedback: looping one more
/// time is rarely interesting. Counts are therefore coarsened into eight
/// buckets; an execution is considered to add coverage when an edge moves
/// into a bucket never observed before.
///
/// ```
/// use peachstar_coverage::{bucket_for, HitBucket};
/// assert_eq!(bucket_for(1), HitBucket::One);
/// assert_eq!(bucket_for(2), HitBucket::Two);
/// assert_eq!(bucket_for(200), HitBucket::Lots);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum HitBucket {
    /// Exactly one hit.
    One = 0,
    /// Exactly two hits.
    Two = 1,
    /// Three hits.
    Three = 2,
    /// Four to seven hits.
    Few = 3,
    /// Eight to fifteen hits.
    Several = 4,
    /// Sixteen to thirty-one hits.
    Many = 5,
    /// Thirty-two to one hundred and twenty-seven hits.
    VeryMany = 6,
    /// One hundred and twenty-eight or more hits.
    Lots = 7,
}

impl HitBucket {
    /// All buckets in ascending order.
    pub const ALL: [HitBucket; 8] = [
        HitBucket::One,
        HitBucket::Two,
        HitBucket::Three,
        HitBucket::Few,
        HitBucket::Several,
        HitBucket::Many,
        HitBucket::VeryMany,
        HitBucket::Lots,
    ];
}

impl fmt::Display for HitBucket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = match self {
            HitBucket::One => "1",
            HitBucket::Two => "2",
            HitBucket::Three => "3",
            HitBucket::Few => "4-7",
            HitBucket::Several => "8-15",
            HitBucket::Many => "16-31",
            HitBucket::VeryMany => "32-127",
            HitBucket::Lots => "128+",
        };
        f.write_str(label)
    }
}

/// Maps a raw hit count to its [`HitBucket`].
///
/// # Panics
///
/// Never panics; a count of zero is mapped to [`HitBucket::One`] (callers
/// only bucket counts of slots that were actually hit).
#[must_use]
pub fn bucket_for(count: u8) -> HitBucket {
    match count {
        0 | 1 => HitBucket::One,
        2 => HitBucket::Two,
        3 => HitBucket::Three,
        4..=7 => HitBucket::Few,
        8..=15 => HitBucket::Several,
        16..=31 => HitBucket::Many,
        32..=127 => HitBucket::VeryMany,
        _ => HitBucket::Lots,
    }
}

/// Point-in-time summary of a [`CoverageMap`](crate::CoverageMap).
///
/// ```
/// use peachstar_coverage::CoverageMap;
/// let stats = CoverageMap::new().stats();
/// assert_eq!(stats.paths_covered, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverageStats {
    /// Distinct covered map slots.
    pub edges_covered: usize,
    /// Distinct execution paths.
    pub paths_covered: usize,
    /// Number of merged executions.
    pub executions: u64,
    /// Fraction of the map that is covered (0.0–1.0).
    pub map_density: f64,
}

impl fmt::Display for CoverageStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "edges={} paths={} execs={} density={:.4}%",
            self.edges_covered,
            self.paths_covered,
            self.executions,
            self.map_density * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone() {
        let mut last = bucket_for(1);
        for count in 2..=255u8 {
            let bucket = bucket_for(count);
            assert!(bucket >= last, "bucket regressed at count {count}");
            last = bucket;
        }
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_for(0), HitBucket::One);
        assert_eq!(bucket_for(3), HitBucket::Three);
        assert_eq!(bucket_for(4), HitBucket::Few);
        assert_eq!(bucket_for(7), HitBucket::Few);
        assert_eq!(bucket_for(8), HitBucket::Several);
        assert_eq!(bucket_for(15), HitBucket::Several);
        assert_eq!(bucket_for(16), HitBucket::Many);
        assert_eq!(bucket_for(31), HitBucket::Many);
        assert_eq!(bucket_for(32), HitBucket::VeryMany);
        assert_eq!(bucket_for(127), HitBucket::VeryMany);
        assert_eq!(bucket_for(128), HitBucket::Lots);
        assert_eq!(bucket_for(255), HitBucket::Lots);
    }

    #[test]
    fn display_labels() {
        assert_eq!(HitBucket::One.to_string(), "1");
        assert_eq!(HitBucket::Lots.to_string(), "128+");
    }

    #[test]
    fn all_contains_every_variant_once() {
        let mut seen = std::collections::HashSet::new();
        for bucket in HitBucket::ALL {
            assert!(seen.insert(bucket as u8));
        }
        assert_eq!(seen.len(), 8);
    }
}
