//! AFL-style edge coverage substrate for the `peachstar` ICS protocol fuzzer.
//!
//! The DAC 2020 Peach\* paper augments a generation-based protocol fuzzer with a
//! coverage feedback loop: lightweight instrumentation is inserted at branch
//! points of the protocol program and records *edge* transitions in a shared
//! bitmap using the classic hash
//!
//! ```text
//! cur_location = <COMPILE_TIME_RANDOM>;
//! shared_mem[cur_location ^ prev_location]++;
//! prev_location = cur_location >> 1;
//! ```
//!
//! In the original system the instrumentation is injected by a `clang` wrapper
//! (an LLVM pass). This crate provides the equivalent in-process substrate for
//! Rust protocol targets: a [`TraceContext`] that targets thread through their
//! parsing code and tick with [`TraceContext::edge`] (or the [`cov_edge!`]
//! macro), a per-execution [`TraceMap`], and a persistent [`CoverageMap`] that
//! accumulates global coverage and answers the question the fuzzer cares
//! about: *did this packet exercise behaviour we have never seen before?*
//!
//! # Example
//!
//! ```
//! use peachstar_coverage::{CoverageMap, TraceContext};
//!
//! // The "target" — a toy parser with two branches.
//! fn parse(input: &[u8], ctx: &mut TraceContext) -> bool {
//!     ctx.edge(0x1001);
//!     if input.first() == Some(&0x2a) {
//!         ctx.edge(0x2002);
//!         true
//!     } else {
//!         ctx.edge(0x3003);
//!         false
//!     }
//! }
//!
//! let mut global = CoverageMap::new();
//!
//! let mut ctx = TraceContext::new();
//! parse(&[0x00], &mut ctx);
//! let first = global.merge(ctx.trace());
//! assert!(first.is_interesting(), "first trace always finds new edges");
//!
//! let mut ctx = TraceContext::new();
//! parse(&[0x00], &mut ctx);
//! let repeat = global.merge(ctx.trace());
//! assert!(!repeat.is_interesting(), "identical trace adds nothing");
//!
//! let mut ctx = TraceContext::new();
//! parse(&[0x2a], &mut ctx);
//! let other = global.merge(ctx.trace());
//! assert!(other.is_interesting(), "the other branch is a new edge");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod map;
mod stats;
mod trace;

pub use map::{CoverageMap, MergeOutcome, MAP_SIZE};
pub use stats::{bucket_for, CoverageStats, HitBucket};
pub use trace::{EdgeId, PathId, SparseTrace, TraceContext, TraceMap};

/// Records an edge on a [`TraceContext`] with a site identifier derived from
/// the source location.
///
/// This macro is the stand-in for the compile-time-random block identifiers
/// that the paper's LLVM pass would insert: the identifier is a hash of the
/// file, line and column of the macro invocation, so every textual call site
/// gets a distinct, stable [`EdgeId`].
///
/// ```
/// use peachstar_coverage::{cov_edge, TraceContext};
///
/// fn decode(b: u8, ctx: &mut TraceContext) -> u8 {
///     cov_edge!(ctx);
///     if b & 0x80 != 0 {
///         cov_edge!(ctx);
///         b & 0x7f
///     } else {
///         cov_edge!(ctx);
///         b
///     }
/// }
///
/// let mut ctx = TraceContext::new();
/// assert_eq!(decode(0x81, &mut ctx), 1);
/// assert_eq!(ctx.trace().edges_hit(), 2);
/// ```
#[macro_export]
macro_rules! cov_edge {
    ($ctx:expr) => {
        $ctx.edge($crate::site_id(file!(), line!(), column!()))
    };
    // Value-discriminated form: stands in for data-dependent dispatch in the
    // original targets (per-zone callbacks, per-type jump tables), where
    // different values of a field reach different basic blocks. The
    // discriminator is folded into the site id so each class is its own edge.
    ($ctx:expr, $discriminator:expr) => {
        $ctx.edge($crate::EdgeId::new(
            $crate::site_id(file!(), line!(), column!()).raw()
                ^ (($discriminator as u32) & 0x3f).rotate_left(10),
        ))
    };
}

/// Derives a stable pseudo-random site identifier from a source location.
///
/// Used by [`cov_edge!`]; exposed so that targets which generate their own
/// instrumentation points (e.g. table-driven parsers) can produce identifiers
/// from strings of their choosing.
///
/// ```
/// let a = peachstar_coverage::site_id("modbus.rs", 10, 5);
/// let b = peachstar_coverage::site_id("modbus.rs", 11, 5);
/// assert_ne!(a, b);
/// ```
#[must_use]
pub fn site_id(file: &str, line: u32, column: u32) -> EdgeId {
    // FNV-1a over the location string pieces; cheap, stable across runs and
    // well distributed over the 16-bit block-id space used by the trace map.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in file
        .as_bytes()
        .iter()
        .copied()
        .chain(line.to_le_bytes())
        .chain(column.to_le_bytes())
    {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    EdgeId::new((hash ^ (hash >> 32)) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_id_is_stable() {
        assert_eq!(site_id("a.rs", 1, 1), site_id("a.rs", 1, 1));
    }

    #[test]
    fn site_id_varies_by_location() {
        let ids = [
            site_id("a.rs", 1, 1),
            site_id("a.rs", 2, 1),
            site_id("a.rs", 1, 2),
            site_id("b.rs", 1, 1),
        ];
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                assert_ne!(ids[i], ids[j], "ids {i} and {j} collide");
            }
        }
    }

    #[test]
    fn macro_usable_in_function_scope() {
        let mut ctx = TraceContext::new();
        cov_edge!(ctx);
        cov_edge!(ctx);
        assert_eq!(ctx.trace().edges_hit(), 2);
    }
}
