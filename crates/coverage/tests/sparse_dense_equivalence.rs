//! Property tests: the sparse dirty-slot trace recording must be observably
//! identical to a dense full-map scan, for arbitrary edge sequences.
//!
//! `TraceMap` keeps the dense 64 KiB byte array *and* a dirty-slot list; the
//! list is purely an acceleration structure. These properties drive the
//! public API through the sparse paths (`iter_hits`, `path_id`, `edges_hit`,
//! `merge`) and recompute every answer from the dense `as_bytes()` view.

use proptest::prelude::*;

use peachstar_coverage::{CoverageMap, EdgeId, TraceContext, TraceMap};

/// Replays an edge-id sequence into a fresh trace map.
fn trace_of(edges: &[u32]) -> TraceMap {
    let mut ctx = TraceContext::new();
    for &edge in edges {
        ctx.edge(EdgeId::new(edge));
    }
    ctx.into_trace()
}

/// Dense reference: `(slot, count)` pairs from a full scan of the bitmap,
/// in ascending slot order.
fn dense_hits(trace: &TraceMap) -> Vec<(usize, u8)> {
    trace
        .as_bytes()
        .iter()
        .enumerate()
        .filter(|(_, &count)| count > 0)
        .map(|(slot, &count)| (slot, count))
        .collect()
}

/// Dense reference for the path hash: FNV-1a over every hit slot (ascending)
/// and its bucketed count — the pre-refactor implementation, recomputed
/// from the dense view.
fn dense_path_id(trace: &TraceMap) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for (slot, count) in dense_hits(trace) {
        let bucket = peachstar_coverage::bucket_for(count) as u8;
        for byte in (slot as u32)
            .to_le_bytes()
            .into_iter()
            .chain(std::iter::once(bucket))
        {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sparse_iter_hits_equals_dense_scan(edges in collection::vec(any::<u32>(), 0..300)) {
        let trace = trace_of(&edges);
        let mut sparse: Vec<(usize, u8)> = trace.iter_hits().collect();
        sparse.sort_unstable();
        prop_assert_eq!(sparse, dense_hits(&trace));
    }

    #[test]
    fn sparse_path_id_equals_dense_reference(edges in collection::vec(any::<u32>(), 0..300)) {
        let trace = trace_of(&edges);
        prop_assert_eq!(trace.path_id().raw(), dense_path_id(&trace));
    }

    #[test]
    fn edges_hit_matches_dense_population_count(edges in collection::vec(any::<u32>(), 0..300)) {
        let trace = trace_of(&edges);
        prop_assert_eq!(trace.edges_hit(), dense_hits(&trace).len());
        prop_assert_eq!(trace.is_empty(), dense_hits(&trace).is_empty());
    }

    #[test]
    fn merge_counts_match_dense_expectations(
        first in collection::vec(any::<u32>(), 0..120),
        second in collection::vec(any::<u32>(), 0..120),
    ) {
        let mut map = CoverageMap::new();
        let outcome = map.merge(&trace_of(&first));
        // First merge: every hit slot is a new edge.
        prop_assert_eq!(outcome.new_edges, dense_hits(&trace_of(&first)).len());

        // Second merge: new edges are exactly the dense-scan slots of the
        // second trace that the first trace never touched.
        let dense_first = dense_hits(&trace_of(&first));
        let second_trace = trace_of(&second);
        let expected_new: usize = dense_hits(&second_trace)
            .iter()
            .filter(|(slot, _)| !dense_first.iter().any(|(seen, _)| seen == slot))
            .count();
        let peeked = map.peek(&second_trace);
        let merged = map.merge(&second_trace);
        prop_assert_eq!(merged.new_edges, expected_new);
        prop_assert_eq!(peeked.new_edges, merged.new_edges);
        prop_assert_eq!(peeked.new_buckets, merged.new_buckets);
        prop_assert_eq!(peeked.path_id, merged.path_id);
    }

    #[test]
    fn reset_restores_the_pristine_state(
        first in collection::vec(any::<u32>(), 1..200),
        second in collection::vec(any::<u32>(), 0..200),
    ) {
        // A context reused via `reset` must behave exactly like a fresh one.
        let mut reused = TraceContext::new();
        for &edge in &first {
            reused.edge(EdgeId::new(edge));
        }
        reused.reset();
        prop_assert!(reused.trace().is_empty());
        prop_assert!(reused.trace().as_bytes().iter().all(|&b| b == 0));

        for &edge in &second {
            reused.edge(EdgeId::new(edge));
        }
        let fresh = trace_of(&second);
        prop_assert_eq!(reused.trace().path_id(), fresh.path_id());
        prop_assert_eq!(reused.trace().as_bytes(), fresh.as_bytes());
    }
}
