//! Campaign statistics: coverage growth series and report summaries.

use std::fmt;

/// One sample of the coverage growth curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesPoint {
    /// Number of executions performed when the sample was taken.
    pub executions: u64,
    /// Distinct execution paths observed so far (the Figure 4 metric).
    pub paths: usize,
    /// Distinct coverage-map edges observed so far.
    pub edges: usize,
    /// Unique faults discovered so far.
    pub faults: usize,
}

/// The path-coverage growth curve of one campaign, sampled at a fixed
/// execution interval — the data behind one line of the paper's Figure 4.
#[derive(Debug, Clone, Default)]
pub struct CoverageSeries {
    points: Vec<SeriesPoint>,
}

impl CoverageSeries {
    /// Creates an empty series.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample.
    pub fn push(&mut self, point: SeriesPoint) {
        self.points.push(point);
    }

    /// The recorded samples in execution order.
    #[must_use]
    pub fn points(&self) -> &[SeriesPoint] {
        &self.points
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when no sample was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Final number of paths (0 when empty).
    #[must_use]
    pub fn final_paths(&self) -> usize {
        self.points.last().map_or(0, |p| p.paths)
    }

    /// Number of executions needed to first reach `paths` distinct paths,
    /// if the series ever did.
    #[must_use]
    pub fn executions_to_reach(&self, paths: usize) -> Option<u64> {
        self.points
            .iter()
            .find(|point| point.paths >= paths)
            .map(|point| point.executions)
    }

    /// Renders the series as CSV with the given column prefix
    /// (`executions,<prefix>_paths,<prefix>_edges,<prefix>_faults`).
    #[must_use]
    pub fn to_csv(&self, prefix: &str) -> String {
        let mut out = format!("executions,{prefix}_paths,{prefix}_edges,{prefix}_faults\n");
        for point in &self.points {
            out.push_str(&format!(
                "{},{},{},{}\n",
                point.executions, point.paths, point.edges, point.faults
            ));
        }
        out
    }

    /// Averages several series point-wise (they must have been sampled at
    /// the same execution interval). Used for the "average of 10
    /// repetitions" curves of Figure 4.
    #[must_use]
    pub fn average(series: &[CoverageSeries]) -> CoverageSeries {
        let Some(first) = series.first() else {
            return CoverageSeries::new();
        };
        let samples = series
            .iter()
            .map(|s| s.points.len())
            .min()
            .unwrap_or(first.points.len());
        let mut averaged = CoverageSeries::new();
        for index in 0..samples {
            let executions = first.points[index].executions;
            let mean = |f: fn(&SeriesPoint) -> usize| -> usize {
                let total: usize = series.iter().map(|s| f(&s.points[index])).sum();
                total / series.len()
            };
            averaged.push(SeriesPoint {
                executions,
                paths: mean(|p| p.paths),
                edges: mean(|p| p.edges),
                faults: mean(|p| p.faults),
            });
        }
        averaged
    }
}

impl fmt::Display for CoverageSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "coverage series: {} samples, final paths {}",
            self.len(),
            self.final_paths()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(executions: u64, paths: usize) -> SeriesPoint {
        SeriesPoint {
            executions,
            paths,
            edges: paths * 2,
            faults: 0,
        }
    }

    #[test]
    fn series_accumulates_points() {
        let mut series = CoverageSeries::new();
        assert!(series.is_empty());
        series.push(point(100, 5));
        series.push(point(200, 9));
        assert_eq!(series.len(), 2);
        assert_eq!(series.final_paths(), 9);
        assert_eq!(series.points()[0].executions, 100);
    }

    #[test]
    fn executions_to_reach_finds_first_crossing() {
        let mut series = CoverageSeries::new();
        series.push(point(100, 5));
        series.push(point(200, 9));
        series.push(point(300, 12));
        assert_eq!(series.executions_to_reach(9), Some(200));
        assert_eq!(series.executions_to_reach(1), Some(100));
        assert_eq!(series.executions_to_reach(100), None);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut series = CoverageSeries::new();
        series.push(point(100, 5));
        let csv = series.to_csv("peach");
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "executions,peach_paths,peach_edges,peach_faults");
        assert_eq!(lines.next().unwrap(), "100,5,10,0");
    }

    #[test]
    fn average_of_repetitions() {
        let mut a = CoverageSeries::new();
        a.push(point(100, 4));
        a.push(point(200, 8));
        let mut b = CoverageSeries::new();
        b.push(point(100, 6));
        b.push(point(200, 10));
        b.push(point(300, 12));
        let mean = CoverageSeries::average(&[a, b]);
        assert_eq!(mean.len(), 2, "truncated to the shortest series");
        assert_eq!(mean.points()[0].paths, 5);
        assert_eq!(mean.points()[1].paths, 9);
        assert!(CoverageSeries::average(&[]).is_empty());
    }
}
