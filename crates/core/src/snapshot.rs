//! Campaign checkpointing: a versioned, self-describing binary snapshot of
//! everything a campaign needs to resume bit-exactly.
//!
//! # What a snapshot holds
//!
//! A campaign's observable behaviour is a deterministic function of its
//! configuration plus five pieces of mutable state, all of which serialise
//! here:
//!
//! * the campaign [`SmallRng`]'s exact stream position (four xoshiro256++
//!   state words);
//! * the global [`CoverageMap`] — per-slot bucket masks, the path-id set
//!   and the execution count;
//! * the [`SeedPool`] of retained valuable seeds;
//! * the monitor's tallies, bug list and sampled series
//!   ([`MonitorState`]);
//! * the schedule's state ([`ScheduleState`]): the session cursor plus the
//!   strategy's state — for Peach\* the whole [`PuzzleCorpus`] (per-rule
//!   donor sets and the dedup/rejection counters) and the queued semantic
//!   batch.
//!
//! Target internals are deliberately *not* serialised: checkpoints are only
//! taken at reset-aligned window boundaries, where the sequential campaign
//! has just wiped the target anyway, so a fresh target at resume is
//! bit-equivalent to the one the interrupted run was holding.
//!
//! # Wire format
//!
//! ```text
//! magic "PEACHSNP" (8 bytes) | version u32 LE
//! sections, each:  tag u8 | byte length u64 LE | payload
//!   1 META      target, strategy, budget, seed, intervals, session/batch/shards shape
//!   2 RNG       4 × u64 xoshiro256++ state words
//!   3 MAP       sorted (slot u32, mask u8) pairs | sorted path ids | executions
//!   4 POOL      valuable seeds (bytes, model, semantic, path, new_edges)
//!   5 MONITOR   series points | bug records | outcome tallies
//!   6 SCHEDULE  session cursor | strategy state (incl. the puzzle corpus)
//!   7 PROGRESS  completed executions (always a window boundary)
//! FNV-1a 64 checksum over everything above, u64 LE
//! ```
//!
//! Every integer is little-endian; byte strings and lists are length- or
//! count-prefixed. Hash-map/-set contents (corpus rules, path ids) are
//! sorted before encoding so the byte stream is canonical: encoding the same
//! state twice produces identical bytes. Decoding validates the magic, the
//! version, every length against the remaining input and the trailing
//! checksum, and returns a typed [`SnapshotError`] — never a panic — on
//! truncated, corrupted or wrong-version input.
//!
//! [`write_atomic`](CampaignSnapshot::write_atomic) writes via a sibling
//! temp file plus `rename`, so a crash mid-write can never leave a torn
//! snapshot at the target path.

use std::collections::HashSet;
use std::fmt;
use std::io;
use std::path::Path;
use std::sync::Arc;

use peachstar_coverage::{CoverageMap, PathId, MAP_SIZE};
use peachstar_datamodel::RuleId;
use peachstar_protocols::{Fault, FaultKind};
use rand::rngs::SmallRng;

use crate::campaign::{BugRecord, CampaignConfig};
use crate::corpus::PuzzleCorpus;
use crate::engine::monitor::MonitorState;
use crate::engine::schedule::ScheduleState;
use crate::engine::{CampaignMonitor, CoverageObserver, NewCoverageFeedback, Schedule};
use crate::seed::{Seed, SeedPool};
use crate::stats::SeriesPoint;
use crate::strategy::{StrategyKind, StrategyState};

/// Magic bytes identifying a campaign snapshot file.
pub const MAGIC: [u8; 8] = *b"PEACHSNP";

/// Current snapshot format version.
pub const VERSION: u32 = 1;

const TAG_META: u8 = 1;
const TAG_RNG: u8 = 2;
const TAG_MAP: u8 = 3;
const TAG_POOL: u8 = 4;
const TAG_MONITOR: u8 = 5;
const TAG_SCHEDULE: u8 = 6;
const TAG_PROGRESS: u8 = 7;

/// Why a snapshot could not be read, decoded or applied.
#[derive(Debug)]
#[non_exhaustive]
pub enum SnapshotError {
    /// Reading or writing the snapshot file failed.
    Io(io::Error),
    /// The input does not start with the snapshot magic bytes.
    BadMagic,
    /// The input declares a format version this build cannot decode.
    UnsupportedVersion(u32),
    /// The input ended before the declared structure was complete.
    Truncated,
    /// The input is structurally invalid (bad checksum, out-of-range value,
    /// malformed field); the message names the offending element.
    Corrupt(&'static str),
    /// The snapshot is valid but belongs to a different campaign
    /// configuration; the message names the mismatched field.
    Mismatch(&'static str),
    /// A checkpoint or stop point was requested at an execution index that
    /// is not a reset-aligned window boundary of this campaign.
    Unaligned(u64),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(err) => write!(f, "snapshot i/o error: {err}"),
            SnapshotError::BadMagic => f.write_str("not a campaign snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(version) => {
                write!(f, "unsupported snapshot version {version}")
            }
            SnapshotError::Truncated => f.write_str("snapshot is truncated"),
            SnapshotError::Corrupt(what) => write!(f, "snapshot is corrupt: {what}"),
            SnapshotError::Mismatch(what) => {
                write!(f, "snapshot does not match this campaign: {what}")
            }
            SnapshotError::Unaligned(execution) => {
                write!(f, "execution {execution} is not a window boundary")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(err: io::Error) -> Self {
        SnapshotError::Io(err)
    }
}

/// The configuration fingerprint stored in a snapshot, validated on resume
/// so state captured under one campaign shape can never silently drive a
/// different one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Name of the fuzzed target.
    pub target: String,
    /// Which fuzzer the campaign runs.
    pub strategy: StrategyKind,
    /// Total execution budget.
    pub executions: u64,
    /// The campaign RNG seed.
    pub rng_seed: u64,
    /// Series sampling interval.
    pub sample_interval: u64,
    /// Target reset interval (ignored under sessions, still fingerprinted).
    pub reset_interval: u64,
    /// Session shape when session campaigns are active: payload packets per
    /// session plus the phase-mask bits (1 = handshake, 2 = payload,
    /// 4 = teardown).
    pub session: Option<(u64, u8)>,
    /// Batched-window size when batching is active.
    pub batch: Option<u64>,
    /// Merge-barrier width (windows per round) for sharded campaigns.
    pub sync_windows: Option<u64>,
}

impl SnapshotMeta {
    /// The fingerprint of a (sequential) campaign configuration.
    ///
    /// Operational knobs — `exec_timeout`, `summary_only`, `transport`, the
    /// worker/connection count, the `reconnect` policy, server-side
    /// `wire_chaos` injection, and the service flags (`--control`,
    /// `--keep-checkpoints`) — are deliberately excluded: they never change
    /// the report, so a checkpoint resumes across any of them (a
    /// TCP-recorded checkpoint resumes in-process bit-exactly, and a
    /// chaos-recorded one resumes on a healthy wire).
    #[must_use]
    pub fn for_campaign(target: &str, config: &CampaignConfig) -> Self {
        Self {
            target: target.to_string(),
            strategy: config.strategy,
            executions: config.executions,
            rng_seed: config.rng_seed,
            sample_interval: config.sample_interval,
            reset_interval: config.reset_interval,
            session: config.session.map(|session| {
                let mask = u8::from(session.mutate.handshake)
                    | u8::from(session.mutate.payload) << 1
                    | u8::from(session.mutate.teardown) << 2;
                (session.payload_packets, mask)
            }),
            batch: config.batch,
            sync_windows: None,
        }
    }

    /// Marks the fingerprint as belonging to a sharded campaign with the
    /// given merge-barrier width.
    #[must_use]
    pub fn sharded(mut self, sync_windows: u64) -> Self {
        self.sync_windows = Some(sync_windows);
        self
    }

    /// Checks that `self` (from a snapshot) matches the fingerprint of the
    /// campaign about to resume, naming the first mismatched field.
    pub fn ensure_matches(&self, current: &SnapshotMeta) -> Result<(), SnapshotError> {
        if self.target != current.target {
            return Err(SnapshotError::Mismatch("target"));
        }
        if self.strategy != current.strategy {
            return Err(SnapshotError::Mismatch("strategy"));
        }
        if self.executions != current.executions {
            return Err(SnapshotError::Mismatch("executions"));
        }
        if self.rng_seed != current.rng_seed {
            return Err(SnapshotError::Mismatch("rng_seed"));
        }
        if self.sample_interval != current.sample_interval {
            return Err(SnapshotError::Mismatch("sample_interval"));
        }
        if self.reset_interval != current.reset_interval {
            return Err(SnapshotError::Mismatch("reset_interval"));
        }
        if self.session != current.session {
            return Err(SnapshotError::Mismatch("session"));
        }
        if self.batch != current.batch {
            return Err(SnapshotError::Mismatch("batch"));
        }
        if self.sync_windows != current.sync_windows {
            return Err(SnapshotError::Mismatch("sync_windows"));
        }
        Ok(())
    }
}

/// A complete, resumable campaign checkpoint.
#[derive(Debug, Clone)]
pub struct CampaignSnapshot {
    /// Configuration fingerprint, validated on resume.
    pub meta: SnapshotMeta,
    /// Executions completed so far — always a reset-aligned window boundary.
    pub completed: u64,
    /// The campaign RNG's exact stream position.
    pub rng_state: [u64; 4],
    /// The global coverage map.
    pub map: CoverageMap,
    /// The retained valuable seeds.
    pub pool: SeedPool,
    /// The monitor's tallies, bugs and series.
    pub monitor: MonitorState,
    /// The schedule's cursor and strategy state (including the corpus).
    pub schedule: ScheduleState,
}

impl CampaignSnapshot {
    /// Captures a checkpoint from the live engine seams.
    #[must_use]
    pub fn capture<S: Schedule>(
        meta: SnapshotMeta,
        completed: u64,
        rng: &SmallRng,
        observer: &CoverageObserver,
        feedback: &NewCoverageFeedback,
        monitor: &CampaignMonitor,
        schedule: &S,
    ) -> Self {
        Self {
            meta,
            completed,
            rng_state: rng.state(),
            map: observer.map().clone(),
            pool: feedback.pool().clone(),
            monitor: monitor.snapshot_state(),
            schedule: schedule.snapshot_state(),
        }
    }

    /// Restores this checkpoint into freshly assembled engine seams,
    /// validating that the schedule accepts the strategy state.
    pub fn restore_into<S: Schedule>(
        &self,
        rng: &mut SmallRng,
        observer: &mut CoverageObserver,
        feedback: &mut NewCoverageFeedback,
        monitor: &mut CampaignMonitor,
        schedule: &mut S,
    ) -> Result<(), SnapshotError> {
        if !schedule.restore_state(self.schedule.clone()) {
            return Err(SnapshotError::Mismatch("strategy state"));
        }
        *rng = SmallRng::from_state(self.rng_state);
        observer.restore_map(self.map.clone());
        feedback.restore_pool(self.pool.clone());
        monitor.restore_state(self.monitor.clone());
        Ok(())
    }

    /// Encodes the snapshot into the versioned wire format.
    ///
    /// The encoding is canonical: the same state always produces the same
    /// bytes, so snapshot files can be compared directly.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        put_u32(&mut out, VERSION);
        put_section(&mut out, TAG_META, |buf| encode_meta(buf, &self.meta));
        put_section(&mut out, TAG_RNG, |buf| {
            for word in self.rng_state {
                put_u64(buf, word);
            }
        });
        put_section(&mut out, TAG_MAP, |buf| encode_map(buf, &self.map));
        put_section(&mut out, TAG_POOL, |buf| encode_pool(buf, &self.pool));
        put_section(&mut out, TAG_MONITOR, |buf| {
            encode_monitor(buf, &self.monitor);
        });
        put_section(&mut out, TAG_SCHEDULE, |buf| {
            encode_schedule(buf, &self.schedule);
        });
        put_section(&mut out, TAG_PROGRESS, |buf| put_u64(buf, self.completed));
        let checksum = fnv1a(&out);
        put_u64(&mut out, checksum);
        out
    }

    /// Decodes a snapshot from the wire format.
    pub fn decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < MAGIC.len() + 4 + 8 {
            if bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] != MAGIC {
                return Err(SnapshotError::BadMagic);
            }
            return Err(SnapshotError::Truncated);
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
        if fnv1a(body) != stored {
            return Err(SnapshotError::Corrupt("checksum"));
        }
        let mut reader = Reader::new(&body[MAGIC.len()..]);
        let version = reader.u32()?;
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let meta = read_section(&mut reader, TAG_META, decode_meta)?;
        let rng_state = read_section(&mut reader, TAG_RNG, |r| {
            Ok([r.u64()?, r.u64()?, r.u64()?, r.u64()?])
        })?;
        let map = read_section(&mut reader, TAG_MAP, decode_map)?;
        let pool = read_section(&mut reader, TAG_POOL, decode_pool)?;
        let monitor = read_section(&mut reader, TAG_MONITOR, decode_monitor)?;
        let schedule = read_section(&mut reader, TAG_SCHEDULE, decode_schedule)?;
        let completed = read_section(&mut reader, TAG_PROGRESS, Reader::u64)?;
        if !reader.is_empty() {
            return Err(SnapshotError::Corrupt("trailing bytes"));
        }
        Ok(Self {
            meta,
            completed,
            rng_state,
            map,
            pool,
            monitor,
            schedule,
        })
    }

    /// Writes the snapshot to `path` atomically: the bytes go to a sibling
    /// `.tmp` file first and are renamed into place, so a crash mid-write
    /// can never leave a torn snapshot at `path`. A failed write removes
    /// its own temp file (best-effort); temps orphaned by a hard kill are
    /// swept by [`CheckpointConfig::prepare`] at the next startup.
    pub fn write_atomic(&self, path: &Path) -> Result<(), SnapshotError> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        let result = std::fs::write(&tmp, self.encode())
            .and_then(|()| std::fs::rename(&tmp, path));
        if result.is_err() {
            std::fs::remove_file(&tmp).ok();
        }
        result.map_err(SnapshotError::from)
    }

    /// Reads and decodes a snapshot file.
    pub fn read_from(path: &Path) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path)?;
        Self::decode(&bytes)
    }

    /// Scans a rotation directory newest-first and restores the newest
    /// snapshot that still decodes, skipping truncated / bit-flipped /
    /// wrong-magic files (the trailing checksum rejects them). Returns
    /// `Ok(None)` when the directory is missing, empty, or holds no valid
    /// snapshot — the caller starts fresh.
    ///
    /// # Errors
    ///
    /// Propagates directory-listing failures other than "not found".
    pub fn resume_latest(dir: &Path) -> Result<Option<Self>, SnapshotError> {
        let entries = match std::fs::read_dir(dir) {
            Ok(entries) => entries,
            Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(err) => return Err(SnapshotError::Io(err)),
        };
        let mut slots: Vec<(u64, std::path::PathBuf)> = Vec::new();
        for entry in entries.flatten() {
            let path = entry.path();
            if let Some(completed) = rotation_slot(&path) {
                slots.push((completed, path));
            }
        }
        slots.sort_unstable_by_key(|slot| std::cmp::Reverse(slot.0));
        for (_, path) in slots {
            if let Ok(snapshot) = Self::read_from(&path) {
                return Ok(Some(snapshot));
            }
        }
        Ok(None)
    }
}

/// The completed-execution index a rotation file name encodes, when `path`
/// names one (`ckpt-<completed>.peachsnp`).
fn rotation_slot(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    name.strip_prefix("ckpt-")?
        .strip_suffix(".peachsnp")?
        .parse()
        .ok()
}

// ---------------------------------------------------------------------------
// Primitive writers.

pub(crate) fn put_u8(buf: &mut Vec<u8>, value: u8) {
    buf.push(value);
}

pub(crate) fn put_u32(buf: &mut Vec<u8>, value: u32) {
    buf.extend_from_slice(&value.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, value: u64) {
    buf.extend_from_slice(&value.to_le_bytes());
}

pub(crate) fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(buf, bytes.len() as u64);
    buf.extend_from_slice(bytes);
}

pub(crate) fn put_str(buf: &mut Vec<u8>, text: &str) {
    put_bytes(buf, text.as_bytes());
}

pub(crate) fn put_section(out: &mut Vec<u8>, tag: u8, fill: impl FnOnce(&mut Vec<u8>)) {
    let mut payload = Vec::new();
    fill(&mut payload);
    put_u8(out, tag);
    put_bytes(out, &payload);
}

/// FNV-1a 64-bit over `bytes` — the corruption detector appended to every
/// snapshot (not a cryptographic integrity guarantee).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Primitive reader with truncation guards.

pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Self { bytes }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    fn take(&mut self, count: usize) -> Result<&'a [u8], SnapshotError> {
        if count > self.bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        let (taken, rest) = self.bytes.split_at(count);
        self.bytes = rest;
        Ok(taken)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// A length-prefixed byte string; the declared length is validated
    /// against the remaining input before anything is allocated, so corrupt
    /// lengths fail cleanly instead of attempting huge allocations.
    pub(crate) fn bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let len = self.u64()?;
        let len = usize::try_from(len).map_err(|_| SnapshotError::Corrupt("length"))?;
        self.take(len)
    }

    pub(crate) fn string(&mut self) -> Result<String, SnapshotError> {
        let bytes = self.bytes()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::Corrupt("utf-8 string"))
    }

    /// An element count for a list whose elements occupy at least
    /// `min_element_bytes` each — bounded by the remaining input, so a
    /// corrupt count cannot drive unbounded loops or allocations.
    pub(crate) fn count(&mut self, min_element_bytes: usize) -> Result<usize, SnapshotError> {
        let count = self.u64()?;
        let count = usize::try_from(count).map_err(|_| SnapshotError::Corrupt("count"))?;
        if count.saturating_mul(min_element_bytes.max(1)) > self.bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        Ok(count)
    }
}

pub(crate) fn read_section<'a, T>(
    reader: &mut Reader<'a>,
    expected_tag: u8,
    parse: impl FnOnce(&mut Reader<'a>) -> Result<T, SnapshotError>,
) -> Result<T, SnapshotError> {
    let tag = reader.u8()?;
    if tag != expected_tag {
        return Err(SnapshotError::Corrupt("section tag"));
    }
    let payload = reader.bytes()?;
    let mut section = Reader::new(payload);
    let value = parse(&mut section)?;
    if !section.is_empty() {
        return Err(SnapshotError::Corrupt("section length"));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Section codecs.

pub(crate) fn strategy_tag(kind: StrategyKind) -> u8 {
    match kind {
        StrategyKind::Peach => 0,
        StrategyKind::PeachStar => 1,
    }
}

pub(crate) fn strategy_from_tag(tag: u8) -> Result<StrategyKind, SnapshotError> {
    match tag {
        0 => Ok(StrategyKind::Peach),
        1 => Ok(StrategyKind::PeachStar),
        _ => Err(SnapshotError::Corrupt("strategy kind")),
    }
}

pub(crate) fn put_option_u64(buf: &mut Vec<u8>, value: Option<u64>) {
    match value {
        Some(value) => {
            put_u8(buf, 1);
            put_u64(buf, value);
        }
        None => put_u8(buf, 0),
    }
}

pub(crate) fn read_option_u64(reader: &mut Reader<'_>) -> Result<Option<u64>, SnapshotError> {
    match reader.u8()? {
        0 => Ok(None),
        1 => Ok(Some(reader.u64()?)),
        _ => Err(SnapshotError::Corrupt("option flag")),
    }
}

fn encode_meta(buf: &mut Vec<u8>, meta: &SnapshotMeta) {
    put_str(buf, &meta.target);
    put_u8(buf, strategy_tag(meta.strategy));
    put_u64(buf, meta.executions);
    put_u64(buf, meta.rng_seed);
    put_u64(buf, meta.sample_interval);
    put_u64(buf, meta.reset_interval);
    match meta.session {
        Some((payload_packets, mask)) => {
            put_u8(buf, 1);
            put_u64(buf, payload_packets);
            put_u8(buf, mask);
        }
        None => put_u8(buf, 0),
    }
    put_option_u64(buf, meta.batch);
    put_option_u64(buf, meta.sync_windows);
}

fn decode_meta(reader: &mut Reader<'_>) -> Result<SnapshotMeta, SnapshotError> {
    let target = reader.string()?;
    let strategy = strategy_from_tag(reader.u8()?)?;
    let executions = reader.u64()?;
    let rng_seed = reader.u64()?;
    let sample_interval = reader.u64()?;
    let reset_interval = reader.u64()?;
    let session = match reader.u8()? {
        0 => None,
        1 => Some((reader.u64()?, reader.u8()?)),
        _ => return Err(SnapshotError::Corrupt("session flag")),
    };
    let batch = read_option_u64(reader)?;
    let sync_windows = read_option_u64(reader)?;
    Ok(SnapshotMeta {
        target,
        strategy,
        executions,
        rng_seed,
        sample_interval,
        reset_interval,
        session,
        batch,
        sync_windows,
    })
}

fn encode_map(buf: &mut Vec<u8>, map: &CoverageMap) {
    let slots: Vec<(usize, u8)> = map.covered_slots().collect();
    put_u64(buf, slots.len() as u64);
    for (slot, mask) in slots {
        put_u32(buf, slot as u32);
        put_u8(buf, mask);
    }
    let mut paths: Vec<u64> = map.path_ids().map(PathId::raw).collect();
    paths.sort_unstable();
    put_u64(buf, paths.len() as u64);
    for path in paths {
        put_u64(buf, path);
    }
    put_u64(buf, map.executions());
}

fn decode_map(reader: &mut Reader<'_>) -> Result<CoverageMap, SnapshotError> {
    let slot_count = reader.count(5)?;
    let mut slots = Vec::new();
    for _ in 0..slot_count {
        let slot = reader.u32()? as usize;
        let mask = reader.u8()?;
        if slot >= MAP_SIZE {
            return Err(SnapshotError::Corrupt("coverage slot"));
        }
        if mask == 0 {
            return Err(SnapshotError::Corrupt("empty bucket mask"));
        }
        slots.push((slot, mask));
    }
    let path_count = reader.count(8)?;
    let mut paths = Vec::new();
    for _ in 0..path_count {
        paths.push(PathId::new(reader.u64()?));
    }
    let executions = reader.u64()?;
    Ok(CoverageMap::from_parts(slots, paths, executions))
}

fn encode_seed(buf: &mut Vec<u8>, seed: &Seed) {
    put_bytes(buf, &seed.bytes);
    put_str(buf, &seed.model);
    put_u8(buf, u8::from(seed.semantic));
}

fn decode_seed(reader: &mut Reader<'_>) -> Result<Seed, SnapshotError> {
    let bytes = reader.bytes()?.to_vec();
    let model = reader.string()?;
    let semantic = match reader.u8()? {
        0 => false,
        1 => true,
        _ => return Err(SnapshotError::Corrupt("semantic flag")),
    };
    Ok(Seed {
        bytes,
        model,
        semantic,
    })
}

fn encode_pool(buf: &mut Vec<u8>, pool: &SeedPool) {
    put_u64(buf, pool.len() as u64);
    for valuable in pool.iter() {
        encode_seed(buf, &valuable.seed);
        put_u64(buf, valuable.path.raw());
        put_u64(buf, valuable.new_edges as u64);
    }
}

fn decode_pool(reader: &mut Reader<'_>) -> Result<SeedPool, SnapshotError> {
    let count = reader.count(8)?;
    let mut pool = SeedPool::new();
    for _ in 0..count {
        let seed = decode_seed(reader)?;
        let path = PathId::new(reader.u64()?);
        let new_edges = usize::try_from(reader.u64()?)
            .map_err(|_| SnapshotError::Corrupt("new_edges count"))?;
        pool.push(seed, path, new_edges);
    }
    Ok(pool)
}

pub(crate) fn fault_kind_tag(kind: FaultKind) -> u8 {
    match kind {
        FaultKind::Segv => 0,
        FaultKind::HeapUseAfterFree => 1,
        FaultKind::HeapBufferOverflow => 2,
        FaultKind::Hang => 3,
        FaultKind::Panic => 4,
    }
}

pub(crate) fn fault_kind_from_tag(tag: u8) -> Result<FaultKind, SnapshotError> {
    match tag {
        0 => Ok(FaultKind::Segv),
        1 => Ok(FaultKind::HeapUseAfterFree),
        2 => Ok(FaultKind::HeapBufferOverflow),
        3 => Ok(FaultKind::Hang),
        4 => Ok(FaultKind::Panic),
        _ => Err(SnapshotError::Corrupt("fault kind")),
    }
}

// Decoded fault sites (runtime strings) are interned into `&'static str`
// via `peachstar_protocols::intern_site` — the same table the panic
// containment layer uses, so a site round-tripped through a snapshot stays
// pointer-identical to a freshly contained one.
use peachstar_protocols::intern_site;

fn encode_monitor(buf: &mut Vec<u8>, monitor: &MonitorState) {
    put_u64(buf, monitor.series.len() as u64);
    for point in &monitor.series {
        put_u64(buf, point.executions);
        put_u64(buf, point.paths as u64);
        put_u64(buf, point.edges as u64);
        put_u64(buf, point.faults as u64);
    }
    put_u64(buf, monitor.bugs.len() as u64);
    for bug in &monitor.bugs {
        put_u8(buf, fault_kind_tag(bug.fault.kind));
        put_str(buf, bug.fault.site);
        put_u64(buf, bug.first_execution);
        put_bytes(buf, &bug.packet);
        put_str(buf, &bug.model);
    }
    put_u64(buf, monitor.responses);
    put_u64(buf, monitor.protocol_errors);
    put_u64(buf, monitor.fault_hits);
}

fn decode_monitor(reader: &mut Reader<'_>) -> Result<MonitorState, SnapshotError> {
    let series_count = reader.count(32)?;
    let mut series = Vec::new();
    for _ in 0..series_count {
        let executions = reader.u64()?;
        let paths = usize::try_from(reader.u64()?)
            .map_err(|_| SnapshotError::Corrupt("series paths"))?;
        let edges = usize::try_from(reader.u64()?)
            .map_err(|_| SnapshotError::Corrupt("series edges"))?;
        let faults = usize::try_from(reader.u64()?)
            .map_err(|_| SnapshotError::Corrupt("series faults"))?;
        series.push(SeriesPoint {
            executions,
            paths,
            edges,
            faults,
        });
    }
    let bug_count = reader.count(8)?;
    let mut bugs = Vec::new();
    let mut seen_sites = HashSet::new();
    for _ in 0..bug_count {
        let kind = fault_kind_from_tag(reader.u8()?)?;
        let site = reader.string()?;
        let first_execution = reader.u64()?;
        let packet = reader.bytes()?.to_vec();
        let model = reader.string()?;
        let site = intern_site(&site);
        if !seen_sites.insert(site) {
            return Err(SnapshotError::Corrupt("duplicate bug site"));
        }
        bugs.push(BugRecord {
            fault: Fault::new(kind, site),
            first_execution,
            packet,
            model,
        });
    }
    let responses = reader.u64()?;
    let protocol_errors = reader.u64()?;
    let fault_hits = reader.u64()?;
    Ok(MonitorState {
        series,
        bugs,
        responses,
        protocol_errors,
        fault_hits,
    })
}

fn encode_corpus(buf: &mut Vec<u8>, corpus: &PuzzleCorpus) {
    put_u64(buf, corpus.capacity_per_rule() as u64);
    let mut rules: Vec<(RuleId, &[Arc<[u8]>])> = corpus.iter_rules().collect();
    rules.sort_unstable_by_key(|(rule, _)| rule.raw());
    put_u64(buf, rules.len() as u64);
    for (rule, donors) in rules {
        put_u64(buf, rule.raw());
        put_u64(buf, donors.len() as u64);
        for donor in donors {
            put_bytes(buf, donor);
        }
    }
    put_u64(buf, corpus.inserted());
    put_u64(buf, corpus.rejected_duplicates());
}

fn decode_corpus(reader: &mut Reader<'_>) -> Result<PuzzleCorpus, SnapshotError> {
    let capacity = reader.u64()?;
    let capacity = usize::try_from(capacity)
        .ok()
        .filter(|&capacity| capacity > 0)
        .ok_or(SnapshotError::Corrupt("corpus capacity"))?;
    let rule_count = reader.count(16)?;
    let mut entries = Vec::new();
    for _ in 0..rule_count {
        let rule = RuleId::from_raw(reader.u64()?);
        let donor_count = reader.count(8)?;
        let mut donors: Vec<Arc<[u8]>> = Vec::new();
        for _ in 0..donor_count {
            donors.push(Arc::from(reader.bytes()?));
        }
        if donors.len() > capacity {
            return Err(SnapshotError::Corrupt("rule over capacity"));
        }
        entries.push((rule, donors));
    }
    let inserted = reader.u64()?;
    let rejected_duplicates = reader.u64()?;
    Ok(PuzzleCorpus::from_snapshot_parts(
        capacity,
        entries,
        inserted,
        rejected_duplicates,
    ))
}

fn encode_schedule(buf: &mut Vec<u8>, state: &ScheduleState) {
    put_u64(buf, state.cursor);
    match &state.strategy {
        StrategyState::Stateless => put_u8(buf, 0),
        StrategyState::Peach { generated } => {
            put_u8(buf, 1);
            put_u64(buf, *generated);
        }
        StrategyState::PeachStar {
            corpus,
            queue,
            semantic_generated,
            random_generated,
        } => {
            put_u8(buf, 2);
            encode_corpus(buf, corpus);
            put_u64(buf, queue.len() as u64);
            for seed in queue {
                encode_seed(buf, seed);
            }
            put_u64(buf, *semantic_generated);
            put_u64(buf, *random_generated);
        }
    }
}

fn decode_schedule(reader: &mut Reader<'_>) -> Result<ScheduleState, SnapshotError> {
    let cursor = reader.u64()?;
    let strategy = match reader.u8()? {
        0 => StrategyState::Stateless,
        1 => StrategyState::Peach {
            generated: reader.u64()?,
        },
        2 => {
            let corpus = decode_corpus(reader)?;
            let queue_count = reader.count(17)?;
            let mut queue = Vec::new();
            for _ in 0..queue_count {
                queue.push(decode_seed(reader)?);
            }
            let semantic_generated = reader.u64()?;
            let random_generated = reader.u64()?;
            StrategyState::PeachStar {
                corpus,
                queue,
                semantic_generated,
                random_generated,
            }
        }
        _ => return Err(SnapshotError::Corrupt("strategy state")),
    };
    Ok(ScheduleState { cursor, strategy })
}

/// Where (and how often) a campaign writes checkpoints.
///
/// Two layouts:
///
/// * **single file** (`keep == None`): every checkpoint atomically replaces
///   `path` — the classic `--checkpoint run.snap` shape;
/// * **rotation** (`keep == Some(k)`): `path` is a directory; each
///   checkpoint lands as `ckpt-<completed>.peachsnp` (atomic temp + rename)
///   and the oldest slots beyond `k` are pruned, so a service always holds
///   its last `k` good boundaries and
///   [`CampaignSnapshot::resume_latest`] can recover from any prefix of
///   torn ones.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Snapshot file path (or rotation directory when `keep` is set).
    pub path: std::path::PathBuf,
    /// Write a checkpoint every this many completed windows (clamped to at
    /// least 1). A final checkpoint is always written when the budget
    /// completes, whatever the cadence.
    pub every_windows: u64,
    /// Rotation depth: keep this many newest snapshots in the `path`
    /// directory (`None` = the single-file layout).
    pub keep: Option<usize>,
}

impl CheckpointConfig {
    /// Checkpoints to `path` every `every_windows` windows.
    #[must_use]
    pub fn new(path: impl Into<std::path::PathBuf>, every_windows: u64) -> Self {
        Self {
            path: path.into(),
            every_windows: every_windows.max(1),
            keep: None,
        }
    }

    /// Switches to the rotation layout: `path` becomes a directory holding
    /// the `keep` newest snapshots (clamped to at least 1).
    #[must_use]
    pub fn rotation(mut self, keep: usize) -> Self {
        self.keep = Some(keep.max(1));
        self
    }

    /// Startup hygiene, run once before a campaign writes its first
    /// checkpoint: creates the rotation directory and sweeps `*.tmp` files
    /// orphaned beside the checkpoint path by a previous hard kill
    /// mid-write.
    ///
    /// # Errors
    ///
    /// Propagates rotation-directory creation failures; temp removal is
    /// best-effort.
    pub fn prepare(&self) -> Result<(), SnapshotError> {
        let dir = if self.keep.is_some() {
            std::fs::create_dir_all(&self.path)?;
            self.path.as_path()
        } else {
            self.path.parent().filter(|p| !p.as_os_str().is_empty()).unwrap_or(Path::new("."))
        };
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                let path = entry.path();
                if path.extension().is_some_and(|ext| ext == "tmp") {
                    std::fs::remove_file(&path).ok();
                }
            }
        }
        Ok(())
    }

    /// Persists one checkpoint: atomically replaces the single file, or
    /// writes the rotation slot for `snapshot.completed` and prunes slots
    /// beyond the rotation depth.
    ///
    /// # Errors
    ///
    /// Propagates snapshot write failures; pruning is best-effort.
    pub fn store(&self, snapshot: &CampaignSnapshot) -> Result<(), SnapshotError> {
        let Some(keep) = self.keep else {
            return snapshot.write_atomic(&self.path);
        };
        let slot = self.path.join(format!("ckpt-{:012}.peachsnp", snapshot.completed));
        snapshot.write_atomic(&slot)?;
        let mut slots: Vec<(u64, std::path::PathBuf)> = Vec::new();
        if let Ok(entries) = std::fs::read_dir(&self.path) {
            for entry in entries.flatten() {
                let path = entry.path();
                if let Some(completed) = rotation_slot(&path) {
                    slots.push((completed, path));
                }
            }
        }
        slots.sort_unstable_by_key(|slot| std::cmp::Reverse(slot.0));
        for (_, stale) in slots.into_iter().skip(keep) {
            std::fs::remove_file(&stale).ok();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::SeriesPoint;

    fn sample_meta() -> SnapshotMeta {
        SnapshotMeta {
            target: "libmodbus".into(),
            strategy: StrategyKind::PeachStar,
            executions: 3_000,
            rng_seed: 3,
            sample_interval: 200,
            reset_interval: 250,
            session: Some((4, 0b010)),
            batch: Some(64),
            sync_windows: None,
        }
    }

    fn sample_snapshot() -> CampaignSnapshot {
        let mut corpus = PuzzleCorpus::with_capacity_per_rule(4);
        corpus.insert(peachstar_datamodel::Puzzle::new(
            RuleId::from_raw(7),
            "field",
            vec![0xBE, 0xEF],
        ));
        let mut pool = SeedPool::new();
        pool.push(Seed::new(vec![1, 2, 3], "echo", true), PathId::new(11), 2);
        let map = CoverageMap::from_parts(
            vec![(3, 0b1), (70_000 % MAP_SIZE, 0b101)],
            vec![PathId::new(11), PathId::new(4)],
            123,
        );
        CampaignSnapshot {
            meta: sample_meta(),
            completed: 250,
            rng_state: [1, 2, 3, 4],
            map,
            pool,
            monitor: MonitorState {
                series: vec![SeriesPoint {
                    executions: 200,
                    paths: 5,
                    edges: 9,
                    faults: 1,
                }],
                bugs: vec![BugRecord {
                    fault: Fault::new(FaultKind::Segv, "modbus.c:fc8"),
                    first_execution: 77,
                    packet: vec![9, 9],
                    model: "echo".into(),
                }],
                responses: 100,
                protocol_errors: 99,
                fault_hits: 1,
            },
            schedule: ScheduleState {
                cursor: 0,
                strategy: StrategyState::PeachStar {
                    corpus,
                    queue: vec![Seed::new(vec![4], "echo", true)],
                    semantic_generated: 10,
                    random_generated: 240,
                },
            },
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let snapshot = sample_snapshot();
        let bytes = snapshot.encode();
        let decoded = CampaignSnapshot::decode(&bytes).expect("decodes");
        assert_eq!(decoded.meta, snapshot.meta);
        assert_eq!(decoded.completed, snapshot.completed);
        assert_eq!(decoded.rng_state, snapshot.rng_state);
        assert_eq!(decoded.monitor, snapshot.monitor);
        assert_eq!(decoded.schedule, snapshot.schedule);
        assert_eq!(decoded.pool.seeds(), snapshot.pool.seeds());
        assert_eq!(decoded.pool.total_bytes(), snapshot.pool.total_bytes());
        // Canonical: re-encoding the decoded snapshot reproduces the bytes.
        assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn decode_rejects_bad_magic() {
        let mut bytes = sample_snapshot().encode();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            CampaignSnapshot::decode(&bytes),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn decode_rejects_unsupported_version() {
        let mut bytes = sample_snapshot().encode();
        // Bump the version field, then re-stamp the checksum so the version
        // check (not the checksum) is what fires.
        bytes[8] = 0xFF;
        let body_len = bytes.len() - 8;
        let checksum = fnv1a(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&checksum);
        assert!(matches!(
            CampaignSnapshot::decode(&bytes),
            Err(SnapshotError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn decode_rejects_corruption_and_truncation_without_panicking() {
        let bytes = sample_snapshot().encode();
        for len in 0..bytes.len() {
            assert!(
                CampaignSnapshot::decode(&bytes[..len]).is_err(),
                "truncation at {len} must error"
            );
        }
        for index in 0..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[index] ^= 0x5A;
            assert!(
                CampaignSnapshot::decode(&corrupted).is_err(),
                "corruption at byte {index} must error"
            );
        }
    }

    #[test]
    fn meta_mismatch_names_the_field() {
        let meta = sample_meta();
        let mut other = meta.clone();
        other.rng_seed += 1;
        match meta.ensure_matches(&other) {
            Err(SnapshotError::Mismatch(field)) => assert_eq!(field, "rng_seed"),
            other => panic!("expected mismatch, got {other:?}"),
        }
        assert!(meta.ensure_matches(&meta.clone()).is_ok());
    }

    #[test]
    fn operational_knobs_stay_out_of_the_fingerprint() {
        // Service and transport-recovery flags must never fence a resume:
        // configs differing only in reconnect schedule, wire chaos, exec
        // timeout, summary mode or transport fingerprint identically (the
        // rotation depth and `--control` address never even reach the
        // config).
        use crate::campaign::{CampaignConfig, ReconnectPolicy, TransportMode};
        use crate::strategy::StrategyKind;
        let base = CampaignConfig::new(StrategyKind::PeachStar)
            .executions(2_000)
            .rng_seed(9);
        let baseline = SnapshotMeta::for_campaign("libmodbus", &base);
        let variants = [
            base.reconnect(ReconnectPolicy::none()),
            base.reconnect(ReconnectPolicy::immediate(7)),
            base.wire_chaos(peachstar_protocols::WireChaos::drop_every(5).reject_after_drop(3)),
            base.transport(TransportMode::FramedTcp),
            base.exec_timeout_ms(50),
            base.summary_only(),
        ];
        for (index, variant) in variants.iter().enumerate() {
            let meta = SnapshotMeta::for_campaign("libmodbus", variant);
            assert_eq!(
                meta, baseline,
                "variant {index} must fingerprint identically"
            );
            assert!(baseline.ensure_matches(&meta).is_ok());
        }
        // Sanity: a knob that IS campaign semantics still fences.
        let different = SnapshotMeta::for_campaign("libmodbus", &base.executions(2_001));
        assert!(baseline.ensure_matches(&different).is_err());
    }

    #[test]
    fn atomic_write_and_read_back() {
        let dir = std::env::temp_dir().join("peachstar-snapshot-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("atomic_write_and_read_back.snap");
        let snapshot = sample_snapshot();
        snapshot.write_atomic(&path).expect("write");
        let read = CampaignSnapshot::read_from(&path).expect("read");
        assert_eq!(read.encode(), snapshot.encode());
        std::fs::remove_file(&path).ok();
    }

    fn scratch_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "peachstar-snapshot-{name}-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn rotation_keeps_newest_slots_and_resume_latest_picks_the_top() {
        let dir = scratch_dir("rotation");
        let config = CheckpointConfig::new(&dir, 1).rotation(2);
        config.prepare().expect("prepare");
        let mut snapshot = sample_snapshot();
        for completed in [250u64, 500, 750, 1_000] {
            snapshot.completed = completed;
            config.store(&snapshot).expect("store");
        }
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .expect("read dir")
            .flatten()
            .map(|entry| entry.file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        assert_eq!(
            names,
            vec!["ckpt-000000000750.peachsnp", "ckpt-000000001000.peachsnp"],
            "only the two newest slots survive"
        );
        let restored = CampaignSnapshot::resume_latest(&dir)
            .expect("scan")
            .expect("a valid snapshot");
        assert_eq!(restored.completed, 1_000);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_latest_skips_corrupt_slots_and_tolerates_missing_dirs() {
        let dir = scratch_dir("fallback");
        assert!(
            CampaignSnapshot::resume_latest(&dir).expect("missing dir is fine").is_none(),
            "a missing rotation directory means a fresh start"
        );
        let config = CheckpointConfig::new(&dir, 1).rotation(4);
        config.prepare().expect("prepare");
        let mut snapshot = sample_snapshot();
        snapshot.completed = 250;
        config.store(&snapshot).expect("store");
        // Newer slots exist but are torn: one truncated, one bit-flipped,
        // one with the wrong magic. resume_latest must skip all three.
        let good = snapshot.encode();
        std::fs::write(dir.join("ckpt-000000000500.peachsnp"), &good[..good.len() / 2])
            .expect("truncated slot");
        let mut flipped = good.clone();
        flipped[good.len() / 2] ^= 0x40;
        std::fs::write(dir.join("ckpt-000000000750.peachsnp"), &flipped).expect("flipped slot");
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        std::fs::write(dir.join("ckpt-000000001000.peachsnp"), &bad_magic)
            .expect("bad-magic slot");
        let restored = CampaignSnapshot::resume_latest(&dir)
            .expect("scan")
            .expect("falls back to the valid slot");
        assert_eq!(restored.completed, 250);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prepare_sweeps_stale_temp_files() {
        // Single-file layout: a `.tmp` orphaned beside the checkpoint path
        // by a kill mid-write is swept at the next startup.
        let dir = scratch_dir("stale-temps");
        std::fs::create_dir_all(&dir).expect("dir");
        let path = dir.join("run.snap");
        let stale = dir.join("run.snap.tmp");
        std::fs::write(&stale, b"torn half-write").expect("stale temp");
        CheckpointConfig::new(&path, 1).prepare().expect("prepare");
        assert!(!stale.exists(), "single-file prepare removes the orphan");

        // Rotation layout: same sweep inside the rotation directory.
        let rotation = dir.join("rotation");
        let config = CheckpointConfig::new(&rotation, 1).rotation(2);
        config.prepare().expect("create rotation dir");
        let stale = rotation.join("ckpt-000000000250.peachsnp.tmp");
        std::fs::write(&stale, b"torn").expect("stale temp");
        config.prepare().expect("prepare again");
        assert!(!stale.exists(), "rotation prepare removes the orphan");
        std::fs::remove_dir_all(&dir).ok();
    }
}
