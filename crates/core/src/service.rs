//! The supervised service layer: what turns one checkpointed campaign into a
//! long-running **fuzzing service** (`peachstar-cli serve`).
//!
//! Three pieces cooperate:
//!
//! * [`ServiceHooks`] — the shared seam between the running campaign and the
//!   outside world. Both engine drivers (sequential and sharded) publish
//!   live progress into it at every window/merge-barrier boundary and poll
//!   its stop flag there; requesting a stop therefore *drains gracefully*:
//!   the current window finishes, a final checkpoint is written, and the
//!   supervised run returns with `executions` naming the boundary it
//!   stopped at.
//! * [`ControlServer`] — a line-oriented JSON control socket (`--control
//!   ADDR`). Clients send one command per line: `status` answers with the
//!   live status document ([`ServiceHooks::status_json`]), `stop` trips the
//!   graceful drain; anything else gets an `{"error": ...}` line. The
//!   protocol is deliberately trivial — `printf 'status\n' | nc` is a
//!   sufficient client.
//! * Rolling checkpoints — [`CheckpointConfig::rotation`]
//!   (`--keep-checkpoints K`) writes each snapshot atomically into a
//!   rotation directory and prunes the oldest beyond K, and
//!   [`CampaignSnapshot::resume_latest`] (`serve --resume-latest DIR`)
//!   scans that rotation newest-first, skipping truncated or corrupt slots,
//!   so a SIGKILL'd service resumes bit-exactly from its newest intact
//!   boundary.
//!
//! [`CheckpointConfig::rotation`]: crate::snapshot::CheckpointConfig::rotation
//! [`CampaignSnapshot::resume_latest`]: crate::snapshot::CampaignSnapshot::resume_latest
//!
//! The hooks are engine-agnostic: `Campaign::run_supervised`,
//! `ShardedCampaign::run_supervised` and `ConnectionCampaign::run_supervised`
//! (plus their `resume_supervised` twins) all drive the same seam, so the
//! service shape is identical in-process, sharded and over a real wire.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// A point-in-time view of a supervised campaign, published by the engine
/// drivers at every window boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStatus {
    /// Executions completed so far.
    pub executions: u64,
    /// The campaign's execution budget.
    pub budget: u64,
    /// Distinct execution paths covered so far.
    pub paths: usize,
    /// Distinct coverage-map edges covered so far.
    pub edges: usize,
    /// Unique bugs found so far (deduplicated by fault site).
    pub bugs: usize,
    /// Execution index of the newest checkpoint written (`None` before the
    /// first one).
    pub last_checkpoint: Option<u64>,
}

/// The shared seam between a supervised campaign and its operators: live
/// status in, stop requests out. Cheap to clone behind an [`Arc`]; the
/// engine drivers hold a borrow for the campaign's duration while the
/// [`ControlServer`] (or a signal handler, or a test) holds another.
#[derive(Debug)]
pub struct ServiceHooks {
    stop: AtomicBool,
    status: Mutex<ServiceStatus>,
    started: Instant,
}

impl ServiceHooks {
    /// Hooks for a campaign with the given execution budget, ready to share.
    #[must_use]
    pub fn new(budget: u64) -> Arc<Self> {
        Arc::new(Self {
            stop: AtomicBool::new(false),
            status: Mutex::new(ServiceStatus {
                budget,
                ..ServiceStatus::default()
            }),
            started: Instant::now(),
        })
    }

    /// Requests a graceful drain: the campaign finishes its current window,
    /// writes a final checkpoint and returns. Idempotent.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Whether a graceful stop has been requested.
    #[must_use]
    pub fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// The newest published status.
    #[must_use]
    pub fn status(&self) -> ServiceStatus {
        *self.status.lock().expect("service status poisoned")
    }

    /// Seconds since the hooks were created — the service uptime.
    #[must_use]
    pub fn uptime_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Publishes the boundary state the driver just reached.
    pub(crate) fn observe(&self, executions: u64, paths: usize, edges: usize, bugs: usize) {
        let mut status = self.status.lock().expect("service status poisoned");
        status.executions = executions;
        status.paths = paths;
        status.edges = edges;
        status.bugs = bugs;
    }

    /// Records that a checkpoint covering `completed` executions was
    /// written.
    pub(crate) fn checkpointed(&self, completed: u64) {
        self.status.lock().expect("service status poisoned").last_checkpoint = Some(completed);
    }

    /// The one-line JSON status document the control socket answers `status`
    /// with. Progress fields are exact; `executions_per_second` and
    /// `uptime_seconds` are wall-clock measurements and vary run to run.
    #[must_use]
    pub fn status_json(&self) -> String {
        let status = self.status();
        let uptime = self.uptime_seconds();
        let rate = if uptime > 0.0 {
            status.executions as f64 / uptime
        } else {
            0.0
        };
        let last_checkpoint = status
            .last_checkpoint
            .map_or_else(|| "null".to_owned(), |completed| completed.to_string());
        format!(
            concat!(
                "{{\"executions\":{},\"budget\":{},\"paths\":{},\"edges\":{},",
                "\"bugs\":{},\"executions_per_second\":{:.1},",
                "\"last_checkpoint\":{},\"uptime_seconds\":{:.1},\"stopping\":{}}}"
            ),
            status.executions,
            status.budget,
            status.paths,
            status.edges,
            status.bugs,
            rate,
            last_checkpoint,
            uptime,
            self.stop_requested(),
        )
    }
}

/// The line-oriented JSON control socket of a supervised campaign (see the
/// module docs for the protocol). Connections are handled one at a time on
/// the accept thread — a control socket sees operators, not load.
#[derive(Debug)]
pub struct ControlServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ControlServer {
    /// Starts answering control commands on `listener`, publishing (and
    /// stopping) the campaign behind `hooks`.
    ///
    /// # Errors
    ///
    /// Propagates the listener's local-address lookup failure.
    pub fn start(listener: TcpListener, hooks: Arc<ServiceHooks>) -> io::Result<Self> {
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_shutdown = Arc::clone(&shutdown);
        let accept = std::thread::Builder::new()
            .name("peachstar-control".to_owned())
            .spawn(move || {
                for connection in listener.incoming() {
                    if accept_shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = connection else { continue };
                    let _ = handle_control(stream, &hooks);
                }
            })?;
        Ok(Self {
            addr,
            shutdown,
            accept: Some(accept),
        })
    }

    /// The address the control socket is listening on (use with a port-0
    /// bind to discover the ephemeral port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops answering and joins the accept thread. Idempotent; also runs on
    /// drop.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            // Wake the accept loop so it observes the flag.
            let _ = TcpStream::connect(self.addr);
            let _ = accept.join();
        }
    }
}

impl Drop for ControlServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serves one control connection until EOF: one command per line in, one
/// JSON document per line out.
fn handle_control(stream: TcpStream, hooks: &ServiceHooks) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(());
        }
        let reply = match line.trim() {
            "" => continue,
            "status" => hooks.status_json(),
            "stop" => {
                hooks.request_stop();
                "{\"ok\":true,\"stopping\":true}".to_owned()
            }
            other => format!(
                "{{\"error\":\"unknown command: {}\"}}",
                other.replace(['"', '\\'], "?")
            ),
        };
        writer.write_all(reply.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn control_roundtrip(addr: SocketAddr, commands: &[&str]) -> Vec<String> {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        let mut replies = Vec::new();
        for command in commands {
            writer
                .write_all(format!("{command}\n").as_bytes())
                .expect("send");
            let mut reply = String::new();
            reader.read_line(&mut reply).expect("reply");
            replies.push(reply.trim().to_owned());
        }
        replies
    }

    #[test]
    fn status_json_reports_progress_and_checkpoints() {
        let hooks = ServiceHooks::new(10_000);
        hooks.observe(2_500, 40, 120, 2);
        hooks.checkpointed(2_500);
        let json = hooks.status_json();
        assert!(json.contains("\"executions\":2500"), "{json}");
        assert!(json.contains("\"budget\":10000"), "{json}");
        assert!(json.contains("\"paths\":40"), "{json}");
        assert!(json.contains("\"edges\":120"), "{json}");
        assert!(json.contains("\"bugs\":2"), "{json}");
        assert!(json.contains("\"last_checkpoint\":2500"), "{json}");
        assert!(json.contains("\"stopping\":false"), "{json}");
        assert!(json.contains("\"executions_per_second\":"), "{json}");
        assert!(json.contains("\"uptime_seconds\":"), "{json}");
        // Before any checkpoint the field is a JSON null, not a string.
        assert!(ServiceHooks::new(1).status_json().contains("\"last_checkpoint\":null"));
    }

    #[test]
    fn control_socket_answers_status_stop_and_unknown() {
        let hooks = ServiceHooks::new(5_000);
        hooks.observe(1_000, 10, 30, 0);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let mut control = ControlServer::start(listener, Arc::clone(&hooks)).expect("control");
        let replies = control_roundtrip(control.addr(), &["status", "nonsense", "stop", "status"]);
        assert!(replies[0].contains("\"executions\":1000"), "{}", replies[0]);
        assert!(replies[1].contains("\"error\""), "{}", replies[1]);
        assert!(replies[2].contains("\"stopping\":true"), "{}", replies[2]);
        assert!(replies[3].contains("\"stopping\":true"), "{}", replies[3]);
        assert!(hooks.stop_requested(), "stop must trip the shared flag");
        // A second client is served after the first disconnects.
        let again = control_roundtrip(control.addr(), &["status"]);
        assert!(again[0].contains("\"budget\":5000"), "{}", again[0]);
        control.shutdown();
    }
}
