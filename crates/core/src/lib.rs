//! `peachstar` — coverage guided packet crack and generation for ICS
//! protocol fuzzing.
//!
//! This crate is a from-scratch Rust reproduction of the system presented in
//! the DAC 2020 paper *"ICS Protocol Fuzzing: Coverage Guided Packet Crack
//! and Generation"*. It contains two fuzzers sharing one engine:
//!
//! * **Peach** (the baseline): a classic generation-based protocol fuzzer
//!   that instantiates packets from per-packet-type data models using
//!   per-type mutators (Algorithm 1 of the paper) — see
//!   [`strategy::RandomGenerationStrategy`];
//! * **Peach\*** (the contribution): the same engine augmented with a
//!   coverage feedback loop, a *File Cracker* that splits valuable seeds
//!   into rule-tagged *puzzles* (Algorithm 2), a *semantic-aware generation*
//!   strategy that assembles new packets from donated puzzles (Algorithm 3),
//!   and a *File Fixup* pass that re-establishes sizes and checksums — see
//!   [`strategy::SemanticAwareStrategy`].
//!
//! The [`campaign`] module runs either fuzzer against one of the
//! instrumented ICS protocol targets from [`peachstar_protocols`], recording
//! the path-coverage growth curves and unique bugs that the paper's Figure 4
//! and Table I report.
//!
//! # Quickstart
//!
//! ```
//! use peachstar::campaign::{Campaign, CampaignConfig};
//! use peachstar::strategy::StrategyKind;
//! use peachstar_protocols::TargetId;
//!
//! let config = CampaignConfig::new(StrategyKind::PeachStar)
//!     .executions(2_000)
//!     .rng_seed(7);
//! let report = Campaign::new(TargetId::Modbus.create(), config).run();
//! assert!(report.final_paths() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod campaign;
pub mod corpus;
pub mod cracker;
pub mod engine;
pub mod error;
pub mod mutator;
pub mod seed;
pub mod service;
pub mod snapshot;
pub mod stats;
pub mod strategy;

pub use artifact::{CrashArtifact, ReplayError};
pub use campaign::{Campaign, CampaignConfig, CampaignReport};
pub use engine::{run_sharded, Engine, ShardConfig, ShardedCampaign};
pub use corpus::PuzzleCorpus;
pub use cracker::FileCracker;
pub use error::FuzzError;
pub use seed::{Seed, SeedPool};
pub use service::{ControlServer, ServiceHooks, ServiceStatus};
pub use snapshot::{CampaignSnapshot, CheckpointConfig, SnapshotError, SnapshotMeta};
pub use stats::{CoverageSeries, SeriesPoint};
pub use strategy::{
    GeneratedPacket, GenerationStrategy, RandomGenerationStrategy, SemanticAwareConfig,
    SemanticAwareStrategy, StrategyKind,
};
