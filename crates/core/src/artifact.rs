//! Crash reproducer bundles: one self-contained, checksummed file per
//! unique bug, written by `--artifacts DIR` and re-run by the `replay` CLI
//! mode.
//!
//! A bundle does not try to capture the target's in-memory state at the
//! moment of the crash — none of it is serialisable, and none of it needs
//! to be. Every campaign in this codebase is a deterministic function of
//! its recipe (target, strategy, seed, budget, session shape, execution
//! mode, chaos policy), so the artifact records the *recipe* plus the
//! coordinates of the bug (fault kind, dedup site, first execution, the
//! triggering packet and its data model). Replay re-runs the recipe with
//! the budget truncated to the recorded execution and demands that the
//! same fault fires at the same execution from the same packet — a
//! bit-exact reproduction, not a heuristic one.
//!
//! The execution mode matters for Peach\*: a sharded campaign feeds the
//! strategy its feedback at merge barriers, so its packet stream differs
//! from the sequential one. The bundle therefore records the barrier width
//! ([`CrashArtifact::sync_windows`]) and replay rebuilds the same topology
//! (with a single worker — worker count is invariant anyway).
//!
//! The wire format follows the conventions of [`snapshot`](crate::snapshot):
//! magic + version header, tagged length-prefixed sections, little-endian
//! integers, an FNV-1a trailer, and atomic `.tmp` + rename writes.

use std::path::{Path, PathBuf};

use peachstar_protocols::chaos::{ChaosConfig, ChaosTarget};
use peachstar_protocols::{FaultKind, Target, TargetId};

use crate::campaign::{BugRecord, Campaign, CampaignConfig, CampaignReport, ShardConfig, ShardedCampaign};
use crate::engine::{PhaseMask, SessionConfig};
use crate::snapshot::{
    fault_kind_from_tag, fault_kind_tag, fnv1a, put_bytes, put_option_u64, put_section, put_str,
    put_u32, put_u64, put_u8, read_option_u64, read_section, strategy_from_tag, strategy_tag,
    Reader, SnapshotError,
};

/// File magic of a crash artifact bundle.
pub const MAGIC: [u8; 8] = *b"PEACHART";

/// Current artifact format version.
pub const VERSION: u32 = 1;

const SECTION_RECIPE: u8 = 1;
const SECTION_BUG: u8 = 2;

/// One reproducer bundle: the campaign recipe plus the coordinates of one
/// unique bug (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct CrashArtifact {
    /// Which built-in target the campaign ran against.
    pub target: TargetId,
    /// The full campaign recipe. `executions` is the original budget; replay
    /// truncates it to [`first_execution`](CrashArtifact::first_execution).
    pub config: CampaignConfig,
    /// Merge-barrier width when the campaign was sharded (`None` for the
    /// sequential driver). Part of the campaign semantics for Peach\*.
    pub sync_windows: Option<u64>,
    /// Failure-injection policy when the target was chaos-wrapped.
    pub chaos: Option<ChaosConfig>,
    /// Kind of the recorded fault.
    pub fault_kind: FaultKind,
    /// Dedup site of the recorded fault.
    pub site: String,
    /// Execution index (1-based) at which the fault first fired.
    pub first_execution: u64,
    /// The packet that first triggered the fault.
    pub packet: Vec<u8>,
    /// Data model the packet was generated from.
    pub model: String,
}

/// Why a replayed bundle failed to reproduce its recorded bug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The recorded fault site never fired within the replayed budget.
    NotReproduced,
    /// The recorded site fired, but with different coordinates — the named
    /// field of the replayed bug record disagrees with the bundle.
    Diverged(&'static str),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::NotReproduced => {
                f.write_str("the recorded fault did not fire during the replay")
            }
            ReplayError::Diverged(what) => {
                write!(f, "the replayed bug diverged from the bundle: {what}")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

impl CrashArtifact {
    /// Builds the bundle for one bug of a finished campaign.
    #[must_use]
    pub fn from_bug(
        target: TargetId,
        config: &CampaignConfig,
        sync_windows: Option<u64>,
        chaos: Option<ChaosConfig>,
        bug: &BugRecord,
    ) -> Self {
        // Normalise the transport away: it is an operational knob the wire
        // format does not serialise, and replay always runs in-process — a
        // bug recorded over framed TCP reproduces identically there.
        let config = config.transport(crate::engine::transport::TransportMode::InProcess);
        Self {
            target,
            config,
            sync_windows,
            chaos,
            fault_kind: bug.fault.kind,
            site: bug.fault.site.to_string(),
            first_execution: bug.first_execution,
            packet: bug.packet.clone(),
            model: bug.model.clone(),
        }
    }

    /// The deterministic file name of this bundle inside an artifacts
    /// directory: target, fault kind and a hash of the dedup site — the
    /// same bug always maps to the same file, so re-running a campaign
    /// overwrites rather than accumulates.
    #[must_use]
    pub fn file_name(&self) -> String {
        format!(
            "{}-{}-{:016x}.peachart",
            slug(self.target.project_name()),
            slug(&self.fault_kind.to_string()),
            fnv1a(self.site.as_bytes())
        )
    }

    /// Encodes the bundle to bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        put_u32(&mut out, VERSION);
        put_section(&mut out, SECTION_RECIPE, |buf| {
            put_str(buf, self.target.project_name());
            put_u8(buf, strategy_tag(self.config.strategy));
            put_u64(buf, self.config.executions);
            put_u64(buf, self.config.rng_seed);
            put_u64(buf, self.config.sample_interval);
            put_u64(buf, self.config.reset_interval);
            match self.config.session {
                Some(session) => {
                    put_u8(buf, 1);
                    put_u64(buf, session.payload_packets);
                    let mask = u8::from(session.mutate.handshake)
                        | u8::from(session.mutate.payload) << 1
                        | u8::from(session.mutate.teardown) << 2;
                    put_u8(buf, mask);
                }
                None => put_u8(buf, 0),
            }
            put_option_u64(buf, self.config.batch);
            put_option_u64(buf, self.config.exec_timeout);
            put_option_u64(buf, self.sync_windows);
            match self.chaos {
                Some(chaos) => {
                    put_u8(buf, 1);
                    put_u64(buf, chaos.seed);
                    put_u64(buf, chaos.panic_every);
                    put_u64(buf, chaos.hang_every);
                    put_u64(buf, chaos.hang.as_millis() as u64);
                    put_u64(buf, chaos.garbage_every);
                    put_u32(buf, chaos.sites);
                }
                None => put_u8(buf, 0),
            }
        });
        put_section(&mut out, SECTION_BUG, |buf| {
            put_u8(buf, fault_kind_tag(self.fault_kind));
            put_str(buf, &self.site);
            put_u64(buf, self.first_execution);
            put_bytes(buf, &self.packet);
            put_str(buf, &self.model);
        });
        let checksum = fnv1a(&out);
        put_u64(&mut out, checksum);
        out
    }

    /// Decodes a bundle, validating magic, version and checksum.
    pub fn decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < MAGIC.len() + 4 + 8 {
            if bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] != MAGIC {
                return Err(SnapshotError::BadMagic);
            }
            return Err(SnapshotError::Truncated);
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let declared = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
        if fnv1a(body) != declared {
            return Err(SnapshotError::Corrupt("checksum"));
        }
        let mut reader = Reader::new(&body[MAGIC.len()..]);
        let version = reader.u32()?;
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let (target, config, sync_windows, chaos) =
            read_section(&mut reader, SECTION_RECIPE, |section| {
                let target_name = section.string()?;
                let target = TargetId::parse(&target_name)
                    .ok_or(SnapshotError::Corrupt("unknown target"))?;
                let strategy = strategy_from_tag(section.u8()?)?;
                let mut config = CampaignConfig::new(strategy);
                config.executions = section.u64()?;
                config.rng_seed = section.u64()?;
                config.sample_interval = section.u64()?;
                config.reset_interval = section.u64()?;
                config.session = match section.u8()? {
                    0 => None,
                    1 => {
                        let payload_packets = section.u64()?;
                        let mask = section.u8()?;
                        Some(SessionConfig::new(payload_packets).mutate(PhaseMask {
                            handshake: mask & 1 != 0,
                            payload: mask & 2 != 0,
                            teardown: mask & 4 != 0,
                        }))
                    }
                    _ => return Err(SnapshotError::Corrupt("session flag")),
                };
                config.batch = read_option_u64(section)?;
                config.exec_timeout = read_option_u64(section)?;
                let sync_windows = read_option_u64(section)?;
                let chaos = match section.u8()? {
                    0 => None,
                    1 => Some(
                        ChaosConfig::new(section.u64()?)
                            .panic_every(section.u64()?)
                            .hang_every(section.u64()?)
                            .hang_ms(section.u64()?)
                            .garbage_every(section.u64()?)
                            .sites(section.u32()?),
                    ),
                    _ => return Err(SnapshotError::Corrupt("chaos flag")),
                };
                Ok((target, config, sync_windows, chaos))
            })?;
        let (fault_kind, site, first_execution, packet, model) =
            read_section(&mut reader, SECTION_BUG, |section| {
                let kind = fault_kind_from_tag(section.u8()?)?;
                let site = section.string()?;
                let first_execution = section.u64()?;
                let packet = section.bytes()?.to_vec();
                let model = section.string()?;
                Ok((kind, site, first_execution, packet, model))
            })?;
        if !reader.is_empty() {
            return Err(SnapshotError::Corrupt("trailing bytes"));
        }
        Ok(Self {
            target,
            config,
            sync_windows,
            chaos,
            fault_kind,
            site,
            first_execution,
            packet,
            model,
        })
    }

    /// Writes the bundle into `dir` (created if missing) under its
    /// deterministic [`file_name`](CrashArtifact::file_name), atomically:
    /// bytes go to a sibling `.tmp` first and are renamed into place.
    pub fn write_atomic(&self, dir: &Path) -> Result<PathBuf, SnapshotError> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        std::fs::write(&tmp, self.encode())?;
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// Reads and decodes a bundle file.
    pub fn read_from(path: &Path) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path)?;
        Self::decode(&bytes)
    }

    /// The target instance the recorded campaign ran against: the built-in
    /// target, chaos-wrapped when the bundle records an injection policy.
    #[must_use]
    pub fn create_target(&self) -> Box<dyn Target> {
        match self.chaos {
            Some(chaos) => Box::new(ChaosTarget::new(self.target.create_send(), chaos)),
            None => self.target.create(),
        }
    }

    /// Re-runs the recorded campaign up to (and including) the recorded
    /// execution and checks that the recorded fault fires again — same
    /// site, same execution index, same packet bytes.
    ///
    /// Returns the replayed report so callers can show what happened either
    /// way (boxed on the error path to keep the `Result` small). Determinism makes this exact: a diverging replay means the
    /// bundle and the code base no longer agree (different build, edited
    /// bundle, changed target).
    pub fn replay(&self) -> Result<CampaignReport, Box<(CampaignReport, ReplayError)>> {
        let config = CampaignConfig {
            executions: self.first_execution,
            ..self.config
        };
        let target = self.create_target();
        let report = match self.sync_windows {
            Some(sync_windows) => {
                let shard = ShardConfig::with_workers(1)
                    .sync_windows(usize::try_from(sync_windows).unwrap_or(usize::MAX));
                ShardedCampaign::new(target, config, shard).run()
            }
            None => Campaign::new(target, config).run(),
        };
        // Sites are compared by text, not by interned pointer: native target
        // faults carry `&'static str` literals that never pass through the
        // intern table, so their pointers differ from the decoded copy.
        let Some(bug) = report
            .bugs
            .iter()
            .find(|bug| bug.fault.kind == self.fault_kind && bug.fault.site == self.site)
        else {
            return Err(Box::new((report, ReplayError::NotReproduced)));
        };
        if bug.first_execution != self.first_execution {
            return Err(Box::new((report, ReplayError::Diverged("first execution"))));
        }
        if bug.packet != self.packet {
            return Err(Box::new((report, ReplayError::Diverged("packet bytes"))));
        }
        if bug.model != self.model {
            return Err(Box::new((report, ReplayError::Diverged("data model"))));
        }
        Ok(report)
    }
}

/// Lowercases and replaces every non-alphanumeric run with one dash, so a
/// target or fault label is always a safe file-name component.
fn slug(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch.to_ascii_lowercase());
        } else if !out.ends_with('-') {
            out.push('-');
        }
    }
    out.trim_matches('-').to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::StrategyKind;

    fn chaos_campaign() -> (TargetId, CampaignConfig, ChaosConfig, CampaignReport) {
        let target = TargetId::Modbus;
        let config = CampaignConfig::new(StrategyKind::Peach)
            .executions(600)
            .rng_seed(5)
            .sample_interval(100)
            .reset_interval(150);
        let chaos = ChaosConfig::new(11).panic_every(23).hang_every(0).garbage_every(0);
        let report = Campaign::new(
            Box::new(ChaosTarget::new(target.create_send(), chaos)),
            config,
        )
        .run();
        (target, config, chaos, report)
    }

    #[test]
    fn artifact_roundtrips_through_encode_decode() {
        let (target, config, chaos, report) = chaos_campaign();
        let bug = report.bugs.first().expect("chaos campaign finds bugs");
        let artifact = CrashArtifact::from_bug(target, &config, Some(8), Some(chaos), bug);
        let decoded = CrashArtifact::decode(&artifact.encode()).expect("roundtrip");
        assert_eq!(decoded, artifact);
    }

    #[test]
    fn artifact_rejects_corruption() {
        let (target, config, chaos, report) = chaos_campaign();
        let bug = report.bugs.first().expect("chaos campaign finds bugs");
        let artifact = CrashArtifact::from_bug(target, &config, None, Some(chaos), bug);
        let mut bytes = artifact.encode();
        assert!(matches!(
            CrashArtifact::decode(&bytes[..10]),
            Err(SnapshotError::Truncated)
        ));
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(matches!(
            CrashArtifact::decode(&bytes),
            Err(SnapshotError::Corrupt("checksum"))
        ));
        bytes[mid] ^= 0xFF;
        bytes[0] = b'X';
        assert!(matches!(
            CrashArtifact::decode(&bytes),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn replay_reproduces_a_recorded_bug() {
        let (target, config, chaos, report) = chaos_campaign();
        let bug = report.bugs.first().expect("chaos campaign finds bugs");
        let artifact = CrashArtifact::from_bug(target, &config, None, Some(chaos), bug);
        let replayed = artifact.replay().expect("the recorded fault fires again");
        assert_eq!(replayed.executions, bug.first_execution);
    }

    #[test]
    fn replay_detects_a_bundle_that_no_longer_reproduces() {
        let (target, config, chaos, report) = chaos_campaign();
        let bug = report.bugs.first().expect("chaos campaign finds bugs");
        let mut artifact = CrashArtifact::from_bug(target, &config, None, Some(chaos), bug);
        // A different chaos seed misbehaves on different packets, so the
        // recorded site cannot fire at the recorded execution.
        artifact.chaos = Some(ChaosConfig::new(12).panic_every(23).hang_every(0).garbage_every(0));
        let (_, error) = *artifact.replay().expect_err("divergence must be caught");
        assert!(matches!(
            error,
            ReplayError::NotReproduced | ReplayError::Diverged(_)
        ));
    }

    #[test]
    fn write_atomic_is_deterministic_and_readable() {
        let (target, config, chaos, report) = chaos_campaign();
        let bug = report.bugs.first().expect("chaos campaign finds bugs");
        let artifact = CrashArtifact::from_bug(target, &config, None, Some(chaos), bug);
        let dir = std::env::temp_dir().join(format!(
            "peachart-test-{}-{}",
            std::process::id(),
            fnv1a(artifact.site.as_bytes())
        ));
        let path = artifact.write_atomic(&dir).expect("write");
        let again = artifact.write_atomic(&dir).expect("rewrite");
        assert_eq!(path, again, "the same bug maps to the same file");
        assert_eq!(CrashArtifact::read_from(&path).expect("read"), artifact);
        assert!(path.file_name().is_some_and(|name| {
            let name = name.to_string_lossy();
            name.starts_with("libmodbus-panic-") && name.ends_with(".peachart")
        }));
        std::fs::remove_dir_all(&dir).ok();
    }
}
