//! The puzzle corpus: rule-indexed storage of cracked packet pieces.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use peachstar_datamodel::{Puzzle, RuleId};

/// The corpus of puzzles produced by the File Cracker.
///
/// Puzzles are indexed by the [`RuleId`] of the chunk they were cracked from,
/// because that is how the semantic-aware generator looks donors up (the
/// `GETDONOR(Rule, Corpus)` step of Algorithm 3). Duplicate contents per rule
/// are discarded, and each rule keeps at most `capacity_per_rule` distinct
/// puzzles (newest kept) so that the corpus cannot grow without bound on long
/// campaigns.
///
/// Contents are stored as `Arc<[u8]>` so the semantic-aware generator's
/// donor sampling and cross-product expansion share the bytes by reference
/// count instead of deep-cloning a vector per candidate packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PuzzleCorpus {
    by_rule: HashMap<RuleId, Vec<Arc<[u8]>>>,
    capacity_per_rule: usize,
    inserted: u64,
    rejected_duplicates: u64,
}

impl PuzzleCorpus {
    /// Default number of distinct puzzles kept per construction rule.
    pub const DEFAULT_CAPACITY_PER_RULE: usize = 64;

    /// Creates an empty corpus with the default per-rule capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity_per_rule(Self::DEFAULT_CAPACITY_PER_RULE)
    }

    /// Creates an empty corpus keeping at most `capacity` puzzles per rule.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity_per_rule(capacity: usize) -> Self {
        assert!(capacity > 0, "per-rule capacity must be positive");
        Self {
            by_rule: HashMap::new(),
            capacity_per_rule: capacity,
            inserted: 0,
            rejected_duplicates: 0,
        }
    }

    /// Inserts one puzzle; returns `true` when it was new for its rule.
    pub fn insert(&mut self, puzzle: Puzzle) -> bool {
        let entry = self.by_rule.entry(puzzle.rule).or_default();
        if entry
            .iter()
            .any(|existing| existing.as_ref() == puzzle.content.as_slice())
        {
            self.rejected_duplicates += 1;
            return false;
        }
        if entry.len() == self.capacity_per_rule {
            entry.remove(0);
        }
        entry.push(Arc::from(puzzle.content));
        self.inserted += 1;
        true
    }

    /// Inserts every puzzle of an iterator, returning how many were new.
    pub fn insert_all<I: IntoIterator<Item = Puzzle>>(&mut self, puzzles: I) -> usize {
        puzzles
            .into_iter()
            .filter(|puzzle| !puzzle.is_empty())
            .map(|puzzle| usize::from(self.insert(puzzle)))
            .sum()
    }

    /// The donors stored for `rule` (the `Candidates` set of Algorithm 3).
    ///
    /// Donors are shared `Arc<[u8]>` slices: cloning one to place it into a
    /// generated packet is a reference-count bump, not a byte copy.
    #[must_use]
    pub fn donors(&self, rule: RuleId) -> &[Arc<[u8]>] {
        self.by_rule.get(&rule).map_or(&[], Vec::as_slice)
    }

    /// `true` when at least one donor exists for `rule`.
    #[must_use]
    pub fn has_donor(&self, rule: RuleId) -> bool {
        self.by_rule.get(&rule).is_some_and(|v| !v.is_empty())
    }

    /// Number of distinct rules with at least one donor.
    #[must_use]
    pub fn rule_count(&self) -> usize {
        self.by_rule.len()
    }

    /// Total number of stored puzzles across all rules.
    #[must_use]
    pub fn len(&self) -> usize {
        self.by_rule.values().map(Vec::len).sum()
    }

    /// `true` when the corpus holds no puzzles (the state in which Peach\*
    /// behaves exactly like the baseline).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.by_rule.is_empty()
    }

    /// Number of successful inserts so far.
    #[must_use]
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Number of inserts rejected as duplicates.
    #[must_use]
    pub fn rejected_duplicates(&self) -> u64 {
        self.rejected_duplicates
    }

    /// The per-rule capacity this corpus was created with.
    #[must_use]
    pub fn capacity_per_rule(&self) -> usize {
        self.capacity_per_rule
    }

    /// Iterates every `(rule, donors)` entry, in unspecified order.
    ///
    /// Snapshot encoders must sort by [`RuleId::raw`] themselves to obtain a
    /// canonical byte stream (hash-map iteration order is not deterministic).
    pub fn iter_rules(&self) -> impl Iterator<Item = (RuleId, &[Arc<[u8]>])> + '_ {
        self.by_rule
            .iter()
            .map(|(rule, donors)| (*rule, donors.as_slice()))
    }

    /// Resets the corpus to the empty state — donors *and* the
    /// `inserted`/`rejected_duplicates` counters, so a cleared corpus can
    /// never leak stale statistics into a later report.
    pub fn clear(&mut self) {
        self.by_rule.clear();
        self.inserted = 0;
        self.rejected_duplicates = 0;
    }

    /// Rebuilds a corpus from decoded snapshot parts, restoring the exact
    /// counters (which `insert` replays could not: `inserted` can exceed the
    /// stored donor count once capacity eviction has happened).
    ///
    /// Callers must pre-validate `capacity > 0`; empty donor lists are
    /// dropped so the rebuilt corpus compares equal to one that never held
    /// the rule.
    pub(crate) fn from_snapshot_parts(
        capacity: usize,
        entries: impl IntoIterator<Item = (RuleId, Vec<Arc<[u8]>>)>,
        inserted: u64,
        rejected_duplicates: u64,
    ) -> Self {
        let mut corpus = Self::with_capacity_per_rule(capacity);
        for (rule, donors) in entries {
            if !donors.is_empty() {
                corpus.by_rule.insert(rule, donors);
            }
        }
        corpus.inserted = inserted;
        corpus.rejected_duplicates = rejected_duplicates;
        corpus
    }

    /// Absorbs every donor of `other` that this corpus does not already
    /// hold, returning how many were added.
    ///
    /// This is the corpus-side counterpart of `CoverageMap::absorb`, used by
    /// shared-corpus repetition runs to pool discoveries across seeds. The
    /// algebra is deliberately clean:
    ///
    /// * donors already present are skipped *silently* — they are not
    ///   failed insert attempts, so `rejected_duplicates` does not move and
    ///   `a.merge(&a)` is a complete no-op (idempotence);
    /// * novel donors count into `inserted`, exactly as if the cracker had
    ///   produced them here;
    /// * rules are visited in ascending [`RuleId::raw`] order and donors in
    ///   their stored order, so capacity eviction (and therefore the merged
    ///   contents) is deterministic regardless of hash-map iteration order.
    pub fn merge(&mut self, other: &PuzzleCorpus) -> usize {
        let mut rules: Vec<RuleId> = other.by_rule.keys().copied().collect();
        rules.sort_unstable_by_key(|rule| rule.raw());
        let mut added = 0;
        for rule in rules {
            for donor in &other.by_rule[&rule] {
                let entry = self.by_rule.entry(rule).or_default();
                if entry
                    .iter()
                    .any(|existing| existing.as_ref() == donor.as_ref())
                {
                    continue;
                }
                if entry.len() == self.capacity_per_rule {
                    entry.remove(0);
                }
                entry.push(Arc::clone(donor));
                self.inserted += 1;
                added += 1;
            }
        }
        added
    }
}

impl Default for PuzzleCorpus {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for PuzzleCorpus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "puzzle corpus: {} puzzles across {} rules",
            self.len(),
            self.rule_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn puzzle(rule: u64, content: &[u8]) -> Puzzle {
        Puzzle::new(RuleId::from_raw(rule), "test", content.to_vec())
    }

    #[test]
    fn insert_and_lookup_by_rule() {
        let mut corpus = PuzzleCorpus::new();
        assert!(corpus.is_empty());
        assert!(corpus.insert(puzzle(1, &[0xAA])));
        assert!(corpus.insert(puzzle(1, &[0xBB])));
        assert!(corpus.insert(puzzle(2, &[0xCC])));
        assert_eq!(corpus.len(), 3);
        assert_eq!(corpus.rule_count(), 2);
        assert_eq!(corpus.donors(RuleId::from_raw(1)).len(), 2);
        assert!(corpus.has_donor(RuleId::from_raw(2)));
        assert!(!corpus.has_donor(RuleId::from_raw(3)));
        assert!(corpus.donors(RuleId::from_raw(3)).is_empty());
    }

    #[test]
    fn duplicates_are_rejected() {
        let mut corpus = PuzzleCorpus::new();
        assert!(corpus.insert(puzzle(1, &[0xAA])));
        assert!(!corpus.insert(puzzle(1, &[0xAA])));
        assert_eq!(corpus.len(), 1);
        assert_eq!(corpus.rejected_duplicates(), 1);
        assert_eq!(corpus.inserted(), 1);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut corpus = PuzzleCorpus::with_capacity_per_rule(2);
        corpus.insert(puzzle(1, &[1]));
        corpus.insert(puzzle(1, &[2]));
        corpus.insert(puzzle(1, &[3]));
        let donors = corpus.donors(RuleId::from_raw(1));
        assert_eq!(donors.len(), 2);
        let contents: Vec<&[u8]> = donors.iter().map(AsRef::as_ref).collect();
        assert_eq!(contents, vec![&[2u8][..], &[3u8][..]]);
    }

    #[test]
    fn insert_all_skips_empty_puzzles() {
        let mut corpus = PuzzleCorpus::new();
        let added = corpus.insert_all(vec![puzzle(1, &[1]), puzzle(2, &[]), puzzle(1, &[1])]);
        assert_eq!(added, 1);
        assert_eq!(corpus.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = PuzzleCorpus::with_capacity_per_rule(0);
    }

    #[test]
    fn display_reports_counts() {
        let mut corpus = PuzzleCorpus::new();
        corpus.insert(puzzle(1, &[1]));
        assert!(corpus.to_string().contains("1 puzzles across 1 rules"));
    }
}
