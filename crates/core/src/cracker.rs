//! The File Cracker (Algorithm 2): splitting valuable seeds into puzzles.

use peachstar_datamodel::crack::{crack_with, CrackOptions};
use peachstar_datamodel::{DataModelSet, InsTree, Puzzle};

use crate::corpus::PuzzleCorpus;

/// The File Cracker of Peach\*.
///
/// Given the format specification (a [`DataModelSet`]) and a valuable seed,
/// it tries to parse the seed with every data model, collects the
/// instantiation trees of the models that match and extracts every sub-tree
/// puzzle (Algorithm 2 of the paper). The puzzles feed the
/// [`PuzzleCorpus`] consumed by semantic-aware generation.
#[derive(Debug, Clone)]
pub struct FileCracker {
    options: CrackOptions,
    /// When `true`, only leaf-chunk puzzles are collected (the
    /// `leaves_only` ablation discussed in DESIGN.md).
    leaves_only: bool,
    cracked_seeds: u64,
    failed_seeds: u64,
}

impl FileCracker {
    /// Creates a cracker with lenient options (checksums are not verified,
    /// as fuzzer-generated packets often carry deliberately broken ones).
    #[must_use]
    pub fn new() -> Self {
        Self {
            options: CrackOptions::default(),
            leaves_only: false,
            cracked_seeds: 0,
            failed_seeds: 0,
        }
    }

    /// Restricts puzzle extraction to leaf chunks.
    #[must_use]
    pub fn leaves_only(mut self, leaves_only: bool) -> Self {
        self.leaves_only = leaves_only;
        self
    }

    /// Number of seeds successfully cracked by at least one model.
    #[must_use]
    pub fn cracked_seeds(&self) -> u64 {
        self.cracked_seeds
    }

    /// Number of seeds no model could parse.
    #[must_use]
    pub fn failed_seeds(&self) -> u64 {
        self.failed_seeds
    }

    /// Cracks `seed` against every model of `models` and returns the puzzles
    /// of every legal instantiation tree.
    pub fn crack(&mut self, models: &DataModelSet, seed: &[u8]) -> Vec<Puzzle> {
        let trees: Vec<InsTree> = models
            .models()
            .iter()
            .filter_map(|model| crack_with(model, seed, self.options).ok())
            .collect();
        if trees.is_empty() {
            self.failed_seeds += 1;
            return Vec::new();
        }
        self.cracked_seeds += 1;
        trees
            .iter()
            .flat_map(|tree| {
                if self.leaves_only {
                    tree.leaf_puzzles()
                } else {
                    tree.puzzles()
                }
            })
            .collect()
    }

    /// Cracks `seed` and inserts the resulting puzzles into `corpus`,
    /// returning how many were new.
    pub fn crack_into(
        &mut self,
        models: &DataModelSet,
        seed: &[u8],
        corpus: &mut PuzzleCorpus,
    ) -> usize {
        let puzzles = self.crack(models, seed);
        corpus.insert_all(puzzles)
    }
}

impl Default for FileCracker {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peachstar_datamodel::emit::emit_default;
    use peachstar_datamodel::examples::toy_protocol;

    #[test]
    fn cracking_a_default_packet_yields_puzzles() {
        let models = toy_protocol();
        let mut cracker = FileCracker::new();
        let packet = emit_default(models.find("echo").unwrap()).unwrap();
        let puzzles = cracker.crack(&models, &packet);
        assert!(!puzzles.is_empty());
        assert_eq!(cracker.cracked_seeds(), 1);
        assert_eq!(cracker.failed_seeds(), 0);
    }

    #[test]
    fn garbage_cannot_be_cracked() {
        let models = toy_protocol();
        let mut cracker = FileCracker::new();
        let puzzles = cracker.crack(&models, &[0xFF; 3]);
        assert!(puzzles.is_empty());
        assert_eq!(cracker.failed_seeds(), 1);
    }

    #[test]
    fn leaves_only_yields_fewer_puzzles() {
        let models = toy_protocol();
        let packet = emit_default(models.find("echo").unwrap()).unwrap();
        let all = FileCracker::new().crack(&models, &packet).len();
        let leaves = FileCracker::new()
            .leaves_only(true)
            .crack(&models, &packet)
            .len();
        assert!(leaves < all, "leaves {leaves} < all {all}");
        assert!(leaves > 0);
    }

    #[test]
    fn crack_into_populates_the_corpus_with_shared_rules() {
        let models = toy_protocol();
        let mut cracker = FileCracker::new();
        let mut corpus = PuzzleCorpus::new();
        let echo_packet = emit_default(models.find("echo").unwrap()).unwrap();
        let added = cracker.crack_into(&models, &echo_packet, &mut corpus);
        assert!(added > 0);
        // The cracked echo packet provides a donor for the shared
        // `device-address` rule used by the read and write models.
        let read_device_rule = models
            .find("read")
            .unwrap()
            .find("device")
            .unwrap()
            .rule_id();
        assert!(corpus.has_donor(read_device_rule));
    }
}
