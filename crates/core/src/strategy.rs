//! Generation strategies: the baseline model instantiation of Peach
//! (Algorithm 1) and the semantic-aware generation of Peach\* (Algorithm 3).

use std::collections::VecDeque;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use peachstar_datamodel::emit::{
    emit_into, emit_values_with, EmitScratch, LeafSource, ValueAssignment,
};
use peachstar_datamodel::{DataModel, DataModelSet};

use crate::corpus::PuzzleCorpus;
use crate::cracker::FileCracker;
use crate::mutator;
use crate::seed::Seed;

/// Which of the two fuzzers a campaign runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// The baseline generation-based fuzzer (Peach).
    Peach,
    /// The coverage-guided packet crack and generation fuzzer (Peach\*).
    PeachStar,
}

impl StrategyKind {
    /// Human-readable name matching the paper's terminology.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            StrategyKind::Peach => "Peach",
            StrategyKind::PeachStar => "Peach*",
        }
    }

    /// Instantiates the strategy with default settings.
    #[must_use]
    pub fn create(self) -> Box<dyn GenerationStrategy> {
        match self {
            StrategyKind::Peach => Box::new(RandomGenerationStrategy::new()),
            StrategyKind::PeachStar => {
                Box::new(SemanticAwareStrategy::new(SemanticAwareConfig::default()))
            }
        }
    }
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A packet produced by a strategy, before execution.
pub type GeneratedPacket = Seed;

/// The resumable state of a generation strategy, as captured into (and
/// restored from) a campaign snapshot.
///
/// A strategy's observable behaviour must be a function of this state plus
/// the campaign RNG stream: restoring the state and the RNG position must
/// reproduce the exact packet sequence an uninterrupted run would have
/// produced. Scratch buffers (emit scratch, leaf-value buffers) are *not*
/// part of the state — they only affect allocation, never output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrategyState {
    /// No resumable state beyond the RNG stream (third-party strategies
    /// that keep no feedback-derived state).
    Stateless,
    /// The Peach baseline: only the generated-packet counter.
    Peach {
        /// Packets generated so far.
        generated: u64,
    },
    /// Peach\*: the puzzle corpus, the queued semantic batch and the
    /// production counters.
    PeachStar {
        /// The rule-indexed puzzle corpus.
        corpus: PuzzleCorpus,
        /// Donor-built packets queued but not yet handed out, front first.
        queue: Vec<Seed>,
        /// Packets produced by donor-based construction so far.
        semantic_generated: u64,
        /// Packets produced by plain model instantiation so far.
        random_generated: u64,
    },
}

/// A test-case generation strategy plugged into the campaign loop.
pub trait GenerationStrategy {
    /// Short display name ("Peach", "Peach*", …).
    fn name(&self) -> &'static str;

    /// Produces the next packet to execute.
    fn next_packet(&mut self, models: &DataModelSet, rng: &mut SmallRng) -> GeneratedPacket;

    /// Produces the next packet into a reusable slot, overwriting every
    /// field — the batched engine's packet-arena entry point.
    ///
    /// Must be observationally identical to
    /// [`next_packet`](GenerationStrategy::next_packet): same packet for the
    /// same RNG state, same strategy-side bookkeeping. The default delegates
    /// to `next_packet`; strategies on the hot path override it to emit into
    /// the slot's existing buffers instead of allocating a fresh seed.
    fn next_packet_into(
        &mut self,
        models: &DataModelSet,
        rng: &mut SmallRng,
        slot: &mut GeneratedPacket,
    ) {
        *slot = self.next_packet(models, rng);
    }

    /// Observes the execution result of a previously generated packet.
    /// `valuable` is `true` when the packet triggered new coverage.
    fn observe(&mut self, packet: &GeneratedPacket, valuable: bool, models: &DataModelSet);

    /// Number of puzzles currently available to the strategy (0 for
    /// feedback-free strategies).
    fn corpus_size(&self) -> usize {
        0
    }

    /// Captures the strategy's resumable state for a campaign snapshot.
    ///
    /// The default returns [`StrategyState::Stateless`], correct for
    /// strategies whose packet stream depends only on the RNG position.
    fn snapshot_state(&self) -> StrategyState {
        StrategyState::Stateless
    }

    /// Restores state previously captured by
    /// [`snapshot_state`](GenerationStrategy::snapshot_state).
    ///
    /// Returns `false` (leaving the strategy untouched) when `state` was
    /// captured from a different strategy kind — the snapshot does not
    /// belong to this campaign configuration.
    fn restore_state(&mut self, state: StrategyState) -> bool {
        matches!(state, StrategyState::Stateless)
    }
}

/// Reusable random-instantiation workspace: one content buffer per leaf
/// position plus a presence mask, implementing [`LeafSource`] directly over
/// the buffers. Together with [`emit_into`] this makes one iteration of
/// Algorithm 1 allocation-free in the steady state — no per-packet
/// assignment map, no per-leaf `Vec`/`Arc` conversions.
#[derive(Debug, Default)]
struct GenScratch {
    bufs: Vec<Vec<u8>>,
    used: Vec<bool>,
}

impl GenScratch {
    /// Clears the presence mask for a model with `leaves` leaf positions,
    /// keeping every content buffer for reuse.
    fn reset(&mut self, leaves: usize) {
        self.used.clear();
        self.used.resize(leaves, false);
        if self.bufs.len() < leaves {
            self.bufs.resize_with(leaves, Vec::new);
        }
    }

    /// Marks position `index` as generated and hands out its cleared buffer.
    fn buf(&mut self, index: usize) -> &mut Vec<u8> {
        self.used[index] = true;
        let buf = &mut self.bufs[index];
        buf.clear();
        buf
    }
}

impl LeafSource for GenScratch {
    fn leaf(&self, index: usize) -> Option<&[u8]> {
        self.used
            .get(index)
            .copied()
            .unwrap_or(false)
            .then(|| self.bufs[index].as_slice())
    }
}

/// Instantiates `model` by generating every leaf with the type mutators and
/// emitting with relations and fixups repaired — one iteration of
/// Algorithm 1 — into a reusable output buffer.
///
/// Uses the model's cached linear layout (no tree walk), the caller's
/// [`EmitScratch`] (no per-packet span-table allocation) and the caller's
/// [`GenScratch`] (no per-leaf content allocation). Consumes the RNG exactly
/// as the historic allocating implementation did, so seeded packet streams
/// are unchanged.
fn instantiate_randomly_into(
    model: &DataModel,
    rng: &mut SmallRng,
    repair: bool,
    scratch: &mut EmitScratch,
    values: &mut GenScratch,
    out: &mut Vec<u8>,
) {
    let linear = model.linear();
    values.reset(linear.len());
    for (index, leaf) in linear.iter().enumerate() {
        // Keep the default value sometimes; otherwise run the mutator.
        if rng.gen_bool(0.15) {
            continue;
        }
        mutator::generate_leaf_into(&leaf.chunk, rng, values.buf(index));
    }
    // The only emit error is an out-of-range assignment, which a
    // layout-sized scratch cannot produce; mirror the historic
    // `unwrap_or_default` by emitting empty bytes anyway.
    if emit_into(model, values, repair, scratch, out).is_err() {
        out.clear();
    }
}

/// Overwrites `slot` with the degenerate empty-model-set seed (the in-place
/// twin of [`empty_set_seed`]).
fn set_empty_seed(slot: &mut GeneratedPacket) {
    slot.bytes.clear();
    slot.model.clear();
    slot.model.push_str("<empty-model-set>");
    slot.semantic = false;
}

/// Picks a random model from the set, or `None` when the set is empty (an
/// empty [`DataModelSet`] must not panic; both strategies fall back to an
/// empty-bytes seed).
pub(crate) fn pick_model<'set>(
    models: &'set DataModelSet,
    rng: &mut SmallRng,
) -> Option<&'set DataModel> {
    if models.is_empty() {
        return None;
    }
    let index = rng.gen_range(0..models.len());
    Some(&models.models()[index])
}

/// The seed both strategies emit when asked to generate from an empty model
/// set: zero bytes, clearly-labelled provenance, no panic.
pub(crate) fn empty_set_seed() -> GeneratedPacket {
    Seed::new(Vec::new(), "<empty-model-set>", false)
}

/// The baseline Peach strategy: random, feedback-free model instantiation.
#[derive(Debug, Default)]
pub struct RandomGenerationStrategy {
    generated: u64,
    scratch: EmitScratch,
    values: GenScratch,
}

impl RandomGenerationStrategy {
    /// Creates the baseline strategy.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of packets generated so far.
    #[must_use]
    pub fn generated(&self) -> u64 {
        self.generated
    }
}

impl GenerationStrategy for RandomGenerationStrategy {
    fn name(&self) -> &'static str {
        "Peach"
    }

    fn next_packet(&mut self, models: &DataModelSet, rng: &mut SmallRng) -> GeneratedPacket {
        let mut seed = Seed::new(Vec::new(), "", false);
        self.next_packet_into(models, rng, &mut seed);
        seed
    }

    fn next_packet_into(
        &mut self,
        models: &DataModelSet,
        rng: &mut SmallRng,
        slot: &mut GeneratedPacket,
    ) {
        self.generated += 1;
        let Some(model) = pick_model(models, rng) else {
            set_empty_seed(slot);
            return;
        };
        instantiate_randomly_into(
            model,
            rng,
            true,
            &mut self.scratch,
            &mut self.values,
            &mut slot.bytes,
        );
        slot.model.clear();
        slot.model.push_str(model.name());
        slot.semantic = false;
    }

    fn observe(&mut self, _packet: &GeneratedPacket, _valuable: bool, _models: &DataModelSet) {
        // The baseline discards valuable seeds — exactly the limitation the
        // paper's introduction calls out.
    }

    fn snapshot_state(&self) -> StrategyState {
        StrategyState::Peach {
            generated: self.generated,
        }
    }

    fn restore_state(&mut self, state: StrategyState) -> bool {
        match state {
            StrategyState::Peach { generated } => {
                self.generated = generated;
                true
            }
            _ => false,
        }
    }
}

/// Tunables of the semantic-aware strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SemanticAwareConfig {
    /// Maximum donors tried per field position when expanding the
    /// combinatorial construction of Algorithm 3 (the paper's p × q grows
    /// quickly; this cap bounds the batch produced per valuable seed).
    pub max_donors_per_field: usize,
    /// Maximum number of packets queued from one construction pass.
    pub max_batch: usize,
    /// Probability of using a donor when one is available (1.0 reproduces
    /// Algorithm 3 exactly; lower values blend in fresh random content).
    pub donor_probability: f64,
    /// Whether the File Fixup pass repairs sizes and checksums after
    /// donor splicing (disabling this is the `repair` ablation).
    pub repair: bool,
    /// Whether the File Cracker collects only leaf puzzles (ablation).
    pub leaves_only: bool,
}

impl Default for SemanticAwareConfig {
    fn default() -> Self {
        Self {
            max_donors_per_field: 2,
            max_batch: 8,
            donor_probability: 0.7,
            repair: true,
            leaves_only: false,
        }
    }
}

/// The Peach\* strategy: coverage-guided packet crack and generation.
///
/// Until the first valuable seed appears the strategy behaves exactly like
/// the baseline. Once the puzzle corpus is non-empty, new packets are
/// assembled by donating puzzles to chunks that share their construction
/// rule (Algorithm 3), followed by the File Fixup pass.
pub struct SemanticAwareStrategy {
    config: SemanticAwareConfig,
    corpus: PuzzleCorpus,
    cracker: FileCracker,
    queue: VecDeque<Seed>,
    semantic_generated: u64,
    random_generated: u64,
    scratch: EmitScratch,
    values: GenScratch,
}

impl std::fmt::Debug for SemanticAwareStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SemanticAwareStrategy")
            .field("corpus", &self.corpus.len())
            .field("queued", &self.queue.len())
            .field("semantic_generated", &self.semantic_generated)
            .field("random_generated", &self.random_generated)
            .finish()
    }
}

impl SemanticAwareStrategy {
    /// Creates the strategy with the given configuration.
    #[must_use]
    pub fn new(config: SemanticAwareConfig) -> Self {
        Self {
            config,
            corpus: PuzzleCorpus::new(),
            cracker: FileCracker::new().leaves_only(config.leaves_only),
            queue: VecDeque::new(),
            semantic_generated: 0,
            random_generated: 0,
            scratch: EmitScratch::new(),
            values: GenScratch::default(),
        }
    }

    /// Creates the strategy pre-seeded with an existing puzzle corpus — the
    /// `--shared-corpus` entry point, where a later repetition inherits the
    /// donors every earlier repetition discovered.
    #[must_use]
    pub fn with_corpus(config: SemanticAwareConfig, corpus: PuzzleCorpus) -> Self {
        let mut strategy = Self::new(config);
        strategy.corpus = corpus;
        strategy
    }

    /// The current puzzle corpus.
    #[must_use]
    pub fn corpus(&self) -> &PuzzleCorpus {
        &self.corpus
    }

    /// Number of packets produced by donor-based construction.
    #[must_use]
    pub fn semantic_generated(&self) -> u64 {
        self.semantic_generated
    }

    /// Number of packets produced by plain model instantiation.
    #[must_use]
    pub fn random_generated(&self) -> u64 {
        self.random_generated
    }

    /// Recursive construction of Algorithm 3, generalised over the chunk
    /// tree: a chunk with a donor in the corpus is initialised from one of
    /// the donors; otherwise leaves fall back to the mutators and blocks
    /// recurse into their children.
    ///
    /// Returns the leaf-value assignments (one per generated packet).
    fn construct(&self, model: &DataModel, rng: &mut SmallRng) -> Vec<ValueAssignment> {
        let linear = model.linear();
        // Candidate content per leaf position. Donors are shared `Arc<[u8]>`
        // slices straight out of the corpus: sampling one and placing it into
        // an assignment is a reference-count bump, never a byte copy.
        let mut per_position: Vec<Vec<Arc<[u8]>>> = Vec::with_capacity(linear.len());
        for leaf in linear.iter() {
            let rule = leaf.chunk.rule_id();
            let donors = self.corpus.donors(rule);
            let mut candidates: Vec<Arc<[u8]>> = Vec::new();
            if !donors.is_empty() && rng.gen_bool(self.config.donor_probability) {
                let take = donors.len().min(self.config.max_donors_per_field);
                // Sample without replacement from the donor list.
                let mut indices: Vec<usize> = (0..donors.len()).collect();
                for _ in 0..take {
                    let pick = rng.gen_range(0..indices.len());
                    let donor_index = indices.swap_remove(pick);
                    candidates.push(Arc::clone(&donors[donor_index]));
                }
            }
            if candidates.is_empty() {
                candidates.push(Arc::from(mutator::generate_leaf(&leaf.chunk, rng)));
            }
            per_position.push(candidates);
        }

        // Expand the cross product, capped at max_batch packets. Cloning an
        // assignment clones Arc handles, so the p × q expansion stays cheap.
        let mut assignments = vec![ValueAssignment::new()];
        for (position, candidates) in per_position.iter().enumerate() {
            let mut expanded = Vec::with_capacity(assignments.len() * candidates.len());
            'outer: for assignment in &assignments {
                for candidate in candidates {
                    let mut next = assignment.clone();
                    next.set(position, Arc::clone(candidate));
                    expanded.push(next);
                    if expanded.len() >= self.config.max_batch {
                        break 'outer;
                    }
                }
            }
            assignments = expanded;
        }
        assignments
    }

    /// Queues a batch of donor-built packets for every data model. Called
    /// right after a valuable seed was cracked, mirroring the paper's flow:
    /// the semantic-aware strategy is employed in the iteration following a
    /// valuable-seed detection, and the puzzles of one packet type are
    /// donated to the models of the other packet types.
    fn refill_queue(&mut self, models: &DataModelSet, rng: &mut SmallRng) {
        const MAX_QUEUE: usize = 256;
        for model in models.models() {
            if self.queue.len() >= MAX_QUEUE {
                break;
            }
            let assignments = self.construct(model, rng);
            for assignment in assignments {
                if let Ok(bytes) =
                    emit_values_with(model, &assignment, self.config.repair, &mut self.scratch)
                {
                    self.queue.push_back(Seed::new(bytes, model.name(), true));
                }
            }
        }
    }
}

impl GenerationStrategy for SemanticAwareStrategy {
    fn name(&self) -> &'static str {
        "Peach*"
    }

    fn next_packet(&mut self, models: &DataModelSet, rng: &mut SmallRng) -> GeneratedPacket {
        let mut seed = Seed::new(Vec::new(), "", false);
        self.next_packet_into(models, rng, &mut seed);
        seed
    }

    fn next_packet_into(
        &mut self,
        models: &DataModelSet,
        rng: &mut SmallRng,
        slot: &mut GeneratedPacket,
    ) {
        // Drain the batch queued after the last valuable seed first; fall
        // back to the inherent (random) generation strategy otherwise —
        // exactly the control flow described in §IV-A of the paper.
        if let Some(seed) = self.queue.pop_front() {
            self.semantic_generated += 1;
            *slot = seed;
            return;
        }
        self.random_generated += 1;
        let Some(model) = pick_model(models, rng) else {
            set_empty_seed(slot);
            return;
        };
        instantiate_randomly_into(
            model,
            rng,
            true,
            &mut self.scratch,
            &mut self.values,
            &mut slot.bytes,
        );
        slot.model.clear();
        slot.model.push_str(model.name());
        slot.semantic = false;
    }

    fn observe(&mut self, packet: &GeneratedPacket, valuable: bool, models: &DataModelSet) {
        if !valuable {
            return;
        }
        // Algorithm 2: crack the valuable seed into puzzles for the corpus,
        // then queue the semantic-aware batch for the following iterations.
        let added = self
            .cracker
            .crack_into(models, &packet.bytes, &mut self.corpus);
        if added > 0 {
            let mut rng = SmallRng::seed_from_u64(
                self.corpus.inserted() ^ (packet.bytes.len() as u64) << 32,
            );
            self.refill_queue(models, &mut rng);
        }
    }

    fn corpus_size(&self) -> usize {
        self.corpus.len()
    }

    fn snapshot_state(&self) -> StrategyState {
        StrategyState::PeachStar {
            corpus: self.corpus.clone(),
            queue: self.queue.iter().cloned().collect(),
            semantic_generated: self.semantic_generated,
            random_generated: self.random_generated,
        }
    }

    fn restore_state(&mut self, state: StrategyState) -> bool {
        match state {
            StrategyState::PeachStar {
                corpus,
                queue,
                semantic_generated,
                random_generated,
            } => {
                self.corpus = corpus;
                self.queue = queue.into();
                self.semantic_generated = semantic_generated;
                self.random_generated = random_generated;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peachstar_datamodel::emit::emit_default;
    use peachstar_datamodel::examples::toy_protocol;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(11)
    }

    #[test]
    fn baseline_generates_packets_for_every_model() {
        let models = toy_protocol();
        let mut strategy = RandomGenerationStrategy::new();
        let mut rng = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let packet = strategy.next_packet(&models, &mut rng);
            seen.insert(packet.model.clone());
            assert!(!packet.semantic);
        }
        assert_eq!(seen.len(), models.len(), "all packet types get generated");
        assert_eq!(strategy.generated(), 100);
        assert_eq!(strategy.corpus_size(), 0);
    }

    #[test]
    fn baseline_ignores_feedback() {
        let models = toy_protocol();
        let mut strategy = RandomGenerationStrategy::new();
        let mut rng = rng();
        let packet = strategy.next_packet(&models, &mut rng);
        strategy.observe(&packet, true, &models);
        assert_eq!(strategy.corpus_size(), 0);
    }

    #[test]
    fn semantic_strategy_behaves_like_baseline_until_first_valuable_seed() {
        let models = toy_protocol();
        let mut strategy = SemanticAwareStrategy::new(SemanticAwareConfig::default());
        let mut rng = rng();
        for _ in 0..20 {
            let packet = strategy.next_packet(&models, &mut rng);
            assert!(!packet.semantic, "no corpus yet, so no semantic packets");
        }
        assert_eq!(strategy.semantic_generated(), 0);
    }

    #[test]
    fn valuable_seed_populates_corpus_and_enables_semantic_generation() {
        let models = toy_protocol();
        let mut strategy = SemanticAwareStrategy::new(SemanticAwareConfig::default());
        let mut rng = rng();
        // Pretend the default echo packet was valuable.
        let valuable = Seed::new(
            emit_default(models.find("echo").unwrap()).unwrap(),
            "echo",
            false,
        );
        strategy.observe(&valuable, true, &models);
        assert!(strategy.corpus_size() > 0);

        let mut semantic_seen = false;
        for _ in 0..50 {
            let packet = strategy.next_packet(&models, &mut rng);
            if packet.semantic {
                semantic_seen = true;
                assert!(!packet.bytes.is_empty());
            }
        }
        assert!(semantic_seen, "semantic packets should appear once the corpus is populated");
        assert!(strategy.semantic_generated() > 0);
    }

    #[test]
    fn non_valuable_seeds_are_not_cracked() {
        let models = toy_protocol();
        let mut strategy = SemanticAwareStrategy::new(SemanticAwareConfig::default());
        let valuable = Seed::new(
            emit_default(models.find("echo").unwrap()).unwrap(),
            "echo",
            false,
        );
        strategy.observe(&valuable, false, &models);
        assert_eq!(strategy.corpus_size(), 0);
    }

    #[test]
    fn construct_honours_the_batch_cap() {
        let models = toy_protocol();
        let config = SemanticAwareConfig {
            max_batch: 4,
            ..SemanticAwareConfig::default()
        };
        let mut strategy = SemanticAwareStrategy::new(config);
        let valuable = Seed::new(
            emit_default(models.find("echo").unwrap()).unwrap(),
            "echo",
            false,
        );
        strategy.observe(&valuable, true, &models);
        let assignments = strategy.construct(models.find("echo").unwrap(), &mut rng());
        assert!(assignments.len() <= 4);
        assert!(!assignments.is_empty());
    }

    #[test]
    fn donated_packets_reuse_cracked_content() {
        let models = toy_protocol();
        let mut strategy = SemanticAwareStrategy::new(SemanticAwareConfig {
            donor_probability: 1.0,
            ..SemanticAwareConfig::default()
        });
        // Crack an echo packet with a distinctive device address.
        let echo = models.find("echo").unwrap();
        let mut assignment = ValueAssignment::new();
        assignment.set(1, vec![0xBE, 0xEF]); // device field
        let packet = emit_values_with(echo, &assignment, true, &mut EmitScratch::new()).unwrap();
        strategy.observe(&Seed::new(packet, "echo", false), true, &models);

        // Generated read/write packets should frequently carry 0xBEEF in
        // their shared device-address field.
        let mut rng = rng();
        let mut reused = false;
        for _ in 0..200 {
            let packet = strategy.next_packet(&models, &mut rng);
            if packet.semantic && packet.bytes.windows(2).any(|w| w == [0xBE, 0xEF]) {
                reused = true;
                break;
            }
        }
        assert!(reused, "donated device address should reappear in new packets");
    }

    #[test]
    fn next_packet_into_matches_next_packet_for_both_strategies() {
        // The arena entry point must be a drop-in for the allocating one:
        // same packets for the same RNG stream, same bookkeeping — including
        // when a pre-populated slot carries stale bytes from an earlier,
        // longer packet.
        let models = toy_protocol();
        for kind in [StrategyKind::Peach, StrategyKind::PeachStar] {
            let mut by_value = kind.create();
            let mut in_place = kind.create();
            let mut rng_a = SmallRng::seed_from_u64(17);
            let mut rng_b = SmallRng::seed_from_u64(17);
            let mut slot = Seed::new(vec![0xEE; 300], "stale-model-name", true);
            for round in 0..150 {
                let fresh = by_value.next_packet(&models, &mut rng_a);
                in_place.next_packet_into(&models, &mut rng_b, &mut slot);
                assert_eq!(slot, fresh, "{kind} round {round}");
                // Exercise the feedback path too, so Peach* queues semantic
                // batches on both sides identically.
                if round == 10 {
                    by_value.observe(&fresh, true, &models);
                    in_place.observe(&slot, true, &models);
                }
            }
        }
    }

    #[test]
    fn empty_model_set_yields_empty_seed_instead_of_panicking() {
        let empty = DataModelSet::new("empty");
        let mut rng = rng();
        for kind in [StrategyKind::Peach, StrategyKind::PeachStar] {
            let mut strategy = kind.create();
            let packet = strategy.next_packet(&empty, &mut rng);
            assert!(packet.bytes.is_empty(), "{kind}: empty set → empty bytes");
            assert_eq!(packet.model, "<empty-model-set>");
            assert!(!packet.semantic);
            // Observing the degenerate packet must not panic either.
            strategy.observe(&packet, true, &empty);
        }
    }

    #[test]
    fn strategy_kind_factory() {
        assert_eq!(StrategyKind::Peach.create().name(), "Peach");
        assert_eq!(StrategyKind::PeachStar.create().name(), "Peach*");
        assert_eq!(StrategyKind::PeachStar.to_string(), "Peach*");
    }
}
