//! Per-data-type chunk generators (the `GENERATE` step of Algorithm 1).
//!
//! Peach produces chunk content through type-specific *Mutators*: random
//! generation, mutation of the default value and mutation of existing
//! chunks. This module implements the equivalent generators used by both the
//! baseline and the semantic-aware strategy (the latter falls back to them
//! when the puzzle corpus has no donor for a rule).

use rand::rngs::SmallRng;
use rand::Rng;

use peachstar_datamodel::{Chunk, ChunkKind, LengthSpec, NumberSpec, NumberWidth};

/// Boundary values a numeric mutator likes to probe.
fn boundary_values(width: NumberWidth) -> [u64; 6] {
    let max = width.max_value();
    [0, 1, max, max - 1, max / 2, max / 2 + 1]
}

/// Generates content for one leaf chunk according to its specification.
///
/// The distribution mirrors Peach's mutator mix: mostly legal-looking
/// values (defaults, allowed sets, in-range-looking numbers) with a tail of
/// boundary and fully random values, so that the validity checks of the
/// target are exercised but not always passed.
///
/// # Panics
///
/// Panics if `chunk` is not a leaf (number, bytes or string).
#[must_use]
pub fn generate_leaf(chunk: &Chunk, rng: &mut SmallRng) -> Vec<u8> {
    let mut out = Vec::new();
    generate_leaf_into(chunk, rng, &mut out);
    out
}

/// [`generate_leaf`] appended to a caller-provided buffer.
///
/// Consumes the RNG exactly as [`generate_leaf`] does (campaigns are seeded,
/// so the two must be drop-in interchangeable without moving the stream),
/// but writes into a reusable buffer so the generation hot path allocates
/// nothing per leaf.
///
/// # Panics
///
/// Panics if `chunk` is not a leaf (number, bytes or string).
pub fn generate_leaf_into(chunk: &Chunk, rng: &mut SmallRng, out: &mut Vec<u8>) {
    match &chunk.kind {
        ChunkKind::Number(spec) => generate_number_into(spec, rng, out),
        ChunkKind::Bytes(spec) => generate_bytes_into(&spec.length, &spec.default, rng, out),
        ChunkKind::Str(spec) => generate_string_into(&spec.length, &spec.default, rng, out),
        ChunkKind::Block(_) | ChunkKind::Choice(_) => {
            panic!("generate_leaf called on structural chunk `{}`", chunk.name)
        }
    }
}

/// Generates an encoded value for a numeric chunk.
#[must_use]
pub fn generate_number(spec: &NumberSpec, rng: &mut SmallRng) -> Vec<u8> {
    let value = pick_number_value(spec, rng);
    spec.encode(value)
}

/// [`generate_number`] appended to a caller-provided buffer.
pub fn generate_number_into(spec: &NumberSpec, rng: &mut SmallRng, out: &mut Vec<u8>) {
    let value = pick_number_value(spec, rng);
    spec.encode_into(value, out);
}

/// Picks a raw numeric value for a numeric chunk (before encoding).
#[must_use]
pub fn pick_number_value(spec: &NumberSpec, rng: &mut SmallRng) -> u64 {
    let roll: f64 = rng.gen();
    if let Some(allowed) = &spec.allowed {
        // Constrained fields (function codes, type ids): mostly legal values,
        // occasionally something illegal to poke the validation code.
        if roll < 0.85 {
            return allowed[rng.gen_range(0..allowed.len())];
        }
        return rng.gen_range(0..=spec.width.max_value());
    }
    if roll < 0.10 {
        spec.default
    } else if roll < 0.15 {
        // Small values: in-range addresses/counts for most targets.
        rng.gen_range(0..=0xff.min(spec.width.max_value()))
    } else if roll < 0.45 {
        let boundaries = boundary_values(spec.width);
        boundaries[rng.gen_range(0..boundaries.len())]
    } else if roll < 0.55 {
        // Default perturbed by a small delta.
        let delta = rng.gen_range(0..=16u64);
        if rng.gen_bool(0.5) {
            spec.default.saturating_add(delta) & spec.width.max_value()
        } else {
            spec.default.saturating_sub(delta)
        }
    } else {
        // The bulk of Peach's numeric mutations are unconstrained random
        // values — which is exactly why the paper calls the baseline's
        // generation "random and pointless" for digging into deep paths.
        rng.gen_range(0..=spec.width.max_value())
    }
}

/// Generates content for a raw-bytes chunk.
#[must_use]
pub fn generate_bytes(length: &LengthSpec, default: &[u8], rng: &mut SmallRng) -> Vec<u8> {
    let mut out = Vec::new();
    generate_bytes_into(length, default, rng, &mut out);
    out
}

/// [`generate_bytes`] appended to a caller-provided buffer. Same RNG stream,
/// no allocation.
pub fn generate_bytes_into(
    length: &LengthSpec,
    default: &[u8],
    rng: &mut SmallRng,
    out: &mut Vec<u8>,
) {
    let target_len = match length {
        LengthSpec::Fixed(len) => *len,
        LengthSpec::FromField(_) | LengthSpec::Remainder => {
            let roll: f64 = rng.gen();
            if roll < 0.5 && !default.is_empty() {
                default.len()
            } else if roll < 0.9 {
                rng.gen_range(0..=32)
            } else {
                rng.gen_range(32..=256)
            }
        }
    };
    let roll: f64 = rng.gen();
    let start = out.len();
    if roll < 0.45 && !default.is_empty() {
        // Default content resized to the target length.
        out.extend(default.iter().copied().cycle().take(target_len));
        out.resize(start + target_len, 0);
    } else if roll < 0.7 {
        // A repeated single byte.
        let byte: u8 = rng.gen();
        out.resize(start + target_len, byte);
    } else {
        out.extend((0..target_len).map(|_| rng.gen::<u8>()));
    }
}

/// Generates content for a string chunk.
#[must_use]
pub fn generate_string(length: &LengthSpec, default: &str, rng: &mut SmallRng) -> Vec<u8> {
    let mut out = Vec::new();
    generate_string_into(length, default, rng, &mut out);
    out
}

/// [`generate_string`] appended to a caller-provided buffer. Same RNG
/// stream, no allocation.
pub fn generate_string_into(
    length: &LengthSpec,
    default: &str,
    rng: &mut SmallRng,
    out: &mut Vec<u8>,
) {
    let target_len = match length {
        LengthSpec::Fixed(len) => *len,
        LengthSpec::FromField(_) | LengthSpec::Remainder => {
            if rng.gen_bool(0.6) && !default.is_empty() {
                default.len()
            } else {
                rng.gen_range(0..=40)
            }
        }
    };
    let start = out.len();
    if rng.gen_bool(0.55) && !default.is_empty() {
        out.extend(default.bytes().cycle().take(target_len));
        out.resize(start + target_len, b' ');
    } else {
        const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789/$._-";
        out.extend((0..target_len).map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peachstar_datamodel::{BytesSpec, StrSpec};
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn number_generation_respects_width() {
        let mut rng = rng();
        let spec = NumberSpec::u16_be();
        for _ in 0..200 {
            let bytes = generate_number(&spec, &mut rng);
            assert_eq!(bytes.len(), 2);
        }
    }

    #[test]
    fn constrained_numbers_mostly_pick_legal_values() {
        let mut rng = rng();
        let spec = NumberSpec::u8().allowed_values(vec![3, 6, 16]);
        let mut legal = 0usize;
        let total = 1000usize;
        for _ in 0..total {
            let value = pick_number_value(&spec, &mut rng);
            if [3u64, 6, 16].contains(&value) {
                legal += 1;
            }
        }
        assert!(legal > total / 2, "{legal} of {total} legal");
        assert!(legal < total, "some illegal values must appear too");
    }

    #[test]
    fn fixed_bytes_have_exact_length() {
        let mut rng = rng();
        let spec = BytesSpec::fixed(7);
        for _ in 0..100 {
            assert_eq!(generate_bytes(&spec.length, &spec.default, &mut rng).len(), 7);
        }
    }

    #[test]
    fn variable_bytes_vary_in_length() {
        let mut rng = rng();
        let spec = BytesSpec::remainder().default_content(vec![1, 2, 3]);
        let lengths: std::collections::HashSet<usize> = (0..200)
            .map(|_| generate_bytes(&spec.length, &spec.default, &mut rng).len())
            .collect();
        assert!(lengths.len() > 3, "lengths should vary: {lengths:?}");
    }

    #[test]
    fn fixed_strings_have_exact_length() {
        let mut rng = rng();
        let spec = StrSpec::fixed(11).default_content("GGIO1$AnIn1");
        for _ in 0..100 {
            assert_eq!(
                generate_string(&spec.length, &spec.default, &mut rng).len(),
                11
            );
        }
    }

    #[test]
    fn leaf_dispatch_covers_all_leaf_kinds() {
        let mut rng = rng();
        let number = Chunk::number("n", NumberSpec::u32_be());
        let bytes = Chunk::bytes("b", BytesSpec::fixed(3));
        let string = Chunk::str("s", StrSpec::fixed(4));
        assert_eq!(generate_leaf(&number, &mut rng).len(), 4);
        assert_eq!(generate_leaf(&bytes, &mut rng).len(), 3);
        assert_eq!(generate_leaf(&string, &mut rng).len(), 4);
    }

    #[test]
    #[should_panic(expected = "structural chunk")]
    fn leaf_dispatch_panics_on_blocks() {
        let mut rng = rng();
        let block = Chunk::block("blk", vec![Chunk::number("x", NumberSpec::u8())]);
        let _ = generate_leaf(&block, &mut rng);
    }

    #[test]
    fn into_variants_match_the_allocating_variants_draw_for_draw() {
        // The buffer-reusing hot path must consume the RNG exactly as the
        // allocating functions do: a seeded campaign's packet stream may not
        // move when a strategy switches to the `_into` variants.
        let chunks = [
            Chunk::number("n", NumberSpec::u32_be()),
            Chunk::bytes("fixed", BytesSpec::fixed(5).default_content(vec![1, 2])),
            Chunk::bytes("rem", BytesSpec::remainder().default_content(vec![7, 8, 9])),
            Chunk::bytes("rem_empty", BytesSpec::remainder()),
            Chunk::str("s", StrSpec::fixed(6).default_content("abc")),
            Chunk::str("s_var", StrSpec::remainder()),
        ];
        for chunk in &chunks {
            let mut rng_a = SmallRng::seed_from_u64(99);
            let mut rng_b = SmallRng::seed_from_u64(99);
            let mut reused = Vec::new();
            for round in 0..200 {
                let allocated = generate_leaf(chunk, &mut rng_a);
                reused.clear();
                generate_leaf_into(chunk, &mut rng_b, &mut reused);
                assert_eq!(allocated, reused, "chunk `{}` round {round}", chunk.name);
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = NumberSpec::u32_be().default_value(9);
        let run = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..50)
                .map(|_| generate_number(&spec, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
