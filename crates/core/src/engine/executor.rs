//! The [`Executor`] seam: who runs a packet, and when the target resets.

use peachstar_coverage::{TraceContext, TraceMap};
use peachstar_datamodel::DataModelSet;
use peachstar_protocols::{Outcome, Target};

/// Runs packets against a target and owns the *reset policy* — both the
/// periodic session reset and the restart after a fault (the paper's harness
/// restarts the crashed server).
///
/// The campaign loop calls [`execute`](Executor::execute) once per execution
/// and never touches the target directly, so alternative executors (batched,
/// remote, forkserver-style) can slot in without changing the loop.
pub trait Executor {
    /// Short name of the target being executed.
    fn target_name(&self) -> &'static str;

    /// The format specification of the target under execution.
    fn data_models(&self) -> DataModelSet;

    /// Runs one packet as execution number `execution` (1-based): applies
    /// the periodic reset policy, feeds the packet to the target, restarts
    /// the target after a fault, and returns the outcome together with the
    /// execution's coverage trace.
    fn execute(&mut self, execution: u64, packet: &[u8]) -> (Outcome, &TraceMap);
}

/// The standard single-target executor: one [`Target`] instance, one reused
/// [`TraceContext`] (reset clears only the slots the previous execution
/// dirtied), periodic session resets every `reset_interval` executions.
pub struct TargetExecutor {
    target: Box<dyn Target>,
    ctx: TraceContext,
    reset_interval: u64,
}

impl TargetExecutor {
    /// Wraps a target with the given periodic reset interval (0 disables
    /// periodic resets; fault resets always happen).
    #[must_use]
    pub fn new(target: Box<dyn Target>, reset_interval: u64) -> Self {
        Self {
            target,
            ctx: TraceContext::new(),
            reset_interval,
        }
    }

    /// The wrapped target.
    #[must_use]
    pub fn target(&self) -> &dyn Target {
        self.target.as_ref()
    }
}

impl std::fmt::Debug for TargetExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TargetExecutor")
            .field("target", &self.target.name())
            .field("reset_interval", &self.reset_interval)
            .finish()
    }
}

impl Executor for TargetExecutor {
    fn target_name(&self) -> &'static str {
        self.target.name()
    }

    fn data_models(&self) -> DataModelSet {
        self.target.data_models()
    }

    fn execute(&mut self, execution: u64, packet: &[u8]) -> (Outcome, &TraceMap) {
        if self.reset_interval > 0 && execution.is_multiple_of(self.reset_interval) {
            self.target.reset();
        }
        self.ctx.reset();
        let outcome = self.target.process(packet, &mut self.ctx);
        if outcome.is_fault() {
            // A fault leaves the session in an undefined state; restart the
            // target, as the paper's harness restarts the crashed server.
            self.target.reset();
        }
        (outcome, self.ctx.trace())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peachstar_protocols::TargetId;

    #[test]
    fn executor_exposes_target_metadata() {
        let executor = TargetExecutor::new(TargetId::Modbus.create(), 100);
        assert_eq!(executor.target_name(), "libmodbus");
        assert!(!executor.data_models().is_empty());
        assert_eq!(executor.target().name(), "libmodbus");
    }

    #[test]
    fn execute_records_a_trace() {
        let mut executor = TargetExecutor::new(TargetId::Modbus.create(), 0);
        let request = [
            0x00, 0x01, 0x00, 0x00, 0x00, 0x06, 0x01, 0x03, 0x00, 0x00, 0x00, 0x02,
        ];
        let (outcome, trace) = executor.execute(1, &request);
        assert!(outcome.response().is_some());
        assert!(trace.edges_hit() > 0);
        // The next execution starts from a clean trace.
        let (_, trace) = executor.execute(2, &[]);
        assert!(trace.edges_hit() > 0, "rejection path is instrumented");
    }
}
