//! The [`Executor`] seam: who runs a packet, and when the target resets.

use std::time::Duration;

use peachstar_coverage::{TraceContext, TraceMap};
use peachstar_datamodel::DataModelSet;
use peachstar_protocols::{DecodeSink, Outcome, Target, WindowResults};

use super::supervisor::{contained, panic_fault, Watchdog};

/// When the target's session state is wiped back to the just-started
/// condition (in addition to the unconditional restart after a fault).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResetPolicy {
    /// Reset before every execution that is a multiple of the interval
    /// (0 disables periodic resets entirely) — the classic policy of the
    /// paper's harness.
    Interval(u64),
    /// Reset at every *session* boundary: before executions `1`, `1 + len`,
    /// `1 + 2·len`, … so that target state persists across all `len` packets
    /// of a session (handshake, payload, teardown) and never leaks into the
    /// next one. Used together with a session-aware
    /// [`Schedule`](crate::engine::Schedule) whose sessions are `len`
    /// packets long.
    PerSession(u64),
}

impl ResetPolicy {
    /// Whether the target resets before running execution number
    /// `execution` (1-based).
    #[must_use]
    pub fn resets_before(self, execution: u64) -> bool {
        match self {
            ResetPolicy::Interval(0) => false,
            ResetPolicy::Interval(interval) => execution.is_multiple_of(interval),
            ResetPolicy::PerSession(length) => {
                length > 0 && (execution - 1).is_multiple_of(length)
            }
        }
    }

    /// The 1-based execution numbers `1..=budget` this policy resets before
    /// — exactly the window boundaries a sharded campaign must align to.
    ///
    /// Steps arithmetically (one item per boundary), so enumerating the
    /// boundaries of a multi-million-execution campaign costs O(boundaries),
    /// not O(budget).
    pub fn boundaries(self, budget: u64) -> impl Iterator<Item = u64> {
        // (first boundary, stride); `None` for policies that never reset.
        let stride = match self {
            ResetPolicy::Interval(0) | ResetPolicy::PerSession(0) => None,
            ResetPolicy::Interval(interval) => Some((interval, interval)),
            ResetPolicy::PerSession(length) => Some((1, length)),
        };
        stride.into_iter().flat_map(move |(first, step)| {
            (first..=budget).step_by(usize::try_from(step).unwrap_or(usize::MAX))
        })
    }
}

/// Runs packets against a target and owns the *reset policy* — both the
/// periodic session reset and the restart after a fault (the paper's harness
/// restarts the crashed server).
///
/// The campaign loop calls [`execute`](Executor::execute) once per execution
/// and never touches the target directly, so alternative executors (batched,
/// remote, forkserver-style) can slot in without changing the loop.
///
/// # Example
///
/// ```
/// use peachstar::engine::{Executor, TargetExecutor};
/// use peachstar_protocols::TargetId;
///
/// // Reset the Modbus target's session state every 100 executions.
/// let mut executor = TargetExecutor::new(TargetId::Modbus.create(), 100);
/// let request = [0x00, 0x01, 0x00, 0x00, 0x00, 0x06, 0x01, 0x03, 0x00, 0x00, 0x00, 0x02];
/// let (outcome, trace) = executor.execute(1, &request);
/// assert!(outcome.response().is_some());
/// assert!(trace.edges_hit() > 0, "every execution is instrumented");
/// ```
pub trait Executor {
    /// Short name of the target being executed.
    fn target_name(&self) -> &'static str;

    /// The format specification of the target under execution.
    fn data_models(&self) -> DataModelSet;

    /// Runs one packet as execution number `execution` (1-based): applies
    /// the periodic reset policy, feeds the packet to the target, restarts
    /// the target after a fault, and returns the outcome together with the
    /// execution's coverage trace.
    fn execute(&mut self, execution: u64, packet: &[u8]) -> (Outcome, &TraceMap);

    /// Runs one *window* of packets — executions `first_execution ..` in
    /// order — in a single call, replacing `out`'s previous contents with
    /// one `(summary, snapshot)` pair per packet.
    ///
    /// This is the batch entry point the amortised campaign drivers use: a
    /// window crosses the executor seam once instead of once per execution,
    /// so implementations can hoist per-packet dispatch (see
    /// [`Target::process_batch`]) while the default keeps every existing
    /// executor working by looping [`execute`](Executor::execute).
    ///
    /// The per-packet outcomes and traces must be identical to calling
    /// `execute` for each packet — batched campaigns are required to be
    /// bit-identical to sequential ones.
    fn execute_window(
        &mut self,
        first_execution: u64,
        packets: &[&[u8]],
        out: &mut WindowResults,
    ) {
        out.begin();
        for (offset, packet) in packets.iter().enumerate() {
            let (outcome, trace) = self.execute(first_execution + offset as u64, packet);
            out.record(&outcome, trace);
        }
    }
}

/// The standard single-target executor: one [`Target`] instance, one reused
/// [`TraceContext`] (reset clears only the slots the previous execution
/// dirtied), and a [`ResetPolicy`] deciding when session state is wiped.
///
/// # Fault tolerance
///
/// The executor treats target misbehaviour as data rather than as a
/// process-fatal event:
///
/// * a `panic!` escaping [`Target::process`]/[`Target::process_batch`] is
///   contained with `catch_unwind` and recorded as a synthetic
///   [`FaultKind::Panic`](peachstar_protocols::FaultKind::Panic) fault whose
///   dedup site is the interned panic message; the poisoned target instance
///   is discarded and rebuilt from a pristine spare (taken via
///   [`Target::clone_fresh`] at construction), and the campaign continues on
///   the same RNG stream;
/// * with [`with_deadline`](TargetExecutor::with_deadline), executions run
///   under a hang watchdog on a supervised worker thread: an execution that
///   exceeds the deadline is abandoned and recorded as a
///   [`FaultKind::Hang`](peachstar_protocols::FaultKind::Hang) fault, and
///   the worker is rebuilt fresh.
///
/// Both layers are transparent for well-behaved executions — outcomes and
/// traces are bit-identical to the uncontained path — which is what keeps
/// the pinned campaign reports byte-stable.
pub struct TargetExecutor {
    target: Box<dyn Target>,
    /// Pristine copy taken at construction, never executed: the rebuild
    /// source after a contained panic (the panicked instance may be left in
    /// an arbitrary state, so `clone_fresh` is taken from this spare, not
    /// from the poisoned target).
    spare: Box<dyn Target + Send>,
    ctx: TraceContext,
    policy: ResetPolicy,
    /// Armed by [`with_deadline`](TargetExecutor::with_deadline): executions
    /// are delegated to the supervised worker and `scratch` re-materialises
    /// the sparse reply traces.
    watchdog: Option<Watchdog>,
    scratch: TraceMap,
    /// Decode sink armed around whole-window executions. [`DecodeSink::Full`]
    /// (the default) builds every response and error string;
    /// [`DecodeSink::Summary`] keeps control flow and traces identical but
    /// skips the payload formatting the batched campaign loop never reads.
    /// Per-packet fallback paths (watchdog, interior resets, post-panic
    /// completion) always run full decodes.
    sink: DecodeSink,
}

impl TargetExecutor {
    /// Wraps a target with the given periodic reset interval (0 disables
    /// periodic resets; fault resets always happen). Shorthand for
    /// [`with_policy`](TargetExecutor::with_policy) with
    /// [`ResetPolicy::Interval`].
    #[must_use]
    pub fn new(target: Box<dyn Target>, reset_interval: u64) -> Self {
        Self::with_policy(target, ResetPolicy::Interval(reset_interval))
    }

    /// Wraps a target with an explicit reset policy.
    #[must_use]
    pub fn with_policy(target: Box<dyn Target>, policy: ResetPolicy) -> Self {
        let spare = target.clone_fresh();
        Self {
            target,
            spare,
            ctx: TraceContext::new(),
            policy,
            watchdog: None,
            scratch: TraceMap::new(),
            sink: DecodeSink::Full,
        }
    }

    /// Arms the hang watchdog: every execution runs on a supervised worker
    /// thread and is abandoned — recorded as a
    /// [`FaultKind::Hang`](peachstar_protocols::FaultKind::Hang) fault with
    /// an empty trace — if it exceeds `timeout`. When nothing hangs, the
    /// supervised stream is bit-identical to the unsupervised one.
    #[must_use]
    pub fn with_deadline(mut self, timeout: Duration) -> Self {
        self.watchdog = Some(Watchdog::new(self.spare.clone_fresh(), timeout));
        self
    }

    /// Selects the decode sink armed around whole-window executions.
    ///
    /// [`DecodeSink::Summary`] skips response assembly and error-string
    /// formatting inside the decoders while leaving every branch, state
    /// mutation and recorded trace identical — outcome *variants* (and
    /// therefore campaign reports) are bit-for-bit the same as under
    /// [`DecodeSink::Full`]. Debug builds cross-check that claim on the
    /// first packet of every batched window.
    #[must_use]
    pub fn with_sink(mut self, sink: DecodeSink) -> Self {
        self.sink = sink;
        self
    }

    /// The decode sink armed around whole-window executions.
    #[must_use]
    pub fn sink(&self) -> DecodeSink {
        self.sink
    }

    /// The enforced per-execution deadline, when the watchdog is armed.
    #[must_use]
    pub fn deadline(&self) -> Option<Duration> {
        self.watchdog.as_ref().map(Watchdog::timeout)
    }

    /// The wrapped target.
    #[must_use]
    pub fn target(&self) -> &dyn Target {
        self.target.as_ref()
    }

    /// The reset policy in force.
    #[must_use]
    pub fn policy(&self) -> ResetPolicy {
        self.policy
    }
}

impl std::fmt::Debug for TargetExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TargetExecutor")
            .field("target", &self.target.name())
            .field("policy", &self.policy)
            .field("deadline", &self.deadline())
            .finish()
    }
}

impl Executor for TargetExecutor {
    fn target_name(&self) -> &'static str {
        self.target.name()
    }

    fn data_models(&self) -> DataModelSet {
        self.target.data_models()
    }

    fn execute(&mut self, execution: u64, packet: &[u8]) -> (Outcome, &TraceMap) {
        let resets = self.policy.resets_before(execution);
        if let Some(watchdog) = &mut self.watchdog {
            // Supervised mode: the worker thread owns the authoritative
            // target and applies the same reset/containment sequence as the
            // in-thread path below; the reply trace is re-materialised into
            // `scratch` so callers keep seeing a dense `TraceMap`.
            let (outcome, trace) = watchdog.execute(resets, packet);
            self.scratch.load_sparse(&trace);
            return (outcome, &self.scratch);
        }
        if resets {
            self.target.reset();
        }
        self.ctx.reset();
        let outcome = match contained(|| self.target.process(packet, &mut self.ctx)) {
            Ok(outcome) => outcome,
            Err(message) => {
                // The panic may have left the target in an arbitrary state;
                // discard it and rebuild from the pristine spare. The trace
                // keeps the edges recorded up to the panic — real coverage.
                self.target = self.spare.clone_fresh();
                Outcome::Fault(panic_fault(&message))
            }
        };
        if outcome.is_fault() {
            // A fault leaves the session in an undefined state; restart the
            // target, as the paper's harness restarts the crashed server.
            self.target.reset();
        }
        (outcome, self.ctx.trace())
    }

    fn execute_window(
        &mut self,
        first_execution: u64,
        packets: &[&[u8]],
        out: &mut WindowResults,
    ) {
        // A window with a reset boundary strictly inside it cannot be handed
        // to the target wholesale (the target would miss a mid-window
        // reset); fall back to the per-execution path, which applies the
        // policy at every step. Reset-aligned drivers never hit this branch.
        // The supervised (watchdog) path is per-packet by construction: each
        // execution needs its own deadline.
        let interior_reset = (1..packets.len() as u64)
            .any(|offset| self.policy.resets_before(first_execution + offset));
        if interior_reset || self.watchdog.is_some() {
            out.begin();
            for (offset, packet) in packets.iter().enumerate() {
                let (outcome, trace) = self.execute(first_execution + offset as u64, packet);
                out.record(&outcome, trace);
            }
            return;
        }
        // The whole window runs inside one target call: the per-execution
        // policy check collapses to a single window-start check, and the
        // target's `process_batch` (overridable per protocol) owns the
        // packet loop — one virtual dispatch per window instead of one per
        // packet.
        if self.policy.resets_before(first_execution) {
            self.target.reset();
        }
        // In summary mode, debug builds re-prove the full/summary
        // bit-identity claim on the first packet of every window, against a
        // fresh clone (so the stateful run below is untouched).
        #[cfg(debug_assertions)]
        if self.sink == DecodeSink::Summary {
            if let Some(packet) = packets.first() {
                peachstar_protocols::sink::debug_cross_check_sinks(self.target.as_ref(), packet);
            }
        }
        let sink = self.sink;
        if let Err(message) =
            contained(|| self.target.process_batch(packets, &mut self.ctx, out, sink))
        {
            // The batch panicked while processing packet `out.len()` (every
            // `process_batch` implementation records incrementally): record
            // the synthetic fault with the partial trace of the panicking
            // packet, rebuild the target, and finish the window on the
            // per-execution path — which contains any further panics and is
            // exactly what a sequential run of the same packets would do.
            out.record(&Outcome::Fault(panic_fault(&message)), self.ctx.trace());
            self.target = self.spare.clone_fresh();
            let completed = out.len();
            for (offset, packet) in packets.iter().enumerate().skip(completed) {
                let (outcome, trace) = self.execute(first_execution + offset as u64, packet);
                out.record(&outcome, trace);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peachstar_protocols::TargetId;

    #[test]
    fn interval_policy_matches_the_historic_reset_cadence() {
        let policy = ResetPolicy::Interval(250);
        let resets: Vec<u64> = policy.boundaries(1_000).collect();
        assert_eq!(resets, vec![250, 500, 750, 1_000]);
        assert!(ResetPolicy::Interval(0).boundaries(100).next().is_none());
    }

    #[test]
    fn per_session_policy_resets_at_session_starts() {
        let policy = ResetPolicy::PerSession(10);
        let resets: Vec<u64> = policy.boundaries(35).collect();
        assert_eq!(resets, vec![1, 11, 21, 31], "executions 1 + k·len");
        assert!(!policy.resets_before(10), "never inside a session");
        assert!(ResetPolicy::PerSession(0).boundaries(100).next().is_none());
    }

    #[test]
    fn boundaries_agree_with_resets_before() {
        // The arithmetic stepping must enumerate exactly the executions the
        // per-execution predicate accepts.
        for policy in [
            ResetPolicy::Interval(0),
            ResetPolicy::Interval(1),
            ResetPolicy::Interval(7),
            ResetPolicy::PerSession(0),
            ResetPolicy::PerSession(1),
            ResetPolicy::PerSession(10),
        ] {
            let stepped: Vec<u64> = policy.boundaries(100).collect();
            let filtered: Vec<u64> =
                (1..=100).filter(|&execution| policy.resets_before(execution)).collect();
            assert_eq!(stepped, filtered, "{policy:?}");
        }
    }

    #[test]
    fn executor_exposes_target_metadata() {
        let executor = TargetExecutor::new(TargetId::Modbus.create(), 100);
        assert_eq!(executor.target_name(), "libmodbus");
        assert!(!executor.data_models().is_empty());
        assert_eq!(executor.target().name(), "libmodbus");
    }

    #[test]
    fn execute_window_matches_the_per_execution_path() {
        // Ground truth: the per-execution `execute` loop with its
        // every-step reset-policy check. `execute_window` must match it both
        // on reset-aligned windows (fast path: one `process_batch` call) and
        // on windows with an interior reset boundary (fallback path).
        let request = vec![0x00, 0x01, 0x00, 0x00, 0x00, 0x06, 0x01, 0x03, 0x00, 0x00, 0x00, 0x02];
        let garbage = vec![0xFF, 0x00, 0x01];
        let window: Vec<&[u8]> = vec![&request, &garbage, &request, &request, &garbage];
        for first_execution in [1u64, 3, 6, 7] {
            let mut reference = TargetExecutor::new(TargetId::Modbus.create(), 3);
            let expected: Vec<_> = window
                .iter()
                .enumerate()
                .map(|(offset, packet)| {
                    let (outcome, trace) =
                        reference.execute(first_execution + offset as u64, packet);
                    (
                        peachstar_protocols::OutcomeSummary::from(&outcome),
                        trace.to_sparse(),
                    )
                })
                .collect();

            let mut batched = TargetExecutor::new(TargetId::Modbus.create(), 3);
            let mut results = WindowResults::new();
            batched.execute_window(first_execution, &window, &mut results);
            assert_eq!(results.len(), window.len());
            for (offset, (summary, trace)) in results.iter().enumerate() {
                assert_eq!(*summary, expected[offset].0, "start {first_execution} offset {offset}");
                assert_eq!(*trace, expected[offset].1, "start {first_execution} offset {offset}");
            }
        }
    }

    #[test]
    fn execute_contains_panics_and_continues() {
        use peachstar_protocols::chaos::{ChaosConfig, ChaosTarget};
        use peachstar_protocols::FaultKind;
        let chaos = ChaosConfig::new(5).panic_every(2).garbage_every(0).sites(2);
        let target = Box::new(ChaosTarget::new(TargetId::Modbus.create_send(), chaos));
        let mut executor = TargetExecutor::new(target, 0);
        let packets: Vec<Vec<u8>> = (0u8..24).map(|i| vec![i, 0x68, i ^ 0x3C]).collect();
        let mut panics = 0;
        for (index, packet) in packets.iter().enumerate() {
            let (outcome, _) = executor.execute(index as u64 + 1, packet);
            if let Some(fault) = outcome.fault() {
                if fault.kind == FaultKind::Panic {
                    panics += 1;
                    assert!(fault.site.starts_with("chaos: injected panic #"));
                }
            }
        }
        assert!(panics > 0, "panic_every=2 must fire in 24 packets");
        // The executor survived every panic and still works.
        let request = [0x00, 0x01, 0x00, 0x00, 0x00, 0x06, 0x01, 0x03, 0x00, 0x00, 0x00, 0x02];
        let (outcome, trace) = executor.execute(100, &request);
        assert!(outcome.fault().is_none_or(|f| f.kind == FaultKind::Panic));
        assert!(trace.edges_hit() > 0 || outcome.is_fault());
    }

    #[test]
    fn contained_windows_match_the_contained_sequential_path() {
        // The batched path under panics must stay bit-identical to the
        // sequential contained path: same synthetic faults at the same
        // offsets, same traces for the surviving packets.
        use peachstar_protocols::chaos::{ChaosConfig, ChaosTarget};
        let chaos = ChaosConfig::new(11).panic_every(3).garbage_every(5).sites(3);
        let make = || {
            Box::new(ChaosTarget::new(TargetId::Modbus.create_send(), chaos))
                as Box<dyn peachstar_protocols::Target>
        };
        let packets: Vec<Vec<u8>> = (0u8..16).map(|i| vec![i, i ^ 0x77]).collect();
        let window: Vec<&[u8]> = packets.iter().map(Vec::as_slice).collect();

        let mut reference = TargetExecutor::new(make(), 0);
        let expected: Vec<_> = window
            .iter()
            .enumerate()
            .map(|(offset, packet)| {
                let (outcome, trace) = reference.execute(offset as u64 + 1, packet);
                (
                    peachstar_protocols::OutcomeSummary::from(&outcome),
                    trace.to_sparse(),
                )
            })
            .collect();

        let mut batched = TargetExecutor::new(make(), 0);
        let mut results = WindowResults::new();
        batched.execute_window(1, &window, &mut results);
        assert_eq!(results.len(), window.len());
        for (offset, (summary, trace)) in results.iter().enumerate() {
            assert_eq!(*summary, expected[offset].0, "offset {offset}");
            assert_eq!(*trace, expected[offset].1, "offset {offset}");
        }
    }

    #[test]
    fn deadline_executor_matches_undeadlined_stream_when_nothing_hangs() {
        // Arming the watchdog must be observationally transparent for
        // well-behaved targets: same outcomes, same traces.
        let request = vec![0x00, 0x01, 0x00, 0x00, 0x00, 0x06, 0x01, 0x03, 0x00, 0x00, 0x00, 0x02];
        let garbage = vec![0xFF, 0x00, 0x01];
        let window: Vec<&[u8]> = vec![&request, &garbage, &request, &garbage, &request];
        let mut plain = TargetExecutor::new(TargetId::Iec104.create(), 3);
        let mut supervised = TargetExecutor::new(TargetId::Iec104.create(), 3)
            .with_deadline(Duration::from_secs(10));
        assert_eq!(supervised.deadline(), Some(Duration::from_secs(10)));
        for (offset, packet) in window.iter().enumerate() {
            let execution = offset as u64 + 1;
            let (expected, expected_trace) = plain.execute(execution, packet);
            let expected_trace = expected_trace.to_sparse();
            let (actual, actual_trace) = supervised.execute(execution, packet);
            assert_eq!(expected, actual, "execution {execution}");
            assert_eq!(expected_trace, actual_trace.to_sparse(), "execution {execution}");
        }
        // The windowed entry point agrees too (it goes per-packet under a
        // deadline).
        let mut plain = TargetExecutor::new(TargetId::Iec104.create(), 3);
        let mut supervised = TargetExecutor::new(TargetId::Iec104.create(), 3)
            .with_deadline(Duration::from_secs(10));
        let mut expected = WindowResults::new();
        let mut actual = WindowResults::new();
        plain.execute_window(4, &window, &mut expected);
        supervised.execute_window(4, &window, &mut actual);
        let expected: Vec<_> = expected.iter().map(|(s, t)| (*s, t.clone())).collect();
        let actual: Vec<_> = actual.iter().map(|(s, t)| (*s, t.clone())).collect();
        assert_eq!(expected, actual);
    }

    #[test]
    fn deadline_executor_converts_hangs_into_faults() {
        use peachstar_protocols::chaos::{ChaosConfig, ChaosTarget};
        use peachstar_protocols::FaultKind;
        let chaos = ChaosConfig::new(0)
            .panic_every(0)
            .garbage_every(0)
            .hang_every(1)
            .hang_ms(2_000);
        let target = Box::new(ChaosTarget::new(TargetId::Modbus.create_send(), chaos));
        let mut executor =
            TargetExecutor::new(target, 0).with_deadline(Duration::from_millis(25));
        let (outcome, trace) = executor.execute(1, &[0x01]);
        assert_eq!(outcome.fault().map(|f| f.kind), Some(FaultKind::Hang));
        assert!(trace.is_empty());
    }

    #[test]
    fn execute_records_a_trace() {
        let mut executor = TargetExecutor::new(TargetId::Modbus.create(), 0);
        let request = [
            0x00, 0x01, 0x00, 0x00, 0x00, 0x06, 0x01, 0x03, 0x00, 0x00, 0x00, 0x02,
        ];
        let (outcome, trace) = executor.execute(1, &request);
        assert!(outcome.response().is_some());
        assert!(trace.edges_hit() > 0);
        // The next execution starts from a clean trace.
        let (_, trace) = executor.execute(2, &[]);
        assert!(trace.edges_hit() > 0, "rejection path is instrumented");
    }
}
