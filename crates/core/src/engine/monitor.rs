//! The [`Monitor`] seam: outcome tallies, unique-bug dedup and coverage
//! series sampling.

use std::collections::HashSet;

use crate::campaign::BugRecord;
use crate::stats::{CoverageSeries, SeriesPoint};
use crate::strategy::GeneratedPacket;

// The summary now lives next to `Outcome` in the protocols crate, where
// `Target::process_batch` buffers one per packet; re-exported here so the
// engine-facing path `engine::OutcomeSummary` keeps working.
pub use peachstar_protocols::OutcomeSummary;

/// Observes the campaign from the side: tallies outcomes, deduplicates bugs
/// by fault site, and samples the coverage growth series.
///
/// The monitor never influences the fuzzing loop — removing it must not
/// change which packets run or which seeds are retained.
///
/// # Example
///
/// ```
/// use peachstar::engine::{CampaignMonitor, Monitor, OutcomeSummary};
/// use peachstar::seed::Seed;
///
/// // A 100-execution campaign sampled every 50 executions.
/// let mut monitor = CampaignMonitor::new(100, 50);
/// let packet = Seed::new(vec![0x68, 0x04], "startdt", false);
/// monitor.record(1, &packet, OutcomeSummary::Response);
/// monitor.sample(50, 12, 30);
/// assert_eq!(monitor.responses(), 1);
/// assert_eq!(monitor.series().final_paths(), 12);
/// ```
pub trait Monitor {
    /// Records one execution's outcome (called once per execution, in
    /// execution order).
    fn record(&mut self, execution: u64, packet: &GeneratedPacket, outcome: OutcomeSummary);

    /// Offers a series sample point after an execution was merged; the
    /// monitor decides whether to keep it.
    fn sample(&mut self, execution: u64, paths: usize, edges: usize);
}

/// The standard monitor backing a `CampaignReport`.
#[derive(Debug)]
pub struct CampaignMonitor {
    budget: u64,
    sample_interval: u64,
    series: CoverageSeries,
    bugs: Vec<BugRecord>,
    seen_sites: HashSet<&'static str>,
    responses: u64,
    protocol_errors: u64,
    fault_hits: u64,
}

impl CampaignMonitor {
    /// Creates a monitor for a campaign of `budget` executions, sampling the
    /// series every `sample_interval` executions (and at the final one).
    #[must_use]
    pub fn new(budget: u64, sample_interval: u64) -> Self {
        Self {
            budget,
            sample_interval: sample_interval.max(1),
            series: CoverageSeries::new(),
            bugs: Vec::new(),
            seen_sites: HashSet::new(),
            responses: 0,
            protocol_errors: 0,
            fault_hits: 0,
        }
    }

    /// Packets answered by the target.
    #[must_use]
    pub fn responses(&self) -> u64 {
        self.responses
    }

    /// Packets rejected by protocol validation.
    #[must_use]
    pub fn protocol_errors(&self) -> u64 {
        self.protocol_errors
    }

    /// Packets that hit a fault, duplicates included.
    #[must_use]
    pub fn fault_hits(&self) -> u64 {
        self.fault_hits
    }

    /// The unique bugs recorded so far.
    #[must_use]
    pub fn bugs(&self) -> &[BugRecord] {
        &self.bugs
    }

    /// The sampled coverage series so far.
    #[must_use]
    pub fn series(&self) -> &CoverageSeries {
        &self.series
    }

    /// Consumes the monitor, returning the series and bug list for the
    /// campaign report.
    #[must_use]
    pub fn into_series_and_bugs(self) -> (CoverageSeries, Vec<BugRecord>) {
        (self.series, self.bugs)
    }

    /// Captures the monitor's resumable state for a campaign snapshot.
    #[must_use]
    pub fn snapshot_state(&self) -> MonitorState {
        MonitorState {
            series: self.series.points().to_vec(),
            bugs: self.bugs.clone(),
            responses: self.responses,
            protocol_errors: self.protocol_errors,
            fault_hits: self.fault_hits,
        }
    }

    /// Restores state previously captured by
    /// [`snapshot_state`](CampaignMonitor::snapshot_state). The site-dedup
    /// set is rebuilt from the bug list — a bug and its site always enter
    /// together, so the pair can never desynchronise across a round trip.
    pub fn restore_state(&mut self, state: MonitorState) {
        self.series = CoverageSeries::new();
        for point in state.series {
            self.series.push(point);
        }
        self.seen_sites = state.bugs.iter().map(|bug| bug.fault.site).collect();
        self.bugs = state.bugs;
        self.responses = state.responses;
        self.protocol_errors = state.protocol_errors;
        self.fault_hits = state.fault_hits;
    }
}

/// The resumable state of a [`CampaignMonitor`], as captured into (and
/// restored from) a campaign snapshot. The `seen_sites` dedup set is not
/// part of the state: it is derived from the bug list on restore.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MonitorState {
    /// Sampled coverage series points so far.
    pub series: Vec<SeriesPoint>,
    /// Unique bugs recorded so far, in discovery order.
    pub bugs: Vec<BugRecord>,
    /// Packets answered by the target.
    pub responses: u64,
    /// Packets rejected by protocol validation.
    pub protocol_errors: u64,
    /// Packets that hit a fault, duplicates included.
    pub fault_hits: u64,
}

impl Monitor for CampaignMonitor {
    fn record(&mut self, execution: u64, packet: &GeneratedPacket, outcome: OutcomeSummary) {
        match outcome {
            OutcomeSummary::Response => self.responses += 1,
            OutcomeSummary::ProtocolError => self.protocol_errors += 1,
            OutcomeSummary::Fault(fault) => {
                self.fault_hits += 1;
                if self.seen_sites.insert(fault.site) {
                    self.bugs.push(BugRecord {
                        fault,
                        first_execution: execution,
                        packet: packet.bytes.clone(),
                        model: packet.model.clone(),
                    });
                }
            }
        }
    }

    fn sample(&mut self, execution: u64, paths: usize, edges: usize) {
        if execution.is_multiple_of(self.sample_interval) || execution == self.budget {
            self.series.push(SeriesPoint {
                executions: execution,
                paths,
                edges,
                faults: self.bugs.len(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed::Seed;
    use peachstar_protocols::{Fault, FaultKind, Outcome};

    fn packet() -> GeneratedPacket {
        Seed::new(vec![1, 2, 3], "m", false)
    }

    #[test]
    fn tallies_and_dedups_bugs_by_site() {
        let mut monitor = CampaignMonitor::new(100, 10);
        monitor.record(1, &packet(), OutcomeSummary::Response);
        monitor.record(2, &packet(), OutcomeSummary::ProtocolError);
        let fault = Fault::new(FaultKind::Segv, "a.c:f");
        monitor.record(3, &packet(), OutcomeSummary::Fault(fault));
        monitor.record(4, &packet(), OutcomeSummary::Fault(fault));
        let other = Fault::new(FaultKind::Hang, "b.c:g");
        monitor.record(5, &packet(), OutcomeSummary::Fault(other));

        assert_eq!(monitor.responses(), 1);
        assert_eq!(monitor.protocol_errors(), 1);
        assert_eq!(monitor.fault_hits(), 3);
        assert_eq!(monitor.bugs().len(), 2, "same site dedups");
        assert_eq!(monitor.bugs()[0].first_execution, 3);
        assert_eq!(monitor.bugs()[1].fault.site, "b.c:g");
    }

    #[test]
    fn samples_at_interval_and_final_execution() {
        let mut monitor = CampaignMonitor::new(25, 10);
        for execution in 1..=25 {
            monitor.sample(execution, execution as usize, 0);
        }
        let sampled: Vec<u64> = monitor
            .series()
            .points()
            .iter()
            .map(|p| p.executions)
            .collect();
        assert_eq!(sampled, vec![10, 20, 25]);
        let (series, bugs) = monitor.into_series_and_bugs();
        assert_eq!(series.final_paths(), 25);
        assert!(bugs.is_empty());
    }

    #[test]
    fn outcome_summary_from_outcome() {
        assert_eq!(
            OutcomeSummary::from(&Outcome::Response(vec![1])),
            OutcomeSummary::Response
        );
        assert_eq!(
            OutcomeSummary::from(&Outcome::ProtocolError("bad".into())),
            OutcomeSummary::ProtocolError
        );
        let fault = Fault::new(FaultKind::Segv, "x");
        assert_eq!(
            OutcomeSummary::from(&Outcome::Fault(fault)),
            OutcomeSummary::Fault(fault)
        );
    }
}
