//! Sharded campaigns: N workers execute disjoint, reset-aligned slices of
//! one campaign in parallel, syncing through a deterministic merge barrier.
//!
//! # How the work is split
//!
//! The sequential campaign resets its target every `reset_interval`
//! executions, so the execution sequence decomposes into *windows* — maximal
//! runs that start from the just-started target state. Windows are
//! independent of each other on the target side (each begins with a reset),
//! which makes them the natural unit of parallelism:
//!
//! 1. **Generate** (sequential): the strategy produces the packets of the
//!    next `sync_windows` windows in global execution order, consuming the
//!    campaign RNG exactly as the sequential loop would.
//! 2. **Execute** (parallel): `workers` threads pull windows from a queue
//!    and run them against their own [`Target::clone_fresh`] copies,
//!    buffering each execution's [`OutcomeSummary`] and
//!    [`peachstar_coverage::SparseTrace`] snapshot.
//! 3. **Reduce** (sequential, the merge barrier): window results are merged
//!    back in global execution order — coverage merge, valuable-seed
//!    verdict, schedule feedback, seed retention, bug dedup and series
//!    sampling all happen here, through the same engine seams the
//!    sequential campaign uses.
//!
//! # Determinism
//!
//! The worker count only decides *who* executes a window, never *what* is
//! executed or in which order results merge, so the final report is
//! bit-identical for any `workers >= 1` (see `tests/shard_determinism.rs`).
//!
//! For the feedback-free Peach baseline the sharded report is additionally
//! bit-identical to the sequential [`Campaign`](crate::campaign::Campaign):
//! the packet stream depends only on the RNG, and windows replay the exact
//! target states of the sequential loop. The Peach\* strategy receives its
//! feedback at the barrier instead of per-execution (valuable seeds crack
//! into puzzles one round later), so its sharded packet stream is
//! deterministic but intentionally not identical to the sequential one.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use peachstar_coverage::{SparseTrace, TraceContext};
use peachstar_protocols::{DecodeSink, Target, WindowResults};

use crate::campaign::{CampaignConfig, CampaignReport, DriveOptions};
use crate::engine::batch::windows_for_policy;
use crate::engine::session::session_setup;
use crate::engine::supervisor::{contained, Watchdog};
use crate::engine::transport::is_connection_loss;
use crate::service::ServiceHooks;
use crate::engine::{
    CampaignMonitor, CoverageObserver, Executor, Feedback, FeedbackEvent, Monitor,
    NewCoverageFeedback, Observer, OutcomeSummary, ResetPolicy, Schedule, SessionPlan,
    StrategySchedule, TargetExecutor,
};
use crate::snapshot::{CampaignSnapshot, CheckpointConfig, SnapshotError, SnapshotMeta};
use crate::strategy::{GeneratedPacket, GenerationStrategy};

/// How many times the merge barrier re-attempts a failed window before
/// giving up. The re-execution path contains panics per packet (and
/// supervises hangs when a deadline is set), so a single attempt normally
/// succeeds; the bound defends against targets whose `clone_fresh`/`reset`
/// themselves misbehave.
const WINDOW_RETRIES: usize = 3;

/// The terminal failure when every connection of a framed-TCP campaign has
/// exhausted its reconnect budget while windows remain unexecuted. Stable
/// (no counts, no addresses) so operators and tests can match it.
const ALL_CONNECTIONS_LOST: &str =
    "connection campaign: every connection exhausted its reconnect budget";

/// How a sharded campaign spreads its work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Worker threads executing windows in parallel. Does not influence the
    /// campaign result — only how fast it is produced.
    pub workers: usize,
    /// Windows generated (and merged) per round — the distance between two
    /// merge barriers, in windows. Part of the campaign semantics for
    /// feedback-driven strategies: Peach\* digests valuable seeds at the
    /// barrier, so a different `sync_windows` is a different campaign.
    pub sync_windows: usize,
}

impl ShardConfig {
    /// Default number of windows between merge barriers.
    pub const DEFAULT_SYNC_WINDOWS: usize = 8;

    /// Configuration for `workers` parallel workers with the default
    /// barrier distance.
    #[must_use]
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            sync_windows: Self::DEFAULT_SYNC_WINDOWS,
        }
    }

    /// Sets the number of windows between merge barriers.
    #[must_use]
    pub fn sync_windows(mut self, windows: usize) -> Self {
        self.sync_windows = windows.max(1);
        self
    }
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self::with_workers(1)
    }
}

/// One window's packets, headed to a worker.
struct WindowWork {
    start: u64,
    packets: Vec<GeneratedPacket>,
}

/// One execution's buffered result, headed back to the merge barrier.
struct ExecRecord {
    packet: GeneratedPacket,
    outcome: OutcomeSummary,
    trace: SparseTrace,
}

/// One window's results, in execution order — or, for a window whose worker
/// failed mid-flight, the intact packet list the merge barrier re-executes.
struct WindowResult {
    start: u64,
    records: Vec<ExecRecord>,
    /// `true` when the worker panicked (or otherwise died) mid-window: the
    /// partial results were discarded and `packets` holds the full window
    /// for barrier-side re-execution on a fresh target.
    failed: bool,
    packets: Vec<GeneratedPacket>,
}

/// One shard worker's execution state: the active target, a pristine spare
/// it is rebuilt from after a contained panic, and — when a per-execution
/// deadline is armed — the [`Watchdog`] that supervises every execution.
struct ShardWorker {
    target: Box<dyn Target + Send>,
    spare: Box<dyn Target + Send>,
    watchdog: Option<Watchdog>,
    /// Set when the worker's connection exhausted its reconnect budget
    /// (framed-TCP transport): the worker is retired for the rest of the
    /// campaign and its windows degrade onto the survivors.
    dead: bool,
}

/// What a worker hands back for one window.
enum WindowOutcome {
    /// The window executed (or failed over to the barrier's re-execution
    /// path with its packets intact).
    Done(WindowResult),
    /// The worker's connection died mid-window with its reconnect budget
    /// exhausted: the window is returned untouched — every window starts
    /// from a reset, so any surviving connection can run it from scratch —
    /// and the worker retires.
    ConnectionLost(WindowWork),
}

/// The fast (unsupervised) window path: chunked [`Target::process_batch`]
/// calls under window-level panic containment.
///
/// `chunk` caps how many packets go into one `process_batch` call — the
/// sharded face of the `--batch` knob. It is pure dispatch granularity:
/// results are buffered to the merge barrier either way, so the chunk size
/// provably never changes the report (chunks of one window share the
/// worker's target state back to back, exactly like the old per-packet
/// loop).
///
/// A panic escaping the target poisons both the worker's target state and
/// the chunk's partial results, so the whole window is declared failed: the
/// target is rebuilt from the pristine spare, the full packet list is
/// reassembled (earlier chunks' records surrender their packets back) and
/// shipped to the merge barrier, which re-executes the window on the
/// fault-tolerant per-packet path. Because the same packets panic no matter
/// who executes them, failure detection — like everything else here — is
/// worker-count-invariant.
fn execute_window_fast(
    target: &mut Box<dyn Target + Send>,
    spare: &dyn Target,
    chunk: usize,
    sink: DecodeSink,
    work: WindowWork,
    ctx: &mut TraceContext,
    results: &mut WindowResults,
) -> WindowOutcome {
    // Every window begins from the just-started target state: the
    // sequential campaign either created the target right before the
    // first window or reset it at the window boundary, and `reset` is
    // documented to restore exactly that state. Over framed TCP the reset
    // is a wire exchange, so it is where an exhausted reconnect budget can
    // first surface — with the window still untouched.
    if let Err(message) = contained(|| target.reset()) {
        if is_connection_loss(&message) {
            return WindowOutcome::ConnectionLost(work);
        }
        panic!("{message}");
    }
    let start = work.start;
    // In summary mode, debug builds re-prove the full/summary bit-identity
    // claim on the first packet of every window, against fresh clones (the
    // stateful worker target below is untouched).
    #[cfg(debug_assertions)]
    if sink == DecodeSink::Summary {
        if let Some(packet) = work.packets.first() {
            peachstar_protocols::sink::debug_cross_check_sinks(target.as_ref(), &packet.bytes);
        }
    }
    let mut remaining = work.packets;
    let mut records: Vec<ExecRecord> = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        let mut rest = remaining.split_off(remaining.len().min(chunk.max(1)));
        // One virtual dispatch per chunk instead of one per packet — the
        // same amortisation (and the same protocol overrides) the batched
        // sequential engine gets.
        let attempt = contained(|| {
            let refs: Vec<&[u8]> = remaining.iter().map(|p| p.bytes.as_slice()).collect();
            target.process_batch(&refs, ctx, results, sink);
        });
        if let Err(message) = attempt {
            // Reassemble the intact packet list: both the failed and the
            // connection-lost path ship whole windows onward.
            let mut packets: Vec<GeneratedPacket> =
                records.into_iter().map(|record| record.packet).collect();
            packets.append(&mut remaining);
            packets.append(&mut rest);
            if is_connection_loss(&message) {
                return WindowOutcome::ConnectionLost(WindowWork { start, packets });
            }
            // A target panic: rebuild from the pristine spare and declare
            // the window failed so the merge barrier re-executes it. The
            // rebuild itself reconnects over framed TCP, so it too can
            // exhaust the budget.
            match contained(|| spare.clone_fresh()) {
                Ok(fresh) => *target = fresh,
                Err(rebuild) if is_connection_loss(&rebuild) => {
                    return WindowOutcome::ConnectionLost(WindowWork { start, packets });
                }
                Err(rebuild) => panic!("{rebuild}"),
            }
            return WindowOutcome::Done(WindowResult {
                start,
                records: Vec::new(),
                failed: true,
                packets,
            });
        }
        // Draining moves the snapshots straight into the records headed for
        // the merge barrier.
        records.extend(remaining.drain(..).zip(results.drain()).map(
            |(packet, (outcome, trace))| ExecRecord {
                packet,
                outcome,
                trace,
            },
        ));
        remaining = rest;
    }
    WindowOutcome::Done(WindowResult {
        start,
        records,
        failed: false,
        packets: Vec::new(),
    })
}

/// The supervised window path, used when `--exec-timeout-ms` arms a
/// deadline: every execution runs on the worker's [`Watchdog`], which
/// contains panics and abandons hangs per packet, so the window always
/// completes in bounded time and is never declared failed.
fn execute_window_supervised(watchdog: &mut Watchdog, work: WindowWork) -> WindowResult {
    let mut records = Vec::with_capacity(work.packets.len());
    for (offset, packet) in work.packets.into_iter().enumerate() {
        // `reset_before` on the first packet is the window-start reset of
        // the fast path, applied to the supervised worker's target.
        let (outcome, trace) = watchdog.execute(offset == 0, &packet.bytes);
        records.push(ExecRecord {
            outcome: OutcomeSummary::from(&outcome),
            trace,
            packet,
        });
    }
    WindowResult {
        start: work.start,
        records,
        failed: false,
        packets: Vec::new(),
    }
}

/// Worker loop: pull windows off the queue, execute them (fast or
/// supervised path), push buffered results.
fn shard_worker(
    worker: &mut ShardWorker,
    chunk: usize,
    sink: DecodeSink,
    queue: &Mutex<VecDeque<WindowWork>>,
    done: &Mutex<Vec<WindowResult>>,
) {
    let mut ctx = TraceContext::new();
    let mut results = WindowResults::new();
    let ShardWorker {
        target,
        spare,
        watchdog,
        dead,
    } = worker;
    loop {
        let Some(work) = queue.lock().expect("window queue poisoned").pop_front() else {
            return;
        };
        let outcome = match watchdog {
            // Under a watchdog every execution is contained per packet, so a
            // connection loss surfaces as a recorded fault, never as worker
            // death — degradation is a fast-path concern.
            Some(watchdog) => WindowOutcome::Done(execute_window_supervised(watchdog, work)),
            None => {
                execute_window_fast(target, spare.as_ref(), chunk, sink, work, &mut ctx, &mut results)
            }
        };
        match outcome {
            WindowOutcome::Done(result) => {
                done.lock().expect("window results poisoned").push(result);
            }
            WindowOutcome::ConnectionLost(work) => {
                // The window is intact; put it back at the head of the
                // queue for a surviving connection and retire this worker.
                queue.lock().expect("window queue poisoned").push_front(work);
                *dead = true;
                return;
            }
        }
    }
}

/// Barrier-side recovery: re-executes a failed window's packets on a fresh
/// target through the fault-tolerant per-packet path — panic containment,
/// post-fault resets, and the hang watchdog when a deadline is armed —
/// which is exactly what a sequential fault-tolerant campaign does for the
/// same window, so recovered results keep worker-count invariance.
fn reexecute_failed_window(
    pristine: &dyn Target,
    exec_timeout: Option<Duration>,
    packets: &[GeneratedPacket],
) -> Vec<ExecRecord> {
    for _ in 0..WINDOW_RETRIES {
        let attempt = contained(|| {
            let mut executor = TargetExecutor::new(pristine.clone_fresh(), 0);
            if let Some(timeout) = exec_timeout {
                executor = executor.with_deadline(timeout);
            }
            packets
                .iter()
                .enumerate()
                .map(|(offset, packet)| {
                    let (outcome, trace) = executor.execute(offset as u64 + 1, &packet.bytes);
                    ExecRecord {
                        outcome: OutcomeSummary::from(&outcome),
                        trace: trace.to_sparse(),
                        packet: packet.clone(),
                    }
                })
                .collect::<Vec<ExecRecord>>()
        });
        if let Ok(records) = attempt {
            return records;
        }
    }
    panic!("a sharded window failed {WINDOW_RETRIES} re-execution attempts even under containment");
}

/// One fuzzing campaign executed by multiple workers over disjoint,
/// reset-aligned slices of the execution budget.
pub struct ShardedCampaign {
    target: Box<dyn Target>,
    config: CampaignConfig,
    shard: ShardConfig,
    strategy: Box<dyn GenerationStrategy>,
}

impl std::fmt::Debug for ShardedCampaign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCampaign")
            .field("target", &self.target.name())
            .field("config", &self.config)
            .field("shard", &self.shard)
            .finish()
    }
}

impl ShardedCampaign {
    /// Creates a sharded campaign with the strategy named in the campaign
    /// configuration.
    #[must_use]
    pub fn new(target: Box<dyn Target>, config: CampaignConfig, shard: ShardConfig) -> Self {
        Self {
            strategy: config.strategy.create(),
            target,
            config,
            shard,
        }
    }

    /// Creates a sharded campaign with an explicit strategy.
    #[must_use]
    pub fn with_strategy(
        target: Box<dyn Target>,
        config: CampaignConfig,
        shard: ShardConfig,
        strategy: Box<dyn GenerationStrategy>,
    ) -> Self {
        Self {
            target,
            config,
            shard,
            strategy,
        }
    }

    /// Runs the campaign to completion and returns the merged report.
    ///
    /// As with the sequential [`Campaign`](crate::campaign::Campaign), a
    /// [`CampaignConfig::session`] configuration on a session-capable target
    /// switches to session-shaped windows: every window is one whole session
    /// and the per-window worker reset *is* the session-scoped reset, so
    /// sessions never straddle a reset or a merge barrier.
    #[must_use]
    pub fn run(self) -> CampaignReport {
        let (report, _) = self
            .launch(DriveOptions::default())
            .expect("a plain sharded campaign performs no fallible snapshot operations");
        report
    }

    /// The reset policy this campaign will shard over (same derivation as
    /// [`run`](ShardedCampaign::run)).
    fn policy(&self) -> ResetPolicy {
        let session = self
            .config
            .session
            .and_then(|opts| self.target.session_template().map(|template| (opts, template)));
        match session {
            Some((opts, template)) => ResetPolicy::PerSession(
                SessionPlan::new(template, opts.payload_packets).session_len(),
            ),
            None => ResetPolicy::Interval(self.config.reset_interval),
        }
    }

    /// The merge-barrier (round-end) executions of this campaign, ascending;
    /// the last is always the execution budget. Sharded checkpoints can only
    /// land here: at a barrier the campaign RNG, the strategy feedback and
    /// the global coverage are all fully synchronised — and the layout is
    /// worker-count-invariant, so a snapshot taken with N workers resumes
    /// bit-exactly with any other worker count.
    #[must_use]
    pub fn round_boundaries(&self) -> Vec<u64> {
        let windows = windows_for_policy(self.config.executions, self.policy());
        windows
            .chunks(self.shard.sync_windows.max(1))
            .filter_map(|round| round.last().map(|&(_, end)| end))
            .collect()
    }

    /// Runs the campaign to completion, writing a checkpoint to
    /// `checkpoint.path` at every merge barrier that completes
    /// `checkpoint.every_windows` more windows (and at the final one).
    pub fn run_checkpointed(
        self,
        checkpoint: &CheckpointConfig,
    ) -> Result<CampaignReport, SnapshotError> {
        self.launch(DriveOptions {
            checkpoint: Some(checkpoint),
            ..DriveOptions::default()
        })
        .map(|(report, _)| report)
    }

    /// Runs up to (and including) execution `stop_after` — which must be one
    /// of [`round_boundaries`](ShardedCampaign::round_boundaries) — and
    /// returns the snapshot taken at that merge barrier.
    pub fn run_to_boundary(self, stop_after: u64) -> Result<CampaignSnapshot, SnapshotError> {
        let (_, snapshot) = self.launch(DriveOptions {
            stop_after: Some(stop_after),
            ..DriveOptions::default()
        })?;
        Ok(snapshot.expect("a validated stop boundary always yields a snapshot"))
    }

    /// Resumes a snapshotted sharded campaign to completion. The snapshot
    /// must have been taken at a merge barrier of an identically configured
    /// campaign (worker count excepted — it is not part of the fingerprint).
    pub fn resume(self, snapshot: &CampaignSnapshot) -> Result<CampaignReport, SnapshotError> {
        self.launch(DriveOptions {
            resume: Some(snapshot),
            ..DriveOptions::default()
        })
        .map(|(report, _)| report)
    }

    /// Resumes a snapshot while continuing to write periodic checkpoints.
    pub fn resume_checkpointed(
        self,
        snapshot: &CampaignSnapshot,
        checkpoint: &CheckpointConfig,
    ) -> Result<CampaignReport, SnapshotError> {
        self.launch(DriveOptions {
            resume: Some(snapshot),
            checkpoint: Some(checkpoint),
            ..DriveOptions::default()
        })
        .map(|(report, _)| report)
    }

    /// Resumes a snapshot and stops at a later merge barrier, returning the
    /// snapshot taken there — the sharded form of interrupting a resumed run
    /// again.
    pub fn resume_to_boundary(
        self,
        snapshot: &CampaignSnapshot,
        stop_after: u64,
    ) -> Result<CampaignSnapshot, SnapshotError> {
        let (_, out) = self.launch(DriveOptions {
            resume: Some(snapshot),
            stop_after: Some(stop_after),
            ..DriveOptions::default()
        })?;
        Ok(out.expect("a validated stop boundary always yields a snapshot"))
    }

    /// Runs under service supervision: like
    /// [`run_checkpointed`](ShardedCampaign::run_checkpointed), but live
    /// progress is published to `hooks` at every merge barrier and a
    /// graceful stop ([`ServiceHooks::request_stop`]) finishes the current
    /// round, writes a final checkpoint, and returns early.
    pub fn run_supervised(
        self,
        checkpoint: &CheckpointConfig,
        hooks: &ServiceHooks,
    ) -> Result<CampaignReport, SnapshotError> {
        self.launch(DriveOptions {
            checkpoint: Some(checkpoint),
            service: Some(hooks),
            ..DriveOptions::default()
        })
        .map(|(report, _)| report)
    }

    /// Resumes a snapshot under service supervision (see
    /// [`run_supervised`](ShardedCampaign::run_supervised)).
    pub fn resume_supervised(
        self,
        snapshot: &CampaignSnapshot,
        checkpoint: &CheckpointConfig,
        hooks: &ServiceHooks,
    ) -> Result<CampaignReport, SnapshotError> {
        self.launch(DriveOptions {
            resume: Some(snapshot),
            checkpoint: Some(checkpoint),
            service: Some(hooks),
            ..DriveOptions::default()
        })
        .map(|(report, _)| report)
    }

    /// Dispatches to the session-shaped or classic sharded engine under the
    /// given snapshot options.
    fn launch(
        self,
        opts: DriveOptions<'_>,
    ) -> Result<(CampaignReport, Option<CampaignSnapshot>), SnapshotError> {
        let started = Instant::now();
        let Self {
            target,
            config,
            shard,
            strategy,
        } = self;
        // Under `FramedTcp` each worker's `clone_fresh` target is its own
        // live connection to the spawned socket server; the guard (the
        // server) must outlive the engine run. Reports stay bit-identical
        // because the wire relays (outcome, trace) pairs verbatim and the
        // snapshot fingerprint excludes the transport.
        let (target, _transport) = crate::engine::transport::deploy(
            target,
            config.transport,
            config.reconnect,
            config.wire_chaos,
        );
        let meta = SnapshotMeta::for_campaign(target.name(), &config)
            .sharded(shard.sync_windows.max(1) as u64);
        let session = config
            .session
            .and_then(|opts| target.session_template().map(|template| (opts, template)));
        match session {
            Some((session_opts, template)) => {
                let (policy, schedule) = session_setup(session_opts, template, strategy);
                run_sharded_engine(target, &config, shard, policy, schedule, started, meta, opts)
            }
            None => run_sharded_engine(
                target,
                &config,
                shard,
                ResetPolicy::Interval(config.reset_interval),
                StrategySchedule::new(strategy),
                started,
                meta,
                opts,
            ),
        }
    }
}

/// The generate → execute → reduce rounds of a sharded campaign, generic
/// over the schedule so classic and session campaigns share one loop.
///
/// Snapshots interact with the rounds only at merge barriers: a barrier is
/// the one instant where the campaign RNG (fully consumed by the round's
/// sequential generation), the strategy feedback (digested in the reduce
/// phase) and the global coverage are all synchronised, and the workers'
/// targets hold no state a resume needs (every window begins with a reset).
/// Resume therefore skips whole rounds, re-clones fresh worker targets and
/// continues bit-exactly — with any worker count.
#[allow(clippy::too_many_arguments)]
fn run_sharded_engine<S: Schedule>(
    target: Box<dyn Target>,
    config: &CampaignConfig,
    shard: ShardConfig,
    policy: ResetPolicy,
    mut schedule: S,
    started: Instant,
    meta: SnapshotMeta,
    opts: DriveOptions<'_>,
) -> Result<(CampaignReport, Option<CampaignSnapshot>), SnapshotError> {
    let target_name = target.name();
    let models = target.data_models();
    let mut rng = SmallRng::seed_from_u64(config.rng_seed);
    let mut observer = CoverageObserver::new();
    let mut feedback = NewCoverageFeedback::new();
    let mut monitor = CampaignMonitor::new(config.executions, config.sample_interval);

    let windows = windows_for_policy(config.executions, policy);
    let sync_windows = shard.sync_windows.max(1);
    let is_round_end = |execution: u64| {
        windows
            .chunks(sync_windows)
            .filter_map(|round| round.last().map(|&(_, end)| end))
            .any(|end| end == execution)
    };
    let resumed_from = match opts.resume {
        Some(snapshot) => {
            snapshot.meta.ensure_matches(&meta)?;
            if snapshot.completed != 0 && !is_round_end(snapshot.completed) {
                return Err(SnapshotError::Unaligned(snapshot.completed));
            }
            snapshot.restore_into(
                &mut rng,
                &mut observer,
                &mut feedback,
                &mut monitor,
                &mut schedule,
            )?;
            snapshot.completed
        }
        None => 0,
    };
    if let Some(stop) = opts.stop_after {
        if stop <= resumed_from || !is_round_end(stop) {
            return Err(SnapshotError::Unaligned(stop));
        }
    }

    let exec_timeout = config.exec_timeout.map(Duration::from_millis);
    let workers = shard.workers.max(1);
    let mut worker_states: Vec<ShardWorker> = (0..workers)
        .map(|_| ShardWorker {
            target: target.clone_fresh(),
            spare: target.clone_fresh(),
            watchdog: exec_timeout.map(|timeout| Watchdog::new(target.clone_fresh(), timeout)),
            dead: false,
        })
        .collect();
    // The per-worker dispatch granularity: `--batch N` caps each
    // `process_batch` call at N packets; without it a whole window goes into
    // one call. Never affects the report — only how often the worker crosses
    // the target seam.
    let chunk = config
        .batch
        .map_or(usize::MAX, |batch| usize::try_from(batch.max(1)).unwrap_or(usize::MAX));
    // Summary-only decoding on every worker's fast path; the supervised and
    // recovery paths always decode in full.
    let sink = if config.summary_only {
        DecodeSink::Summary
    } else {
        DecodeSink::Full
    };

    if let Some(checkpoint) = opts.checkpoint {
        checkpoint.prepare()?;
    }

    let mut out_snapshot = None;
    let mut completed = resumed_from;
    let mut windows_done = 0u64;
    for round in windows.chunks(sync_windows) {
        let round_windows = round.len() as u64;
        windows_done += round_windows;
        let round_end = round.last().map_or(0, |&(_, end)| end);
        if round_end <= resumed_from {
            continue;
        }
        // Phase 1 — generate: replay the strategy sequentially, in
        // global execution order, exactly as the sequential loop would.
        let work: VecDeque<WindowWork> = round
            .iter()
            .map(|&(start, end)| WindowWork {
                start,
                packets: (start..=end)
                    .map(|_| schedule.next_packet(&models, &mut rng))
                    .collect(),
            })
            .collect();

        // Phase 2 — execute: workers drain the window queue in
        // parallel. Which worker runs which window is scheduling noise;
        // the buffered results are re-ordered below. A worker whose
        // connection exhausts its reconnect budget requeues its window and
        // retires; the loop re-enters the scope so surviving workers drain
        // whatever the casualties left behind (normally the survivors pick
        // the window up within the first scope already). The campaign
        // fails only when no live connection remains and windows are still
        // queued.
        let queue = Mutex::new(work);
        let done: Mutex<Vec<WindowResult>> = Mutex::new(Vec::with_capacity(round.len()));
        let (queue_ref, done_ref) = (&queue, &done);
        loop {
            std::thread::scope(|scope| {
                for worker in worker_states.iter_mut().filter(|worker| !worker.dead) {
                    scope.spawn(move || shard_worker(worker, chunk, sink, queue_ref, done_ref));
                }
            });
            if queue.lock().expect("window queue poisoned").is_empty() {
                break;
            }
            assert!(
                worker_states.iter().any(|worker| !worker.dead),
                "{ALL_CONNECTIONS_LOST}"
            );
        }

        // Phase 3 — reduce (the merge barrier): fold every window back
        // in global execution order through the same seams the
        // sequential engine uses.
        let mut results = done.into_inner().expect("window results poisoned");
        results.sort_by_key(|window| window.start);
        for window in results {
            // A window whose worker failed mid-flight arrives with its
            // packets intact instead of records; recover it here, on the
            // fault-tolerant per-packet path, before merging.
            let records = if window.failed {
                reexecute_failed_window(target.as_ref(), exec_timeout, &window.packets)
            } else {
                window.records
            };
            for (offset, record) in records.into_iter().enumerate() {
                let execution = window.start + offset as u64;
                monitor.record(execution, &record.packet, record.outcome);
                let merge = observer.merge_sparse(&record.trace);
                let valuable = feedback.is_interesting(&merge);
                schedule.feedback(&FeedbackEvent {
                    execution,
                    packet: &record.packet,
                    valuable,
                    merge: &merge,
                    models: &models,
                });
                if valuable {
                    feedback.retain(record.packet, &merge);
                }
                monitor.sample(
                    execution,
                    observer.paths_covered(),
                    observer.edges_covered(),
                );
            }
        }
        completed = round_end;

        // Checkpoint/stop at the barrier. The cadence counts absolute
        // windows from the campaign start ("crossed a multiple of
        // `every_windows` within this round"), so it is invariant under
        // interruption and worker count.
        if let Some(service) = opts.service {
            service.observe(
                round_end,
                observer.paths_covered(),
                observer.edges_covered(),
                monitor.bugs().len(),
            );
        }
        let final_round = round_end == config.executions;
        let stop_here = opts.stop_after == Some(round_end)
            || (!final_round && opts.service.is_some_and(ServiceHooks::stop_requested));
        let write_checkpoint = opts.checkpoint.is_some_and(|checkpoint| {
            let every = checkpoint.every_windows.max(1);
            let before = windows_done - round_windows;
            windows_done / every > before / every || final_round || stop_here
        });
        if write_checkpoint || stop_here || (opts.capture_final && final_round) {
            let snapshot = CampaignSnapshot::capture(
                meta.clone(),
                round_end,
                &rng,
                &observer,
                &feedback,
                &monitor,
                &schedule,
            );
            if let Some(checkpoint) = opts.checkpoint.filter(|_| write_checkpoint) {
                checkpoint.store(&snapshot)?;
                if let Some(service) = opts.service {
                    service.checkpointed(round_end);
                }
            }
            if stop_here || (opts.capture_final && final_round) {
                out_snapshot = Some(snapshot);
            }
        }
        if stop_here {
            break;
        }
    }
    drop(worker_states);
    if opts.capture_final && out_snapshot.is_none() {
        out_snapshot = Some(CampaignSnapshot::capture(
            meta, completed, &rng, &observer, &feedback, &monitor, &schedule,
        ));
    }

    let (responses, protocol_errors, fault_hits) = (
        monitor.responses(),
        monitor.protocol_errors(),
        monitor.fault_hits(),
    );
    let (series, bugs) = monitor.into_series_and_bugs();
    let report = CampaignReport {
        target: target_name.to_string(),
        strategy: config.strategy,
        executions: completed,
        series,
        bugs,
        valuable_seeds: feedback.retained(),
        corpus_size: schedule.corpus_size(),
        responses,
        protocol_errors,
        fault_hits,
        wall_time: started.elapsed(),
    };
    Ok((report, out_snapshot))
}

/// Convenience wrapper: runs `config` against `target` with `workers`
/// parallel workers and the default barrier distance.
#[must_use]
pub fn run_sharded(
    target: Box<dyn Target>,
    config: CampaignConfig,
    workers: usize,
) -> CampaignReport {
    ShardedCampaign::new(target, config, ShardConfig::with_workers(workers)).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::StrategyKind;
    use peachstar_protocols::TargetId;

    #[test]
    fn worker_chunk_size_never_changes_the_report() {
        // The per-worker dispatch granularity (`--batch` under `--shards`)
        // must be invisible in the result: chunks of one window run back to
        // back on the same worker target, so any chunking is equivalent to
        // the historic per-packet loop.
        let run = |batch: Option<u64>| {
            let config = CampaignConfig {
                batch,
                ..CampaignConfig::new(crate::strategy::StrategyKind::PeachStar)
                    .executions(1_000)
                    .rng_seed(7)
                    .sample_interval(100)
                    .reset_interval(250)
            };
            let report = run_sharded(TargetId::Iec104.create(), config, 2);
            (
                report.final_paths(),
                report.responses,
                report.valuable_seeds,
                report.corpus_size,
            )
        };
        let whole_window = run(None);
        for batch in [1, 16, 250, 10_000] {
            assert_eq!(run(Some(batch)), whole_window, "chunk {batch} diverged");
        }
    }

    #[test]
    fn sharded_session_campaign_produces_a_complete_report() {
        let config = CampaignConfig::new(StrategyKind::PeachStar)
            .executions(1_000)
            .rng_seed(3)
            .sample_interval(100)
            .sessions(crate::engine::SessionConfig::new(6));
        let report = run_sharded(TargetId::Iec104.create(), config, 2);
        assert_eq!(report.executions, 1_000);
        assert_eq!(
            report.responses + report.protocol_errors + report.fault_hits,
            1_000
        );
        assert!(report.final_paths() > 0);
    }

    #[test]
    fn sharded_campaign_produces_a_complete_report() {
        let config = CampaignConfig::new(StrategyKind::PeachStar)
            .executions(1_500)
            .rng_seed(9)
            .sample_interval(100)
            .reset_interval(200);
        let report = run_sharded(TargetId::Iec104.create(), config, 3);
        assert_eq!(report.executions, 1_500);
        assert_eq!(
            report.responses + report.protocol_errors + report.fault_hits,
            1_500
        );
        assert!(report.final_paths() > 0);
        assert!(report.valuable_seeds > 0);
        assert!(report.corpus_size > 0, "feedback reaches the strategy");
        assert!(!report.series.is_empty());
    }

    #[test]
    fn chaos_panics_are_worker_count_invariant() {
        // Injected panics fail whole windows over to the merge barrier's
        // re-execution path. Failure detection is content-keyed, so the
        // recovered report must not depend on who executed the window.
        use peachstar_protocols::chaos::{ChaosConfig, ChaosTarget};
        let run = |workers: usize| {
            let chaos = ChaosConfig::new(11).panic_every(23).hang_every(0).garbage_every(0);
            let target = Box::new(ChaosTarget::new(TargetId::Modbus.create_send(), chaos));
            let config = CampaignConfig::new(StrategyKind::Peach)
                .executions(600)
                .rng_seed(5)
                .sample_interval(100)
                .reset_interval(150);
            let report = run_sharded(target, config, workers);
            assert_eq!(report.executions, 600, "chaos must not shorten the budget");
            (
                report.final_paths(),
                report.responses,
                report.fault_hits,
                report
                    .bugs
                    .iter()
                    .map(|bug| (bug.fault.kind, bug.fault.site, bug.first_execution))
                    .collect::<Vec<_>>(),
            )
        };
        let single = run(1);
        assert!(single.2 > 0, "the chaos rates must actually inject panics");
        for workers in [2, 3] {
            assert_eq!(run(workers), single, "{workers} workers diverged");
        }
    }

    #[test]
    fn supervised_sharded_campaign_matches_the_unsupervised_one() {
        // Arming the watchdog must not change the report when nothing hangs.
        let config = CampaignConfig::new(StrategyKind::Peach)
            .executions(400)
            .rng_seed(9)
            .sample_interval(100)
            .reset_interval(100);
        let plain = run_sharded(TargetId::Iec104.create(), config, 2);
        let supervised = run_sharded(
            TargetId::Iec104.create(),
            config.exec_timeout_ms(10_000),
            2,
        );
        assert_eq!(plain.final_paths(), supervised.final_paths());
        assert_eq!(plain.responses, supervised.responses);
        assert_eq!(plain.protocol_errors, supervised.protocol_errors);
        assert_eq!(plain.fault_hits, supervised.fault_hits);
        assert_eq!(plain.bugs, supervised.bugs);
    }

    #[test]
    fn shard_config_defaults() {
        let config = ShardConfig::default();
        assert_eq!(config.workers, 1);
        assert_eq!(config.sync_windows, ShardConfig::DEFAULT_SYNC_WINDOWS);
        assert_eq!(ShardConfig::with_workers(0).workers, 1);
        assert_eq!(ShardConfig::with_workers(4).sync_windows(0).sync_windows, 1);
    }
}
