//! Batched window execution: amortising per-execution dispatch out of the
//! campaign hot path.
//!
//! The sequential engine pays a full round trip through the seams for every
//! execution — one `dyn Target` dispatch, one reset-policy check, one fresh
//! [`GeneratedPacket`] allocation, and a trace borrow that forces the loop
//! to fully drain each execution before generating the next. This module
//! adds the batched driver, [`Engine::run_batched`]: the campaign is walked
//! in the same reset-aligned windows the sharded engine uses, but each
//! window is generated up front into a pooled packet arena, executed in a
//! *single* [`Executor::execute_window`] call (one virtual dispatch per
//! window via [`Target::process_batch`]), and then reduced through the
//! monitor/observer/feedback/schedule seams in global execution order.
//!
//! # Equivalence
//!
//! Batching only moves *when* packets are generated and reduced, never what
//! is executed: windows are reset-aligned, packets are generated in global
//! execution order consuming the campaign RNG exactly as the sequential
//! loop would, and results reduce in the same order through the same seams.
//! For the feedback-free Peach baseline the batched report is therefore
//! **bit-identical** to the sequential campaign for any batch size
//! (`tests/batch_equivalence.rs`, plus a batched entry in
//! `tests/pinned_report.rs` that must match the historic constants). The
//! Peach\* strategy receives its feedback at the end of each batch instead
//! of per execution — deterministic, but barrier-fed exactly like its
//! sharded sibling; with `batch >= window length` the batched Peach\* stream
//! coincides with a 1-worker, 1-window-per-round sharded campaign.
//!
//! [`Target::process_batch`]: peachstar_protocols::Target::process_batch
//! [`GeneratedPacket`]: crate::strategy::GeneratedPacket

use peachstar_datamodel::DataModelSet;
use peachstar_protocols::WindowResults;
use rand::rngs::SmallRng;

use crate::engine::{
    Engine, Executor, Feedback, FeedbackEvent, Monitor, Observer, ResetPolicy, Schedule,
};
use crate::seed::Seed;
use crate::strategy::GeneratedPacket;

/// The reset-aligned execution windows of a campaign: `(start, end)` pairs,
/// 1-based and inclusive, covering `1..=executions` without gaps. Every
/// window after the first starts at an execution the reset policy resets
/// before — exactly where the sequential campaign wipes its target. For
/// [`ResetPolicy::PerSession`] this makes every window one whole session
/// (the last may be truncated by the budget), so a session never straddles
/// a window boundary — and therefore never a merge barrier either.
///
/// Shared by the batched and the sharded engine so their window layouts can
/// never drift apart.
pub(crate) fn windows_for_policy(executions: u64, policy: ResetPolicy) -> Vec<(u64, u64)> {
    if executions == 0 {
        return Vec::new();
    }
    let mut starts = vec![1u64];
    starts.extend(policy.boundaries(executions));
    // Interval(1) and PerSession(len) both reset before execution 1, making
    // the first boundary coincide with the initial start.
    starts.dedup();
    starts
        .iter()
        .enumerate()
        .map(|(index, &start)| {
            let end = starts.get(index + 1).map_or(executions, |&next| next - 1);
            (start, end)
        })
        .collect()
}

/// Pooled storage for one window's generated packets.
///
/// Slots are [`GeneratedPacket`]s that get overwritten in place through
/// [`Schedule::next_packet_into`], so after the first window the generate
/// phase reuses the packet byte buffers and model-name strings of earlier
/// windows instead of allocating one fresh seed per execution.
#[derive(Debug, Default)]
pub(crate) struct PacketArena {
    packets: Vec<GeneratedPacket>,
}

impl PacketArena {
    /// Regenerates the arena to exactly `count` packets, pulled from the
    /// schedule in execution order, reusing existing slots.
    fn fill<S: Schedule>(
        &mut self,
        schedule: &mut S,
        models: &DataModelSet,
        rng: &mut SmallRng,
        count: usize,
    ) {
        self.packets.truncate(count);
        for slot in &mut self.packets {
            schedule.next_packet_into(models, rng, slot);
        }
        while self.packets.len() < count {
            let mut slot = Seed::new(Vec::new(), "", false);
            schedule.next_packet_into(models, rng, &mut slot);
            self.packets.push(slot);
        }
    }
}

impl<X, O, F, M, S> Engine<X, O, F, M, S>
where
    X: Executor,
    O: Observer,
    F: Feedback,
    M: Monitor,
    S: Schedule,
{
    /// Runs executions `1..=budget` in batched windows of at most `batch`
    /// executions, aligned to the reset boundaries of `policy`.
    ///
    /// Each batch runs in three phases mirroring one sharded round on a
    /// single worker: generate the batch into the pooled arena (global
    /// execution order, same RNG stream as [`run`](Engine::run)), execute it
    /// in one [`Executor::execute_window`] call, then reduce every result
    /// through the seams in global execution order. `policy` must be the
    /// reset policy the executor itself applies — the windows are derived
    /// from it so that no reset boundary falls inside a window.
    pub fn run_batched(
        &mut self,
        budget: u64,
        policy: ResetPolicy,
        batch: u64,
        models: &DataModelSet,
        rng: &mut SmallRng,
    ) {
        let mut arena = PacketArena::default();
        let mut results = WindowResults::new();
        for (window_start, window_end) in windows_for_policy(budget, policy) {
            self.run_window_batched(
                window_start,
                window_end,
                batch,
                models,
                rng,
                &mut arena,
                &mut results,
            );
        }
    }

    /// Runs one reset-aligned window `window_start..=window_end` in batched
    /// slices — the per-window body of [`run_batched`](Engine::run_batched),
    /// exposed separately so the checkpointing campaign driver can pause
    /// between windows. `arena` and `results` are caller-held so their
    /// allocations amortise across windows exactly as in `run_batched`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_window_batched(
        &mut self,
        window_start: u64,
        window_end: u64,
        batch: u64,
        models: &DataModelSet,
        rng: &mut SmallRng,
        arena: &mut PacketArena,
        results: &mut WindowResults,
    ) {
        let batch = batch.max(1);
        {
            // Large reset windows split into `batch`-sized slices: no reset
            // falls inside a slice (target state flows through untouched,
            // exactly as in the sequential loop), while feedback reduces at
            // every slice end instead of once per giant window.
            let mut start = window_start;
            while start <= window_end {
                let end = window_end.min(start + (batch - 1));
                let count = usize::try_from(end - start + 1).expect("batch fits usize");

                // Phase 1 — generate into the pooled arena.
                arena.fill(&mut self.schedule, models, rng, count);

                // Phase 2 — execute the whole slice in one executor call.
                // (The ref table borrows the arena, so it lives only for
                // this slice; its one small allocation is amortised over
                // the whole batch.)
                let refs: Vec<&[u8]> =
                    arena.packets.iter().map(|p| p.bytes.as_slice()).collect();
                self.executor.execute_window(start, &refs, results);
                drop(refs);
                debug_assert_eq!(results.len(), count, "one result per packet");

                // Phase 3 — reduce in global execution order through the
                // same seams `Engine::step` uses, in the same order.
                for (offset, (summary, trace)) in results.iter().enumerate() {
                    let execution = start + offset as u64;
                    let packet = &arena.packets[offset];
                    self.monitor.record(execution, packet, *summary);
                    let merge = self.observer.merge_sparse(trace);
                    let valuable = self.feedback.is_interesting(&merge);
                    self.schedule.feedback(&FeedbackEvent {
                        execution,
                        packet,
                        valuable,
                        merge: &merge,
                        models,
                    });
                    if valuable {
                        // The arena keeps its slot for the next window, so
                        // retention clones the (rare) valuable packet
                        // instead of moving it out.
                        self.feedback.retain(packet.clone(), &merge);
                    }
                    self.monitor.sample(
                        execution,
                        self.observer.paths_covered(),
                        self.observer.edges_covered(),
                    );
                }
                start = end + 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{
        CampaignMonitor, CoverageObserver, NewCoverageFeedback, StrategySchedule, TargetExecutor,
    };
    use crate::strategy::StrategyKind;
    use peachstar_protocols::TargetId;
    use rand::SeedableRng;

    fn windows_for(executions: u64, reset_interval: u64) -> Vec<(u64, u64)> {
        windows_for_policy(executions, ResetPolicy::Interval(reset_interval))
    }

    #[test]
    fn windows_cover_the_budget_and_align_to_resets() {
        assert_eq!(windows_for(3_000, 2_000), vec![(1, 1_999), (2_000, 3_000)]);
        assert_eq!(windows_for(5, 10), vec![(1, 5)]);
        assert_eq!(windows_for(10, 0), vec![(1, 10)]);
        assert_eq!(windows_for(0, 100), Vec::<(u64, u64)>::new());
        assert_eq!(windows_for(3, 1), vec![(1, 1), (2, 2), (3, 3)]);
        let windows = windows_for(2_000, 250);
        assert_eq!(windows.first(), Some(&(1, 249)));
        assert_eq!(windows.last(), Some(&(2_000, 2_000)));
        // Gapless, contiguous cover of 1..=2000.
        let mut next = 1;
        for (start, end) in windows {
            assert_eq!(start, next);
            assert!(end >= start || (start, end) == (1, 0));
            next = end + 1;
        }
        assert_eq!(next, 2_001);
    }

    #[test]
    fn per_session_windows_are_whole_sessions() {
        // 3 sessions of 10 packets + one truncated by the budget: every
        // window is one session, so no session can straddle a window
        // boundary — and merge barriers only ever fall between windows.
        let windows = windows_for_policy(35, ResetPolicy::PerSession(10));
        assert_eq!(windows, vec![(1, 10), (11, 20), (21, 30), (31, 35)]);
        // Exact multiple: no truncated tail.
        let windows = windows_for_policy(30, ResetPolicy::PerSession(10));
        assert_eq!(windows, vec![(1, 10), (11, 20), (21, 30)]);
        // Session longer than the budget: one (truncated) window.
        assert_eq!(
            windows_for_policy(5, ResetPolicy::PerSession(10)),
            vec![(1, 5)]
        );
    }

    fn engine_for(
        strategy: StrategyKind,
        reset_interval: u64,
        budget: u64,
    ) -> Engine<
        TargetExecutor,
        CoverageObserver,
        NewCoverageFeedback,
        CampaignMonitor,
        StrategySchedule,
    > {
        Engine {
            executor: TargetExecutor::new(TargetId::Modbus.create(), reset_interval),
            observer: CoverageObserver::new(),
            feedback: NewCoverageFeedback::new(),
            monitor: CampaignMonitor::new(budget, 100),
            schedule: StrategySchedule::new(strategy.create()),
        }
    }

    #[test]
    fn batched_peach_engine_matches_the_sequential_engine() {
        // The engine-level equivalence claim, before any campaign plumbing:
        // for the feedback-free baseline, run_batched is bit-identical to
        // run for any batch size (including ones that straddle windows).
        let budget = 1_200;
        let mut sequential = engine_for(StrategyKind::Peach, 500, budget);
        let models = sequential.executor.data_models();
        let mut rng = SmallRng::seed_from_u64(11);
        sequential.run(budget, &models, &mut rng);

        for batch in [1, 7, 250, 5_000] {
            let mut batched = engine_for(StrategyKind::Peach, 500, budget);
            let mut rng = SmallRng::seed_from_u64(11);
            batched.run_batched(budget, ResetPolicy::Interval(500), batch, &models, &mut rng);
            assert_eq!(
                batched.observer.paths_covered(),
                sequential.observer.paths_covered(),
                "batch {batch}: paths diverged"
            );
            assert_eq!(
                batched.observer.edges_covered(),
                sequential.observer.edges_covered(),
                "batch {batch}: edges diverged"
            );
            assert_eq!(
                batched.feedback.retained(),
                sequential.feedback.retained(),
                "batch {batch}: valuable seeds diverged"
            );
            assert_eq!(
                (
                    batched.monitor.responses(),
                    batched.monitor.protocol_errors(),
                    batched.monitor.fault_hits()
                ),
                (
                    sequential.monitor.responses(),
                    sequential.monitor.protocol_errors(),
                    sequential.monitor.fault_hits()
                ),
                "batch {batch}: outcome tally diverged"
            );
        }
    }

    #[test]
    fn batched_peachstar_engine_is_deterministic_and_complete() {
        let budget = 1_000;
        let run = || {
            let mut engine = engine_for(StrategyKind::PeachStar, 250, budget);
            let models = engine.executor.data_models();
            let mut rng = SmallRng::seed_from_u64(5);
            engine.run_batched(budget, ResetPolicy::Interval(250), 64, &models, &mut rng);
            (
                engine.observer.paths_covered(),
                engine.feedback.retained(),
                engine.monitor.responses()
                    + engine.monitor.protocol_errors()
                    + engine.monitor.fault_hits(),
                engine.schedule.corpus_size(),
            )
        };
        let (paths, retained, total, corpus) = run();
        assert_eq!(run(), (paths, retained, total, corpus), "not deterministic");
        assert_eq!(total, budget, "every execution reduced exactly once");
        assert!(paths > 0);
        assert!(retained > 0);
        assert!(corpus > 0, "barrier-fed feedback still reaches the strategy");
    }
}
