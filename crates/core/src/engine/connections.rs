//! The concurrent-connection driver: one campaign multiplexing N live TCP
//! connections to a socket-served target.
//!
//! [`ConnectionCampaign`] is the framed-TCP face of
//! [`ShardedCampaign`]: it forces
//! [`TransportMode::FramedTcp`] and maps *connections* onto the sharded
//! engine's *workers*. Each worker owns one
//! [`FramedTcpTarget`](super::transport::FramedTcpTarget) — one live
//! connection with its own server-side target instance and its own
//! session/RNG lane (workers execute pre-generated windows, so the RNG
//! stream is consumed sequentially at the barrier exactly as in-process) —
//! and per-connection outcomes are buffered and reduced at the existing
//! merge barrier in global execution order.
//!
//! Because the driver *is* the sharded engine behind a different transport,
//! every determinism property carries over unchanged:
//!
//! * **connection-count invariance** is worker-count invariance — the
//!   report is a function of (target, strategy, seed, budget,
//!   `sync_windows`), never of N;
//! * **bit-identity with in-process** comes from the transport seam
//!   relaying `(outcome, trace)` pairs verbatim;
//! * **checkpoints** are taken at the same merge barriers with the same
//!   fingerprint (which excludes transport and connection count), so a
//!   TCP-recorded checkpoint resumes in-process — and at any other
//!   connection count — bit-exactly.
//!
//! `tests/transport_equivalence.rs` sweeps `--connections {1,2,4}` against
//! the in-process sequential and sharded engines to hold all three.

use peachstar_protocols::Target;

use crate::campaign::{CampaignConfig, CampaignReport};
use crate::engine::shard::{ShardConfig, ShardedCampaign};
use crate::engine::transport::TransportMode;
use crate::service::ServiceHooks;
use crate::snapshot::{CampaignSnapshot, CheckpointConfig, SnapshotError};
use crate::strategy::GenerationStrategy;

/// Configuration of the concurrent-connection driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnectionConfig {
    /// Live connections multiplexed by the campaign (`--connections`).
    /// Operational only — never changes the report.
    pub connections: usize,
    /// Windows generated (and merged) per round, as in
    /// [`ShardConfig::sync_windows`]. Part of campaign semantics for
    /// feedback-driven strategies.
    pub sync_windows: usize,
}

impl ConnectionConfig {
    /// Configuration for `connections` live connections (clamped to at
    /// least 1) with the default barrier cadence.
    #[must_use]
    pub fn with_connections(connections: usize) -> Self {
        Self {
            connections: connections.max(1),
            sync_windows: ShardConfig::DEFAULT_SYNC_WINDOWS,
        }
    }

    /// Sets the number of windows between merge barriers.
    #[must_use]
    pub fn sync_windows(mut self, windows: usize) -> Self {
        self.sync_windows = windows.max(1);
        self
    }

    /// The equivalent sharded-engine configuration: connections are
    /// workers.
    fn shard(self) -> ShardConfig {
        ShardConfig::with_workers(self.connections).sync_windows(self.sync_windows)
    }
}

impl Default for ConnectionConfig {
    fn default() -> Self {
        Self::with_connections(1)
    }
}

/// A campaign that drives its target over N concurrent framed-TCP
/// connections (see the module docs).
#[derive(Debug)]
pub struct ConnectionCampaign {
    inner: ShardedCampaign,
}

impl ConnectionCampaign {
    /// Creates a concurrent-connection campaign with the strategy named in
    /// the campaign configuration. The configured transport is forced to
    /// [`TransportMode::FramedTcp`] — connections without a wire would be
    /// meaningless.
    #[must_use]
    pub fn new(
        target: Box<dyn Target>,
        config: CampaignConfig,
        connections: ConnectionConfig,
    ) -> Self {
        Self {
            inner: ShardedCampaign::new(
                target,
                config.transport(TransportMode::FramedTcp),
                connections.shard(),
            ),
        }
    }

    /// Creates a concurrent-connection campaign with an explicit strategy.
    #[must_use]
    pub fn with_strategy(
        target: Box<dyn Target>,
        config: CampaignConfig,
        connections: ConnectionConfig,
        strategy: Box<dyn GenerationStrategy>,
    ) -> Self {
        Self {
            inner: ShardedCampaign::with_strategy(
                target,
                config.transport(TransportMode::FramedTcp),
                connections.shard(),
                strategy,
            ),
        }
    }

    /// Runs the campaign to completion.
    #[must_use]
    pub fn run(self) -> CampaignReport {
        self.inner.run()
    }

    /// The merge-barrier boundaries (absolute execution indices) of this
    /// campaign — the instants a checkpoint may be taken at.
    #[must_use]
    pub fn round_boundaries(&self) -> Vec<u64> {
        self.inner.round_boundaries()
    }

    /// Runs to completion, checkpointing at merge barriers per
    /// `checkpoint`.
    ///
    /// # Errors
    ///
    /// Propagates snapshot write failures.
    pub fn run_checkpointed(
        self,
        checkpoint: &CheckpointConfig,
    ) -> Result<CampaignReport, SnapshotError> {
        self.inner.run_checkpointed(checkpoint)
    }

    /// Runs up to the merge barrier ending exactly at `stop_after` and
    /// returns its snapshot.
    ///
    /// # Errors
    ///
    /// Rejects boundaries that are not merge barriers.
    pub fn run_to_boundary(self, stop_after: u64) -> Result<CampaignSnapshot, SnapshotError> {
        self.inner.run_to_boundary(stop_after)
    }

    /// Resumes a snapshotted campaign to completion. The snapshot may have
    /// been recorded under any transport or connection count — neither is
    /// part of the fingerprint.
    ///
    /// # Errors
    ///
    /// Rejects snapshots whose fingerprint mismatches this campaign.
    pub fn resume(self, snapshot: &CampaignSnapshot) -> Result<CampaignReport, SnapshotError> {
        self.inner.resume(snapshot)
    }

    /// Resumes a snapshot while continuing to write periodic checkpoints.
    ///
    /// # Errors
    ///
    /// Rejects mismatched snapshots; propagates checkpoint write failures.
    pub fn resume_checkpointed(
        self,
        snapshot: &CampaignSnapshot,
        checkpoint: &CheckpointConfig,
    ) -> Result<CampaignReport, SnapshotError> {
        self.inner.resume_checkpointed(snapshot, checkpoint)
    }

    /// Resumes a snapshot and stops again at a later merge barrier.
    ///
    /// # Errors
    ///
    /// Rejects mismatched snapshots and non-barrier boundaries.
    pub fn resume_to_boundary(
        self,
        snapshot: &CampaignSnapshot,
        stop_after: u64,
    ) -> Result<CampaignSnapshot, SnapshotError> {
        self.inner.resume_to_boundary(snapshot, stop_after)
    }

    /// Runs under service supervision: live progress published to `hooks`
    /// at every merge barrier, rolling checkpoints per `checkpoint`, and a
    /// graceful stop that finishes the current round and writes a final
    /// checkpoint. A connection that exhausts its reconnect budget
    /// mid-service degrades onto the survivors exactly as in
    /// [`run`](ConnectionCampaign::run).
    ///
    /// # Errors
    ///
    /// Propagates checkpoint write failures.
    pub fn run_supervised(
        self,
        checkpoint: &CheckpointConfig,
        hooks: &ServiceHooks,
    ) -> Result<CampaignReport, SnapshotError> {
        self.inner.run_supervised(checkpoint, hooks)
    }

    /// Resumes a snapshot under service supervision (see
    /// [`run_supervised`](ConnectionCampaign::run_supervised)).
    ///
    /// # Errors
    ///
    /// Rejects mismatched snapshots; propagates checkpoint write failures.
    pub fn resume_supervised(
        self,
        snapshot: &CampaignSnapshot,
        checkpoint: &CheckpointConfig,
        hooks: &ServiceHooks,
    ) -> Result<CampaignReport, SnapshotError> {
        self.inner.resume_supervised(snapshot, checkpoint, hooks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::StrategyKind;
    use peachstar_protocols::TargetId;

    fn small_config() -> CampaignConfig {
        CampaignConfig::new(StrategyKind::PeachStar)
            .executions(1_500)
            .sample_interval(150)
            .reset_interval(250)
    }

    #[test]
    fn connection_config_clamps_and_maps_to_workers() {
        assert_eq!(ConnectionConfig::with_connections(0).connections, 1);
        let config = ConnectionConfig::with_connections(3).sync_windows(5);
        let shard = config.shard();
        assert_eq!(shard.workers, 3);
        assert_eq!(shard.sync_windows, 5);
        assert_eq!(ConnectionConfig::default().connections, 1);
    }

    #[test]
    fn connection_campaign_runs_over_live_sockets() {
        let report =
            ConnectionCampaign::new(TargetId::Modbus.create(), small_config(), ConnectionConfig::with_connections(2))
                .run();
        assert_eq!(report.executions, 1_500);
        assert!(report.final_paths() > 0, "coverage flows back over the wire");
    }
}
