//! Panic containment and the hang watchdog — the fault-tolerance substrate
//! under [`TargetExecutor`](super::TargetExecutor) and the sharded campaign
//! workers.
//!
//! Two primitives live here:
//!
//! * [`contained`] / [`panic_fault`] — re-exported from
//!   [`peachstar_protocols::containment`], where they moved so the
//!   framed-TCP socket server can contain panics *server-side* with the
//!   same process-global hook. A caught panic becomes an `Err(message)`
//!   that the executor converts into a synthetic [`FaultKind::Panic`] fault
//!   whose dedup site is the interned message.
//! * [`Watchdog`] runs executions on a dedicated worker thread under a
//!   per-execution deadline. A stuck execution is *abandoned* — the reply
//!   channel is dropped, the worker thread is left to finish (or sleep
//!   forever) detached, and a fresh worker is built from the pristine
//!   factory target — and recorded as a [`FaultKind::Hang`] fault. The
//!   worker applies exactly the reset/containment sequence the in-thread
//!   executor applies, so a supervised campaign in which nothing hangs is
//!   bit-identical to an unsupervised one.

use std::sync::mpsc::{self, RecvTimeoutError};
use std::thread;
use std::time::Duration;

use peachstar_coverage::{SparseTrace, TraceContext};
use peachstar_protocols::{Fault, FaultKind, Outcome, Target};

pub(crate) use peachstar_protocols::containment::{contained, panic_fault};

/// The dedup site recorded when the watchdog abandons a stuck execution.
pub const HANG_SITE: &str = "watchdog: execution exceeded the --exec-timeout-ms deadline";

/// The dedup site recorded when the watchdog cannot keep a worker alive at
/// all (the worker thread died twice in a row without delivering a reply).
pub const WORKER_LOST_SITE: &str = "watchdog: supervised worker lost";

struct Job {
    packet: Vec<u8>,
    reset_before: bool,
}

type Reply = (Outcome, SparseTrace);

struct WatchdogWorker {
    jobs: mpsc::Sender<Job>,
    replies: mpsc::Receiver<Reply>,
}

/// Per-execution deadline enforcement (see the module docs).
///
/// Owns a pristine *factory* copy of the target (never executed) from which
/// every worker — the first one, and every replacement after an abandoned
/// hang — is freshly built, so a rebuilt worker is indistinguishable from a
/// restarted target.
pub(crate) struct Watchdog {
    timeout: Duration,
    factory: Box<dyn Target + Send>,
    worker: Option<WatchdogWorker>,
}

impl std::fmt::Debug for Watchdog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Watchdog")
            .field("timeout", &self.timeout)
            .field("target", &self.factory.name())
            .finish()
    }
}

fn spawn_worker(factory: &dyn Target) -> WatchdogWorker {
    let mut target = factory.clone_fresh();
    let spare = factory.clone_fresh();
    let (jobs, jobs_rx) = mpsc::channel::<Job>();
    let (replies_tx, replies) = mpsc::channel::<Reply>();
    // The thread is deliberately not joined anywhere: an abandoned worker
    // may be blocked inside a hung `process` call, and the whole point of
    // the watchdog is that the campaign does not wait for it.
    thread::Builder::new()
        .name("peachstar-watchdog".into())
        .spawn(move || {
            let mut ctx = TraceContext::new();
            while let Ok(job) = jobs_rx.recv() {
                if job.reset_before {
                    target.reset();
                }
                ctx.reset();
                let outcome = match contained(|| target.process(&job.packet, &mut ctx)) {
                    Ok(outcome) => outcome,
                    Err(message) => {
                        // The panic may have left the target inconsistent;
                        // rebuild it from the pristine spare.
                        target = spare.clone_fresh();
                        Outcome::Fault(panic_fault(&message))
                    }
                };
                if outcome.is_fault() {
                    target.reset();
                }
                if replies_tx.send((outcome, ctx.trace().to_sparse())).is_err() {
                    // The supervisor abandoned us (deadline missed on an
                    // earlier packet) — nothing left to do.
                    return;
                }
            }
        })
        .expect("spawning the watchdog worker thread");
    WatchdogWorker { jobs, replies }
}

impl Watchdog {
    /// Creates a watchdog enforcing `timeout` per execution, building its
    /// workers from fresh copies of `factory`.
    pub(crate) fn new(factory: Box<dyn Target + Send>, timeout: Duration) -> Self {
        Self {
            timeout,
            factory,
            worker: None,
        }
    }

    /// The enforced per-execution deadline.
    pub(crate) fn timeout(&self) -> Duration {
        self.timeout
    }

    /// Runs one packet on the supervised worker: resets the worker-side
    /// target first when `reset_before` is set, contains panics, and
    /// abandons the execution — recording [`FaultKind::Hang`] with an empty
    /// trace — if no reply arrives within the deadline.
    pub(crate) fn execute(&mut self, reset_before: bool, packet: &[u8]) -> Reply {
        // Two attempts: a dead worker (disconnected channel) is replaced
        // once; failing again means worker threads cannot be sustained.
        for _ in 0..2 {
            let worker = match &self.worker {
                Some(worker) => worker,
                None => self.worker.insert(spawn_worker(self.factory.as_ref())),
            };
            let job = Job {
                packet: packet.to_vec(),
                reset_before,
            };
            if worker.jobs.send(job).is_err() {
                self.worker = None;
                continue;
            }
            match worker.replies.recv_timeout(self.timeout) {
                Ok(reply) => return reply,
                Err(RecvTimeoutError::Timeout) => {
                    // Abandon the stuck execution: dropping the channel ends
                    // lets the worker exit whenever (if ever) it comes back.
                    self.worker = None;
                    return (
                        Outcome::Fault(Fault::new(FaultKind::Hang, HANG_SITE)),
                        SparseTrace::new(),
                    );
                }
                Err(RecvTimeoutError::Disconnected) => {
                    self.worker = None;
                }
            }
        }
        (
            Outcome::Fault(Fault::new(FaultKind::Hang, WORKER_LOST_SITE)),
            SparseTrace::new(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peachstar_protocols::chaos::{ChaosConfig, ChaosTarget};
    use peachstar_protocols::TargetId;

    #[test]
    fn watchdog_passes_through_fast_executions() {
        let mut watchdog = Watchdog::new(
            TargetId::Modbus.create_send(),
            Duration::from_secs(5),
        );
        let request = [0x00, 0x01, 0x00, 0x00, 0x00, 0x06, 0x01, 0x03, 0x00, 0x00, 0x00, 0x02];
        let (outcome, trace) = watchdog.execute(false, &request);
        assert!(outcome.response().is_some());
        assert!(!trace.is_empty(), "supervised executions still record coverage");
    }

    #[test]
    fn watchdog_abandons_hangs_and_recovers() {
        let chaos = ChaosConfig::new(0)
            .panic_every(0)
            .garbage_every(0)
            .hang_every(1)
            .hang_ms(2_000);
        let hanging = Box::new(ChaosTarget::new(TargetId::Modbus.create_send(), chaos));
        let mut watchdog = Watchdog::new(hanging, Duration::from_millis(25));
        let started = std::time::Instant::now();
        let (outcome, trace) = watchdog.execute(true, &[0x01, 0x02]);
        assert!(
            started.elapsed() < Duration::from_millis(1_500),
            "the deadline, not the hang, bounds the wall time"
        );
        assert_eq!(
            outcome.fault().map(|f| (f.kind, f.site)),
            Some((FaultKind::Hang, HANG_SITE))
        );
        assert!(trace.is_empty(), "an abandoned execution has no trace");
        // The rebuilt worker keeps serving — with hang_every(1) it hangs
        // again, proving replacement workers are armed too.
        let (outcome, _) = watchdog.execute(false, &[0x03]);
        assert_eq!(outcome.fault().map(|f| f.kind), Some(FaultKind::Hang));
    }

    #[test]
    fn watchdog_contains_worker_panics() {
        let chaos = ChaosConfig::new(0).panic_every(1).sites(2);
        let panicking = Box::new(ChaosTarget::new(TargetId::Modbus.create_send(), chaos));
        let mut watchdog = Watchdog::new(panicking, Duration::from_secs(5));
        let (outcome, _) = watchdog.execute(true, &[0x01, 0x02, 0x03]);
        let fault = outcome.fault().expect("injected panic becomes a fault");
        assert_eq!(fault.kind, FaultKind::Panic);
        assert!(fault.site.starts_with("chaos: injected panic #"), "{}", fault.site);
        // The worker survives its own contained panic.
        let (outcome, _) = watchdog.execute(false, &[0x04]);
        assert_eq!(outcome.fault().map(|f| f.kind), Some(FaultKind::Panic));
    }
}
