//! The transport seam between [`TargetExecutor`](super::TargetExecutor) and
//! [`Target`]: *how* the executor's packets reach the target's decoder.
//!
//! Two transports exist:
//!
//! * [`TransportMode::InProcess`] — today's direct call, the default,
//!   bit-for-bit unchanged: the executor owns the target and invokes
//!   [`Target::process`] directly. `deploy` is the identity.
//! * [`TransportMode::FramedTcp`] — the target runs behind a real TCP
//!   listener (the [`peachstar_protocols::server`] socket-server mode, one
//!   fresh target instance per connection) and the executor holds a
//!   [`FramedTcpTarget`]: a `Target` implementation whose `process` /
//!   `process_batch` / `reset` are length-framed request/response exchanges
//!   over a loopback socket — TPKT/COTP-framed (RFC 1006) for the ISO-stack
//!   targets (iec61850, iccp), raw `u32`-length-framed for the rest
//!   ([`WireFraming::for_target`]).
//!
//! The seam is deliberately *below* the executor: every reset-policy
//! decision, panic rebuild, watchdog deadline and window walk runs
//! client-side exactly as in-process, and the wire relays `(outcome, sparse
//! trace)` pairs verbatim (fault sites re-interned on receipt, so dedup is
//! pointer-compatible). That is what makes a loopback-TCP campaign
//! bit-identical to an in-process one — `tests/transport_equivalence.rs`
//! holds the proof across all six targets and both strategies.
//!
//! # Connection recovery
//!
//! A lost connection is *recovered*, not reported: every exchange failure
//! classifies the OS error ([`error_class`]), reconnects under the
//! deterministic bounded-exponential [`ReconnectPolicy`], and replays the
//! packet journal — every packet sent since the last `Reset` — on the fresh
//! connection so the brand-new server-side target instance deterministically
//! re-derives the lost one's state. Only then is the failed request retried.
//! Because the executor's reset cadence clears the journal at every window
//! boundary, a mid-window reconnect reproduces exactly the state a healthy
//! connection would hold, and the campaign report is bit-identical to an
//! undisturbed run (`tests/service_robustness.rs` pins this under the
//! deterministic server-side chaos injector, which drops connections before
//! processing the dropped frame).
//!
//! Only when the retry budget is exhausted does the target panic — with a
//! stable, attempt-count-free message that carries the error class
//! ("connection-refused" dedups apart from "connection-reset"), so the
//! executor's containment records one bug per failure class and
//! [`ShardedCampaign`](super::shard::ShardedCampaign) can recognise the
//! prefix (`is_connection_loss`) and degrade the dead connection instead
//! of failing the campaign.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

use peachstar_coverage::TraceContext;
use peachstar_datamodel::DataModelSet;
use peachstar_protocols::server::{serve_with_chaos, ServerHandle, WireChaos};
use peachstar_protocols::wire::{MessageStream, Request, Response, WireFraming};
use peachstar_protocols::{DecodeSink, Outcome, Target, WindowResults};

/// Which transport carries packets from the executor to the target.
///
/// Operational knob, not campaign semantics: reports are bit-identical
/// across transports, so the field is deliberately excluded from the
/// snapshot fingerprint (like `--exec-timeout-ms`) — a checkpoint recorded
/// under TCP resumes in-process and vice versa.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportMode {
    /// Direct in-process calls (the default).
    #[default]
    InProcess,
    /// Length-framed request/response over a loopback TCP socket, against a
    /// spawned socket server.
    FramedTcp,
}

impl TransportMode {
    /// The `--transport` flag spelling of this mode.
    #[must_use]
    pub fn as_flag(self) -> &'static str {
        match self {
            TransportMode::InProcess => "inprocess",
            TransportMode::FramedTcp => "tcp",
        }
    }
}

/// A live socket server backing a framed-TCP campaign. Dropping it shuts
/// the listener down; the campaign drops its client connections first (they
/// die with the engine), so the per-connection handler threads have already
/// drained by then.
pub type TransportGuard = ServerHandle;

/// The deterministic reconnect schedule of a [`FramedTcpTarget`]: how many
/// times a lost connection is re-dialled, and the bounded exponential
/// backoff between attempts (`base_delay_ms << attempt`, capped at
/// `max_delay_ms`).
///
/// Operational knob, not campaign semantics: a recovered connection replays
/// its journal and produces the exact records a healthy one would, so the
/// policy is deliberately excluded from the snapshot fingerprint (like
/// `--exec-timeout-ms` and the transport itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconnectPolicy {
    /// Reconnect attempts per incident before the connection is declared
    /// lost (0 = fail on the first socket error, the pre-recovery
    /// behaviour).
    pub retries: u32,
    /// Backoff before the first reconnect attempt, in milliseconds.
    pub base_delay_ms: u64,
    /// Backoff ceiling, in milliseconds.
    pub max_delay_ms: u64,
}

impl ReconnectPolicy {
    /// The default schedule: 4 attempts at 10 → 20 → 40 → 80 ms.
    pub const DEFAULT: Self = Self {
        retries: 4,
        base_delay_ms: 10,
        max_delay_ms: 250,
    };

    /// No recovery: the first socket error exhausts the budget immediately.
    #[must_use]
    pub const fn none() -> Self {
        Self {
            retries: 0,
            base_delay_ms: 0,
            max_delay_ms: 0,
        }
    }

    /// A schedule with `retries` attempts and no backoff — deterministic
    /// tests and drills that should not sleep.
    #[must_use]
    pub const fn immediate(retries: u32) -> Self {
        Self {
            retries,
            base_delay_ms: 0,
            max_delay_ms: 0,
        }
    }

    /// Sets the number of reconnect attempts per incident.
    #[must_use]
    pub const fn retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// The backoff before attempt `attempt` (0-based): bounded exponential.
    #[must_use]
    pub fn delay_before(&self, attempt: u32) -> Duration {
        let shift = attempt.min(20);
        let millis = self
            .base_delay_ms
            .saturating_mul(1u64 << shift)
            .min(self.max_delay_ms);
        Duration::from_millis(millis)
    }
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// The dedup class of a transport-level socket error: coarse enough to be
/// stable across runs, fine enough that a refused connection (server gone)
/// files apart from a reset one (server dropped us mid-stream).
#[must_use]
pub fn error_class(kind: io::ErrorKind) -> &'static str {
    match kind {
        io::ErrorKind::ConnectionRefused => "connection-refused",
        io::ErrorKind::ConnectionReset => "connection-reset",
        io::ErrorKind::ConnectionAborted => "connection-aborted",
        io::ErrorKind::BrokenPipe => "broken-pipe",
        io::ErrorKind::UnexpectedEof => "eof",
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => "timed-out",
        _ => "io-error",
    }
}

/// The stable prefix of every budget-exhaustion panic message — the marker
/// the sharded engine uses to tell a dead connection from a target bug.
pub(crate) const CONNECTION_LOSS_PREFIX: &str = "framed-tcp transport: connection lost";

/// Whether a contained panic message reports an exhausted reconnect budget
/// (as opposed to a genuine target fault relayed over a healthy wire).
#[must_use]
pub(crate) fn is_connection_loss(message: &str) -> bool {
    message.starts_with(CONNECTION_LOSS_PREFIX)
}

/// The budget-exhaustion panic message for one error class. Deliberately
/// free of addresses and attempt counts: the message text *is* the interned
/// dedup site, so it must be identical across runs, ports and retry
/// schedules.
fn connection_loss_message(class: &'static str) -> String {
    format!("{CONNECTION_LOSS_PREFIX} ({class}): reconnect budget exhausted")
}

/// Wraps `target` in the requested transport.
///
/// For [`TransportMode::InProcess`] this is the identity. For
/// [`TransportMode::FramedTcp`] it spawns a socket server on an ephemeral
/// loopback port serving fresh clones of `target` (one per connection) and
/// returns a connected [`FramedTcpTarget`] plus the server guard, which the
/// caller must keep alive for the campaign's duration.
///
/// # Panics
///
/// Panics when the loopback listener cannot be bound or the first
/// connection cannot be established — a campaign without a reachable target
/// cannot run.
pub fn deploy(
    target: Box<dyn Target>,
    mode: TransportMode,
    policy: ReconnectPolicy,
    chaos: WireChaos,
) -> (Box<dyn Target>, Option<TransportGuard>) {
    match mode {
        TransportMode::InProcess => (target, None),
        TransportMode::FramedTcp => {
            let (client, guard) = deploy_tcp(target.as_ref(), policy, chaos);
            (Box::new(client), Some(guard))
        }
    }
}

/// [`deploy`] for the sharded engine, whose targets must stay `Send` so
/// worker threads can own them.
pub fn deploy_send(
    target: Box<dyn Target + Send>,
    mode: TransportMode,
    policy: ReconnectPolicy,
    chaos: WireChaos,
) -> (Box<dyn Target + Send>, Option<TransportGuard>) {
    match mode {
        TransportMode::InProcess => (target, None),
        TransportMode::FramedTcp => {
            let (client, guard) = deploy_tcp(target.as_ref(), policy, chaos);
            (Box::new(client), Some(guard))
        }
    }
}

fn deploy_tcp(
    target: &dyn Target,
    policy: ReconnectPolicy,
    chaos: WireChaos,
) -> (FramedTcpTarget, TransportGuard) {
    let listener = TcpListener::bind("127.0.0.1:0")
        .expect("framed-tcp transport: binding a loopback listener");
    let guard = serve_with_chaos(listener, target.clone_fresh(), chaos)
        .expect("framed-tcp transport: spawning the socket server");
    let client = FramedTcpTarget::connect_with(target.clone_fresh(), guard.addr(), policy);
    (client, guard)
}

/// A [`Target`] whose calls cross a real TCP connection to a socket server
/// (see the module docs). One instance owns one connection;
/// [`Target::clone_fresh`] opens a new connection to the same server, which
/// on the server side means a brand-new target instance — exactly the
/// semantics `clone_fresh` promises in-process.
pub struct FramedTcpTarget {
    /// Never executed: answers `name`/`data_models`/`session_template`
    /// locally (they are static per target) and seeds reconnect clones.
    blueprint: Box<dyn Target + Send>,
    addr: SocketAddr,
    policy: ReconnectPolicy,
    stream: TcpStream,
    messages: MessageStream,
    payload: Vec<u8>,
    /// Every packet sent since the last successful `Reset`, in order —
    /// replayed onto a fresh connection so the replacement server-side
    /// target re-derives the lost one's state. Cleared on reset, so the
    /// executor's window cadence bounds its size.
    journal: Vec<Vec<u8>>,
}

impl std::fmt::Debug for FramedTcpTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FramedTcpTarget")
            .field("target", &self.blueprint.name())
            .field("addr", &self.addr)
            .field("policy", &self.policy)
            .finish()
    }
}

impl FramedTcpTarget {
    /// Connects to the socket server at `addr` serving `blueprint`'s
    /// target, under the default reconnect policy.
    ///
    /// # Panics
    ///
    /// Panics when the connection cannot be established within the policy's
    /// retry budget (a stable, errno-classed message — see the module
    /// docs).
    #[must_use]
    pub fn connect(blueprint: Box<dyn Target + Send>, addr: SocketAddr) -> Self {
        Self::connect_with(blueprint, addr, ReconnectPolicy::default())
    }

    /// [`connect`](Self::connect) with an explicit reconnect policy. The
    /// initial dial runs under the same backoff schedule as mid-campaign
    /// recovery, so a server that is still coming up does not kill the
    /// deploy.
    #[must_use]
    pub fn connect_with(
        blueprint: Box<dyn Target + Send>,
        addr: SocketAddr,
        policy: ReconnectPolicy,
    ) -> Self {
        let stream = match open_stream(addr, policy) {
            Ok(stream) => stream,
            Err(class) => panic!("{}", connection_loss_message(class)),
        };
        let framing = WireFraming::for_target(blueprint.name());
        Self {
            blueprint,
            addr,
            policy,
            stream,
            messages: MessageStream::new(framing),
            payload: Vec::new(),
            journal: Vec::new(),
        }
    }

    /// One send/recv/decode round on the current connection. A socket or
    /// framing-stream error comes back as its dedup class for the recovery
    /// loop; a *decodable but malformed* response still panics — that is a
    /// protocol bug, not a flapping wire.
    fn try_exchange(&mut self, request: &Request) -> Result<Response, &'static str> {
        request.encode_into(&mut self.payload);
        self.messages
            .send(&mut self.stream, &self.payload)
            .map_err(|error| error_class(error.kind()))?;
        let reply = match self.messages.recv(&mut self.stream) {
            Ok(Some(reply)) => reply,
            // A clean server-side close mid-campaign is still a lost
            // connection; class it with the EOF family.
            Ok(None) => return Err("eof"),
            Err(error) => return Err(error_class(error.kind())),
        };
        match Response::decode(&reply) {
            Ok(response) => Ok(response),
            Err(error) => panic!("framed-tcp transport: {error}"),
        }
    }

    /// Opens a replacement connection and replays the journal so the fresh
    /// server-side target re-derives the lost connection's state. The
    /// replayed window uses the summary sink — decode output is discarded,
    /// only the state transitions matter, and the summary path is pinned
    /// bit-identical to the full one.
    fn reopen_and_replay(&mut self) -> Result<(), &'static str> {
        let stream = TcpStream::connect(self.addr).map_err(|e| error_class(e.kind()))?;
        stream.set_nodelay(true).map_err(|e| error_class(e.kind()))?;
        self.stream = stream;
        self.messages = MessageStream::new(WireFraming::for_target(self.blueprint.name()));
        if self.journal.is_empty() {
            return Ok(());
        }
        let replay = Request::Batch {
            sink: DecodeSink::Summary,
            packets: self.journal.clone(),
        };
        match self.try_exchange(&replay)? {
            Response::Batch(_) => Ok(()),
            other => panic!("framed-tcp transport: unexpected reply {other:?}"),
        }
    }

    /// One request/response exchange with recovery: a lost connection is
    /// re-dialled under the backoff schedule, the journal replayed, and the
    /// request retried. Only an exhausted retry budget panics — with the
    /// stable errno-classed message the containment layer records and the
    /// sharded engine recognises ([`is_connection_loss`]).
    fn exchange(&mut self, request: &Request) -> Response {
        let mut class = match self.try_exchange(request) {
            Ok(response) => {
                self.journal_success(request);
                return response;
            }
            Err(class) => class,
        };
        let mut attempt = 0u32;
        loop {
            if attempt >= self.policy.retries {
                panic!("{}", connection_loss_message(class));
            }
            std::thread::sleep(self.policy.delay_before(attempt));
            attempt += 1;
            let retried = self
                .reopen_and_replay()
                .and_then(|()| self.try_exchange(request));
            match retried {
                Ok(response) => {
                    self.journal_success(request);
                    return response;
                }
                Err(next) => class = next,
            }
        }
    }

    /// Journal bookkeeping after a request was answered: processed packets
    /// append (they advanced the server-side state), a reset clears (the
    /// server-side target is back at its origin).
    fn journal_success(&mut self, request: &Request) {
        match request {
            Request::Process(packet) => self.journal.push(packet.clone()),
            Request::Batch { packets, .. } => self.journal.extend(packets.iter().cloned()),
            Request::Reset => self.journal.clear(),
        }
    }
}

/// Dials `addr` under `policy`: the initial attempt plus `policy.retries`
/// backed-off re-dials, returning the last error class when all fail.
fn open_stream(addr: SocketAddr, policy: ReconnectPolicy) -> Result<TcpStream, &'static str> {
    let mut attempt = 0u32;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream.set_nodelay(true).map_err(|e| error_class(e.kind()))?;
                return Ok(stream);
            }
            Err(error) => {
                let class = error_class(error.kind());
                if attempt >= policy.retries {
                    return Err(class);
                }
                std::thread::sleep(policy.delay_before(attempt));
                attempt += 1;
            }
        }
    }
}

impl Target for FramedTcpTarget {
    fn name(&self) -> &'static str {
        self.blueprint.name()
    }

    fn data_models(&self) -> DataModelSet {
        self.blueprint.data_models()
    }

    fn session_template(&self) -> Option<peachstar_protocols::SessionTemplate> {
        self.blueprint.session_template()
    }

    fn process(&mut self, packet: &[u8], ctx: &mut TraceContext) -> Outcome {
        match self.exchange(&Request::Process(packet.to_vec())) {
            Response::Process(outcome, trace) => {
                // Rematerialise the server-side trace so the executor reads
                // it from `ctx` exactly as it would after a direct call.
                ctx.load_sparse(&trace);
                outcome
            }
            other => panic!("framed-tcp transport: unexpected reply {other:?}"),
        }
    }

    fn process_batch(
        &mut self,
        packets: &[&[u8]],
        ctx: &mut TraceContext,
        out: &mut WindowResults,
        sink: DecodeSink,
    ) {
        let request = Request::Batch {
            sink,
            packets: packets.iter().map(|p| p.to_vec()).collect(),
        };
        match self.exchange(&request) {
            Response::Batch(records) => {
                assert_eq!(
                    records.len(),
                    packets.len(),
                    "framed-tcp transport: window record count mismatch"
                );
                out.begin();
                for (summary, trace) in &records {
                    out.record_sparse(*summary, trace);
                }
                // The in-process default leaves the last execution's trace
                // in `ctx`; mirror that.
                if let Some((_, last)) = records.last() {
                    ctx.load_sparse(last);
                }
            }
            other => panic!("framed-tcp transport: unexpected reply {other:?}"),
        }
    }

    fn reset(&mut self) {
        match self.exchange(&Request::Reset) {
            Response::ResetDone => {}
            other => panic!("framed-tcp transport: unexpected reply {other:?}"),
        }
    }

    fn clone_fresh(&self) -> Box<dyn Target + Send> {
        Box::new(FramedTcpTarget::connect_with(
            self.blueprint.clone_fresh(),
            self.addr,
            self.policy,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peachstar_protocols::{OutcomeSummary, TargetId};

    #[test]
    fn framed_tcp_target_matches_the_in_process_target() {
        for id in [TargetId::Modbus, TargetId::Iec61850] {
            let (mut tcp, _guard) = deploy_tcp(id.create().as_ref(), ReconnectPolicy::default(), WireChaos::default());
            let mut reference = id.create();
            let mut tcp_ctx = TraceContext::new();
            let mut ref_ctx = TraceContext::new();
            for packet in [&[0x01u8, 0x02][..], &[0x03, 0x00, 0x00, 0x10], &[]] {
                tcp_ctx.reset();
                ref_ctx.reset();
                let over_wire = tcp.process(packet, &mut tcp_ctx);
                let direct = reference.process(packet, &mut ref_ctx);
                assert_eq!(over_wire, direct, "{id:?}");
                assert_eq!(
                    tcp_ctx.trace().to_sparse(),
                    ref_ctx.trace().to_sparse(),
                    "{id:?}"
                );
            }
            tcp.reset();
            reference.reset();
        }
    }

    #[test]
    fn framed_tcp_windows_match_the_default_batch_impl() {
        let (mut tcp, _guard) =
            deploy_tcp(TargetId::Lib60870.create().as_ref(), ReconnectPolicy::default(), WireChaos::default());
        let mut reference = TargetId::Lib60870.create();
        let window: Vec<&[u8]> = vec![&[0x68, 0x04, 0x07, 0x00, 0x00, 0x00], &[0xFF], &[]];
        let mut tcp_ctx = TraceContext::new();
        let mut ref_ctx = TraceContext::new();
        let mut over_wire = WindowResults::new();
        let mut direct = WindowResults::new();
        tcp.process_batch(&window, &mut tcp_ctx, &mut over_wire, DecodeSink::Full);
        reference.process_batch(&window, &mut ref_ctx, &mut direct, DecodeSink::Full);
        assert_eq!(over_wire.len(), direct.len());
        let collect = |results: &WindowResults| -> Vec<(OutcomeSummary, peachstar_coverage::SparseTrace)> {
            results.iter().map(|(s, t)| (*s, t.clone())).collect()
        };
        assert_eq!(collect(&over_wire), collect(&direct));
    }

    #[test]
    fn clone_fresh_reconnects_to_the_same_server() {
        let (tcp, _guard) = deploy_tcp(TargetId::Iec104.create().as_ref(), ReconnectPolicy::default(), WireChaos::default());
        let mut clone = tcp.clone_fresh();
        assert_eq!(clone.name(), "IEC104");
        let mut ctx = TraceContext::new();
        ctx.reset();
        // A fresh connection serves from a fresh server-side instance.
        let outcome = clone.process(&[0x68, 0x04, 0x43, 0x00, 0x00, 0x00], &mut ctx);
        assert!(!outcome.is_fault());
    }

    #[test]
    fn backoff_schedule_is_bounded_exponential() {
        let policy = ReconnectPolicy::DEFAULT;
        assert_eq!(policy.delay_before(0), Duration::from_millis(10));
        assert_eq!(policy.delay_before(1), Duration::from_millis(20));
        assert_eq!(policy.delay_before(2), Duration::from_millis(40));
        assert_eq!(policy.delay_before(10), Duration::from_millis(250), "capped");
        assert_eq!(
            ReconnectPolicy::immediate(3).delay_before(2),
            Duration::ZERO,
            "immediate schedules never sleep"
        );
        assert_eq!(ReconnectPolicy::none().retries, 0);
        assert_eq!(ReconnectPolicy::default(), ReconnectPolicy::DEFAULT);
    }

    #[test]
    fn error_classes_keep_refused_and_reset_dedup_sites_apart() {
        use peachstar_protocols::intern_site;
        assert_eq!(error_class(io::ErrorKind::ConnectionRefused), "connection-refused");
        assert_eq!(error_class(io::ErrorKind::ConnectionReset), "connection-reset");
        assert_eq!(error_class(io::ErrorKind::BrokenPipe), "broken-pipe");
        assert_eq!(error_class(io::ErrorKind::UnexpectedEof), "eof");
        assert_eq!(error_class(io::ErrorKind::Other), "io-error");
        // The exhaustion messages — the interned dedup sites — differ per
        // class and never mention ports or attempt counts, so the same
        // failure class dedups into one bug across runs while refused and
        // reset file separately.
        let refused = connection_loss_message("connection-refused");
        let reset = connection_loss_message("connection-reset");
        assert_ne!(refused, reset);
        assert!(intern_site(&refused) != intern_site(&reset));
        assert_eq!(intern_site(&refused), intern_site(&connection_loss_message("connection-refused")));
        for message in [&refused, &reset] {
            assert!(is_connection_loss(message), "{message}");
            assert!(!message.contains("attempt"), "{message}");
            assert!(!message.contains(':') || !message.contains("127."), "{message}");
        }
        assert!(!is_connection_loss("chaos: injected panic #7"));
    }

    #[test]
    fn a_dead_server_exhausts_the_budget_with_a_classed_panic() {
        // Bind then drop a listener: the port is closed, so every dial is
        // refused and the zero-backoff policy exhausts instantly.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.local_addr().expect("addr")
        };
        let result = peachstar_protocols::containment::contained(|| {
            FramedTcpTarget::connect_with(
                TargetId::Modbus.create_send(),
                addr,
                ReconnectPolicy::immediate(1),
            )
        });
        let message = result.expect_err("connect must fail against a closed port");
        assert_eq!(message, connection_loss_message("connection-refused"));
    }

    #[test]
    fn a_flapping_server_is_survived_by_journal_replay() {
        // Open a session-stateful connection against a server that drops
        // the connection on the third frame (before processing it), then
        // keep processing: the recovery layer reconnects, replays the
        // journal (which re-opens the session on the fresh server-side
        // instance) and retries the dropped request, so the outcomes match
        // an undisturbed reference run bit for bit.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let _server = serve_with_chaos(
            listener,
            TargetId::Iec104.create_send(),
            WireChaos::drop_every(3).limit(1),
        )
        .expect("serve");

        let startdt = [0x68u8, 0x04, 0x07, 0x00, 0x00, 0x00];
        let testfr = [0x68u8, 0x04, 0x43, 0x00, 0x00, 0x00];
        let mut reference = TargetId::Iec104.create();
        let mut tcp = FramedTcpTarget::connect_with(
            TargetId::Iec104.create_send(),
            addr,
            ReconnectPolicy::immediate(5),
        );
        let mut ref_ctx = TraceContext::new();
        let mut tcp_ctx = TraceContext::new();
        // Frames 1–2 are served; frame 3 hits the injector: the connection
        // dies before the request is processed, recovery replays the two
        // journaled session packets and retries the third.
        for packet in [&startdt[..], &testfr[..], &testfr[..], &startdt[..], &[0xFFu8][..]] {
            ref_ctx.reset();
            tcp_ctx.reset();
            let over_wire = tcp.process(packet, &mut tcp_ctx);
            let direct = reference.process(packet, &mut ref_ctx);
            assert_eq!(over_wire, direct, "journal replay restores session state");
            assert_eq!(tcp_ctx.trace().to_sparse(), ref_ctx.trace().to_sparse());
        }
    }
}
