//! The transport seam between [`TargetExecutor`](super::TargetExecutor) and
//! [`Target`]: *how* the executor's packets reach the target's decoder.
//!
//! Two transports exist:
//!
//! * [`TransportMode::InProcess`] — today's direct call, the default,
//!   bit-for-bit unchanged: the executor owns the target and invokes
//!   [`Target::process`] directly. `deploy` is the identity.
//! * [`TransportMode::FramedTcp`] — the target runs behind a real TCP
//!   listener (the [`peachstar_protocols::server`] socket-server mode, one
//!   fresh target instance per connection) and the executor holds a
//!   [`FramedTcpTarget`]: a `Target` implementation whose `process` /
//!   `process_batch` / `reset` are length-framed request/response exchanges
//!   over a loopback socket — TPKT/COTP-framed (RFC 1006) for the ISO-stack
//!   targets (iec61850, iccp), raw `u32`-length-framed for the rest
//!   ([`WireFraming::for_target`]).
//!
//! The seam is deliberately *below* the executor: every reset-policy
//! decision, panic rebuild, watchdog deadline and window walk runs
//! client-side exactly as in-process, and the wire relays `(outcome, sparse
//! trace)` pairs verbatim (fault sites re-interned on receipt, so dedup is
//! pointer-compatible). That is what makes a loopback-TCP campaign
//! bit-identical to an in-process one — `tests/transport_equivalence.rs`
//! holds the proof across all six targets and both strategies.
//!
//! Fault recovery falls out of [`Target::clone_fresh`]: a dead socket makes
//! the next exchange panic, the executor's containment records it and
//! rebuilds the target from its spare, and rebuilding a [`FramedTcpTarget`]
//! *is* reconnecting. The watchdog composes the same way — an abandoned
//! (hung) supervised worker strands its connection, and the replacement
//! worker built from the factory opens a fresh one.

use std::net::{SocketAddr, TcpListener, TcpStream};

use peachstar_coverage::TraceContext;
use peachstar_datamodel::DataModelSet;
use peachstar_protocols::server::{serve, ServerHandle};
use peachstar_protocols::wire::{MessageStream, Request, Response, WireFraming};
use peachstar_protocols::{DecodeSink, Outcome, Target, WindowResults};

/// Which transport carries packets from the executor to the target.
///
/// Operational knob, not campaign semantics: reports are bit-identical
/// across transports, so the field is deliberately excluded from the
/// snapshot fingerprint (like `--exec-timeout-ms`) — a checkpoint recorded
/// under TCP resumes in-process and vice versa.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportMode {
    /// Direct in-process calls (the default).
    #[default]
    InProcess,
    /// Length-framed request/response over a loopback TCP socket, against a
    /// spawned socket server.
    FramedTcp,
}

impl TransportMode {
    /// The `--transport` flag spelling of this mode.
    #[must_use]
    pub fn as_flag(self) -> &'static str {
        match self {
            TransportMode::InProcess => "inprocess",
            TransportMode::FramedTcp => "tcp",
        }
    }
}

/// A live socket server backing a framed-TCP campaign. Dropping it shuts
/// the listener down; the campaign drops its client connections first (they
/// die with the engine), so the per-connection handler threads have already
/// drained by then.
pub type TransportGuard = ServerHandle;

/// Wraps `target` in the requested transport.
///
/// For [`TransportMode::InProcess`] this is the identity. For
/// [`TransportMode::FramedTcp`] it spawns a socket server on an ephemeral
/// loopback port serving fresh clones of `target` (one per connection) and
/// returns a connected [`FramedTcpTarget`] plus the server guard, which the
/// caller must keep alive for the campaign's duration.
///
/// # Panics
///
/// Panics when the loopback listener cannot be bound or the first
/// connection cannot be established — a campaign without a reachable target
/// cannot run.
pub fn deploy(
    target: Box<dyn Target>,
    mode: TransportMode,
) -> (Box<dyn Target>, Option<TransportGuard>) {
    match mode {
        TransportMode::InProcess => (target, None),
        TransportMode::FramedTcp => {
            let (client, guard) = deploy_tcp(target.as_ref());
            (Box::new(client), Some(guard))
        }
    }
}

/// [`deploy`] for the sharded engine, whose targets must stay `Send` so
/// worker threads can own them.
pub fn deploy_send(
    target: Box<dyn Target + Send>,
    mode: TransportMode,
) -> (Box<dyn Target + Send>, Option<TransportGuard>) {
    match mode {
        TransportMode::InProcess => (target, None),
        TransportMode::FramedTcp => {
            let (client, guard) = deploy_tcp(target.as_ref());
            (Box::new(client), Some(guard))
        }
    }
}

fn deploy_tcp(target: &dyn Target) -> (FramedTcpTarget, TransportGuard) {
    let listener = TcpListener::bind("127.0.0.1:0")
        .expect("framed-tcp transport: binding a loopback listener");
    let guard = serve(listener, target.clone_fresh())
        .expect("framed-tcp transport: spawning the socket server");
    let client = FramedTcpTarget::connect(target.clone_fresh(), guard.addr());
    (client, guard)
}

/// A [`Target`] whose calls cross a real TCP connection to a socket server
/// (see the module docs). One instance owns one connection;
/// [`Target::clone_fresh`] opens a new connection to the same server, which
/// on the server side means a brand-new target instance — exactly the
/// semantics `clone_fresh` promises in-process.
pub struct FramedTcpTarget {
    /// Never executed: answers `name`/`data_models`/`session_template`
    /// locally (they are static per target) and seeds reconnect clones.
    blueprint: Box<dyn Target + Send>,
    addr: SocketAddr,
    stream: TcpStream,
    messages: MessageStream,
    payload: Vec<u8>,
}

impl std::fmt::Debug for FramedTcpTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FramedTcpTarget")
            .field("target", &self.blueprint.name())
            .field("addr", &self.addr)
            .finish()
    }
}

impl FramedTcpTarget {
    /// Connects to the socket server at `addr` serving `blueprint`'s target.
    ///
    /// # Panics
    ///
    /// Panics when the connection cannot be established. During a campaign
    /// this panic lands inside the executor's containment, which records it
    /// and rebuilds — but at deploy time a refused connection is fatal.
    #[must_use]
    pub fn connect(blueprint: Box<dyn Target + Send>, addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr)
            .unwrap_or_else(|e| panic!("framed-tcp transport: connect to {addr}: {e}"));
        stream
            .set_nodelay(true)
            .expect("framed-tcp transport: enabling TCP_NODELAY");
        let framing = WireFraming::for_target(blueprint.name());
        Self {
            blueprint,
            addr,
            stream,
            messages: MessageStream::new(framing),
            payload: Vec::new(),
        }
    }

    /// One request/response exchange. Any socket or framing error panics
    /// with a `framed-tcp transport:` message: the executor's containment
    /// turns that into a fault and a rebuild, and rebuilding reconnects.
    fn exchange(&mut self, request: &Request) -> Response {
        request.encode_into(&mut self.payload);
        if let Err(error) = self.messages.send(&mut self.stream, &self.payload) {
            panic!("framed-tcp transport: send failed: {error}");
        }
        let reply = match self.messages.recv(&mut self.stream) {
            Ok(Some(reply)) => reply,
            Ok(None) => panic!("framed-tcp transport: server closed the connection"),
            Err(error) => panic!("framed-tcp transport: receive failed: {error}"),
        };
        match Response::decode(&reply) {
            Ok(response) => response,
            Err(error) => panic!("framed-tcp transport: {error}"),
        }
    }
}

impl Target for FramedTcpTarget {
    fn name(&self) -> &'static str {
        self.blueprint.name()
    }

    fn data_models(&self) -> DataModelSet {
        self.blueprint.data_models()
    }

    fn session_template(&self) -> Option<peachstar_protocols::SessionTemplate> {
        self.blueprint.session_template()
    }

    fn process(&mut self, packet: &[u8], ctx: &mut TraceContext) -> Outcome {
        match self.exchange(&Request::Process(packet.to_vec())) {
            Response::Process(outcome, trace) => {
                // Rematerialise the server-side trace so the executor reads
                // it from `ctx` exactly as it would after a direct call.
                ctx.load_sparse(&trace);
                outcome
            }
            other => panic!("framed-tcp transport: unexpected reply {other:?}"),
        }
    }

    fn process_batch(
        &mut self,
        packets: &[&[u8]],
        ctx: &mut TraceContext,
        out: &mut WindowResults,
        sink: DecodeSink,
    ) {
        let request = Request::Batch {
            sink,
            packets: packets.iter().map(|p| p.to_vec()).collect(),
        };
        match self.exchange(&request) {
            Response::Batch(records) => {
                assert_eq!(
                    records.len(),
                    packets.len(),
                    "framed-tcp transport: window record count mismatch"
                );
                out.begin();
                for (summary, trace) in &records {
                    out.record_sparse(*summary, trace);
                }
                // The in-process default leaves the last execution's trace
                // in `ctx`; mirror that.
                if let Some((_, last)) = records.last() {
                    ctx.load_sparse(last);
                }
            }
            other => panic!("framed-tcp transport: unexpected reply {other:?}"),
        }
    }

    fn reset(&mut self) {
        match self.exchange(&Request::Reset) {
            Response::ResetDone => {}
            other => panic!("framed-tcp transport: unexpected reply {other:?}"),
        }
    }

    fn clone_fresh(&self) -> Box<dyn Target + Send> {
        Box::new(FramedTcpTarget::connect(self.blueprint.clone_fresh(), self.addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peachstar_protocols::{OutcomeSummary, TargetId};

    #[test]
    fn framed_tcp_target_matches_the_in_process_target() {
        for id in [TargetId::Modbus, TargetId::Iec61850] {
            let (mut tcp, _guard) = deploy_tcp(id.create().as_ref());
            let mut reference = id.create();
            let mut tcp_ctx = TraceContext::new();
            let mut ref_ctx = TraceContext::new();
            for packet in [&[0x01u8, 0x02][..], &[0x03, 0x00, 0x00, 0x10], &[]] {
                tcp_ctx.reset();
                ref_ctx.reset();
                let over_wire = tcp.process(packet, &mut tcp_ctx);
                let direct = reference.process(packet, &mut ref_ctx);
                assert_eq!(over_wire, direct, "{id:?}");
                assert_eq!(
                    tcp_ctx.trace().to_sparse(),
                    ref_ctx.trace().to_sparse(),
                    "{id:?}"
                );
            }
            tcp.reset();
            reference.reset();
        }
    }

    #[test]
    fn framed_tcp_windows_match_the_default_batch_impl() {
        let (mut tcp, _guard) = deploy_tcp(TargetId::Lib60870.create().as_ref());
        let mut reference = TargetId::Lib60870.create();
        let window: Vec<&[u8]> = vec![&[0x68, 0x04, 0x07, 0x00, 0x00, 0x00], &[0xFF], &[]];
        let mut tcp_ctx = TraceContext::new();
        let mut ref_ctx = TraceContext::new();
        let mut over_wire = WindowResults::new();
        let mut direct = WindowResults::new();
        tcp.process_batch(&window, &mut tcp_ctx, &mut over_wire, DecodeSink::Full);
        reference.process_batch(&window, &mut ref_ctx, &mut direct, DecodeSink::Full);
        assert_eq!(over_wire.len(), direct.len());
        let collect = |results: &WindowResults| -> Vec<(OutcomeSummary, peachstar_coverage::SparseTrace)> {
            results.iter().map(|(s, t)| (*s, t.clone())).collect()
        };
        assert_eq!(collect(&over_wire), collect(&direct));
    }

    #[test]
    fn clone_fresh_reconnects_to_the_same_server() {
        let (tcp, _guard) = deploy_tcp(TargetId::Iec104.create().as_ref());
        let mut clone = tcp.clone_fresh();
        assert_eq!(clone.name(), "IEC104");
        let mut ctx = TraceContext::new();
        ctx.reset();
        // A fresh connection serves from a fresh server-side instance.
        let outcome = clone.process(&[0x68, 0x04, 0x43, 0x00, 0x00, 0x00], &mut ctx);
        assert!(!outcome.is_fault());
    }
}
