//! The [`Schedule`] seam: how the generation strategy receives coverage
//! feedback.

use peachstar_coverage::MergeOutcome;
use peachstar_datamodel::DataModelSet;
use rand::rngs::SmallRng;

use crate::strategy::{GeneratedPacket, GenerationStrategy, StrategyState};

/// Everything the engine knows about one finished execution, delivered to
/// the schedule as a single typed event (replacing the ad-hoc
/// `observe(packet, valuable, models)` call the campaign loop used to make).
#[derive(Debug)]
pub struct FeedbackEvent<'a> {
    /// Execution index (1-based) the event describes.
    pub execution: u64,
    /// The packet that was executed.
    pub packet: &'a GeneratedPacket,
    /// Whether the feedback judged the packet a valuable seed.
    pub valuable: bool,
    /// What the execution added to global coverage.
    pub merge: &'a MergeOutcome,
    /// The data models of the target under test.
    pub models: &'a DataModelSet,
}

/// The resumable state of a [`Schedule`], as captured into (and restored
/// from) a campaign snapshot: the wrapped strategy's state plus the
/// session-position cursor (0 for schedules without session structure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleState {
    /// The wrapped generation strategy's resumable state.
    pub strategy: StrategyState,
    /// Position within the current session (0 for non-session schedules,
    /// and 0 at every session-aligned window boundary).
    pub cursor: u64,
}

impl ScheduleState {
    /// The state of a schedule with nothing to resume.
    #[must_use]
    pub fn stateless() -> Self {
        Self {
            strategy: StrategyState::Stateless,
            cursor: 0,
        }
    }
}

/// Decides which packet runs next and digests per-execution feedback.
///
/// This is the engine-facing face of a generation strategy: the engine emits
/// one [`FeedbackEvent`] per execution (in execution order), and asks for
/// the next packet exactly once per execution.
///
/// # Example
///
/// ```
/// use peachstar::engine::{Schedule, StrategySchedule};
/// use peachstar::strategy::StrategyKind;
/// use peachstar_datamodel::examples::toy_protocol;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut schedule = StrategySchedule::new(StrategyKind::PeachStar.create());
/// let models = toy_protocol();
/// let mut rng = SmallRng::seed_from_u64(5);
/// let packet = schedule.next_packet(&models, &mut rng);
/// assert!(!packet.bytes.is_empty());
/// assert_eq!(schedule.name(), "Peach*");
/// ```
pub trait Schedule {
    /// Short display name of the underlying strategy.
    fn name(&self) -> &'static str;

    /// Produces the next packet to execute.
    fn next_packet(&mut self, models: &DataModelSet, rng: &mut SmallRng) -> GeneratedPacket;

    /// Produces the next packet into a reusable slot, overwriting every
    /// field — the batched engine's packet-arena entry point. Must be
    /// observationally identical to
    /// [`next_packet`](Schedule::next_packet); the default delegates to it.
    fn next_packet_into(
        &mut self,
        models: &DataModelSet,
        rng: &mut SmallRng,
        slot: &mut GeneratedPacket,
    ) {
        *slot = self.next_packet(models, rng);
    }

    /// Digests the feedback for a previously generated packet.
    fn feedback(&mut self, event: &FeedbackEvent<'_>);

    /// Number of puzzles currently available (0 for feedback-free
    /// strategies).
    fn corpus_size(&self) -> usize;

    /// Captures the schedule's resumable state for a campaign snapshot.
    ///
    /// The default returns [`ScheduleState::stateless`], correct for
    /// schedules whose packet stream depends only on the RNG position.
    fn snapshot_state(&self) -> ScheduleState {
        ScheduleState::stateless()
    }

    /// Restores state previously captured by
    /// [`snapshot_state`](Schedule::snapshot_state).
    ///
    /// Returns `false` (leaving the schedule untouched) when the state was
    /// captured from an incompatible schedule or strategy kind.
    fn restore_state(&mut self, state: ScheduleState) -> bool {
        matches!(state.strategy, StrategyState::Stateless)
    }
}

/// Adapts any [`GenerationStrategy`] to the [`Schedule`] seam.
pub struct StrategySchedule {
    strategy: Box<dyn GenerationStrategy>,
}

impl StrategySchedule {
    /// Wraps a strategy.
    #[must_use]
    pub fn new(strategy: Box<dyn GenerationStrategy>) -> Self {
        Self { strategy }
    }

    /// The wrapped strategy.
    #[must_use]
    pub fn strategy(&self) -> &dyn GenerationStrategy {
        self.strategy.as_ref()
    }
}

impl std::fmt::Debug for StrategySchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StrategySchedule")
            .field("strategy", &self.strategy.name())
            .finish()
    }
}

impl Schedule for StrategySchedule {
    fn name(&self) -> &'static str {
        self.strategy.name()
    }

    fn next_packet(&mut self, models: &DataModelSet, rng: &mut SmallRng) -> GeneratedPacket {
        self.strategy.next_packet(models, rng)
    }

    fn next_packet_into(
        &mut self,
        models: &DataModelSet,
        rng: &mut SmallRng,
        slot: &mut GeneratedPacket,
    ) {
        self.strategy.next_packet_into(models, rng, slot);
    }

    fn feedback(&mut self, event: &FeedbackEvent<'_>) {
        self.strategy
            .observe(event.packet, event.valuable, event.models);
    }

    fn corpus_size(&self) -> usize {
        self.strategy.corpus_size()
    }

    fn snapshot_state(&self) -> ScheduleState {
        ScheduleState {
            strategy: self.strategy.snapshot_state(),
            cursor: 0,
        }
    }

    fn restore_state(&mut self, state: ScheduleState) -> bool {
        self.strategy.restore_state(state.strategy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::StrategyKind;
    use peachstar_coverage::PathId;
    use peachstar_datamodel::examples::toy_protocol;
    use rand::SeedableRng;

    #[test]
    fn schedule_adapts_a_strategy() {
        let models = toy_protocol();
        let mut schedule = StrategySchedule::new(StrategyKind::PeachStar.create());
        assert_eq!(schedule.name(), "Peach*");
        assert_eq!(schedule.corpus_size(), 0);
        let mut rng = SmallRng::seed_from_u64(5);
        let packet = schedule.next_packet(&models, &mut rng);
        assert!(!packet.bytes.is_empty());

        let merge = MergeOutcome {
            new_edges: 1,
            new_buckets: 0,
            new_path: true,
            path_id: PathId::new(1),
        };
        schedule.feedback(&FeedbackEvent {
            execution: 1,
            packet: &packet,
            valuable: true,
            merge: &merge,
            models: &models,
        });
        assert!(
            schedule.corpus_size() > 0,
            "a valuable event reaches the strategy's cracker"
        );
        assert_eq!(schedule.strategy().name(), "Peach*");
    }
}
