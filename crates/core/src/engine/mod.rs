//! The pluggable fuzzing engine: the seams the paper's campaign loop
//! (Algorithm 2) is composed of, made explicit.
//!
//! [`Campaign::run`](crate::campaign::Campaign::run) used to hardcode every
//! step — trace collection, coverage merge, valuable-seed retention, bug
//! dedup, reset policy and series sampling — in one function. This module
//! splits the loop into five seams, each behind a trait:
//!
//! * [`Executor`] — wraps the target and its [`TraceContext`]
//!   (`peachstar_coverage`), owns the reset policy (periodic + post-fault);
//! * [`Observer`] — accumulates per-execution traces into global coverage
//!   ([`CoverageObserver`] wraps one `CoverageMap`);
//! * [`Feedback`] — decides which executions are *valuable seeds* and
//!   retains them ([`NewCoverageFeedback`] wraps the `SeedPool`);
//! * [`Monitor`] — outcome tallies, unique-bug dedup and series sampling,
//!   strictly observational;
//! * [`Schedule`] — the strategy-facing seam: one typed [`FeedbackEvent`]
//!   per execution instead of the old ad-hoc `observe(..)` call.
//!
//! [`Engine::step`] wires the seams together in exactly the order the
//! monolithic loop used, so a campaign driven through the engine is
//! bit-identical to the pre-refactor implementation (`tests/pinned_report.rs`
//! holds the proof). Three execution modes build on the same seams:
//! [`batch`] amortises per-execution dispatch by running reset-aligned
//! windows through one [`Executor::execute_window`] call each
//! ([`Engine::run_batched`]), [`shard`] executes those windows on parallel
//! workers with a deterministic merge barrier, and [`session`] builds
//! stateful session fuzzing (handshake → mutated payload → teardown, with
//! session-scoped resets) on the [`Schedule`] and [`Executor`] seams.
//!
//! [`TraceContext`]: peachstar_coverage::TraceContext

pub mod batch;
pub mod connections;
pub mod executor;
pub mod monitor;
pub mod observer;
pub mod schedule;
pub mod session;
pub mod shard;
pub(crate) mod supervisor;
pub mod transport;

pub use connections::{ConnectionCampaign, ConnectionConfig};
pub use executor::{Executor, ResetPolicy, TargetExecutor};
pub use monitor::{CampaignMonitor, Monitor, MonitorState, OutcomeSummary};
pub use observer::{CoverageObserver, Feedback, NewCoverageFeedback, Observer};
pub use schedule::{FeedbackEvent, Schedule, ScheduleState, StrategySchedule};
pub use session::{PhaseMask, SessionConfig, SessionPlan, SessionSchedule};
pub use shard::{run_sharded, ShardConfig, ShardedCampaign};
pub use transport::{error_class, FramedTcpTarget, ReconnectPolicy, TransportMode};

use peachstar_datamodel::DataModelSet;
use rand::rngs::SmallRng;

use crate::snapshot::{CampaignSnapshot, SnapshotError, SnapshotMeta};

/// The assembled fuzzing engine: one instance of every seam.
///
/// Generic so the concrete campaign loop is fully monomorphised (no virtual
/// dispatch beyond the `dyn Target`/`dyn GenerationStrategy` that existed
/// before the refactor).
#[derive(Debug)]
pub struct Engine<X, O, F, M, S> {
    /// Runs packets and owns the reset policy.
    pub executor: X,
    /// Accumulates global coverage.
    pub observer: O,
    /// Judges and retains valuable seeds.
    pub feedback: F,
    /// Tallies outcomes, dedups bugs, samples the series.
    pub monitor: M,
    /// Generates packets and digests feedback events.
    pub schedule: S,
}

impl<X, O, F, M, S> Engine<X, O, F, M, S>
where
    X: Executor,
    O: Observer,
    F: Feedback,
    M: Monitor,
    S: Schedule,
{
    /// Runs one execution through every seam.
    ///
    /// The order of operations replicates the historical monolithic loop
    /// bit-for-bit: generate → execute (reset policy inside) → tally/bug
    /// record → coverage merge → valuable verdict → schedule feedback →
    /// seed retention → series sample.
    pub fn step(&mut self, execution: u64, models: &DataModelSet, rng: &mut SmallRng) {
        let packet = self.schedule.next_packet(models, rng);
        let (outcome, trace) = self.executor.execute(execution, &packet.bytes);
        self.monitor
            .record(execution, &packet, OutcomeSummary::from(&outcome));
        let merge = self.observer.merge(trace);
        let valuable = self.feedback.is_interesting(&merge);
        self.schedule.feedback(&FeedbackEvent {
            execution,
            packet: &packet,
            valuable,
            merge: &merge,
            models,
        });
        if valuable {
            // The schedule only borrows the packet, so retention can move it
            // into the pool instead of cloning.
            self.feedback.retain(packet, &merge);
        }
        self.monitor.sample(
            execution,
            self.observer.paths_covered(),
            self.observer.edges_covered(),
        );
    }

    /// Runs executions `1..=budget` through [`step`](Engine::step).
    pub fn run(&mut self, budget: u64, models: &DataModelSet, rng: &mut SmallRng) {
        self.run_span(1, budget, models, rng);
    }

    /// Runs executions `start..=end` (1-based, inclusive) through
    /// [`step`](Engine::step) — the window body of the sequential engine,
    /// used by the checkpointing campaign driver to pause between windows.
    pub(crate) fn run_span(&mut self, start: u64, end: u64, models: &DataModelSet, rng: &mut SmallRng) {
        for execution in start..=end {
            self.step(execution, models, rng);
        }
    }
}

impl<S: Schedule> Engine<TargetExecutor, CoverageObserver, NewCoverageFeedback, CampaignMonitor, S> {
    /// Captures a [`CampaignSnapshot`] of the engine's resumable state.
    ///
    /// `completed` must be a reset-aligned window boundary: the target's
    /// internals are *not* serialised, which is only sound at an execution
    /// index the reset policy wipes the target before anyway.
    #[must_use]
    pub fn checkpoint(&self, meta: SnapshotMeta, completed: u64, rng: &SmallRng) -> CampaignSnapshot {
        CampaignSnapshot::capture(
            meta,
            completed,
            rng,
            &self.observer,
            &self.feedback,
            &self.monitor,
            &self.schedule,
        )
    }

    /// Restores a snapshot into this (freshly assembled) engine, leaving it
    /// ready to continue from `snapshot.completed + 1`.
    ///
    /// The caller is responsible for having validated
    /// [`SnapshotMeta::ensure_matches`] first; this method only rejects
    /// strategy-state kinds the schedule cannot accept.
    pub fn restore(
        &mut self,
        snapshot: &CampaignSnapshot,
        rng: &mut SmallRng,
    ) -> Result<(), SnapshotError> {
        snapshot.restore_into(
            rng,
            &mut self.observer,
            &mut self.feedback,
            &mut self.monitor,
            &mut self.schedule,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::StrategyKind;
    use peachstar_protocols::TargetId;
    use rand::SeedableRng;

    #[test]
    fn engine_runs_a_small_campaign() {
        let executor = TargetExecutor::new(TargetId::Modbus.create(), 500);
        let models = executor.data_models();
        let mut engine = Engine {
            executor,
            observer: CoverageObserver::new(),
            feedback: NewCoverageFeedback::new(),
            monitor: CampaignMonitor::new(1_000, 100),
            schedule: StrategySchedule::new(StrategyKind::PeachStar.create()),
        };
        let mut rng = SmallRng::seed_from_u64(3);
        engine.run(1_000, &models, &mut rng);

        assert!(engine.observer.paths_covered() > 0);
        assert!(engine.feedback.retained() > 0);
        assert_eq!(
            engine.monitor.responses()
                + engine.monitor.protocol_errors()
                + engine.monitor.fault_hits(),
            1_000
        );
        assert_eq!(
            engine.monitor.series().final_paths(),
            engine.observer.paths_covered()
        );
    }
}
