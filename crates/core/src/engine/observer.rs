//! The [`Observer`]/[`Feedback`] pair: who accumulates coverage, and who
//! decides which executions are valuable enough to retain.

use peachstar_coverage::{CoverageMap, MergeOutcome, SparseTrace, TraceMap};

use crate::seed::{SeedPool, ValuableSeed};
use crate::strategy::GeneratedPacket;

/// Accumulates per-execution traces into campaign-global coverage and
/// answers "what did this execution add?".
///
/// Live traces arrive through [`merge`](Observer::merge) (the classic
/// sequential loop); buffered [`SparseTrace`] snapshots arrive through
/// [`merge_sparse`](Observer::merge_sparse) (the sharded merge barrier).
/// Both must report identical [`MergeOutcome`]s for the same execution.
///
/// # Example
///
/// ```
/// use peachstar::engine::{CoverageObserver, Observer};
/// use peachstar_coverage::{EdgeId, TraceContext};
///
/// let mut observer = CoverageObserver::new();
/// let mut ctx = TraceContext::new();
/// ctx.edge(EdgeId::new(7));
/// let merge = observer.merge(ctx.trace());
/// assert!(merge.is_interesting(), "first trace always adds coverage");
/// assert_eq!(observer.paths_covered(), 1);
/// assert_eq!(observer.edges_covered(), 1);
/// ```
pub trait Observer {
    /// Merges one execution's live trace.
    fn merge(&mut self, trace: &TraceMap) -> MergeOutcome;

    /// Merges one execution's buffered snapshot.
    fn merge_sparse(&mut self, trace: &SparseTrace) -> MergeOutcome;

    /// Distinct execution paths observed so far (the Figure 4 metric).
    fn paths_covered(&self) -> usize;

    /// Distinct coverage-map slots observed so far.
    fn edges_covered(&self) -> usize;
}

/// The standard observer: a single campaign-global [`CoverageMap`].
#[derive(Debug, Default)]
pub struct CoverageObserver {
    map: CoverageMap,
}

impl CoverageObserver {
    /// Creates an observer with an empty coverage map.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Read access to the underlying map.
    #[must_use]
    pub fn map(&self) -> &CoverageMap {
        &self.map
    }

    /// Replaces the underlying map with one restored from a campaign
    /// snapshot.
    pub fn restore_map(&mut self, map: CoverageMap) {
        self.map = map;
    }
}

impl Observer for CoverageObserver {
    fn merge(&mut self, trace: &TraceMap) -> MergeOutcome {
        self.map.merge(trace)
    }

    fn merge_sparse(&mut self, trace: &SparseTrace) -> MergeOutcome {
        self.map.merge_sparse(trace)
    }

    fn paths_covered(&self) -> usize {
        self.map.paths_covered()
    }

    fn edges_covered(&self) -> usize {
        self.map.edges_covered()
    }
}

/// Decides which executions count as *valuable seeds* and retains them.
///
/// Replaces the campaign loop's inlined `merge.is_interesting()` →
/// `SeedPool::push` sequence: the loop asks
/// [`is_interesting`](Feedback::is_interesting) for the verdict (which also
/// feeds the [`Schedule`](crate::engine::Schedule)) and then hands the packet
/// over via [`retain`](Feedback::retain).
///
/// # Example
///
/// ```
/// use peachstar::engine::{CoverageObserver, Feedback, NewCoverageFeedback, Observer};
/// use peachstar::seed::Seed;
/// use peachstar_coverage::{EdgeId, TraceContext};
///
/// let mut observer = CoverageObserver::new();
/// let mut feedback = NewCoverageFeedback::new();
/// let mut ctx = TraceContext::new();
/// ctx.edge(EdgeId::new(3));
/// let merge = observer.merge(ctx.trace());
/// if feedback.is_interesting(&merge) {
///     feedback.retain(Seed::new(vec![0x42], "demo", false), &merge);
/// }
/// assert_eq!(feedback.retained(), 1);
/// ```
pub trait Feedback {
    /// Whether an execution with this merge outcome is a valuable seed.
    fn is_interesting(&self, merge: &MergeOutcome) -> bool;

    /// Retains a packet previously judged interesting.
    fn retain(&mut self, packet: GeneratedPacket, merge: &MergeOutcome);

    /// Number of seeds retained so far.
    fn retained(&self) -> usize;
}

/// The paper's feedback: an execution is valuable when it uncovered a new
/// edge or a new hit-count bucket; valuable seeds go into a [`SeedPool`].
#[derive(Debug, Default)]
pub struct NewCoverageFeedback {
    pool: SeedPool,
}

impl NewCoverageFeedback {
    /// Creates the feedback with an empty seed pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The retained valuable seeds.
    #[must_use]
    pub fn pool(&self) -> &SeedPool {
        &self.pool
    }

    /// Consumes the feedback and returns the pool.
    #[must_use]
    pub fn into_pool(self) -> SeedPool {
        self.pool
    }

    /// Iterates over the retained seeds.
    pub fn seeds(&self) -> impl Iterator<Item = &ValuableSeed> {
        self.pool.iter()
    }

    /// Replaces the pool with one restored from a campaign snapshot.
    pub fn restore_pool(&mut self, pool: SeedPool) {
        self.pool = pool;
    }
}

impl Feedback for NewCoverageFeedback {
    fn is_interesting(&self, merge: &MergeOutcome) -> bool {
        merge.is_interesting()
    }

    fn retain(&mut self, packet: GeneratedPacket, merge: &MergeOutcome) {
        self.pool.push(packet, merge.path_id, merge.new_edges);
    }

    fn retained(&self) -> usize {
        self.pool.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed::Seed;
    use peachstar_coverage::{EdgeId, TraceContext};

    fn trace_of(ids: &[u32]) -> TraceMap {
        let mut ctx = TraceContext::new();
        for &id in ids {
            ctx.edge(EdgeId::new(id));
        }
        ctx.into_trace()
    }

    #[test]
    fn observer_merges_live_and_sparse_identically() {
        let mut live = CoverageObserver::new();
        let mut buffered = CoverageObserver::new();
        for trace in [trace_of(&[1, 2]), trace_of(&[2, 3]), trace_of(&[1, 2])] {
            let a = live.merge(&trace);
            let b = buffered.merge_sparse(&trace.to_sparse());
            assert_eq!(a, b);
        }
        assert_eq!(live.paths_covered(), buffered.paths_covered());
        assert_eq!(live.edges_covered(), buffered.edges_covered());
        assert_eq!(live.map().executions(), 3);
    }

    #[test]
    fn feedback_retains_only_interesting_seeds() {
        let mut observer = CoverageObserver::new();
        let mut feedback = NewCoverageFeedback::new();
        for (index, trace) in [trace_of(&[1, 2]), trace_of(&[1, 2])].iter().enumerate() {
            let merge = observer.merge(trace);
            if feedback.is_interesting(&merge) {
                feedback.retain(Seed::new(vec![index as u8], "m", false), &merge);
            }
        }
        assert_eq!(feedback.retained(), 1, "the duplicate trace adds nothing");
        assert_eq!(feedback.seeds().count(), 1);
        assert_eq!(feedback.into_pool().len(), 1);
    }
}
