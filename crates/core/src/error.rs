//! Error type for the fuzzer crate.

use std::error::Error;
use std::fmt;

use peachstar_datamodel::ModelError;

/// Error returned by fuzzer operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FuzzError {
    /// The target exposes no data models, so nothing can be generated.
    NoDataModels {
        /// Name of the target.
        target: String,
    },
    /// An underlying data-model operation failed.
    Model(ModelError),
    /// The campaign configuration is invalid.
    InvalidConfig {
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for FuzzError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuzzError::NoDataModels { target } => {
                write!(f, "target `{target}` exposes no data models")
            }
            FuzzError::Model(err) => write!(f, "data model error: {err}"),
            FuzzError::InvalidConfig { message } => {
                write!(f, "invalid campaign configuration: {message}")
            }
        }
    }
}

impl Error for FuzzError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FuzzError::Model(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ModelError> for FuzzError {
    fn from(err: ModelError) -> Self {
        FuzzError::Model(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let err = FuzzError::NoDataModels {
            target: "libmodbus".into(),
        };
        assert!(err.to_string().contains("libmodbus"));
        assert!(err.source().is_none());

        let wrapped = FuzzError::from(ModelError::TrailingBytes { remaining: 2 });
        assert!(wrapped.to_string().contains("data model"));
        assert!(wrapped.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync>() {}
        assert_bounds::<FuzzError>();
    }
}
