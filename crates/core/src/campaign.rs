//! The campaign runner: executes one fuzzer against one target for a fixed
//! execution budget, recording coverage growth and unique bugs.
//!
//! The per-execution work — reset policy, coverage merge, valuable-seed
//! retention, bug dedup, series sampling, strategy feedback — lives behind
//! the seams of the [`engine`](crate::engine) module; [`Campaign::run`] only
//! assembles the standard engine and drives it. [`ShardedCampaign`]
//! (re-exported from [`engine::shard`](crate::engine::shard)) runs the same
//! seams with parallel workers.

use std::fmt;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use peachstar_protocols::{DecodeSink, Fault, Target, WindowResults, WireChaos};

use crate::corpus::PuzzleCorpus;
use crate::engine::batch::{windows_for_policy, PacketArena};
use crate::engine::session::session_setup;
use crate::engine::{
    CampaignMonitor, CoverageObserver, Engine, Executor, Feedback, NewCoverageFeedback, Observer,
    ResetPolicy, Schedule, SessionPlan, StrategySchedule, TargetExecutor,
};
use crate::service::ServiceHooks;
use crate::snapshot::{CampaignSnapshot, CheckpointConfig, SnapshotError, SnapshotMeta};
use crate::stats::CoverageSeries;
use crate::strategy::{
    GenerationStrategy, SemanticAwareConfig, SemanticAwareStrategy, StrategyKind, StrategyState,
};

pub use crate::engine::connections::{ConnectionCampaign, ConnectionConfig};
pub use crate::engine::session::{PhaseMask, SessionConfig};
pub use crate::engine::shard::{run_sharded, ShardConfig, ShardedCampaign};
pub use crate::engine::transport::{ReconnectPolicy, TransportMode};

/// Configuration of one fuzzing campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignConfig {
    /// Which fuzzer to run.
    pub strategy: StrategyKind,
    /// Number of packet executions (the simulated-time axis of Figure 4).
    pub executions: u64,
    /// RNG seed; campaigns with the same seed, strategy and target are
    /// bit-for-bit reproducible.
    pub rng_seed: u64,
    /// How often (in executions) a coverage sample is recorded.
    pub sample_interval: u64,
    /// Reset the target's session state every this many executions
    /// (0 disables resets). Ignored when [`session`](CampaignConfig::session)
    /// campaigns are active on a session-capable target — those reset at
    /// session boundaries instead.
    pub reset_interval: u64,
    /// Run session campaigns (handshake → mutated payload → teardown with
    /// session-scoped resets) instead of the single-packet stream. Only
    /// takes effect on targets that advertise a
    /// [`session_template`](peachstar_protocols::Target::session_template);
    /// sessionless targets fall back to the classic campaign.
    pub session: Option<SessionConfig>,
    /// Execute in batched windows of at most this many packets
    /// ([`Engine::run_batched`]) instead of the per-execution loop.
    ///
    /// Batched Peach campaigns are bit-identical to sequential ones for any
    /// batch size; Peach\* receives feedback at batch ends, so its stream is
    /// deterministic but barrier-fed like a sharded campaign's. Under a
    /// [`ShardedCampaign`] this instead caps the per-worker dispatch chunk,
    /// which never changes the report.
    pub batch: Option<u64>,
    /// Per-execution deadline in milliseconds (`--exec-timeout-ms`): each
    /// packet runs on a supervised watchdog thread and an execution that
    /// outlives the deadline is abandoned and recorded as a
    /// [`FaultKind::Hang`](peachstar_protocols::FaultKind::Hang) fault.
    ///
    /// Operational knob, not campaign semantics: a supervised campaign in
    /// which nothing hangs is bit-identical to an unsupervised one, and the
    /// field is deliberately excluded from the snapshot fingerprint.
    pub exec_timeout: Option<u64>,
    /// Decode in summary-only mode on the batched fast path
    /// ([`DecodeSink::Summary`](peachstar_protocols::DecodeSink)): decoders
    /// keep identical control flow, state and traces but skip response
    /// assembly and error-string formatting, which the campaign loop never
    /// reads. Requires [`batch`](CampaignConfig::batch) (the per-execution
    /// loop has external consumers of the full outcomes).
    ///
    /// Like [`exec_timeout`](CampaignConfig::exec_timeout) this is an
    /// operational knob, not campaign semantics — reports are bit-identical
    /// either way — so it is deliberately excluded from the snapshot
    /// fingerprint.
    pub summary_only: bool,
    /// How packets reach the target (`--transport`): direct in-process
    /// calls (the default) or length-framed request/response over a
    /// loopback TCP socket against a spawned socket server
    /// ([`TransportMode::FramedTcp`]).
    ///
    /// Operational knob, not campaign semantics: the wire relays outcomes
    /// and traces verbatim, so reports are bit-identical across transports
    /// (`tests/transport_equivalence.rs`) and — like
    /// [`exec_timeout`](CampaignConfig::exec_timeout) — the field is
    /// deliberately excluded from the snapshot fingerprint: a checkpoint
    /// recorded under TCP resumes in-process bit-exactly.
    pub transport: TransportMode,
    /// Reconnect schedule for the framed-TCP transport
    /// ([`ReconnectPolicy`]): how many times a lost connection is
    /// re-dialled and with what bounded exponential backoff. Ignored
    /// in-process.
    ///
    /// Operational knob, not campaign semantics: a recovered connection
    /// replays its journal and produces the records a healthy one would, so
    /// — like [`transport`](CampaignConfig::transport) itself — the policy
    /// is deliberately excluded from the snapshot fingerprint.
    pub reconnect: ReconnectPolicy,
    /// Deterministic server-side failure injection for the framed-TCP
    /// transport's spawned socket server ([`WireChaos`]): connections
    /// dropped every N frames, reconnects rejected for a window. Ignored
    /// in-process. The default injects nothing.
    ///
    /// Operational knob, not campaign semantics: injected drops are
    /// recovered by journal replay before the dropped request is processed,
    /// so reports stay bit-identical and the field is deliberately excluded
    /// from the snapshot fingerprint.
    pub wire_chaos: WireChaos,
}

impl CampaignConfig {
    /// Creates a configuration with defaults suitable for tests: 10 000
    /// executions, samples every 250 executions, target reset every 2 000
    /// executions.
    #[must_use]
    pub fn new(strategy: StrategyKind) -> Self {
        Self {
            strategy,
            executions: 10_000,
            rng_seed: 1,
            sample_interval: 250,
            reset_interval: 2_000,
            session: None,
            batch: None,
            exec_timeout: None,
            summary_only: false,
            transport: TransportMode::InProcess,
            reconnect: ReconnectPolicy::DEFAULT,
            wire_chaos: WireChaos::default(),
        }
    }

    /// Sets the execution budget.
    #[must_use]
    pub fn executions(mut self, executions: u64) -> Self {
        self.executions = executions;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn rng_seed(mut self, seed: u64) -> Self {
        self.rng_seed = seed;
        self
    }

    /// Sets the sampling interval.
    #[must_use]
    pub fn sample_interval(mut self, interval: u64) -> Self {
        self.sample_interval = interval.max(1);
        self
    }

    /// Sets the target reset interval (0 disables resets).
    #[must_use]
    pub fn reset_interval(mut self, interval: u64) -> Self {
        self.reset_interval = interval;
        self
    }

    /// Enables session campaigns with the given session shape.
    #[must_use]
    pub fn sessions(mut self, session: SessionConfig) -> Self {
        self.session = Some(session);
        self
    }

    /// Enables batched window execution with at most `batch` packets per
    /// window (clamped to at least 1).
    #[must_use]
    pub fn batch(mut self, batch: u64) -> Self {
        self.batch = Some(batch.max(1));
        self
    }

    /// Arms the hang watchdog with a per-execution deadline in milliseconds
    /// (clamped to at least 1).
    #[must_use]
    pub fn exec_timeout_ms(mut self, millis: u64) -> Self {
        self.exec_timeout = Some(millis.max(1));
        self
    }

    /// Enables summary-only decoding on the batched fast path (see
    /// [`summary_only`](CampaignConfig::summary_only)).
    #[must_use]
    pub fn summary_only(mut self) -> Self {
        self.summary_only = true;
        self
    }

    /// Selects the transport carrying packets to the target (see
    /// [`transport`](CampaignConfig::transport)).
    #[must_use]
    pub fn transport(mut self, transport: TransportMode) -> Self {
        self.transport = transport;
        self
    }

    /// Sets the framed-TCP reconnect schedule (see
    /// [`reconnect`](CampaignConfig::reconnect)).
    #[must_use]
    pub fn reconnect(mut self, policy: ReconnectPolicy) -> Self {
        self.reconnect = policy;
        self
    }

    /// Arms deterministic server-side failure injection on the framed-TCP
    /// transport (see [`wire_chaos`](CampaignConfig::wire_chaos)).
    #[must_use]
    pub fn wire_chaos(mut self, chaos: WireChaos) -> Self {
        self.wire_chaos = chaos;
        self
    }
}

/// A unique bug found during a campaign: the fault plus the execution index
/// and packet that first triggered it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BugRecord {
    /// The fault as reported by the target.
    pub fault: Fault,
    /// Execution index (1-based) at which the fault first fired.
    pub first_execution: u64,
    /// The packet that first triggered the fault.
    pub packet: Vec<u8>,
    /// Data model the packet was generated from.
    pub model: String,
}

/// The result of one campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Name of the fuzzed target.
    pub target: String,
    /// Which fuzzer produced this report.
    pub strategy: StrategyKind,
    /// Total executions performed.
    pub executions: u64,
    /// Coverage growth curve.
    pub series: CoverageSeries,
    /// Unique bugs, deduplicated by fault site.
    pub bugs: Vec<BugRecord>,
    /// Valuable seeds retained (empty for the baseline, which discards them).
    pub valuable_seeds: usize,
    /// Final puzzle-corpus size (0 for the baseline).
    pub corpus_size: usize,
    /// Outcome tally: how many packets were answered, rejected or faulted.
    pub responses: u64,
    /// Number of packets rejected by protocol validation.
    pub protocol_errors: u64,
    /// Number of packets that hit a fault (including duplicates).
    pub fault_hits: u64,
    /// Wall-clock time the campaign loop took.
    ///
    /// Measurement only — every other field is a deterministic function of
    /// (target, strategy, seed, budget); this one varies run to run.
    pub wall_time: Duration,
}

impl CampaignReport {
    /// Final number of distinct paths covered.
    #[must_use]
    pub fn final_paths(&self) -> usize {
        self.series.final_paths()
    }

    /// Number of unique bugs found.
    #[must_use]
    pub fn unique_bugs(&self) -> usize {
        self.bugs.len()
    }

    /// Fraction of executed packets that were accepted by the target.
    #[must_use]
    pub fn validity_ratio(&self) -> f64 {
        if self.executions == 0 {
            return 0.0;
        }
        self.responses as f64 / self.executions as f64
    }

    /// Campaign throughput in executions per wall-clock second.
    ///
    /// 0.0 when the wall time was too short to measure.
    #[must_use]
    pub fn executions_per_second(&self) -> f64 {
        let seconds = self.wall_time.as_secs_f64();
        if seconds <= 0.0 {
            return 0.0;
        }
        self.executions as f64 / seconds
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {}: {} execs, {} paths, {} unique bugs, validity {:.1}%, {:.0} exec/s",
            self.strategy.label(),
            self.target,
            self.executions,
            self.final_paths(),
            self.unique_bugs(),
            self.validity_ratio() * 100.0,
            self.executions_per_second()
        )
    }
}

/// One fuzzing campaign: a strategy, a target and an execution budget.
pub struct Campaign {
    target: Box<dyn Target>,
    config: CampaignConfig,
    strategy: Box<dyn GenerationStrategy>,
}

impl fmt::Debug for Campaign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Campaign")
            .field("target", &self.target.name())
            .field("config", &self.config)
            .finish()
    }
}

impl Campaign {
    /// Creates a campaign with the strategy named in the configuration.
    #[must_use]
    pub fn new(target: Box<dyn Target>, config: CampaignConfig) -> Self {
        Self {
            strategy: config.strategy.create(),
            target,
            config,
        }
    }

    /// Creates a campaign with an explicit (possibly customised) strategy.
    #[must_use]
    pub fn with_strategy(
        target: Box<dyn Target>,
        config: CampaignConfig,
        strategy: Box<dyn GenerationStrategy>,
    ) -> Self {
        Self {
            target,
            config,
            strategy,
        }
    }

    /// Runs the campaign to completion and returns the report.
    ///
    /// With [`CampaignConfig::session`] set and a session-capable target,
    /// the packet stream is session-shaped (handshake → mutated payload →
    /// teardown) and the target resets at session boundaries
    /// ([`ResetPolicy::PerSession`]); otherwise the classic single-packet
    /// stream with interval-scoped resets runs.
    #[must_use]
    pub fn run(self) -> CampaignReport {
        let (report, _) = self
            .launch(DriveOptions::default())
            .expect("a plain campaign performs no fallible snapshot operations");
        report
    }

    /// The reset policy this campaign will run under — the same derivation
    /// [`run`](Campaign::run) performs, exposed so checkpoint alignment can
    /// be computed without consuming the campaign.
    fn policy(&self) -> ResetPolicy {
        let session = self
            .config
            .session
            .and_then(|opts| self.target.session_template().map(|template| (opts, template)));
        match session {
            Some((opts, template)) => ResetPolicy::PerSession(
                SessionPlan::new(template, opts.payload_packets).session_len(),
            ),
            None => ResetPolicy::Interval(self.config.reset_interval),
        }
    }

    /// The reset-aligned window boundaries of this campaign, ascending; the
    /// last is always the execution budget. These are the only executions a
    /// checkpoint can land on ([`run_to_boundary`](Campaign::run_to_boundary)
    /// rejects anything else with [`SnapshotError::Unaligned`]).
    #[must_use]
    pub fn window_boundaries(&self) -> Vec<u64> {
        windows_for_policy(self.config.executions, self.policy())
            .iter()
            .map(|&(_, end)| end)
            .collect()
    }

    /// Runs the campaign to completion, writing a checkpoint to
    /// `checkpoint.path` every `checkpoint.every_windows` windows (and at
    /// the final one).
    pub fn run_checkpointed(
        self,
        checkpoint: &CheckpointConfig,
    ) -> Result<CampaignReport, SnapshotError> {
        self.launch(DriveOptions {
            checkpoint: Some(checkpoint),
            ..DriveOptions::default()
        })
        .map(|(report, _)| report)
    }

    /// Runs the campaign up to (and including) execution `stop_after` —
    /// which must be one of [`window_boundaries`](Campaign::window_boundaries)
    /// — and returns the snapshot taken there. Resuming that snapshot with
    /// [`resume`](Campaign::resume) produces a report bit-identical to an
    /// uninterrupted [`run`](Campaign::run).
    pub fn run_to_boundary(self, stop_after: u64) -> Result<CampaignSnapshot, SnapshotError> {
        let (_, snapshot) = self.launch(DriveOptions {
            stop_after: Some(stop_after),
            ..DriveOptions::default()
        })?;
        Ok(snapshot.expect("a validated stop boundary always yields a snapshot"))
    }

    /// Runs the campaign to completion and also returns the final-state
    /// snapshot — the entry point shared-corpus repetitions use to harvest
    /// the finished corpus.
    #[must_use]
    pub fn run_with_final_snapshot(self) -> (CampaignReport, CampaignSnapshot) {
        let (report, snapshot) = self
            .launch(DriveOptions {
                capture_final: true,
                ..DriveOptions::default()
            })
            .expect("a capture-only campaign performs no fallible snapshot operations");
        (
            report,
            snapshot.expect("capture_final always yields a snapshot"),
        )
    }

    /// Resumes a snapshotted campaign to completion. The campaign must be
    /// configured identically to the one that produced the snapshot
    /// ([`SnapshotMeta::ensure_matches`] is enforced), and the resumed
    /// report is bit-identical to the uninterrupted run's.
    pub fn resume(self, snapshot: &CampaignSnapshot) -> Result<CampaignReport, SnapshotError> {
        self.launch(DriveOptions {
            resume: Some(snapshot),
            ..DriveOptions::default()
        })
        .map(|(report, _)| report)
    }

    /// Resumes a snapshotted campaign to completion while continuing to
    /// write periodic checkpoints — the `--resume` + `--checkpoint` CLI
    /// path. The checkpoint cadence counts absolute windows from the start
    /// of the campaign, so an interrupted-and-resumed run checkpoints at
    /// the same boundaries as an uninterrupted one.
    pub fn resume_checkpointed(
        self,
        snapshot: &CampaignSnapshot,
        checkpoint: &CheckpointConfig,
    ) -> Result<CampaignReport, SnapshotError> {
        self.launch(DriveOptions {
            resume: Some(snapshot),
            checkpoint: Some(checkpoint),
            ..DriveOptions::default()
        })
        .map(|(report, _)| report)
    }

    /// Resumes a snapshot and stops again at a later window boundary —
    /// lets a campaign be carried across any number of interruptions.
    pub fn resume_to_boundary(
        self,
        snapshot: &CampaignSnapshot,
        stop_after: u64,
    ) -> Result<CampaignSnapshot, SnapshotError> {
        let (_, out) = self.launch(DriveOptions {
            resume: Some(snapshot),
            stop_after: Some(stop_after),
            ..DriveOptions::default()
        })?;
        Ok(out.expect("a validated stop boundary always yields a snapshot"))
    }

    /// Runs under service supervision: like
    /// [`run_checkpointed`](Campaign::run_checkpointed), but live progress is
    /// published to `hooks` at every window boundary and a graceful stop
    /// ([`ServiceHooks::request_stop`]) finishes the current window, writes a
    /// final checkpoint, and returns early — the report's `executions` then
    /// names the boundary the campaign stopped at.
    ///
    /// # Errors
    ///
    /// Propagates checkpoint write failures.
    pub fn run_supervised(
        self,
        checkpoint: &CheckpointConfig,
        hooks: &ServiceHooks,
    ) -> Result<CampaignReport, SnapshotError> {
        self.launch(DriveOptions {
            checkpoint: Some(checkpoint),
            service: Some(hooks),
            ..DriveOptions::default()
        })
        .map(|(report, _)| report)
    }

    /// Resumes a snapshot under service supervision (see
    /// [`run_supervised`](Campaign::run_supervised)).
    ///
    /// # Errors
    ///
    /// Rejects mismatched snapshots; propagates checkpoint write failures.
    pub fn resume_supervised(
        self,
        snapshot: &CampaignSnapshot,
        checkpoint: &CheckpointConfig,
        hooks: &ServiceHooks,
    ) -> Result<CampaignReport, SnapshotError> {
        self.launch(DriveOptions {
            resume: Some(snapshot),
            checkpoint: Some(checkpoint),
            service: Some(hooks),
            ..DriveOptions::default()
        })
        .map(|(report, _)| report)
    }

    /// Dispatches to the session-shaped or classic engine and drives it
    /// window by window under the given snapshot options.
    fn launch(
        self,
        opts: DriveOptions<'_>,
    ) -> Result<(CampaignReport, Option<CampaignSnapshot>), SnapshotError> {
        let started = Instant::now();
        let Self {
            target,
            config,
            strategy,
        } = self;
        // The transport guard (the socket server, under `FramedTcp`) must
        // outlive the engine drive; the campaign's client connections die
        // with the engine, before the guard drops. `meta` is computed after
        // deployment but is transport-invariant: the framed target reports
        // its blueprint's name, and the fingerprint excludes the transport.
        let (target, _transport) = crate::engine::transport::deploy(
            target,
            config.transport,
            config.reconnect,
            config.wire_chaos,
        );
        let meta = SnapshotMeta::for_campaign(target.name(), &config);
        let session = config
            .session
            .and_then(|opts| target.session_template().map(|template| (opts, template)));
        match session {
            Some((session_opts, template)) => {
                let (policy, schedule) = session_setup(session_opts, template, strategy);
                drive_engine(target, policy, &config, schedule, started, meta, opts)
            }
            None => drive_engine(
                target,
                ResetPolicy::Interval(config.reset_interval),
                &config,
                StrategySchedule::new(strategy),
                started,
                meta,
                opts,
            ),
        }
    }
}

/// Snapshot-related options of one engine drive. The default (all `None`,
/// no capture) is a plain uninterrupted campaign. Shared by the sequential
/// and the sharded driver.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct DriveOptions<'a> {
    /// Restore this snapshot before executing anything, then skip every
    /// window it already covers.
    pub(crate) resume: Option<&'a CampaignSnapshot>,
    /// Write periodic checkpoints (cadence counts absolute windows from the
    /// campaign start, so it is invariant under interruption).
    pub(crate) checkpoint: Option<&'a CheckpointConfig>,
    /// Stop after the window (or, sharded, the round) ending exactly here
    /// and return its snapshot.
    pub(crate) stop_after: Option<u64>,
    /// Capture (and return) a snapshot of the completed campaign.
    pub(crate) capture_final: bool,
    /// Service supervision: publish live status at every boundary and honor
    /// graceful-stop requests there (the stop finishes the current window
    /// and writes a final checkpoint, like a dynamic `stop_after`).
    pub(crate) service: Option<&'a ServiceHooks>,
}

/// Drives the assembled engine window by window and folds the seams into a
/// [`CampaignReport`]. Generic over the schedule so both the classic and
/// the session-shaped campaign stay fully monomorphised.
///
/// The window walk replicates [`Engine::run`] / [`Engine::run_batched`]
/// exactly — same windows, same RNG stream, same reduce order — it only adds
/// pause points between windows, which is what makes a checkpoint taken at a
/// window boundary resume bit-exactly: every boundary is an execution the
/// reset policy wipes the target before, so no target state needs saving.
fn drive_engine<S: Schedule>(
    target: Box<dyn Target>,
    policy: ResetPolicy,
    config: &CampaignConfig,
    schedule: S,
    started: Instant,
    meta: SnapshotMeta,
    opts: DriveOptions<'_>,
) -> Result<(CampaignReport, Option<CampaignSnapshot>), SnapshotError> {
    let windows = windows_for_policy(config.executions, policy);
    let mut rng = SmallRng::seed_from_u64(config.rng_seed);
    let mut executor = TargetExecutor::with_policy(target, policy);
    if let Some(millis) = config.exec_timeout {
        executor = executor.with_deadline(Duration::from_millis(millis));
    }
    if config.summary_only {
        executor = executor.with_sink(DecodeSink::Summary);
    }
    let mut engine = Engine {
        executor,
        observer: CoverageObserver::new(),
        feedback: NewCoverageFeedback::new(),
        monitor: CampaignMonitor::new(config.executions, config.sample_interval),
        schedule,
    };
    let models = engine.executor.data_models();

    let resumed_from = match opts.resume {
        Some(snapshot) => {
            snapshot.meta.ensure_matches(&meta)?;
            if snapshot.completed != 0
                && !windows.iter().any(|&(_, end)| end == snapshot.completed)
            {
                return Err(SnapshotError::Unaligned(snapshot.completed));
            }
            engine.restore(snapshot, &mut rng)?;
            snapshot.completed
        }
        None => 0,
    };
    if let Some(stop) = opts.stop_after {
        if stop <= resumed_from || !windows.iter().any(|&(_, end)| end == stop) {
            return Err(SnapshotError::Unaligned(stop));
        }
    }

    if let Some(checkpoint) = opts.checkpoint {
        checkpoint.prepare()?;
    }

    let mut arena = PacketArena::default();
    let mut results = WindowResults::new();
    let mut out_snapshot = None;
    let mut completed = resumed_from;
    for (index, &(start, end)) in windows.iter().enumerate() {
        if end <= resumed_from {
            continue;
        }
        match config.batch {
            // The batched body generates, executes and reduces the window
            // exactly as Engine::run_batched would (tests/batch_equivalence.rs
            // pins the Peach bit-equivalence).
            Some(batch) => engine.run_window_batched(
                start,
                end,
                batch,
                &models,
                &mut rng,
                &mut arena,
                &mut results,
            ),
            None => engine.run_span(start, end, &models, &mut rng),
        }
        completed = end;

        if let Some(service) = opts.service {
            service.observe(
                end,
                engine.observer.paths_covered(),
                engine.observer.edges_covered(),
                engine.monitor.bugs().len(),
            );
        }
        let windows_done = (index + 1) as u64;
        let final_window = end == config.executions;
        let stop_here = opts.stop_after == Some(end)
            || (!final_window && opts.service.is_some_and(ServiceHooks::stop_requested));
        let write_checkpoint = opts.checkpoint.is_some_and(|checkpoint| {
            windows_done.is_multiple_of(checkpoint.every_windows) || final_window || stop_here
        });
        if write_checkpoint || stop_here || (opts.capture_final && final_window) {
            let snapshot = engine.checkpoint(meta.clone(), end, &rng);
            if let Some(checkpoint) = opts.checkpoint.filter(|_| write_checkpoint) {
                checkpoint.store(&snapshot)?;
                if let Some(service) = opts.service {
                    service.checkpointed(end);
                }
            }
            if stop_here || (opts.capture_final && final_window) {
                out_snapshot = Some(snapshot);
            }
        }
        if stop_here {
            break;
        }
    }
    // A zero-execution campaign (or a resume of an already-complete
    // snapshot) never enters the loop; capture the standing state directly.
    if opts.capture_final && out_snapshot.is_none() {
        out_snapshot = Some(engine.checkpoint(meta, completed, &rng));
    }

    let target = engine.executor.target_name().to_string();
    let (responses, protocol_errors, fault_hits) = (
        engine.monitor.responses(),
        engine.monitor.protocol_errors(),
        engine.monitor.fault_hits(),
    );
    let (series, bugs) = engine.monitor.into_series_and_bugs();
    let report = CampaignReport {
        target,
        strategy: config.strategy,
        executions: completed,
        series,
        bugs,
        valuable_seeds: engine.feedback.retained(),
        corpus_size: engine.schedule.corpus_size(),
        responses,
        protocol_errors,
        fault_hits,
        wall_time: started.elapsed(),
    };
    Ok((report, out_snapshot))
}

/// Runs `repetitions` campaigns with different RNG seeds and returns the
/// point-wise averaged coverage series plus every report — the "average of
/// 10 repetitions" protocol of the paper's evaluation.
#[must_use]
pub fn run_repetitions(
    make_target: impl Fn() -> Box<dyn Target>,
    config: CampaignConfig,
    repetitions: u64,
) -> (CoverageSeries, Vec<CampaignReport>) {
    let mut reports = Vec::with_capacity(repetitions as usize);
    for repetition in 0..repetitions {
        let run_config = config.rng_seed(config.rng_seed + repetition);
        reports.push(Campaign::new(make_target(), run_config).run());
    }
    let series: Vec<CoverageSeries> = reports.iter().map(|r| r.series.clone()).collect();
    (CoverageSeries::average(&series), reports)
}

/// Like [`run_repetitions`], but Peach\* repetitions share their puzzle
/// discoveries: each repetition starts from the merged corpus of every
/// earlier one (via [`PuzzleCorpus::merge`]), the corpus-side counterpart of
/// pooling coverage with `CoverageMap::absorb`. Later repetitions therefore
/// begin with donors the first repetition had to discover, which is the
/// `--shared-corpus` CLI mode.
///
/// The baseline keeps no corpus, so for Peach this is exactly
/// [`run_repetitions`].
#[must_use]
pub fn run_repetitions_shared(
    make_target: impl Fn() -> Box<dyn Target>,
    config: CampaignConfig,
    repetitions: u64,
) -> (CoverageSeries, Vec<CampaignReport>) {
    if config.strategy != StrategyKind::PeachStar {
        return run_repetitions(make_target, config, repetitions);
    }
    let mut shared = PuzzleCorpus::new();
    let mut reports = Vec::with_capacity(repetitions as usize);
    for repetition in 0..repetitions {
        let run_config = config.rng_seed(config.rng_seed + repetition);
        let strategy = Box::new(SemanticAwareStrategy::with_corpus(
            SemanticAwareConfig::default(),
            shared.clone(),
        ));
        let campaign = Campaign::with_strategy(make_target(), run_config, strategy);
        let (report, snapshot) = campaign.run_with_final_snapshot();
        if let StrategyState::PeachStar { corpus, .. } = &snapshot.schedule.strategy {
            shared.merge(corpus);
        }
        reports.push(report);
    }
    let series: Vec<CoverageSeries> = reports.iter().map(|r| r.series.clone()).collect();
    (CoverageSeries::average(&series), reports)
}

/// Measures how many executions each fuzzer needs to reach the final path
/// count the baseline achieves — the "same code coverage at 1.2X–25X speed"
/// comparison of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedComparison {
    /// Paths the baseline reached with the full budget.
    pub baseline_paths: usize,
    /// Executions the baseline needed to first reach that count.
    pub baseline_executions: u64,
    /// Executions Peach\* needed to reach the same count (`None` when it
    /// never did within the budget).
    pub peachstar_executions: Option<u64>,
}

impl SpeedComparison {
    /// The speed-up factor (baseline executions / Peach\* executions).
    #[must_use]
    pub fn speedup(&self) -> Option<f64> {
        self.peachstar_executions
            .map(|execs| self.baseline_executions as f64 / execs.max(1) as f64)
    }
}

/// Runs both fuzzers against fresh instances of the same target and compares
/// how quickly they reach the baseline's final coverage.
#[must_use]
pub fn speed_to_coverage(
    make_target: impl Fn() -> Box<dyn Target>,
    config: CampaignConfig,
) -> SpeedComparison {
    let baseline_report = Campaign::new(
        make_target(),
        CampaignConfig {
            strategy: StrategyKind::Peach,
            ..config
        },
    )
    .run();
    let peachstar_report = Campaign::new(
        make_target(),
        CampaignConfig {
            strategy: StrategyKind::PeachStar,
            ..config
        },
    )
    .run();

    let baseline_paths = baseline_report.final_paths();
    SpeedComparison {
        baseline_paths,
        baseline_executions: baseline_report
            .series
            .executions_to_reach(baseline_paths)
            .unwrap_or(config.executions),
        peachstar_executions: peachstar_report.series.executions_to_reach(baseline_paths),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peachstar_protocols::TargetId;

    fn small_config(strategy: StrategyKind) -> CampaignConfig {
        CampaignConfig::new(strategy)
            .executions(3_000)
            .sample_interval(200)
            .rng_seed(3)
    }

    #[test]
    fn campaign_is_reproducible_for_a_fixed_seed() {
        let run = || {
            Campaign::new(TargetId::Modbus.create(), small_config(StrategyKind::PeachStar)).run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.final_paths(), b.final_paths());
        assert_eq!(a.responses, b.responses);
        assert_eq!(a.unique_bugs(), b.unique_bugs());
    }

    #[test]
    fn campaign_covers_paths_and_records_series() {
        let report =
            Campaign::new(TargetId::Modbus.create(), small_config(StrategyKind::Peach)).run();
        assert!(report.final_paths() > 5);
        assert!(!report.series.is_empty());
        assert_eq!(report.executions, 3_000);
        assert!(report.responses + report.protocol_errors + report.fault_hits == 3_000);
        assert_eq!(report.corpus_size, 0, "baseline keeps no corpus");
        // Monotone non-decreasing path counts.
        let mut last = 0;
        for point in report.series.points() {
            assert!(point.paths >= last);
            last = point.paths;
        }
    }

    #[test]
    fn peachstar_builds_a_corpus_and_valuable_seeds() {
        let report = Campaign::new(
            TargetId::Iec104.create(),
            small_config(StrategyKind::PeachStar),
        )
        .run();
        assert!(report.valuable_seeds > 0);
        assert!(report.corpus_size > 0);
    }

    #[test]
    fn run_repetitions_averages_series() {
        let (series, reports) = run_repetitions(
            || TargetId::Modbus.create(),
            small_config(StrategyKind::Peach).executions(1_000),
            3,
        );
        assert_eq!(reports.len(), 3);
        assert!(!series.is_empty());
    }

    #[test]
    fn speed_comparison_reports_a_speedup() {
        let comparison = speed_to_coverage(
            || TargetId::Modbus.create(),
            small_config(StrategyKind::Peach).executions(4_000),
        );
        assert!(comparison.baseline_paths > 0);
        assert!(comparison.baseline_executions > 0);
        if let Some(speedup) = comparison.speedup() {
            assert!(speedup > 0.0);
        }
    }

    #[test]
    fn report_measures_wall_time_and_throughput() {
        let report = Campaign::new(
            TargetId::Modbus.create(),
            small_config(StrategyKind::Peach).executions(1_000),
        )
        .run();
        assert!(report.wall_time > Duration::ZERO);
        assert!(report.executions_per_second() > 0.0);
        let text = report.to_string();
        assert!(text.contains("exec/s"));
    }

    #[test]
    fn display_mentions_strategy_and_target() {
        let report =
            Campaign::new(TargetId::Modbus.create(), small_config(StrategyKind::Peach).executions(500)).run();
        let text = report.to_string();
        assert!(text.contains("Peach"));
        assert!(text.contains("libmodbus"));
    }
}
