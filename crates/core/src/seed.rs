//! Seeds (generated packets) and the pool of valuable seeds.

use std::fmt;

use peachstar_coverage::PathId;

/// A generated packet together with its provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Seed {
    /// The packet bytes fed to the target.
    pub bytes: Vec<u8>,
    /// Name of the data model the packet was generated from.
    pub model: String,
    /// Whether the packet was produced by the semantic-aware strategy (as
    /// opposed to plain model instantiation).
    pub semantic: bool,
}

impl Seed {
    /// Creates a seed.
    #[must_use]
    pub fn new(bytes: Vec<u8>, model: impl Into<String>, semantic: bool) -> Self {
        Self {
            bytes,
            model: model.into(),
            semantic,
        }
    }

    /// Packet length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// `true` for empty packets.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

impl fmt::Display for Seed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed<{}> ({} bytes, {})",
            self.model,
            self.bytes.len(),
            if self.semantic { "semantic" } else { "model" }
        )
    }
}

/// A valuable seed retained by the feedback loop: the packet plus the path it
/// uncovered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValuableSeed {
    /// The retained seed.
    pub seed: Seed,
    /// The execution path the seed uncovered.
    pub path: PathId,
    /// Number of previously-unseen edges the seed contributed.
    pub new_edges: usize,
}

/// The pool of valuable seeds accumulated during a campaign.
///
/// The baseline Peach discards these (the paper's motivation); Peach\* keeps
/// them so the File Cracker can turn them into puzzles, and so that the
/// campaign report can say how many valuable seeds appeared and when.
#[derive(Debug, Clone, Default)]
pub struct SeedPool {
    seeds: Vec<ValuableSeed>,
    total_bytes: usize,
}

impl SeedPool {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a valuable seed.
    pub fn push(&mut self, seed: Seed, path: PathId, new_edges: usize) {
        self.total_bytes += seed.bytes.len();
        self.seeds.push(ValuableSeed {
            seed,
            path,
            new_edges,
        });
    }

    /// Number of valuable seeds retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// `true` when no valuable seed has been retained yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }

    /// Total bytes across all retained seeds.
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }

    /// The retained seeds in insertion order.
    #[must_use]
    pub fn seeds(&self) -> &[ValuableSeed] {
        &self.seeds
    }

    /// Iterates over the retained seeds.
    pub fn iter(&self) -> impl Iterator<Item = &ValuableSeed> {
        self.seeds.iter()
    }
}

impl Extend<ValuableSeed> for SeedPool {
    fn extend<T: IntoIterator<Item = ValuableSeed>>(&mut self, iter: T) {
        for valuable in iter {
            self.total_bytes += valuable.seed.bytes.len();
            self.seeds.push(valuable);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_accumulates_seeds_and_bytes() {
        let mut pool = SeedPool::new();
        assert!(pool.is_empty());
        pool.push(Seed::new(vec![1, 2, 3], "read", false), PathId::new(1), 3);
        pool.push(Seed::new(vec![4, 5], "write", true), PathId::new(2), 1);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.total_bytes(), 5);
        assert_eq!(pool.seeds()[1].seed.model, "write");
        assert!(pool.iter().any(|v| v.seed.semantic));
    }

    #[test]
    fn seed_display_mentions_model_and_origin() {
        let seed = Seed::new(vec![0; 10], "single_command", true);
        let text = seed.to_string();
        assert!(text.contains("single_command"));
        assert!(text.contains("semantic"));
        assert_eq!(seed.len(), 10);
        assert!(!seed.is_empty());
    }

    #[test]
    fn extend_adds_seeds() {
        let mut pool = SeedPool::new();
        pool.extend(vec![ValuableSeed {
            seed: Seed::new(vec![9], "m", false),
            path: PathId::new(3),
            new_edges: 1,
        }]);
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.total_bytes(), 1);
    }
}
