//! `peachstar-cli` — run Peach vs Peach\* fuzzing campaigns from the
//! command line.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    peachstar_cli::run_main(&args)
}
