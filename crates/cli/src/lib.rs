//! Library backing the `peachstar-cli` binary: command-line parsing and the
//! multi-threaded campaign runner.
//!
//! The binary reproduces the paper's evaluation workflow (Figure 4 and
//! Table I) from the command line: pick one of the six ICS targets (or all
//! of them), an execution budget and a strategy, then run one campaign per
//! repetition seed — spread across worker threads — and print a merged
//! report comparing Peach\* against the Peach baseline:
//!
//! ```text
//! cargo run -p peachstar-cli -- --target modbus --strategy peachstar \
//!     --executions 20000 --repetitions 3 --jobs 4
//! ```
//!
//! Parsing lives in [`parse_args`], execution in [`run`], and the binary's
//! whole `main` is [`run_main`]. Everything is plain `std` — no argument
//! parsing or thread-pool dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use peachstar::artifact::CrashArtifact;
use peachstar::campaign::{
    run_repetitions_shared, Campaign, CampaignConfig, CampaignReport, ConnectionCampaign,
    ConnectionConfig, PhaseMask, ReconnectPolicy, SessionConfig, ShardConfig, ShardedCampaign,
    TransportMode,
};
use peachstar::snapshot::{CampaignSnapshot, CheckpointConfig, SnapshotError};
use peachstar::stats::CoverageSeries;
use peachstar::strategy::StrategyKind;
use peachstar::{ControlServer, ServiceHooks};
use peachstar_protocols::chaos::{ChaosConfig, ChaosTarget};
use peachstar_protocols::{Target, TargetId, WireChaos};

/// Which fuzzers a run compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyChoice {
    /// Baseline only.
    Peach,
    /// Peach\* plus the Peach baseline it is compared against (the paper's
    /// workflow; suppress the baseline with `--no-baseline`).
    PeachStar,
    /// Both fuzzers, explicitly.
    Both,
}

impl StrategyChoice {
    /// Parses the `--strategy` argument.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "peach" | "baseline" => Some(Self::Peach),
            "peachstar" | "peach*" | "star" => Some(Self::PeachStar),
            "both" | "compare" => Some(Self::Both),
            _ => None,
        }
    }

    /// The strategies this choice actually runs.
    #[must_use]
    pub fn kinds(self, no_baseline: bool) -> Vec<StrategyKind> {
        match self {
            Self::Peach => vec![StrategyKind::Peach],
            Self::PeachStar if no_baseline => vec![StrategyKind::PeachStar],
            Self::PeachStar | Self::Both => vec![StrategyKind::Peach, StrategyKind::PeachStar],
        }
    }
}

/// Parsed command-line options for a campaign run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliOptions {
    /// Targets to fuzz (one entry per `--target`, or all six for `all`).
    pub targets: Vec<TargetId>,
    /// Which fuzzers to run.
    pub strategy: StrategyChoice,
    /// Per-campaign execution budget.
    pub executions: u64,
    /// Base RNG seed; repetition `i` uses `seed + i`.
    pub seed: u64,
    /// Campaigns per (target, strategy) pair.
    pub repetitions: u64,
    /// Worker threads (0 = one per available core).
    pub jobs: usize,
    /// Coverage sampling interval (0 = executions / 100).
    pub sample_interval: u64,
    /// Also print the merged coverage series as CSV.
    pub csv: bool,
    /// Print the report as a machine-readable JSON document instead of the
    /// human-readable table.
    pub json: bool,
    /// Suppress the implicit Peach baseline of `--strategy peachstar`.
    pub no_baseline: bool,
    /// Worker threads *inside* each campaign (1 = the classic sequential
    /// loop; >= 2 = the sharded engine with that many workers).
    pub shards: usize,
    /// Batched window execution: at most this many packets per executor
    /// dispatch (`None` = the classic per-execution loop). Composes with
    /// `--shards` (caps the per-worker dispatch chunk) and `--sessions`
    /// (windows are whole sessions).
    pub batch: Option<u64>,
    /// Summary-only decoding on the batched fast path: decoders keep
    /// identical control flow and traces but skip response assembly and
    /// error-string formatting, which campaign reports never read. Requires
    /// `--batch`; reports are bit-identical to full decodes.
    pub summary_only: bool,
    /// Run stateful session campaigns (handshake → mutated payload →
    /// teardown, with session-scoped resets) instead of the single-packet
    /// stream. Requires session-capable targets.
    pub sessions: bool,
    /// Mutated payload packets per session (with `--sessions`).
    pub session_payload: u64,
    /// Which session phases are mutated (with `--sessions`).
    pub mutate: PhaseMask,
    /// Write a resumable campaign snapshot to this path (atomic temp +
    /// rename) at window boundaries. Requires exactly one target, one
    /// fuzzer and a single repetition.
    pub checkpoint: Option<PathBuf>,
    /// Completed windows between periodic checkpoints (with `--checkpoint`).
    pub checkpoint_every: u64,
    /// Resume a snapshotted campaign from this path instead of starting
    /// fresh; the final report is bit-identical to the uninterrupted run.
    pub resume: Option<PathBuf>,
    /// Stop at the first window boundary at or past this execution, write
    /// the snapshot to the `--checkpoint` path and exit — a controlled
    /// interruption for checkpoint/resume pipelines.
    pub stop_after: Option<u64>,
    /// Chain Peach\* repetitions through a merged puzzle corpus so later
    /// seeds start from earlier discoveries.
    pub shared_corpus: bool,
    /// Per-execution watchdog deadline in milliseconds: executions run on a
    /// supervised worker thread and one that outlives the deadline is
    /// abandoned and recorded as a hang fault.
    pub exec_timeout_ms: Option<u64>,
    /// Write one crash reproducer bundle per unique bug into this directory
    /// (replayable with `peachstar-cli replay <bundle>`).
    pub artifacts: Option<PathBuf>,
    /// Exit with status 2 (instead of 0) when any campaign found a bug —
    /// distinguishes "found faults" from both success and operational
    /// failure in scripts and CI.
    pub fail_on_fault: bool,
    /// Wrap every target in the deterministic chaos layer with this seed:
    /// injected panics and garbage responses exercise the fault-tolerant
    /// execution path (hangs too, with `--chaos-hang-every`).
    pub chaos: Option<u64>,
    /// With `--chaos`: also inject blocking hangs on every ~Nth distinct
    /// packet. Requires `--exec-timeout-ms` so the watchdog bounds them.
    pub chaos_hang_every: Option<u64>,
    /// How packets reach the target: direct in-process calls (the default)
    /// or length-framed request/response over loopback TCP against a
    /// spawned socket server. Reports are bit-identical either way.
    pub transport: TransportMode,
    /// Live TCP connections multiplexed inside each campaign (>= 2 runs the
    /// concurrent-connection driver; requires `--transport tcp`). Like
    /// `--shards`, never changes the report — only how it is produced.
    pub connections: usize,
    /// Run one campaign as a long-lived supervised service (`serve` mode):
    /// rolling checkpoints into the `--checkpoint` rotation directory, an
    /// optional `--control` socket, graceful drain on `stop`, and SIGKILL
    /// recovery via `--resume-latest`.
    pub serve: bool,
    /// Bind address for the line-oriented JSON control socket (serve mode):
    /// one command per line, `status` | `stop`.
    pub control: Option<String>,
    /// Rotation depth in serve mode: the newest K snapshots kept in the
    /// rotation directory, older slots pruned.
    pub keep_checkpoints: usize,
    /// Recover a serve-mode rotation: scan this directory newest-first,
    /// skip truncated or corrupt snapshots, and resume the newest intact
    /// one (start fresh when none survives).
    pub resume_latest: Option<PathBuf>,
    /// Reconnect attempts per lost framed-TCP connection before it is
    /// declared dead (`None` = the default bounded-backoff schedule).
    pub reconnect_retries: Option<u32>,
    /// Deterministic server-side chaos: drop the serving connection before
    /// every Nth frame (requires `--transport tcp`).
    pub wire_drop_every: Option<u64>,
    /// With `--wire-drop-every`: accept-and-close this many dials after
    /// each drop, exhausting reconnect budgets deterministically.
    pub wire_reject_accepts: Option<u64>,
    /// With `--wire-drop-every`: cap the number of drop incidents.
    pub wire_drop_limit: Option<u64>,
}

impl Default for CliOptions {
    fn default() -> Self {
        Self {
            targets: vec![TargetId::Modbus],
            strategy: StrategyChoice::Both,
            executions: 20_000,
            seed: 1,
            repetitions: 1,
            jobs: 0,
            sample_interval: 0,
            csv: false,
            json: false,
            no_baseline: false,
            shards: 1,
            batch: None,
            summary_only: false,
            sessions: false,
            session_payload: SessionConfig::DEFAULT_PAYLOAD_PACKETS,
            mutate: PhaseMask::default(),
            checkpoint: None,
            checkpoint_every: Self::DEFAULT_CHECKPOINT_EVERY,
            resume: None,
            stop_after: None,
            shared_corpus: false,
            exec_timeout_ms: None,
            artifacts: None,
            fail_on_fault: false,
            chaos: None,
            chaos_hang_every: None,
            transport: TransportMode::InProcess,
            connections: 1,
            serve: false,
            control: None,
            keep_checkpoints: Self::DEFAULT_KEEP_CHECKPOINTS,
            resume_latest: None,
            reconnect_retries: None,
            wire_drop_every: None,
            wire_reject_accepts: None,
            wire_drop_limit: None,
        }
    }
}

impl CliOptions {
    /// Default checkpoint cadence: every 8 completed windows.
    pub const DEFAULT_CHECKPOINT_EVERY: u64 = 8;
    /// Default serve-mode rotation depth: keep the 4 newest snapshots.
    pub const DEFAULT_KEEP_CHECKPOINTS: usize = 4;
}

/// What the command line asked for.
// One Command is parsed per process; the size spread between variants is
// irrelevant and boxing CliOptions would only obscure every match site.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Run campaigns with these options.
    Run(CliOptions),
    /// Print usage.
    Help,
    /// Print the known targets.
    ListTargets,
    /// Re-run a crash reproducer bundle and verify the recorded fault fires.
    Replay(PathBuf),
}

/// Usage text printed by `--help`.
pub const USAGE: &str = "\
peachstar-cli — run Peach vs Peach* ICS fuzzing campaigns (DAC 2020 reproduction)

USAGE:
    peachstar-cli [OPTIONS]

OPTIONS:
    --target <NAME>          Target to fuzz: modbus | iec104 | iec61850 |
                             lib60870 | iccp | dnp3 | all. Repeatable.
                             [default: modbus]
    --strategy <KIND>        peach | peachstar | both. `peachstar` also runs
                             the Peach baseline for comparison (the paper's
                             workflow); add --no-baseline to suppress it.
                             [default: both]
    --executions <N>         Packet executions per campaign [default: 20000]
    --seed <N>               Base RNG seed; repetition i uses seed+i [default: 1]
    --repetitions <N>        Campaigns per fuzzer, averaged into one merged
                             coverage series [default: 1]
    --jobs <N>               Worker threads for parallel campaigns
                             [default: available cores]
    --sample-interval <N>    Executions between coverage samples
                             [default: executions/100]
    --shards <N>             Worker threads inside each campaign: 1 runs the
                             classic sequential loop, >= 2 runs the sharded
                             engine (reset-aligned windows executed in
                             parallel, merged deterministically) [default: 1]
    --batch <N>              Batched window execution: generate up to N
                             packets, execute them in one target call, then
                             reduce — amortising per-packet dispatch on one
                             core. Peach reports are bit-identical to the
                             per-execution loop; Peach* digests feedback at
                             batch ends (deterministic, barrier-fed like
                             --shards). With --shards, caps the per-worker
                             dispatch chunk instead (never changes results).
    --summary-only           Skip response assembly and error-string
                             formatting inside the decoders on the batched
                             fast path (the campaign loop never reads them);
                             control flow, traces and reports stay
                             bit-identical to full decodes, verified
                             continuously in debug builds. Requires --batch.
    --sessions               Stateful session fuzzing: every session replays
                             the target's handshake (e.g. STARTDT act), runs
                             mutated payload packets against the opened
                             session state, then tears down (STOPDT act).
                             The target resets at session boundaries instead
                             of the fixed interval. Requires session-capable
                             targets (iec104, lib60870, iec61850, iccp).
    --session-payload <N>    Mutated payload packets per session [default: 8]
    --mutate-phase <PHASE>   Which session phase is mutated: handshake |
                             payload | teardown. Repeatable; unmutated
                             handshake/teardown phases replay the template
                             verbatim, an unmutated payload phase sends
                             model-default packets. [default: payload]
    --checkpoint <PATH>      Write a resumable campaign snapshot to PATH
                             (atomically: temp file + rename) every
                             --checkpoint-every windows and at the end.
                             Requires exactly one target, one fuzzer
                             (--strategy peach, or peachstar with
                             --no-baseline) and --repetitions 1.
    --checkpoint-every <N>   Completed windows between periodic checkpoints
                             [default: 8]
    --resume <PATH>          Resume a snapshotted campaign: restores the
                             puzzle corpus, coverage map, RNG stream and
                             schedule cursor, then continues to the original
                             budget. The final report is bit-identical to
                             the uninterrupted run. Composes with
                             --checkpoint to keep snapshotting.
    --stop-after <N>         With --checkpoint: run to the first window
                             boundary at or past execution N, write the
                             snapshot, and exit (a controlled interruption)
    --shared-corpus          With --repetitions >= 2: chain the Peach*
                             repetitions through a merged puzzle corpus so
                             each seed starts from the donors every earlier
                             seed discovered
    --exec-timeout-ms <N>    Per-execution deadline: run every packet on a
                             supervised watchdog thread and abandon (recording
                             a hang fault) any execution that outlives N ms.
                             A run in which nothing hangs is bit-identical to
                             an unsupervised one.
    --transport <MODE>       inprocess | tcp. How packets reach the target:
                             direct in-process calls (the default) or
                             length-framed request/response over loopback TCP
                             against a spawned socket server (TPKT/COTP
                             framing for iec61850/iccp, raw length framing
                             otherwise). Reports are bit-identical either
                             way. [default: inprocess]
    --connections <N>        With --transport tcp: multiplex each campaign
                             over N live connections (each with its own
                             server-side target instance), buffered per
                             connection and reduced at the merge barrier in
                             execution order. Like --shards, N never changes
                             the report. Incompatible with --shards.
                             [default: 1]
    --reconnect-retries <N>  With --transport tcp: reconnect attempts per
                             lost connection (bounded exponential backoff,
                             journal replay restores the session; 0 fails on
                             the first socket error). A connection that
                             exhausts its budget is declared dead; with
                             --connections its windows redistribute onto the
                             survivors. [default: 4]
    --wire-drop-every <N>    With --transport tcp: deterministic server-side
                             failure injection — the server drops the serving
                             connection before every Nth frame. The campaign
                             recovers by reconnect + journal replay, so
                             reports stay bit-identical to a healthy wire.
    --wire-reject-accepts <N> With --wire-drop-every: after each drop the
                             server accepts-and-closes this many dials,
                             deterministically exhausting reconnect budgets.
    --wire-drop-limit <N>    With --wire-drop-every: cap the number of drop
                             incidents (default: unlimited).
    --control <ADDR>         serve: answer a line-oriented JSON control
                             socket on ADDR — one command per line, `status`
                             (live progress document) or `stop` (graceful
                             drain: finish the current window, write a final
                             checkpoint, exit 0).
    --keep-checkpoints <K>   serve: rotation depth — keep the K newest
                             snapshots in the rotation directory, pruning
                             older slots [default: 4]
    --resume-latest <DIR>    serve: recover a rotation — scan DIR newest
                             first, skip truncated or corrupt snapshots, and
                             resume the newest intact one (or start fresh).
                             DIR doubles as the rotation directory when
                             --checkpoint is not given.
    --artifacts <DIR>        Write one crash reproducer bundle per unique bug
                             into DIR (atomic, checksummed, deterministic file
                             names). Re-run a bundle with `replay <FILE>`.
    --fail-on-fault          Exit with status 2 when any campaign found a bug
                             (0 = ran clean, 1 = operational error) — lets
                             scripts and CI distinguish the three outcomes.
    --chaos <SEED>           Wrap every target in the deterministic chaos
                             layer: injected panics and garbage responses,
                             selected by packet content under SEED, exercise
                             panic containment end to end. The non-chaos
                             campaign stream is unaffected.
    --chaos-hang-every <N>   With --chaos: also inject blocking hangs on
                             every ~Nth distinct packet. Requires
                             --exec-timeout-ms so the watchdog bounds them.
    --csv                    Also print the merged coverage series as CSV
    --json                   Print the report as machine-readable JSON
                             instead of the table
    --no-baseline            With --strategy peachstar: skip the baseline run
    --list-targets           List the built-in targets and exit
    -h, --help               Print this help and exit

MODES:
    serve                    Run one campaign as a long-lived supervised
                             service: rolling checkpoints into the
                             --checkpoint rotation directory (atomic temp +
                             rename, oldest slots pruned beyond
                             --keep-checkpoints), an optional --control
                             socket, and bit-exact SIGKILL recovery via
                             serve --resume-latest <dir>. Takes the same
                             campaign flags as a plain run; like
                             --checkpoint it requires exactly one target,
                             one fuzzer and --repetitions 1.
    replay <FILE>            Re-run a crash reproducer bundle written by
                             --artifacts: repeats the recorded campaign up to
                             the recorded execution and exits 0 only if the
                             recorded fault fires again (same site, same
                             execution, same packet).

EXAMPLES:
    peachstar-cli --target modbus --strategy peachstar --executions 5000 --jobs 4
    peachstar-cli --target all --repetitions 3 --jobs 8 --csv
    peachstar-cli --target modbus --strategy peachstar --no-baseline \\
        --checkpoint run.snap --stop-after 10000   # interrupt at a boundary
    peachstar-cli --target modbus --strategy peachstar --no-baseline \\
        --resume run.snap                          # finish the campaign
    peachstar-cli --target modbus --strategy peach --chaos 7 \\
        --artifacts crashes/ --fail-on-fault       # chaos run + reproducers
    peachstar-cli --target modbus --transport tcp --connections 4 \\
        --batch 250                                # real-wire campaign
    peachstar-cli serve --target modbus --strategy peach --checkpoint rot/ \\
        --keep-checkpoints 4 --control 127.0.0.1:4455   # supervised service
    peachstar-cli serve --target modbus --strategy peach \\
        --resume-latest rot/                       # recover after a SIGKILL
    peachstar-cli replay crashes/libmodbus-panic-0123456789abcdef.peachart
";

/// Parses command-line arguments (without the program name).
///
/// # Errors
///
/// Returns a human-readable message naming the offending argument.
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut options = CliOptions::default();
    let mut targets: Vec<TargetId> = Vec::new();
    let mut mutate: Option<PhaseMask> = None;
    let mut session_payload: Option<u64> = None;
    let mut checkpoint_every: Option<u64> = None;
    let mut connections: Option<usize> = None;
    let mut keep_checkpoints: Option<usize> = None;
    let mut iter = args.iter();

    fn value<'a>(
        flag: &str,
        iter: &mut std::slice::Iter<'a, String>,
    ) -> Result<&'a String, String> {
        iter.next().ok_or_else(|| format!("{flag} expects a value"))
    }

    fn number(flag: &str, raw: &str) -> Result<u64, String> {
        raw.replace('_', "")
            .parse()
            .map_err(|_| format!("{flag}: `{raw}` is not a number"))
    }

    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "-h" | "--help" => return Ok(Command::Help),
            "--list-targets" => return Ok(Command::ListTargets),
            "replay" => {
                let path = value("replay", &mut iter)?;
                if let Some(extra) = iter.next() {
                    return Err(format!("replay takes exactly one bundle path (got `{extra}`)"));
                }
                return Ok(Command::Replay(PathBuf::from(path)));
            }
            "serve" => options.serve = true,
            "--control" => {
                options.control = Some(value("--control", &mut iter)?.clone());
            }
            "--keep-checkpoints" => {
                let keep = number("--keep-checkpoints", value("--keep-checkpoints", &mut iter)?)?;
                if keep == 0 {
                    return Err("--keep-checkpoints must be at least 1".into());
                }
                keep_checkpoints = Some(usize::try_from(keep).unwrap_or(1));
            }
            "--resume-latest" => {
                options.resume_latest = Some(PathBuf::from(value("--resume-latest", &mut iter)?));
            }
            "--reconnect-retries" => {
                let retries =
                    number("--reconnect-retries", value("--reconnect-retries", &mut iter)?)?;
                let retries = u32::try_from(retries)
                    .map_err(|_| "--reconnect-retries: value too large".to_string())?;
                options.reconnect_retries = Some(retries);
            }
            "--wire-drop-every" => {
                let every = number("--wire-drop-every", value("--wire-drop-every", &mut iter)?)?;
                if every == 0 {
                    return Err("--wire-drop-every must be at least 1".into());
                }
                options.wire_drop_every = Some(every);
            }
            "--wire-reject-accepts" => {
                options.wire_reject_accepts = Some(number(
                    "--wire-reject-accepts",
                    value("--wire-reject-accepts", &mut iter)?,
                )?);
            }
            "--wire-drop-limit" => {
                options.wire_drop_limit = Some(number(
                    "--wire-drop-limit",
                    value("--wire-drop-limit", &mut iter)?,
                )?);
            }
            "--target" => {
                let raw = value("--target", &mut iter)?;
                if raw.eq_ignore_ascii_case("all") {
                    targets.extend(TargetId::ALL);
                } else {
                    let target = TargetId::parse(raw).ok_or_else(|| {
                        format!("--target: unknown target `{raw}` (try --list-targets)")
                    })?;
                    targets.push(target);
                }
            }
            "--strategy" => {
                let raw = value("--strategy", &mut iter)?;
                options.strategy = StrategyChoice::parse(raw).ok_or_else(|| {
                    format!("--strategy: `{raw}` is not one of peach|peachstar|both")
                })?;
            }
            "--executions" => {
                options.executions = number("--executions", value("--executions", &mut iter)?)?;
                if options.executions == 0 {
                    return Err("--executions must be at least 1".into());
                }
            }
            "--seed" => options.seed = number("--seed", value("--seed", &mut iter)?)?,
            "--repetitions" => {
                options.repetitions =
                    number("--repetitions", value("--repetitions", &mut iter)?)?;
                if options.repetitions == 0 {
                    return Err("--repetitions must be at least 1".into());
                }
            }
            "--jobs" => {
                options.jobs =
                    usize::try_from(number("--jobs", value("--jobs", &mut iter)?)?).unwrap_or(0);
            }
            "--sample-interval" => {
                options.sample_interval =
                    number("--sample-interval", value("--sample-interval", &mut iter)?)?;
            }
            "--shards" => {
                let shards = number("--shards", value("--shards", &mut iter)?)?;
                if shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
                options.shards = usize::try_from(shards).unwrap_or(1);
            }
            "--batch" => {
                let batch = number("--batch", value("--batch", &mut iter)?)?;
                if batch == 0 {
                    return Err("--batch must be at least 1".into());
                }
                options.batch = Some(batch);
            }
            "--summary-only" => options.summary_only = true,
            "--sessions" => options.sessions = true,
            "--session-payload" => {
                let payload =
                    number("--session-payload", value("--session-payload", &mut iter)?)?;
                if payload == 0 {
                    return Err("--session-payload must be at least 1".into());
                }
                session_payload = Some(payload);
            }
            "--mutate-phase" => {
                let raw = value("--mutate-phase", &mut iter)?;
                let set = PhaseMask::parse_phase(raw).ok_or_else(|| {
                    format!("--mutate-phase: `{raw}` is not one of handshake|payload|teardown")
                })?;
                let mask = mutate.get_or_insert(PhaseMask {
                    handshake: false,
                    payload: false,
                    teardown: false,
                });
                set(mask);
            }
            "--checkpoint" => {
                options.checkpoint = Some(PathBuf::from(value("--checkpoint", &mut iter)?));
            }
            "--checkpoint-every" => {
                let every =
                    number("--checkpoint-every", value("--checkpoint-every", &mut iter)?)?;
                if every == 0 {
                    return Err("--checkpoint-every must be at least 1".into());
                }
                checkpoint_every = Some(every);
            }
            "--resume" => {
                options.resume = Some(PathBuf::from(value("--resume", &mut iter)?));
            }
            "--stop-after" => {
                let stop = number("--stop-after", value("--stop-after", &mut iter)?)?;
                if stop == 0 {
                    return Err("--stop-after must be at least 1".into());
                }
                options.stop_after = Some(stop);
            }
            "--shared-corpus" => options.shared_corpus = true,
            "--exec-timeout-ms" => {
                let millis = number("--exec-timeout-ms", value("--exec-timeout-ms", &mut iter)?)?;
                if millis == 0 {
                    return Err("--exec-timeout-ms must be at least 1".into());
                }
                options.exec_timeout_ms = Some(millis);
            }
            "--transport" => {
                let raw = value("--transport", &mut iter)?;
                options.transport = match raw.to_ascii_lowercase().as_str() {
                    "inprocess" | "in-process" | "direct" => TransportMode::InProcess,
                    "tcp" | "framed-tcp" => TransportMode::FramedTcp,
                    _ => {
                        return Err(format!(
                            "--transport: `{raw}` is not one of inprocess|tcp"
                        ))
                    }
                };
            }
            "--connections" => {
                let count = number("--connections", value("--connections", &mut iter)?)?;
                if count == 0 {
                    return Err("--connections must be at least 1".into());
                }
                connections = Some(usize::try_from(count).unwrap_or(1));
            }
            "--artifacts" => {
                options.artifacts = Some(PathBuf::from(value("--artifacts", &mut iter)?));
            }
            "--fail-on-fault" => options.fail_on_fault = true,
            "--chaos" => {
                options.chaos = Some(number("--chaos", value("--chaos", &mut iter)?)?);
            }
            "--chaos-hang-every" => {
                let every =
                    number("--chaos-hang-every", value("--chaos-hang-every", &mut iter)?)?;
                if every == 0 {
                    return Err("--chaos-hang-every must be at least 1".into());
                }
                options.chaos_hang_every = Some(every);
            }
            "--csv" => options.csv = true,
            "--json" => options.json = true,
            "--no-baseline" => options.no_baseline = true,
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }

    if let Some(mask) = mutate {
        if !options.sessions {
            return Err("--mutate-phase requires --sessions".into());
        }
        options.mutate = mask;
    }
    if let Some(payload) = session_payload {
        if !options.sessions {
            return Err("--session-payload requires --sessions".into());
        }
        options.session_payload = payload;
    }
    if !targets.is_empty() {
        targets.dedup();
        options.targets = targets;
    }
    if options.sessions {
        let session_capable = |id: &TargetId| id.create().session_template().is_some();
        let sessionless: Vec<&str> = options
            .targets
            .iter()
            .filter(|id| !session_capable(id))
            .map(|id| id.project_name())
            .collect();
        if !sessionless.is_empty() {
            let capable: Vec<&str> = TargetId::ALL
                .iter()
                .filter(|id| session_capable(id))
                .map(|id| id.project_name())
                .collect();
            return Err(format!(
                "--sessions: target(s) without a session handshake: {} \
                 (session-capable: {})",
                sessionless.join(", "),
                capable.join(", ")
            ));
        }
    }
    if !options.serve {
        if options.control.is_some() {
            return Err("--control answers a supervised service; enable it with serve".into());
        }
        if keep_checkpoints.is_some() {
            return Err("--keep-checkpoints rotates serve-mode snapshots; enable it with serve".into());
        }
        if options.resume_latest.is_some() {
            return Err("--resume-latest recovers a serve-mode rotation; enable it with serve".into());
        }
    }
    if let Some(keep) = keep_checkpoints {
        options.keep_checkpoints = keep;
    }
    if options.serve {
        if options.stop_after.is_some() {
            return Err("serve drains via the control socket (`stop`); drop --stop-after".into());
        }
        if options.resume.is_some() {
            return Err(
                "serve recovers its own rotation: use --resume-latest <dir> instead of --resume"
                    .into(),
            );
        }
        if options.checkpoint.is_none() {
            match &options.resume_latest {
                Some(dir) => options.checkpoint = Some(dir.clone()),
                None => {
                    return Err(
                        "serve needs a rotation directory: --checkpoint <dir> (or \
                         --resume-latest <dir>)"
                            .into(),
                    )
                }
            }
        }
    }
    if let Some(every) = checkpoint_every {
        if options.checkpoint.is_none() {
            return Err("--checkpoint-every requires --checkpoint".into());
        }
        options.checkpoint_every = every;
    }
    if options.stop_after.is_some() && options.checkpoint.is_none() {
        return Err("--stop-after requires --checkpoint <path> to hold the snapshot".into());
    }
    if let Some(stop) = options.stop_after {
        if stop > options.executions {
            return Err(format!(
                "--stop-after {stop} exceeds the execution budget ({})",
                options.executions
            ));
        }
    }
    if options.checkpoint.is_some() || options.resume.is_some() {
        if options.shared_corpus {
            return Err("--shared-corpus cannot be combined with --checkpoint/--resume".into());
        }
        if options.targets.len() != 1 {
            return Err(
                "--checkpoint/--resume snapshots exactly one campaign: give one --target \
                 (not `all`)"
                    .into(),
            );
        }
        if options.strategy.kinds(options.no_baseline).len() != 1 {
            return Err(
                "--checkpoint/--resume snapshots exactly one campaign: use --strategy peach, \
                 or --strategy peachstar with --no-baseline"
                    .into(),
            );
        }
        if options.repetitions != 1 {
            return Err("--checkpoint/--resume requires --repetitions 1".into());
        }
    }
    if options.chaos_hang_every.is_some() {
        if options.chaos.is_none() {
            return Err("--chaos-hang-every requires --chaos <seed>".into());
        }
        if options.exec_timeout_ms.is_none() {
            return Err(
                "--chaos-hang-every injects blocking hangs; arm the watchdog with \
                 --exec-timeout-ms <ms> so they are bounded"
                    .into(),
            );
        }
    }
    if options.artifacts.is_some() && options.shared_corpus {
        // A later shared-corpus repetition starts from state its bundle
        // cannot record, so its artifacts would not replay.
        return Err("--artifacts cannot be combined with --shared-corpus".into());
    }
    if options.shared_corpus {
        if options.repetitions < 2 {
            return Err(
                "--shared-corpus needs --repetitions >= 2 (a single run has nothing to share)"
                    .into(),
            );
        }
        if !options
            .strategy
            .kinds(options.no_baseline)
            .contains(&StrategyKind::PeachStar)
        {
            return Err(
                "--shared-corpus shares the Peach* puzzle corpus; --strategy peach keeps none"
                    .into(),
            );
        }
        if options.shards >= 2 {
            return Err(
                "--shared-corpus chains repetitions sequentially through one corpus; \
                 drop --shards"
                    .into(),
            );
        }
    }
    if options.summary_only && options.batch.is_none() {
        return Err(
            "--summary-only skips decode output on the batched fast path; enable it with \
             --batch <N>"
                .into(),
        );
    }
    if options.reconnect_retries.is_some() && options.transport != TransportMode::FramedTcp {
        return Err(
            "--reconnect-retries tunes the framed-TCP reconnect budget; enable the wire \
             with --transport tcp"
                .into(),
        );
    }
    match options.wire_drop_every {
        None => {
            if options.wire_reject_accepts.is_some() {
                return Err("--wire-reject-accepts requires --wire-drop-every".into());
            }
            if options.wire_drop_limit.is_some() {
                return Err("--wire-drop-limit requires --wire-drop-every".into());
            }
        }
        Some(_) if options.transport != TransportMode::FramedTcp => {
            return Err(
                "--wire-drop-every injects server-side connection drops; enable the wire \
                 with --transport tcp"
                    .into(),
            );
        }
        Some(_) => {}
    }
    if let Some(count) = connections {
        if options.transport != TransportMode::FramedTcp {
            return Err(
                "--connections multiplexes live TCP connections; enable the wire with \
                 --transport tcp"
                    .into(),
            );
        }
        options.connections = count;
    }
    if options.connections >= 2 {
        if options.shards >= 2 {
            return Err(
                "--connections and --shards both drive the parallel engine; pick one \
                 (connections are the sharded workers of a TCP campaign)"
                    .into(),
            );
        }
        if options.shared_corpus {
            return Err(
                "--shared-corpus chains repetitions sequentially through one corpus; \
                 drop --connections"
                    .into(),
            );
        }
    }
    Ok(Command::Run(options))
}

/// One campaign to execute: the unit of work distributed over threads.
#[derive(Debug, Clone, Copy)]
struct WorkItem {
    target: TargetId,
    strategy: StrategyKind,
    seed: u64,
}

/// All repetitions of one (target, strategy) pair, merged.
#[derive(Debug)]
pub struct MergedCampaign {
    /// The fuzzed target.
    pub target: TargetId,
    /// The fuzzer that produced these reports.
    pub strategy: StrategyKind,
    /// Point-wise averaged coverage series over all repetitions.
    pub merged_series: CoverageSeries,
    /// The individual repetition reports, in seed order.
    pub reports: Vec<CampaignReport>,
}

impl MergedCampaign {
    fn mean<F: Fn(&CampaignReport) -> f64>(&self, f: F) -> f64 {
        if self.reports.is_empty() {
            return 0.0;
        }
        self.reports.iter().map(f).sum::<f64>() / self.reports.len() as f64
    }

    /// Final paths of the merged series.
    #[must_use]
    pub fn final_paths(&self) -> usize {
        self.merged_series.final_paths()
    }

    /// Mean validity ratio over the repetitions.
    #[must_use]
    pub fn validity(&self) -> f64 {
        self.mean(CampaignReport::validity_ratio)
    }

    /// Mean puzzle-corpus size over the repetitions.
    #[must_use]
    pub fn corpus_size(&self) -> f64 {
        self.mean(|r| r.corpus_size as f64)
    }

    /// Mean campaign throughput (executions per wall-clock second) over the
    /// repetitions.
    #[must_use]
    pub fn executions_per_second(&self) -> f64 {
        self.mean(CampaignReport::executions_per_second)
    }

    /// Unique bug sites over all repetitions, with the repetition seed,
    /// earliest execution, reproducer packet and data model that first
    /// triggered each.
    #[must_use]
    pub fn unique_bugs(&self, base_seed: u64) -> Vec<UniqueBug> {
        let mut bugs: BTreeMap<&'static str, UniqueBug> = BTreeMap::new();
        for (repetition, report) in self.reports.iter().enumerate() {
            let seed = base_seed + repetition as u64;
            for bug in &report.bugs {
                let entry = || UniqueBug {
                    description: bug.fault.to_string(),
                    seed,
                    first_execution: bug.first_execution,
                    packet_hex: hex(&bug.packet),
                    model: bug.model.clone(),
                };
                bugs.entry(bug.fault.site)
                    .and_modify(|existing| {
                        if bug.first_execution < existing.first_execution {
                            *existing = entry();
                        }
                    })
                    .or_insert_with(entry);
            }
        }
        bugs.into_values().collect()
    }
}

/// One deduplicated bug of a [`MergedCampaign`], with everything needed to
/// reproduce it by hand: the triggering packet as hex and the data model it
/// was generated from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniqueBug {
    /// Human-readable fault description (kind at site).
    pub description: String,
    /// Repetition seed whose campaign first triggered the bug.
    pub seed: u64,
    /// Earliest execution index (1-based) at which the bug fired.
    pub first_execution: u64,
    /// The triggering packet, hex-encoded.
    pub packet_hex: String,
    /// Data model the packet was generated from.
    pub model: String,
}

/// Lowercase hex encoding of a packet.
fn hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for byte in bytes {
        out.push_str(&format!("{byte:02x}"));
    }
    out
}

/// The outcome of [`run`]: one merged campaign per (target, strategy) pair,
/// in target order.
#[derive(Debug)]
pub struct RunOutcome {
    /// The options the run used (after defaulting).
    pub options: CliOptions,
    /// Merged campaigns, grouped by target in [`TargetId::ALL`] order.
    pub campaigns: Vec<MergedCampaign>,
    /// Wall-clock seconds the whole run took.
    pub wall_seconds: f64,
    /// Set when `--stop-after` ended the run at this window boundary instead
    /// of completion; `campaigns` is empty and the snapshot sits at the
    /// `--checkpoint` path, ready for `--resume`.
    pub stopped_at: Option<u64>,
    /// Reproducer bundles written under `--artifacts`, one per unique bug,
    /// in deterministic (target, fault kind, site) order.
    pub artifacts: Vec<PathBuf>,
}

impl RunOutcome {
    /// The merged campaign for a (target, strategy) pair, if it ran.
    #[must_use]
    pub fn find(&self, target: TargetId, strategy: StrategyKind) -> Option<&MergedCampaign> {
        self.campaigns
            .iter()
            .find(|c| c.target == target && c.strategy == strategy)
    }
}

/// The per-campaign configuration a [`WorkItem`]'s options translate to.
fn build_config(
    options: &CliOptions,
    strategy: StrategyKind,
    seed: u64,
    sample_interval: u64,
) -> CampaignConfig {
    let mut config = CampaignConfig::new(strategy)
        .executions(options.executions)
        .rng_seed(seed)
        .sample_interval(sample_interval);
    if options.sessions {
        config =
            config.sessions(SessionConfig::new(options.session_payload).mutate(options.mutate));
    }
    if let Some(batch) = options.batch {
        config = config.batch(batch);
    }
    if options.summary_only {
        config = config.summary_only();
    }
    if let Some(millis) = options.exec_timeout_ms {
        config = config.exec_timeout_ms(millis);
    }
    if let Some(retries) = options.reconnect_retries {
        config = config.reconnect(ReconnectPolicy::DEFAULT.retries(retries));
    }
    if let Some(every) = options.wire_drop_every {
        let mut chaos = WireChaos::drop_every(every);
        if let Some(rejects) = options.wire_reject_accepts {
            chaos = chaos.reject_after_drop(rejects);
        }
        if let Some(limit) = options.wire_drop_limit {
            chaos = chaos.limit(limit);
        }
        config = config.wire_chaos(chaos);
    }
    config.transport(options.transport)
}

/// The chaos-injection configuration the options describe, if `--chaos` was
/// given: the seeded default failure mix, with blocking hangs armed only
/// when `--chaos-hang-every` asked for them (parse-time validation has
/// already ensured the watchdog is on in that case).
fn chaos_config(options: &CliOptions) -> Option<ChaosConfig> {
    options.chaos.map(|seed| {
        let config = ChaosConfig::new(seed);
        match options.chaos_hang_every {
            Some(every) => config.hang_every(every),
            None => config,
        }
    })
}

/// Instantiates a campaign target for `target`, wrapped in the
/// deterministic [`ChaosTarget`] failure injector when `--chaos` is active.
fn make_target(options: &CliOptions, target: TargetId) -> Box<dyn Target> {
    match chaos_config(options) {
        Some(chaos) => Box::new(ChaosTarget::new(target.create_send(), chaos)),
        None => target.create(),
    }
}

/// Runs all requested campaigns, distributing repetitions over `jobs`
/// worker threads, and merges each (target, strategy) group's coverage
/// series.
///
/// `--checkpoint`/`--resume`/`--stop-after` runs drive the single campaign
/// through the snapshot seams instead of the thread pool; `--shared-corpus`
/// chains the repetitions sequentially through one merged puzzle corpus.
///
/// # Errors
///
/// Returns a human-readable message when a snapshot cannot be read,
/// written, or does not match the requested campaign, or when a reproducer
/// bundle cannot be written under `--artifacts`.
pub fn run(options: &CliOptions) -> Result<RunOutcome, String> {
    let mut outcome = run_inner(options)?;
    if let Some(dir) = &options.artifacts {
        outcome.artifacts = write_artifacts(dir, &outcome)?;
    }
    Ok(outcome)
}

/// Writes one [`CrashArtifact`] reproducer bundle per unique
/// (target, fault kind, site) bug of the outcome into `dir`, recording the
/// exact campaign recipe (repetition seed, sharding, chaos injection) that
/// first triggered it.
fn write_artifacts(dir: &Path, outcome: &RunOutcome) -> Result<Vec<PathBuf>, String> {
    let options = &outcome.options;
    let sample_interval = effective_sample_interval(options);
    let sync_windows = if options.connections >= 2 {
        Some(ConnectionConfig::with_connections(options.connections).sync_windows)
    } else if options.shards >= 2 {
        Some(ShardConfig::with_workers(options.shards).sync_windows)
    } else {
        None
    };
    let chaos = chaos_config(options);
    let mut seen: BTreeSet<(TargetId, String)> = BTreeSet::new();
    let mut paths = Vec::new();
    for merged in &outcome.campaigns {
        for (repetition, report) in merged.reports.iter().enumerate() {
            let seed = options.seed + repetition as u64;
            let config = build_config(options, merged.strategy, seed, sample_interval);
            for bug in &report.bugs {
                if !seen.insert((merged.target, format!("{:?}@{}", bug.fault.kind, bug.fault.site)))
                {
                    continue;
                }
                let artifact = CrashArtifact::from_bug(
                    merged.target,
                    &config,
                    sync_windows.map(|windows| windows as u64),
                    chaos,
                    bug,
                );
                let path = artifact
                    .write_atomic(dir)
                    .map_err(|error| format!("--artifacts {}: {error}", dir.display()))?;
                paths.push(path);
            }
        }
    }
    Ok(paths)
}

/// The sample interval the options resolve to (`--sample-interval`, or 1% of
/// the budget when left at 0).
fn effective_sample_interval(options: &CliOptions) -> u64 {
    if options.sample_interval > 0 {
        options.sample_interval
    } else {
        (options.executions / 100).max(1)
    }
}

fn run_inner(options: &CliOptions) -> Result<RunOutcome, String> {
    let start = Instant::now();
    let kinds = options.strategy.kinds(options.no_baseline);
    let sample_interval = effective_sample_interval(options);

    if options.serve {
        return run_serve(options, kinds[0], sample_interval, start);
    }
    if options.checkpoint.is_some() || options.resume.is_some() {
        return run_checkpointable(options, kinds[0], sample_interval, start);
    }
    if options.shared_corpus {
        return Ok(run_shared(options, &kinds, sample_interval, start));
    }

    let mut queue: VecDeque<WorkItem> = VecDeque::new();
    for &target in &options.targets {
        for &strategy in &kinds {
            for repetition in 0..options.repetitions {
                queue.push_back(WorkItem {
                    target,
                    strategy,
                    seed: options.seed + repetition,
                });
            }
        }
    }

    let jobs = if options.jobs > 0 {
        options.jobs
    } else if options.shards >= 2 || options.connections >= 2 {
        // Sharded and concurrent-connection campaigns parallelise
        // internally; running many of them concurrently by default would
        // oversubscribe the machine.
        1
    } else {
        std::thread::available_parallelism().map_or(1, usize::from)
    }
    .min(queue.len().max(1));

    let queue = Mutex::new(queue);
    let results: Mutex<Vec<(WorkItem, CampaignReport)>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let Some(item) = queue.lock().expect("queue lock").pop_front() else {
                    return;
                };
                let config = build_config(options, item.strategy, item.seed, sample_interval);
                let report = if options.connections >= 2 {
                    ConnectionCampaign::new(
                        make_target(options, item.target),
                        config,
                        ConnectionConfig::with_connections(options.connections),
                    )
                    .run()
                } else if options.shards >= 2 {
                    ShardedCampaign::new(
                        make_target(options, item.target),
                        config,
                        ShardConfig::with_workers(options.shards),
                    )
                    .run()
                } else {
                    Campaign::new(make_target(options, item.target), config).run()
                };
                results.lock().expect("results lock").push((item, report));
            });
        }
    });

    let mut results = results.into_inner().expect("results lock");
    // Deterministic merge order regardless of thread completion order.
    results.sort_by_key(|(item, _)| (item.target, strategy_order(item.strategy), item.seed));

    let mut campaigns = Vec::new();
    for &target in &options.targets {
        for &strategy in &kinds {
            let reports: Vec<CampaignReport> = results
                .iter()
                .filter(|(item, _)| item.target == target && item.strategy == strategy)
                .map(|(_, report)| report.clone())
                .collect();
            if reports.is_empty() {
                continue;
            }
            let series: Vec<CoverageSeries> =
                reports.iter().map(|r| r.series.clone()).collect();
            campaigns.push(MergedCampaign {
                target,
                strategy,
                merged_series: CoverageSeries::average(&series),
                reports,
            });
        }
    }

    Ok(RunOutcome {
        options: options.clone(),
        campaigns,
        wall_seconds: start.elapsed().as_secs_f64(),
        stopped_at: None,
        artifacts: Vec::new(),
    })
}

/// The `--checkpoint`/`--resume`/`--stop-after` path: exactly one campaign
/// (parse-time validated), driven through the snapshot seams of
/// [`Campaign`] or [`ShardedCampaign`].
fn run_checkpointable(
    options: &CliOptions,
    strategy: StrategyKind,
    sample_interval: u64,
    start: Instant,
) -> Result<RunOutcome, String> {
    let target = options.targets[0];
    let config = build_config(options, strategy, options.seed, sample_interval);
    let resumed = options
        .resume
        .as_ref()
        .map(|path| {
            CampaignSnapshot::read_from(path)
                .map_err(|error| format!("--resume {}: {error}", path.display()))
        })
        .transpose()?;
    let checkpoint = options
        .checkpoint
        .as_ref()
        .map(|path| CheckpointConfig::new(path.clone(), options.checkpoint_every));
    let campaign_error = |error: SnapshotError| format!("checkpointable campaign: {error}");

    // A controlled interruption: run to the first boundary at or past
    // --stop-after, persist the snapshot, and report where we stopped.
    if let Some(stop) = options.stop_after {
        let path = options
            .checkpoint
            .as_ref()
            .expect("parse_args requires --checkpoint with --stop-after");
        let snapshot = if options.connections >= 2 {
            let campaign = ConnectionCampaign::new(
                make_target(options, target),
                config,
                ConnectionConfig::with_connections(options.connections),
            );
            let boundary = first_boundary(&campaign.round_boundaries(), stop)?;
            match &resumed {
                Some(from) => campaign.resume_to_boundary(from, boundary),
                None => campaign.run_to_boundary(boundary),
            }
            .map_err(campaign_error)?
        } else if options.shards >= 2 {
            let campaign = ShardedCampaign::new(
                make_target(options, target),
                config,
                ShardConfig::with_workers(options.shards),
            );
            let boundary = first_boundary(&campaign.round_boundaries(), stop)?;
            match &resumed {
                Some(from) => campaign.resume_to_boundary(from, boundary),
                None => campaign.run_to_boundary(boundary),
            }
            .map_err(campaign_error)?
        } else {
            let campaign = Campaign::new(make_target(options, target), config);
            let boundary = first_boundary(&campaign.window_boundaries(), stop)?;
            match &resumed {
                Some(from) => campaign.resume_to_boundary(from, boundary),
                None => campaign.run_to_boundary(boundary),
            }
            .map_err(campaign_error)?
        };
        let stopped_at = snapshot.completed;
        snapshot
            .write_atomic(path)
            .map_err(|error| format!("--checkpoint {}: {error}", path.display()))?;
        return Ok(RunOutcome {
            options: options.clone(),
            campaigns: Vec::new(),
            wall_seconds: start.elapsed().as_secs_f64(),
            stopped_at: Some(stopped_at),
            artifacts: Vec::new(),
        });
    }

    let report = if options.connections >= 2 {
        let campaign = ConnectionCampaign::new(
            make_target(options, target),
            config,
            ConnectionConfig::with_connections(options.connections),
        );
        match (&resumed, &checkpoint) {
            (Some(from), Some(to)) => campaign.resume_checkpointed(from, to),
            (Some(from), None) => campaign.resume(from),
            (None, Some(to)) => campaign.run_checkpointed(to),
            (None, None) => unreachable!("parse_args requires --checkpoint or --resume"),
        }
    } else if options.shards >= 2 {
        let campaign = ShardedCampaign::new(
            make_target(options, target),
            config,
            ShardConfig::with_workers(options.shards),
        );
        match (&resumed, &checkpoint) {
            (Some(from), Some(to)) => campaign.resume_checkpointed(from, to),
            (Some(from), None) => campaign.resume(from),
            (None, Some(to)) => campaign.run_checkpointed(to),
            (None, None) => unreachable!("parse_args requires --checkpoint or --resume"),
        }
    } else {
        let campaign = Campaign::new(make_target(options, target), config);
        match (&resumed, &checkpoint) {
            (Some(from), Some(to)) => campaign.resume_checkpointed(from, to),
            (Some(from), None) => campaign.resume(from),
            (None, Some(to)) => campaign.run_checkpointed(to),
            (None, None) => unreachable!("parse_args requires --checkpoint or --resume"),
        }
    }
    .map_err(campaign_error)?;

    let merged = MergedCampaign {
        target,
        strategy,
        merged_series: report.series.clone(),
        reports: vec![report],
    };
    Ok(RunOutcome {
        options: options.clone(),
        campaigns: vec![merged],
        wall_seconds: start.elapsed().as_secs_f64(),
        stopped_at: None,
        artifacts: Vec::new(),
    })
}

/// The `serve` mode: one supervised campaign (parse-time validated, like
/// `--checkpoint`) with rolling checkpoints into the rotation directory, an
/// optional control socket answering `status`/`stop`, and startup recovery
/// from the newest intact rotation slot (`--resume-latest`).
fn run_serve(
    options: &CliOptions,
    strategy: StrategyKind,
    sample_interval: u64,
    start: Instant,
) -> Result<RunOutcome, String> {
    let target = options.targets[0];
    let config = build_config(options, strategy, options.seed, sample_interval);
    let dir = options
        .checkpoint
        .as_ref()
        .expect("parse_args gives serve a rotation directory");
    let checkpoint =
        CheckpointConfig::new(dir.clone(), options.checkpoint_every).rotation(options.keep_checkpoints);

    // Startup recovery: the newest rotation slot that still decodes wins;
    // truncated or corrupt slots (a SIGKILL mid-write) are skipped, and an
    // empty or missing rotation starts the campaign fresh.
    let resumed = match &options.resume_latest {
        Some(rotation) => CampaignSnapshot::resume_latest(rotation)
            .map_err(|error| format!("--resume-latest {}: {error}", rotation.display()))?,
        None => None,
    };

    let hooks = ServiceHooks::new(options.executions);
    let mut control = match &options.control {
        Some(addr) => {
            let listener = TcpListener::bind(addr)
                .map_err(|error| format!("--control {addr}: {error}"))?;
            let server = ControlServer::start(listener, Arc::clone(&hooks))
                .map_err(|error| format!("--control {addr}: {error}"))?;
            eprintln!("control socket listening on {}", server.addr());
            Some(server)
        }
        None => None,
    };

    let campaign_error = |error: SnapshotError| format!("supervised campaign: {error}");
    let report = if options.connections >= 2 {
        let campaign = ConnectionCampaign::new(
            make_target(options, target),
            config,
            ConnectionConfig::with_connections(options.connections),
        );
        match &resumed {
            Some(from) => campaign.resume_supervised(from, &checkpoint, &hooks),
            None => campaign.run_supervised(&checkpoint, &hooks),
        }
    } else if options.shards >= 2 {
        let campaign = ShardedCampaign::new(
            make_target(options, target),
            config,
            ShardConfig::with_workers(options.shards),
        );
        match &resumed {
            Some(from) => campaign.resume_supervised(from, &checkpoint, &hooks),
            None => campaign.run_supervised(&checkpoint, &hooks),
        }
    } else {
        let campaign = Campaign::new(make_target(options, target), config);
        match &resumed {
            Some(from) => campaign.resume_supervised(from, &checkpoint, &hooks),
            None => campaign.run_supervised(&checkpoint, &hooks),
        }
    }
    .map_err(campaign_error)?;

    if let Some(control) = control.as_mut() {
        control.shutdown();
    }

    // A graceful drain stops at a window boundary short of the budget; the
    // final checkpoint covering it already sits in the rotation.
    let stopped_at = (report.executions < options.executions).then_some(report.executions);
    let merged = MergedCampaign {
        target,
        strategy,
        merged_series: report.series.clone(),
        reports: vec![report],
    };
    Ok(RunOutcome {
        options: options.clone(),
        campaigns: vec![merged],
        wall_seconds: start.elapsed().as_secs_f64(),
        stopped_at,
        artifacts: Vec::new(),
    })
}

/// The first reset-aligned boundary at or past `stop` — where a
/// `--stop-after` interruption can actually land.
fn first_boundary(boundaries: &[u64], stop: u64) -> Result<u64, String> {
    boundaries
        .iter()
        .copied()
        .find(|&end| end >= stop)
        .ok_or_else(|| format!("--stop-after {stop} lies past every window boundary"))
}

/// The `--shared-corpus` path: every (target, strategy) group runs its
/// repetitions sequentially, Peach\* seeds chained through one merged
/// puzzle corpus (the baseline falls back to isolated repetitions).
fn run_shared(
    options: &CliOptions,
    kinds: &[StrategyKind],
    sample_interval: u64,
    start: Instant,
) -> RunOutcome {
    let mut campaigns = Vec::new();
    for &target in &options.targets {
        for &strategy in kinds {
            let config = build_config(options, strategy, options.seed, sample_interval);
            let (merged_series, reports) =
                run_repetitions_shared(|| make_target(options, target), config, options.repetitions);
            campaigns.push(MergedCampaign {
                target,
                strategy,
                merged_series,
                reports,
            });
        }
    }
    RunOutcome {
        options: options.clone(),
        campaigns,
        wall_seconds: start.elapsed().as_secs_f64(),
        stopped_at: None,
        artifacts: Vec::new(),
    }
}

/// The mutated phases of a mask as a human-readable list.
fn mutated_phases(mask: PhaseMask) -> String {
    let phases: Vec<&str> = [
        (mask.handshake, "handshake"),
        (mask.payload, "payload"),
        (mask.teardown, "teardown"),
    ]
    .into_iter()
    .filter_map(|(on, name)| on.then_some(name))
    .collect();
    if phases.is_empty() {
        "nothing".to_string()
    } else {
        phases.join("+")
    }
}

const fn strategy_order(strategy: StrategyKind) -> u8 {
    match strategy {
        StrategyKind::Peach => 0,
        StrategyKind::PeachStar => 1,
    }
}

/// Renders the outcome as the human-readable comparison report.
#[must_use]
pub fn render_report(outcome: &RunOutcome) -> String {
    let options = &outcome.options;
    let mut out = String::new();
    out.push_str(&format!(
        "peachstar campaign run: {} executions x {} repetition(s), base seed {}{}{}{}{}{}\n",
        options.executions,
        options.repetitions,
        options.seed,
        if options.shards >= 2 {
            format!(", {} shard workers", options.shards)
        } else {
            String::new()
        },
        match (options.transport, options.connections) {
            (TransportMode::FramedTcp, connections) if connections >= 2 =>
                format!(", framed-TCP transport x {connections} connections"),
            (TransportMode::FramedTcp, _) => ", framed-TCP transport".to_string(),
            (TransportMode::InProcess, _) => String::new(),
        },
        if let Some(batch) = options.batch {
            format!(", batched windows of {batch}")
        } else {
            String::new()
        },
        if options.summary_only {
            ", summary-only decode"
        } else {
            ""
        },
        if options.sessions {
            format!(
                ", sessions (handshake + {} payload + teardown, mutating {})",
                options.session_payload,
                mutated_phases(options.mutate)
            )
        } else {
            String::new()
        }
    ));
    if options.shared_corpus {
        out.push_str("repetitions share one merged puzzle corpus (--shared-corpus)\n");
    }
    if let Some(millis) = options.exec_timeout_ms {
        out.push_str(&format!(
            "hang watchdog armed: executions exceeding {millis}ms are reported as hang faults\n"
        ));
    }
    if let Some(seed) = options.chaos {
        out.push_str(&format!(
            "chaos injection active (seed {seed}): targets wrapped in a deterministic failure injector\n"
        ));
    }
    if let Some(resume) = &options.resume {
        out.push_str(&format!("resumed from snapshot {}\n", resume.display()));
    }
    if let Some(stopped) = outcome.stopped_at {
        let path = options
            .checkpoint
            .as_ref()
            .map_or_else(String::new, |p| p.display().to_string());
        if options.serve {
            out.push_str(&format!(
                "service drained at execution {stopped}; rotation at {path} \
                 (continue with serve --resume-latest {path})\n"
            ));
        } else {
            out.push_str(&format!(
                "stopped at execution {stopped}; snapshot written to {path} \
                 (continue with --resume {path})\n"
            ));
        }
        out.push_str(&format!(
            "\ntotal wall time: {:.1}s\n",
            outcome.wall_seconds
        ));
        return out;
    }

    for &target in &options.targets {
        let peach = outcome.find(target, StrategyKind::Peach);
        let star = outcome.find(target, StrategyKind::PeachStar);
        out.push_str(&format!("\n== {} ==\n", target.project_name()));
        out.push_str(&format!(
            "{:<10} {:>9} {:>9} {:>12} {:>10} {:>9} {:>10}\n",
            "fuzzer", "paths", "edges", "unique-bugs", "validity", "corpus", "exec/s"
        ));
        for merged in [peach, star].into_iter().flatten() {
            let last = merged.merged_series.points().last();
            out.push_str(&format!(
                "{:<10} {:>9} {:>9} {:>12} {:>9.1}% {:>9.0} {:>10.0}\n",
                merged.strategy.label(),
                merged.final_paths(),
                last.map_or(0, |p| p.edges),
                merged.unique_bugs(options.seed).len(),
                merged.validity() * 100.0,
                merged.corpus_size(),
                merged.executions_per_second(),
            ));
        }

        if let (Some(peach), Some(star)) = (peach, star) {
            let base_paths = peach.final_paths();
            if base_paths > 0 {
                let gain = (star.final_paths() as f64 - base_paths as f64) / base_paths as f64
                    * 100.0;
                out.push_str(&format!("path gain Peach* vs Peach: {gain:+.2}%\n"));
            }
            match (
                peach.merged_series.executions_to_reach(base_paths),
                star.merged_series.executions_to_reach(base_paths),
            ) {
                (Some(baseline_execs), Some(star_execs)) => {
                    out.push_str(&format!(
                        "speed to baseline coverage: Peach* reached {} paths in {} execs (Peach: {}) — {:.1}x\n",
                        base_paths,
                        star_execs,
                        baseline_execs,
                        baseline_execs as f64 / star_execs.max(1) as f64,
                    ));
                }
                (_, None) => out.push_str(
                    "speed to baseline coverage: Peach* never reached the baseline's final path count\n",
                ),
                (None, _) => {}
            }
        }

        for merged in [peach, star].into_iter().flatten() {
            let bugs = merged.unique_bugs(options.seed);
            if bugs.is_empty() {
                continue;
            }
            out.push_str(&format!(
                "unique bugs found by {} (union over repetitions):\n",
                merged.strategy.label()
            ));
            for bug in bugs {
                out.push_str(&format!(
                    "  {} (first at execution {}, seed {})\n",
                    bug.description, bug.first_execution, bug.seed
                ));
                out.push_str(&format!(
                    "    model {} | reproducer {}\n",
                    bug.model, bug.packet_hex
                ));
            }
        }

        if options.csv {
            out.push('\n');
            out.push_str(&render_csv(target, peach, star));
        }
    }

    if !outcome.artifacts.is_empty() {
        out.push_str(&format!(
            "\n{} reproducer artifact(s) written:\n",
            outcome.artifacts.len()
        ));
        for path in &outcome.artifacts {
            out.push_str(&format!("  {}\n", path.display()));
        }
    }

    let total_executions: u64 = outcome
        .campaigns
        .iter()
        .flat_map(|merged| merged.reports.iter())
        .map(|report| report.executions)
        .sum();
    out.push_str(&format!(
        "\ntotal wall time: {:.1}s ({:.0} exec/s across all campaigns)\n",
        outcome.wall_seconds,
        if outcome.wall_seconds > 0.0 {
            total_executions as f64 / outcome.wall_seconds
        } else {
            0.0
        }
    ));
    out
}

/// Renders the merged series of one target as CSV
/// (`executions,peach_paths,peachstar_paths` — columns drop out when a
/// strategy did not run).
#[must_use]
fn render_csv(
    target: TargetId,
    peach: Option<&MergedCampaign>,
    star: Option<&MergedCampaign>,
) -> String {
    let mut out = format!("# merged coverage series: {}\n", target.project_name());
    let header: Vec<&str> = ["executions"]
        .into_iter()
        .chain(peach.map(|_| "peach_paths"))
        .chain(star.map(|_| "peachstar_paths"))
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    let rows = peach
        .or(star)
        .map_or(0, |merged| merged.merged_series.points().len());
    for index in 0..rows {
        let executions = peach
            .or(star)
            .and_then(|m| m.merged_series.points().get(index))
            .map_or(0, |p| p.executions);
        let mut row = vec![executions.to_string()];
        for merged in [peach, star].into_iter().flatten() {
            row.push(
                merged
                    .merged_series
                    .points()
                    .get(index)
                    .map_or_else(String::new, |p| p.paths.to_string()),
            );
        }
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn json_escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the outcome as a machine-readable JSON document: the run options
/// plus one object per (target, strategy) pair with the merged metrics, the
/// union of unique bugs and the merged coverage series.
#[must_use]
pub fn render_json(outcome: &RunOutcome) -> String {
    let options = &outcome.options;
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"executions\": {},\n  \"repetitions\": {},\n  \"seed\": {},\n  \"shards\": {},\n  \"sessions\": {},\n  \"wall_seconds\": {:.3},\n",
        options.executions, options.repetitions, options.seed, options.shards, options.sessions, outcome.wall_seconds
    ));
    if options.transport == TransportMode::FramedTcp {
        out.push_str(&format!(
            "  \"transport\": \"{}\",\n  \"connections\": {},\n",
            options.transport.as_flag(),
            options.connections
        ));
    }
    if options.sessions {
        out.push_str(&format!(
            "  \"session_payload\": {},\n  \"mutate_phases\": \"{}\",\n",
            options.session_payload,
            json_escape(&mutated_phases(options.mutate))
        ));
    }
    if let Some(batch) = options.batch {
        out.push_str(&format!("  \"batch\": {batch},\n"));
    }
    if options.summary_only {
        out.push_str("  \"summary_only\": true,\n");
    }
    if let Some(millis) = options.exec_timeout_ms {
        out.push_str(&format!("  \"exec_timeout_ms\": {millis},\n"));
    }
    if let Some(seed) = options.chaos {
        out.push_str(&format!("  \"chaos_seed\": {seed},\n"));
    }
    if let Some(stopped) = outcome.stopped_at {
        out.push_str(&format!("  \"stopped_at\": {stopped},\n"));
    }
    if !outcome.artifacts.is_empty() {
        out.push_str("  \"artifacts\": [");
        for (index, path) in outcome.artifacts.iter().enumerate() {
            out.push_str(&format!(
                "{}\"{}\"",
                if index == 0 { "" } else { ", " },
                json_escape(&path.display().to_string())
            ));
        }
        out.push_str("],\n");
    }
    out.push_str("  \"campaigns\": [\n");
    for (index, merged) in outcome.campaigns.iter().enumerate() {
        let last = merged.merged_series.points().last();
        out.push_str("    {\n");
        out.push_str(&format!(
            "      \"target\": \"{}\",\n      \"strategy\": \"{}\",\n",
            json_escape(merged.target.project_name()),
            json_escape(merged.strategy.label())
        ));
        out.push_str(&format!(
            "      \"final_paths\": {},\n      \"final_edges\": {},\n      \"validity\": {:.4},\n      \"corpus_size\": {:.1},\n      \"executions_per_second\": {:.1},\n",
            merged.final_paths(),
            last.map_or(0, |p| p.edges),
            merged.validity(),
            merged.corpus_size(),
            merged.executions_per_second()
        ));
        out.push_str("      \"unique_bugs\": [");
        let bugs = merged.unique_bugs(options.seed);
        for (bug_index, bug) in bugs.iter().enumerate() {
            out.push_str(&format!(
                "{}{{\"description\": \"{}\", \"seed\": {}, \"first_execution\": {}, \"packet_hex\": \"{}\", \"model\": \"{}\"}}",
                if bug_index == 0 { "" } else { ", " },
                json_escape(&bug.description),
                bug.seed,
                bug.first_execution,
                json_escape(&bug.packet_hex),
                json_escape(&bug.model)
            ));
        }
        out.push_str("],\n");
        out.push_str("      \"series\": [");
        for (point_index, point) in merged.merged_series.points().iter().enumerate() {
            out.push_str(&format!(
                "{}{{\"executions\": {}, \"paths\": {}, \"edges\": {}}}",
                if point_index == 0 { "" } else { ", " },
                point.executions,
                point.paths,
                point.edges
            ));
        }
        out.push_str("]\n");
        out.push_str(if index + 1 == outcome.campaigns.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// The single-core honesty check for `--shards` and `--connections`:
/// oversubscribed workers time-slice the same cores, so the parallel
/// campaign usually runs *slower* than the sequential loop while producing
/// the same report. `--shards N` demands N worker threads; `--connections N`
/// demands roughly 2N (N client lanes plus N server-side connection
/// handlers). Returns the warning text when that demand exceeds `available`
/// hardware parallelism.
#[must_use]
pub fn shard_parallelism_warning(
    shards: usize,
    connections: usize,
    available: usize,
) -> Option<String> {
    if connections >= 2 && connections * 2 > available {
        return Some(format!(
            "--connections {connections} drives ~{} threads ({connections} client \
             lanes + {connections} server handlers), exceeding the available \
             parallelism ({available}): connections will time-slice the same \
             core(s), which usually runs slower than one connection. On a \
             single core prefer --batch N, which amortises per-packet wire \
             round-trips without threads.",
            connections * 2
        ));
    }
    (shards >= 2 && shards > available).then(|| {
        format!(
            "--shards {shards} exceeds the available parallelism ({available}): \
             workers will time-slice the same core(s), which usually runs slower \
             than the sequential loop. On a single core prefer --batch N, which \
             amortises per-packet dispatch without threads."
        )
    })
}

/// Entry point used by the binary: parse, run, print, exit code.
pub fn run_main(args: &[String]) -> ExitCode {
    match parse_args(args) {
        Ok(Command::Help) => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Ok(Command::ListTargets) => {
            for target in TargetId::ALL {
                println!(
                    "{:<12} {}",
                    format!("{target:?}").to_ascii_lowercase(),
                    target.project_name()
                );
            }
            ExitCode::SUCCESS
        }
        Ok(Command::Run(options)) => {
            let available = std::thread::available_parallelism().map_or(1, usize::from);
            if let Some(warning) =
                shard_parallelism_warning(options.shards, options.connections, available)
            {
                eprintln!("warning: {warning}");
            }
            match run(&options) {
                Ok(outcome) => {
                    if options.json {
                        print!("{}", render_json(&outcome));
                    } else {
                        print!("{}", render_report(&outcome));
                    }
                    let any_faults = outcome
                        .campaigns
                        .iter()
                        .flat_map(|merged| merged.reports.iter())
                        .any(|report| !report.bugs.is_empty());
                    if options.fail_on_fault && any_faults {
                        // Exit 2 distinguishes "campaign found bugs" from
                        // operational failure (exit 1).
                        ExitCode::from(2)
                    } else {
                        ExitCode::SUCCESS
                    }
                }
                Err(message) => {
                    eprintln!("error: {message}");
                    ExitCode::FAILURE
                }
            }
        }
        Ok(Command::Replay(path)) => match replay_artifact(&path) {
            Ok(message) => {
                println!("{message}");
                ExitCode::SUCCESS
            }
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
        },
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("try --help for usage");
            ExitCode::FAILURE
        }
    }
}

/// Replays one reproducer bundle: reads the artifact, re-runs its recorded
/// campaign recipe, and checks that the recorded fault fires at the recorded
/// execution with the recorded packet.
///
/// # Errors
///
/// Returns a human-readable message when the bundle cannot be read or the
/// recorded fault does not reproduce.
pub fn replay_artifact(path: &Path) -> Result<String, String> {
    let artifact = CrashArtifact::read_from(path)
        .map_err(|error| format!("replay {}: {error}", path.display()))?;
    match artifact.replay() {
        Ok(_) => Ok(format!(
            "reproduced: {:?} at {} (execution {}, target {})",
            artifact.fault_kind,
            artifact.site,
            artifact.first_execution,
            artifact.target.project_name()
        )),
        Err(diverged) => {
            let (report, error) = *diverged;
            Err(format!(
                "replay {}: {error} ({} bug(s) observed over {} executions)",
                path.display(),
                report.bugs.len(),
                report.executions
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn parses_defaults() {
        let Command::Run(options) = parse_args(&[]).unwrap() else {
            panic!("expected a run command");
        };
        assert_eq!(options, CliOptions::default());
    }

    #[test]
    fn parses_full_command_line() {
        let Command::Run(options) = parse_args(&args(&[
            "--target",
            "iec104",
            "--target",
            "dnp3",
            "--strategy",
            "peachstar",
            "--executions",
            "5_000",
            "--seed",
            "9",
            "--repetitions",
            "3",
            "--jobs",
            "4",
            "--sample-interval",
            "50",
            "--shards",
            "4",
            "--csv",
            "--json",
            "--no-baseline",
        ]))
        .unwrap() else {
            panic!("expected a run command");
        };
        assert_eq!(options.targets, vec![TargetId::Iec104, TargetId::Dnp3]);
        assert_eq!(options.strategy, StrategyChoice::PeachStar);
        assert_eq!(options.executions, 5_000);
        assert_eq!(options.seed, 9);
        assert_eq!(options.repetitions, 3);
        assert_eq!(options.jobs, 4);
        assert_eq!(options.sample_interval, 50);
        assert_eq!(options.shards, 4);
        assert!(options.csv);
        assert!(options.json);
        assert!(options.no_baseline);
    }

    #[test]
    fn shards_default_to_one_and_reject_zero() {
        let Command::Run(options) = parse_args(&[]).unwrap() else {
            panic!("expected a run command");
        };
        assert_eq!(options.shards, 1);
        assert!(!options.json);
        assert!(parse_args(&args(&["--shards", "0"])).is_err());
        assert!(parse_args(&args(&["--shards"])).is_err());
        assert!(parse_args(&args(&["--shards", "two"])).is_err());
    }

    #[test]
    fn parses_batch_flag_and_rejects_zero() {
        let Command::Run(options) = parse_args(&args(&["--batch", "250"])).unwrap() else {
            panic!("expected a run command");
        };
        assert_eq!(options.batch, Some(250));
        let Command::Run(options) = parse_args(&[]).unwrap() else {
            panic!("expected a run command");
        };
        assert_eq!(options.batch, None);
        assert!(parse_args(&args(&["--batch", "0"])).is_err());
        assert!(parse_args(&args(&["--batch"])).is_err());
        assert!(parse_args(&args(&["--batch", "many"])).is_err());
        // Composes with --shards and --sessions.
        let Command::Run(options) = parse_args(&args(&[
            "--target", "iec104", "--batch", "64", "--shards", "2", "--sessions",
        ]))
        .unwrap() else {
            panic!("expected a run command");
        };
        assert_eq!(options.batch, Some(64));
        assert_eq!(options.shards, 2);
        assert!(options.sessions);
    }

    #[test]
    fn batched_run_matches_sequential_run_for_the_baseline() {
        // --batch amortises dispatch; for the feedback-free baseline the
        // report must be bit-identical to the per-execution loop.
        let options = CliOptions {
            targets: vec![TargetId::Modbus],
            strategy: StrategyChoice::Peach,
            executions: 1_000,
            jobs: 1,
            ..CliOptions::default()
        };
        let sequential = run(&options).expect("run");
        let batched = run(&CliOptions {
            batch: Some(128),
            ..options
        })
        .expect("run");
        let a = sequential.find(TargetId::Modbus, StrategyKind::Peach).unwrap();
        let b = batched.find(TargetId::Modbus, StrategyKind::Peach).unwrap();
        assert_eq!(a.final_paths(), b.final_paths());
        assert_eq!(a.reports[0].responses, b.reports[0].responses);
        assert_eq!(a.unique_bugs(options.seed), b.unique_bugs(options.seed));
    }

    #[test]
    fn batch_surfaces_in_report_and_json() {
        let options = CliOptions {
            targets: vec![TargetId::Modbus],
            strategy: StrategyChoice::Peach,
            executions: 600,
            jobs: 1,
            batch: Some(200),
            ..CliOptions::default()
        };
        let outcome = run(&options).expect("run");
        assert!(render_report(&outcome).contains("batched windows of 200"));
        let json = render_json(&outcome);
        assert!(json.contains("\"batch\": 200"));
        // Absent when off.
        let outcome = run(&CliOptions {
            batch: None,
            ..options
        })
        .expect("run");
        assert!(!render_json(&outcome).contains("\"batch\""));
    }

    #[test]
    fn parses_summary_only_and_requires_batch() {
        let Command::Run(options) =
            parse_args(&args(&["--batch", "250", "--summary-only"])).unwrap()
        else {
            panic!("expected a run command");
        };
        assert!(options.summary_only);
        let Command::Run(options) = parse_args(&[]).unwrap() else {
            panic!("expected a run command");
        };
        assert!(!options.summary_only);
        // Without --batch the per-execution loop would still hand full
        // outcomes to external consumers; the error points at the fix.
        let error = parse_args(&args(&["--summary-only"])).unwrap_err();
        assert!(error.contains("--batch"), "points at --batch: {error}");
        // Composes with --shards (the per-worker fast path).
        let Command::Run(options) = parse_args(&args(&[
            "--batch", "64", "--summary-only", "--shards", "2",
        ]))
        .unwrap() else {
            panic!("expected a run command");
        };
        assert!(options.summary_only);
        assert_eq!(options.shards, 2);
    }

    #[test]
    fn summary_only_surfaces_in_report_and_json() {
        let options = CliOptions {
            targets: vec![TargetId::Modbus],
            strategy: StrategyChoice::Peach,
            executions: 600,
            jobs: 1,
            batch: Some(200),
            summary_only: true,
            ..CliOptions::default()
        };
        let outcome = run(&options).expect("run");
        assert!(render_report(&outcome).contains("summary-only decode"));
        assert!(render_json(&outcome).contains("\"summary_only\": true"));
        // Absent when off.
        let outcome = run(&CliOptions {
            summary_only: false,
            ..options
        })
        .expect("run");
        assert!(!render_json(&outcome).contains("\"summary_only\""));
    }

    #[test]
    fn summary_only_run_matches_the_full_decode_run() {
        // The whole point of the sink seam: outcome variants, traces and
        // therefore reports are bit-identical with decode output skipped.
        for strategy in [StrategyChoice::Peach, StrategyChoice::PeachStar] {
            let options = CliOptions {
                targets: vec![TargetId::Modbus, TargetId::Iec104],
                strategy,
                executions: 1_000,
                jobs: 1,
                no_baseline: true,
                batch: Some(128),
                ..CliOptions::default()
            };
            let full = run(&options).expect("run");
            let summary = run(&CliOptions {
                summary_only: true,
                ..options.clone()
            })
            .expect("run");
            for (target, kind) in full
                .campaigns
                .iter()
                .map(|campaign| (campaign.target, campaign.strategy))
                .collect::<Vec<_>>()
            {
                let a = full.find(target, kind).unwrap();
                let b = summary.find(target, kind).unwrap();
                assert_eq!(a.final_paths(), b.final_paths());
                assert_eq!(a.reports[0].series.points(), b.reports[0].series.points());
                assert_eq!(a.reports[0].responses, b.reports[0].responses);
                assert_eq!(a.reports[0].protocol_errors, b.reports[0].protocol_errors);
                assert_eq!(a.reports[0].fault_hits, b.reports[0].fault_hits);
                assert_eq!(a.unique_bugs(options.seed), b.unique_bugs(options.seed));
            }
        }
    }

    #[test]
    fn shard_warning_fires_only_when_oversubscribed() {
        assert!(shard_parallelism_warning(4, 1, 1).is_some());
        let text = shard_parallelism_warning(8, 1, 2).unwrap();
        assert!(text.contains("--shards 8"));
        assert!(text.contains("(2)"));
        assert!(text.contains("--batch"), "points at the single-core alternative");
        assert!(shard_parallelism_warning(4, 1, 4).is_none());
        assert!(shard_parallelism_warning(2, 1, 8).is_none());
        assert!(shard_parallelism_warning(1, 1, 1).is_none(), "sequential never warns");
    }

    #[test]
    fn connection_warning_accounts_for_server_handler_threads() {
        // N connections drive ~2N threads: N client lanes + N server-side
        // connection handlers. 4 connections on 8 cores is exactly at the
        // edge; on 4 cores it warns even though 4 shards would not.
        assert!(shard_parallelism_warning(1, 4, 8).is_none());
        let text = shard_parallelism_warning(1, 4, 4).unwrap();
        assert!(text.contains("--connections 4"));
        assert!(text.contains("~8 threads"));
        assert!(text.contains("--batch"), "points at the single-core alternative");
        assert!(shard_parallelism_warning(1, 2, 4).is_none());
        assert!(shard_parallelism_warning(1, 1, 1).is_none(), "one connection never warns");
    }

    #[test]
    fn parses_transport_and_connection_flags() {
        let Command::Run(options) = parse_args(&args(&["--transport", "tcp"])).unwrap() else {
            panic!("expected a run command");
        };
        assert_eq!(options.transport, TransportMode::FramedTcp);
        assert_eq!(options.connections, 1);
        let Command::Run(options) =
            parse_args(&args(&["--transport", "tcp", "--connections", "4"])).unwrap()
        else {
            panic!("expected a run command");
        };
        assert_eq!(options.connections, 4);
        // Defaults and aliases.
        let Command::Run(options) = parse_args(&[]).unwrap() else {
            panic!("expected a run command");
        };
        assert_eq!(options.transport, TransportMode::InProcess);
        assert_eq!(options.connections, 1);
        for alias in ["inprocess", "in-process", "direct"] {
            let Command::Run(options) = parse_args(&args(&["--transport", alias])).unwrap()
            else {
                panic!("expected a run command");
            };
            assert_eq!(options.transport, TransportMode::InProcess);
        }
        for alias in ["tcp", "framed-tcp"] {
            let Command::Run(options) = parse_args(&args(&["--transport", alias])).unwrap()
            else {
                panic!("expected a run command");
            };
            assert_eq!(options.transport, TransportMode::FramedTcp);
        }
        // Composes with the batch/session/chaos/artifact machinery.
        let Command::Run(options) = parse_args(&args(&[
            "--target", "iec104", "--transport", "tcp", "--connections", "2",
            "--batch", "64", "--sessions", "--chaos", "7", "--artifacts", "crashes",
        ]))
        .unwrap() else {
            panic!("expected a run command");
        };
        assert_eq!(options.connections, 2);
        assert_eq!(options.batch, Some(64));
        assert!(options.sessions);
    }

    #[test]
    fn transport_and_connection_flags_are_validated() {
        assert!(parse_args(&args(&["--transport", "udp"])).is_err());
        assert!(parse_args(&args(&["--transport"])).is_err());
        assert!(parse_args(&args(&["--connections", "0"])).is_err());
        assert!(parse_args(&args(&["--connections"])).is_err());
        assert!(parse_args(&args(&["--connections", "many"])).is_err());
        // Connections without a wire are meaningless; the error points at
        // the fix, like --summary-only's does at --batch.
        let error = parse_args(&args(&["--connections", "4"])).unwrap_err();
        assert!(error.contains("--transport tcp"), "points at the wire: {error}");
        // The connection driver *is* the sharded engine; both at once would
        // fight over it.
        assert!(parse_args(&args(&[
            "--transport", "tcp", "--connections", "2", "--shards", "2"
        ]))
        .is_err());
        assert!(parse_args(&args(&[
            "--transport", "tcp", "--connections", "2",
            "--shared-corpus", "--repetitions", "2"
        ]))
        .is_err());
        // One connection over tcp is the plain sequential campaign.
        assert!(parse_args(&args(&["--transport", "tcp", "--connections", "1"])).is_ok());
    }

    #[test]
    fn tcp_run_matches_in_process_and_surfaces_in_output() {
        let options = CliOptions {
            targets: vec![TargetId::Modbus],
            strategy: StrategyChoice::Peach,
            executions: 800,
            jobs: 1,
            ..CliOptions::default()
        };
        let in_process = run(&options).expect("in-process run");
        let tcp = run(&CliOptions {
            transport: TransportMode::FramedTcp,
            connections: 2,
            ..options.clone()
        })
        .expect("tcp run");
        let a = in_process.find(TargetId::Modbus, StrategyKind::Peach).unwrap();
        let b = tcp.find(TargetId::Modbus, StrategyKind::Peach).unwrap();
        assert_eq!(a.final_paths(), b.final_paths());
        assert_eq!(a.reports[0].responses, b.reports[0].responses);
        assert_eq!(a.reports[0].series.points(), b.reports[0].series.points());
        assert_eq!(a.unique_bugs(options.seed), b.unique_bugs(options.seed));

        assert!(render_report(&tcp).contains("framed-TCP transport x 2 connections"));
        let json = render_json(&tcp);
        assert!(json.contains("\"transport\": \"tcp\""));
        assert!(json.contains("\"connections\": 2"));
        // Absent when in-process, so existing consumers see no new fields.
        let json = render_json(&in_process);
        assert!(!json.contains("\"transport\""));
        assert!(!json.contains("\"connections\""));
    }

    #[test]
    fn parses_session_flags() {
        let Command::Run(options) = parse_args(&args(&[
            "--target",
            "iec104",
            "--sessions",
            "--session-payload",
            "5",
            "--mutate-phase",
            "handshake",
            "--mutate-phase",
            "payload",
        ]))
        .unwrap() else {
            panic!("expected a run command");
        };
        assert!(options.sessions);
        assert_eq!(options.session_payload, 5);
        assert!(options.mutate.handshake);
        assert!(options.mutate.payload);
        assert!(!options.mutate.teardown);

        // Defaults: payload-only mutation, 8 payload packets.
        let Command::Run(options) =
            parse_args(&args(&["--target", "lib60870", "--sessions"])).unwrap()
        else {
            panic!("expected a run command");
        };
        assert_eq!(options.mutate, PhaseMask::default());
        assert_eq!(options.session_payload, 8);
    }

    #[test]
    fn session_flags_are_validated() {
        // Sessionless target (and the default modbus target) are rejected.
        assert!(parse_args(&args(&["--target", "modbus", "--sessions"])).is_err());
        assert!(parse_args(&args(&["--sessions"])).is_err());
        assert!(parse_args(&args(&["--target", "all", "--sessions"])).is_err());
        // Session-only flags without --sessions, bad phase names, bad counts.
        assert!(parse_args(&args(&["--mutate-phase", "payload"])).is_err());
        assert!(parse_args(&args(&["--session-payload", "4"])).is_err());
        assert!(parse_args(&args(&[
            "--target", "iec104", "--sessions", "--mutate-phase", "preamble"
        ]))
        .is_err());
        assert!(parse_args(&args(&[
            "--target", "iec104", "--sessions", "--session-payload", "0"
        ]))
        .is_err());
    }

    #[test]
    fn session_run_produces_a_report_and_json() {
        let options = CliOptions {
            targets: vec![TargetId::Iec104],
            strategy: StrategyChoice::Peach,
            executions: 600,
            jobs: 1,
            sessions: true,
            session_payload: 4,
            ..CliOptions::default()
        };
        let outcome = run(&options).expect("run");
        let merged = outcome.find(TargetId::Iec104, StrategyKind::Peach).unwrap();
        assert!(merged.final_paths() > 0);
        let report = render_report(&outcome);
        assert!(report.contains("sessions (handshake + 4 payload + teardown, mutating payload)"));
        let json = render_json(&outcome);
        assert!(json.contains("\"sessions\": true"));
        assert!(json.contains("\"session_payload\": 4"));
        assert!(json.contains("\"mutate_phases\": \"payload\""));
    }

    #[test]
    fn target_all_expands_to_every_target() {
        let Command::Run(options) = parse_args(&args(&["--target", "all"])).unwrap() else {
            panic!("expected a run command");
        };
        assert_eq!(options.targets, TargetId::ALL.to_vec());
    }

    #[test]
    fn rejects_unknown_arguments_and_values() {
        assert!(parse_args(&args(&["--frobnicate"])).is_err());
        assert!(parse_args(&args(&["--target", "http"])).is_err());
        assert!(parse_args(&args(&["--strategy", "afl"])).is_err());
        assert!(parse_args(&args(&["--executions", "zero"])).is_err());
        assert!(parse_args(&args(&["--executions", "0"])).is_err());
        assert!(parse_args(&args(&["--repetitions", "0"])).is_err());
        assert!(parse_args(&args(&["--executions"])).is_err());
    }

    #[test]
    fn help_and_list_targets_short_circuit() {
        assert_eq!(parse_args(&args(&["--help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&args(&["-h"])).unwrap(), Command::Help);
        assert_eq!(
            parse_args(&args(&["--list-targets"])).unwrap(),
            Command::ListTargets
        );
    }

    #[test]
    fn strategy_choice_controls_kinds() {
        assert_eq!(StrategyChoice::Peach.kinds(false), vec![StrategyKind::Peach]);
        assert_eq!(
            StrategyChoice::PeachStar.kinds(false),
            vec![StrategyKind::Peach, StrategyKind::PeachStar]
        );
        assert_eq!(
            StrategyChoice::PeachStar.kinds(true),
            vec![StrategyKind::PeachStar]
        );
        assert_eq!(
            StrategyChoice::Both.kinds(true),
            vec![StrategyKind::Peach, StrategyKind::PeachStar]
        );
    }

    #[test]
    fn small_parallel_run_produces_comparable_report() {
        let options = CliOptions {
            targets: vec![TargetId::Modbus],
            executions: 1_200,
            repetitions: 2,
            jobs: 4,
            ..CliOptions::default()
        };
        let outcome = run(&options).expect("run");
        assert_eq!(outcome.campaigns.len(), 2, "Peach and Peach* both ran");
        let peach = outcome.find(TargetId::Modbus, StrategyKind::Peach).unwrap();
        let star = outcome
            .find(TargetId::Modbus, StrategyKind::PeachStar)
            .unwrap();
        assert_eq!(peach.reports.len(), 2);
        assert_eq!(star.reports.len(), 2);
        assert!(peach.final_paths() > 0);
        assert!(star.final_paths() > 0);

        let report = render_report(&outcome);
        assert!(report.contains("libmodbus"));
        assert!(report.contains("Peach*"));
        assert!(report.contains("path gain"));
    }

    #[test]
    fn parallel_run_matches_sequential_run() {
        let options = CliOptions {
            targets: vec![TargetId::Iec104],
            executions: 800,
            repetitions: 2,
            jobs: 4,
            ..CliOptions::default()
        };
        let parallel = run(&options).expect("run");
        let sequential = run(&CliOptions { jobs: 1, ..options }).expect("run");
        for strategy in [StrategyKind::Peach, StrategyKind::PeachStar] {
            let a = parallel.find(TargetId::Iec104, strategy).unwrap();
            let b = sequential.find(TargetId::Iec104, strategy).unwrap();
            assert_eq!(
                a.final_paths(),
                b.final_paths(),
                "{strategy}: thread scheduling must not affect results"
            );
        }
    }

    #[test]
    fn sharded_run_matches_sequential_run_for_the_baseline() {
        // --shards parallelises inside each campaign; for the feedback-free
        // baseline the report must be identical to the sequential loop.
        let options = CliOptions {
            targets: vec![TargetId::Modbus],
            strategy: StrategyChoice::Peach,
            executions: 1_000,
            jobs: 1,
            ..CliOptions::default()
        };
        let sequential = run(&options).expect("run");
        let sharded = run(&CliOptions {
            shards: 3,
            ..options
        })
        .expect("run");
        let a = sequential.find(TargetId::Modbus, StrategyKind::Peach).unwrap();
        let b = sharded.find(TargetId::Modbus, StrategyKind::Peach).unwrap();
        assert_eq!(a.final_paths(), b.final_paths());
        assert_eq!(a.reports[0].responses, b.reports[0].responses);
        assert_eq!(
            a.unique_bugs(options.seed),
            b.unique_bugs(options.seed)
        );
    }

    #[test]
    fn json_report_is_rendered_and_structured() {
        let options = CliOptions {
            targets: vec![TargetId::Modbus],
            executions: 600,
            jobs: 2,
            json: true,
            ..CliOptions::default()
        };
        let outcome = run(&options).expect("run");
        let json = render_json(&outcome);
        assert!(json.starts_with("{\n"));
        assert!(json.trim_end().ends_with('}'));
        assert!(json.contains("\"target\": \"libmodbus\""));
        assert!(json.contains("\"strategy\": \"Peach*\""));
        assert!(json.contains("\"final_paths\":"));
        assert!(json.contains("\"series\": ["));
        assert!(json.contains("\"shards\": 1"));
        // Balanced braces/brackets — a cheap structural sanity check in
        // lieu of a JSON parser dependency.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\n\t\u{1}"), "x\\n\\t\\u0001");
    }

    #[test]
    fn csv_rendering_includes_both_series() {
        let options = CliOptions {
            targets: vec![TargetId::Modbus],
            executions: 600,
            csv: true,
            jobs: 2,
            ..CliOptions::default()
        };
        let outcome = run(&options).expect("run");
        let report = render_report(&outcome);
        assert!(report.contains("executions,peach_paths,peachstar_paths"));
        let csv_lines = report
            .lines()
            .filter(|line| line.chars().next().is_some_and(char::is_numeric))
            .count();
        assert!(csv_lines > 2, "series rows rendered");
    }

    fn scratch_snapshot_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "peachstar-cli-{name}-{}.snap",
            std::process::id()
        ))
    }

    #[test]
    fn parses_checkpoint_flags() {
        let Command::Run(options) = parse_args(&args(&[
            "--target",
            "modbus",
            "--strategy",
            "peach",
            "--checkpoint",
            "run.snap",
            "--checkpoint-every",
            "4",
            "--stop-after",
            "500",
        ]))
        .unwrap() else {
            panic!("expected a run command");
        };
        assert_eq!(options.checkpoint, Some(PathBuf::from("run.snap")));
        assert_eq!(options.checkpoint_every, 4);
        assert_eq!(options.stop_after, Some(500));
        assert!(options.resume.is_none());

        // --resume alone, default cadence.
        let Command::Run(options) = parse_args(&args(&[
            "--target", "modbus", "--strategy", "peach", "--resume", "run.snap",
        ]))
        .unwrap() else {
            panic!("expected a run command");
        };
        assert_eq!(options.resume, Some(PathBuf::from("run.snap")));
        assert_eq!(
            options.checkpoint_every,
            CliOptions::DEFAULT_CHECKPOINT_EVERY
        );
    }

    #[test]
    fn checkpoint_flags_are_validated() {
        // Cadence and stop-after are meaningless without a checkpoint path.
        assert!(parse_args(&args(&["--checkpoint-every", "4"])).is_err());
        assert!(parse_args(&args(&["--stop-after", "500"])).is_err());
        assert!(parse_args(&args(&["--checkpoint", "x", "--checkpoint-every", "0"])).is_err());
        assert!(parse_args(&args(&["--checkpoint", "x", "--stop-after", "0"])).is_err());
        // A snapshot pins exactly one campaign.
        let single = ["--strategy", "peach", "--checkpoint", "x"];
        assert!(parse_args(&args(&single)).is_ok());
        assert!(parse_args(&args(&["--target", "all", "--strategy", "peach", "--checkpoint", "x"])).is_err());
        assert!(parse_args(&args(&["--strategy", "both", "--checkpoint", "x"])).is_err());
        assert!(parse_args(&args(&["--strategy", "peachstar", "--checkpoint", "x"])).is_err());
        assert!(parse_args(&args(&[
            "--strategy", "peachstar", "--no-baseline", "--checkpoint", "x"
        ]))
        .is_ok());
        assert!(parse_args(&args(&[
            "--strategy", "peach", "--repetitions", "2", "--checkpoint", "x"
        ]))
        .is_err());
        assert!(parse_args(&args(&["--strategy", "peach", "--resume", "x", "--target", "all"])).is_err());
        // Stop-after cannot lie past the budget.
        assert!(parse_args(&args(&[
            "--strategy", "peach", "--executions", "100", "--checkpoint", "x",
            "--stop-after", "101"
        ]))
        .is_err());
        // Shared corpus constraints.
        assert!(parse_args(&args(&["--shared-corpus"])).is_err(), "one repetition");
        assert!(parse_args(&args(&[
            "--shared-corpus", "--repetitions", "2", "--strategy", "peach"
        ]))
        .is_err());
        assert!(parse_args(&args(&[
            "--shared-corpus", "--repetitions", "2", "--shards", "2"
        ]))
        .is_err());
        assert!(parse_args(&args(&[
            "--shared-corpus", "--repetitions", "2", "--checkpoint", "x"
        ]))
        .is_err());
        assert!(parse_args(&args(&["--shared-corpus", "--repetitions", "2"])).is_ok());
    }

    #[test]
    fn checkpoint_stop_and_resume_matches_uninterrupted_run() {
        let path = scratch_snapshot_path("stop-resume");
        let options = CliOptions {
            targets: vec![TargetId::Modbus],
            strategy: StrategyChoice::PeachStar,
            no_baseline: true,
            executions: 2_000,
            jobs: 1,
            ..CliOptions::default()
        };
        let complete = run(&options).expect("complete run");

        // Interrupt at a boundary, then resume from the written snapshot.
        let stopped = run(&CliOptions {
            checkpoint: Some(path.clone()),
            stop_after: Some(900),
            ..options.clone()
        })
        .expect("stopped run");
        assert!(stopped.campaigns.is_empty());
        let boundary = stopped.stopped_at.expect("stopped at a boundary");
        assert!(boundary >= 900, "stop lands on the next boundary");
        assert!(render_report(&stopped).contains("stopped at execution"));
        assert!(render_json(&stopped).contains("\"stopped_at\":"));

        let resumed = run(&CliOptions {
            resume: Some(path.clone()),
            ..options.clone()
        })
        .expect("resumed run");
        std::fs::remove_file(&path).ok();

        let a = complete.campaigns.first().expect("complete campaign");
        let b = resumed.campaigns.first().expect("resumed campaign");
        let (a, b) = (&a.reports[0], &b.reports[0]);
        assert_eq!(a.series.final_paths(), b.series.final_paths());
        assert_eq!(a.responses, b.responses);
        assert_eq!(a.protocol_errors, b.protocol_errors);
        assert_eq!(a.fault_hits, b.fault_hits);
        assert_eq!(a.corpus_size, b.corpus_size);
        assert_eq!(a.valuable_seeds, b.valuable_seeds);
        assert_eq!(a.bugs, b.bugs);
        assert!(render_report(&resumed).contains("resumed from snapshot"));
    }

    #[test]
    fn checkpointed_run_writes_a_readable_snapshot_and_matches_plain_run() {
        let path = scratch_snapshot_path("periodic");
        let options = CliOptions {
            targets: vec![TargetId::Modbus],
            strategy: StrategyChoice::Peach,
            executions: 1_500,
            jobs: 1,
            checkpoint: Some(path.clone()),
            checkpoint_every: 1,
            ..CliOptions::default()
        };
        let checkpointed = run(&options).expect("checkpointed run");
        let snapshot = CampaignSnapshot::read_from(&path).expect("final snapshot readable");
        std::fs::remove_file(&path).ok();
        assert_eq!(snapshot.completed, 1_500, "final checkpoint covers the budget");

        let plain = run(&CliOptions {
            checkpoint: None,
            ..options
        })
        .expect("plain run");
        let a = &checkpointed.campaigns[0].reports[0];
        let b = &plain.campaigns[0].reports[0];
        assert_eq!(a.series.final_paths(), b.series.final_paths());
        assert_eq!(a.responses, b.responses);
        assert_eq!(a.bugs, b.bugs);
    }

    #[test]
    fn resume_of_a_missing_or_mismatched_snapshot_fails_cleanly() {
        let missing = scratch_snapshot_path("missing");
        let options = CliOptions {
            targets: vec![TargetId::Modbus],
            strategy: StrategyChoice::Peach,
            executions: 1_000,
            jobs: 1,
            resume: Some(missing.clone()),
            ..CliOptions::default()
        };
        assert!(run(&options).is_err(), "missing snapshot is an error, not a panic");

        // A snapshot from a different campaign shape is rejected by name.
        let path = scratch_snapshot_path("mismatch");
        let stopped = run(&CliOptions {
            resume: None,
            checkpoint: Some(path.clone()),
            stop_after: Some(500),
            ..options.clone()
        })
        .expect("stopped run");
        assert!(stopped.stopped_at.is_some());
        let error = run(&CliOptions {
            executions: 3_000,
            resume: Some(path.clone()),
            ..options
        })
        .expect_err("budget mismatch rejected");
        std::fs::remove_file(&path).ok();
        assert!(error.contains("executions"), "error names the field: {error}");
    }

    #[test]
    fn shared_corpus_run_chains_repetitions() {
        let options = CliOptions {
            targets: vec![TargetId::Modbus],
            strategy: StrategyChoice::PeachStar,
            no_baseline: true,
            executions: 1_200,
            repetitions: 2,
            jobs: 1,
            shared_corpus: true,
            ..CliOptions::default()
        };
        let shared = run(&options).expect("shared run");
        let merged = shared
            .find(TargetId::Modbus, StrategyKind::PeachStar)
            .expect("peachstar group");
        assert_eq!(merged.reports.len(), 2);
        assert!(merged.final_paths() > 0);
        assert!(render_report(&shared).contains("--shared-corpus"));

        // Pooling discoveries can only help: the shared run's later seed
        // starts from the first seed's donors, so the union of corpus sizes
        // is at least the isolated run's.
        let isolated = run(&CliOptions {
            shared_corpus: false,
            ..options
        })
        .expect("isolated run");
        let isolated = isolated
            .find(TargetId::Modbus, StrategyKind::PeachStar)
            .expect("peachstar group");
        assert!(merged.corpus_size() >= isolated.corpus_size());
    }

    #[test]
    fn parses_fault_tolerance_flags() {
        let Command::Run(options) = parse_args(&args(&[
            "--exec-timeout-ms",
            "500",
            "--chaos",
            "7",
            "--chaos-hang-every",
            "97",
            "--artifacts",
            "crashes",
            "--fail-on-fault",
        ]))
        .unwrap() else {
            panic!("expected a run command");
        };
        assert_eq!(options.exec_timeout_ms, Some(500));
        assert_eq!(options.chaos, Some(7));
        assert_eq!(options.chaos_hang_every, Some(97));
        assert_eq!(options.artifacts, Some(PathBuf::from("crashes")));
        assert!(options.fail_on_fault);

        assert!(parse_args(&args(&["--exec-timeout-ms", "0"])).is_err());
        assert!(parse_args(&args(&["--chaos-hang-every", "0"])).is_err());
        // Blocking hangs need the watchdog armed and a chaos seed.
        assert!(parse_args(&args(&["--chaos-hang-every", "97"])).is_err());
        assert!(
            parse_args(&args(&["--chaos", "7", "--chaos-hang-every", "97"])).is_err(),
            "--chaos-hang-every without --exec-timeout-ms would block a worker forever"
        );
        // Artifacts record one campaign recipe per bug; --shared-corpus
        // repetitions start from un-recordable corpus state.
        assert!(parse_args(&args(&["--artifacts", "x", "--shared-corpus"])).is_err());
    }

    #[test]
    fn parses_replay_command() {
        let command = parse_args(&args(&["replay", "crashes/bug.peachart"])).unwrap();
        assert_eq!(
            command,
            Command::Replay(PathBuf::from("crashes/bug.peachart"))
        );
        assert!(parse_args(&args(&["replay"])).is_err());
        assert!(parse_args(&args(&["replay", "a", "b"])).is_err());
    }

    #[test]
    fn chaos_campaign_completes_budget_and_dedups_injected_sites() {
        let options = CliOptions {
            targets: vec![TargetId::Modbus],
            strategy: StrategyChoice::Peach,
            executions: 800,
            jobs: 1,
            chaos: Some(11),
            ..CliOptions::default()
        };
        let outcome = run(&options).expect("chaos run");
        let merged = outcome
            .find(TargetId::Modbus, StrategyKind::Peach)
            .expect("peach group");
        let report = &merged.reports[0];
        assert_eq!(report.executions, 800, "injected failures must not eat budget");
        assert!(report.fault_hits > 0, "chaos seed 11 injects panics");
        let bugs = merged.unique_bugs(options.seed);
        assert!(!bugs.is_empty());
        let sites: BTreeSet<&str> = bugs.iter().map(|bug| bug.description.as_str()).collect();
        assert_eq!(sites.len(), bugs.len(), "bug list is deduplicated by site");
        for bug in &bugs {
            assert!(!bug.packet_hex.is_empty(), "reproducer hex recorded");
            assert!(!bug.model.is_empty(), "data model recorded");
        }
        // Chaos wrapping is deterministic: a second run is identical.
        let again = run(&options).expect("chaos run");
        let again = again
            .find(TargetId::Modbus, StrategyKind::Peach)
            .expect("peach group");
        assert_eq!(again.unique_bugs(options.seed), bugs);
    }

    #[test]
    fn report_and_json_carry_reproducer_and_fault_tolerance_fields() {
        let options = CliOptions {
            targets: vec![TargetId::Modbus],
            strategy: StrategyChoice::Peach,
            executions: 600,
            jobs: 1,
            chaos: Some(11),
            exec_timeout_ms: Some(5_000),
            ..CliOptions::default()
        };
        let outcome = run(&options).expect("chaos run");
        let report = render_report(&outcome);
        assert!(report.contains("chaos injection active (seed 11)"));
        assert!(report.contains("hang watchdog armed"));
        assert!(report.contains("reproducer "), "bug lines carry packet hex");
        assert!(report.contains("model "), "bug lines carry the data model");
        let json = render_json(&outcome);
        assert!(json.contains("\"chaos_seed\": 11"));
        assert!(json.contains("\"exec_timeout_ms\": 5000"));
        assert!(json.contains("\"packet_hex\": \""));
        assert!(json.contains("\"model\": \""));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced JSON objects"
        );
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count(),
            "balanced JSON arrays"
        );
    }

    #[test]
    fn artifacts_written_and_replay_reproduces() {
        let dir = std::env::temp_dir().join(format!(
            "peachstar-cli-artifacts-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let options = CliOptions {
            targets: vec![TargetId::Modbus],
            strategy: StrategyChoice::Peach,
            executions: 800,
            jobs: 1,
            chaos: Some(11),
            artifacts: Some(dir.clone()),
            ..CliOptions::default()
        };
        let outcome = run(&options).expect("chaos run with artifacts");
        let merged = outcome
            .find(TargetId::Modbus, StrategyKind::Peach)
            .expect("peach group");
        let bugs = merged.unique_bugs(options.seed);
        assert_eq!(
            outcome.artifacts.len(),
            bugs.len(),
            "one bundle per unique bug"
        );
        for path in &outcome.artifacts {
            assert!(path.starts_with(&dir));
            assert!(
                replay_artifact(path).is_ok(),
                "replay reproduces {}",
                path.display()
            );
        }
        assert!(render_report(&outcome).contains("reproducer artifact(s) written"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_chaos_artifacts_replay_through_the_barrier_schedule() {
        let dir = std::env::temp_dir().join(format!(
            "peachstar-cli-shard-artifacts-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let options = CliOptions {
            targets: vec![TargetId::Modbus],
            strategy: StrategyChoice::PeachStar,
            no_baseline: true,
            executions: 600,
            jobs: 1,
            shards: 2,
            chaos: Some(11),
            artifacts: Some(dir.clone()),
            ..CliOptions::default()
        };
        let outcome = run(&options).expect("sharded chaos run");
        assert!(!outcome.artifacts.is_empty(), "chaos seed 11 injects bugs");
        for path in &outcome.artifacts {
            assert!(
                replay_artifact(path).is_ok(),
                "sharded replay reproduces {}",
                path.display()
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parses_serve_flags() {
        let Command::Run(options) = parse_args(&args(&[
            "serve",
            "--target",
            "modbus",
            "--strategy",
            "peach",
            "--checkpoint",
            "rot",
            "--keep-checkpoints",
            "2",
            "--control",
            "127.0.0.1:0",
        ]))
        .unwrap() else {
            panic!("expected a run command");
        };
        assert!(options.serve);
        assert_eq!(options.checkpoint, Some(PathBuf::from("rot")));
        assert_eq!(options.keep_checkpoints, 2);
        assert_eq!(options.control, Some("127.0.0.1:0".to_string()));

        // --resume-latest doubles as the rotation directory.
        let Command::Run(options) = parse_args(&args(&[
            "serve", "--strategy", "peach", "--resume-latest", "rot",
        ]))
        .unwrap() else {
            panic!("expected a run command");
        };
        assert_eq!(options.resume_latest, Some(PathBuf::from("rot")));
        assert_eq!(options.checkpoint, Some(PathBuf::from("rot")));
        assert_eq!(options.keep_checkpoints, CliOptions::DEFAULT_KEEP_CHECKPOINTS);
    }

    #[test]
    fn serve_flags_are_validated() {
        // Serve needs a rotation directory from somewhere.
        assert!(parse_args(&args(&["serve", "--strategy", "peach"])).is_err());
        // The serve knobs are meaningless outside serve mode.
        assert!(parse_args(&args(&["--control", "127.0.0.1:0"])).is_err());
        assert!(parse_args(&args(&["--keep-checkpoints", "2"])).is_err());
        assert!(parse_args(&args(&["--resume-latest", "rot"])).is_err());
        assert!(parse_args(&args(&[
            "serve", "--strategy", "peach", "--checkpoint", "rot", "--keep-checkpoints", "0"
        ]))
        .is_err());
        // Serve drains via the control socket and recovers its own rotation.
        assert!(parse_args(&args(&[
            "serve", "--strategy", "peach", "--checkpoint", "rot", "--stop-after", "500"
        ]))
        .is_err());
        assert!(parse_args(&args(&[
            "serve", "--strategy", "peach", "--checkpoint", "rot", "--resume", "x"
        ]))
        .is_err());
        // The one-campaign rules of --checkpoint apply to serve too.
        assert!(parse_args(&args(&["serve", "--checkpoint", "rot"])).is_err(), "both fuzzers");
        assert!(parse_args(&args(&[
            "serve", "--strategy", "peach", "--checkpoint", "rot", "--repetitions", "2"
        ]))
        .is_err());
    }

    #[test]
    fn wire_chaos_flags_are_validated() {
        // The wire knobs need the wire.
        assert!(parse_args(&args(&["--reconnect-retries", "2"])).is_err());
        assert!(parse_args(&args(&["--wire-drop-every", "50"])).is_err());
        assert!(parse_args(&args(&["--wire-reject-accepts", "3"])).is_err());
        assert!(parse_args(&args(&["--wire-drop-limit", "1"])).is_err());
        assert!(parse_args(&args(&["--transport", "tcp", "--wire-drop-every", "0"])).is_err());
        assert!(
            parse_args(&args(&["--transport", "tcp", "--wire-reject-accepts", "3"])).is_err(),
            "reject-accepts modifies a drop schedule"
        );
        let Command::Run(options) = parse_args(&args(&[
            "--transport",
            "tcp",
            "--reconnect-retries",
            "2",
            "--wire-drop-every",
            "50",
            "--wire-reject-accepts",
            "3",
            "--wire-drop-limit",
            "1",
        ]))
        .unwrap() else {
            panic!("expected a run command");
        };
        assert_eq!(options.reconnect_retries, Some(2));
        assert_eq!(options.wire_drop_every, Some(50));
        assert_eq!(options.wire_reject_accepts, Some(3));
        assert_eq!(options.wire_drop_limit, Some(1));
    }

    #[test]
    fn serve_completes_and_resume_latest_recovers_the_rotation() {
        let dir = std::env::temp_dir().join(format!(
            "peachstar-cli-serve-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let options = CliOptions {
            targets: vec![TargetId::Modbus],
            strategy: StrategyChoice::Peach,
            // Four reset windows (default interval 2000): enough boundaries
            // for the 2-deep rotation to actually prune.
            executions: 8_000,
            jobs: 1,
            serve: true,
            checkpoint: Some(dir.clone()),
            checkpoint_every: 1,
            keep_checkpoints: 2,
            ..CliOptions::default()
        };
        let plain = run(&CliOptions {
            serve: false,
            checkpoint: None,
            ..options.clone()
        })
        .expect("plain run");

        // An unstopped service runs to completion with the plain report and
        // leaves exactly the rotation depth behind.
        let served = run(&options).expect("serve run");
        assert!(served.stopped_at.is_none());
        let a = &plain.campaigns[0].reports[0];
        let b = &served.campaigns[0].reports[0];
        assert_eq!(a.series.final_paths(), b.series.final_paths());
        assert_eq!(a.responses, b.responses);
        assert_eq!(a.bugs, b.bugs);
        let slots: Vec<PathBuf> = std::fs::read_dir(&dir)
            .expect("rotation dir")
            .flatten()
            .map(|entry| entry.path())
            .collect();
        assert_eq!(slots.len(), 2, "rotation pruned to --keep-checkpoints");

        // Corrupt the newest slot (a simulated kill mid-write): resume-latest
        // skips it, restores the older one, and still converges.
        let newest = slots.iter().max().expect("slots").clone();
        std::fs::write(&newest, b"torn").expect("corrupt slot");
        let recovered = run(&CliOptions {
            resume_latest: Some(dir.clone()),
            ..options
        })
        .expect("recovered serve run");
        let c = &recovered.campaigns[0].reports[0];
        assert_eq!(a.series.final_paths(), c.series.final_paths());
        assert_eq!(a.responses, c.responses);
        assert_eq!(a.bugs, c.bugs);
        std::fs::remove_dir_all(&dir).ok();
    }
}
