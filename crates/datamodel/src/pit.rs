//! The Pit DSL: a small, indentation-based text format for describing data
//! models in external files.
//!
//! Peach reads its format specifications from "Pit" XML files. This module
//! provides the equivalent for `peachstar`, with a deliberately small,
//! line-oriented syntax:
//!
//! ```text
//! # Comments start with '#'. Indentation (2 spaces per level) nests blocks.
//! model read_holding_registers
//!   number transaction width=2 endian=be default=1
//!   number protocol width=2 endian=be value=0
//!   number length width=2 endian=be sizeof=body adjust=1
//!   number unit width=1 default=1
//!   block body
//!     number function width=1 value=3
//!     number start width=2 endian=be rule=register-address
//!     number quantity width=2 endian=be default=1
//! ```
//!
//! A document may contain several `model` definitions; [`parse_pit`] returns
//! them as a [`DataModelSet`].
//!
//! # Supported directives
//!
//! | keyword  | attributes |
//! |----------|------------|
//! | `model NAME` | starts a new data model |
//! | `block NAME` | nested block; children are the more-indented lines below |
//! | `choice NAME` | nested choice; each child is one option |
//! | `number NAME` | `width=1|2|4|8`, `endian=be|le`, `default=N`, `value=N` (fixed), `values=N,M,…` (allowed set), `sizeof=FIELD`, `countof=FIELD`, `elemsize=N`, `adjust=N`, `scale=N`, `crc32=FIELD[,FIELD…]`, `crc16modbus=…`, `crc16dnp=…`, `lrc8=…`, `sum8=…`, `sum16=…`, `internet16=…`, `rule=NAME` |
//! | `bytes NAME` | `length=N`, `lengthfrom=FIELD`, `remainder`, `default=hex`, `rule=NAME` |
//! | `string NAME` | `length=N`, `lengthfrom=FIELD`, `remainder`, `default=text`, `ascii`, `rule=NAME` |
//!
//! Numeric attribute values accept decimal or `0x`-prefixed hexadecimal.

use crate::chunk::{BytesSpec, Chunk, NumberSpec, StrSpec};
use crate::error::ModelError;
use crate::model::{DataModel, DataModelSet};
use crate::types::{ChecksumKind, Endianness, Fixup, NumberWidth, Relation};

/// Parses a Pit document into a set of data models.
///
/// # Errors
///
/// Returns [`ModelError::Pit`] with the offending line number for syntax
/// errors, and model-validation errors (duplicate fields, dangling
/// references) for structurally invalid models.
///
/// ```
/// let pit = "\
/// model ping
///   number opcode width=1 value=1
///   number cookie width=4 endian=be
/// ";
/// let set = peachstar_datamodel::pit::parse_pit("toy", pit)?;
/// assert_eq!(set.len(), 1);
/// assert_eq!(set.find("ping").unwrap().linear().len(), 2);
/// # Ok::<(), peachstar_datamodel::ModelError>(())
/// ```
pub fn parse_pit(protocol: &str, source: &str) -> Result<DataModelSet, ModelError> {
    let mut set = DataModelSet::new(protocol);
    let lines = tokenize(source)?;
    let mut cursor = 0usize;
    while cursor < lines.len() {
        let line = &lines[cursor];
        if line.indent != 0 || line.keyword != "model" {
            return Err(ModelError::Pit {
                line: line.number,
                message: format!("expected `model NAME` at top level, found `{}`", line.keyword),
            });
        }
        let model_name = line.name.clone();
        cursor += 1;
        let (children, next) = parse_children(&lines, cursor, 1)?;
        if children.is_empty() {
            return Err(ModelError::Pit {
                line: line.number,
                message: format!("model `{model_name}` has no chunks"),
            });
        }
        cursor = next;
        let root = Chunk::block(format!("{model_name}_packet"), children);
        set.push(DataModel::new(model_name, root)?);
    }
    Ok(set)
}

/// Convenience wrapper: parses a Pit document that must contain exactly one
/// model and returns it.
///
/// # Errors
///
/// Returns [`ModelError::Pit`] when the document does not contain exactly one
/// model, plus all errors of [`parse_pit`].
pub fn parse_single_model(source: &str) -> Result<DataModel, ModelError> {
    let set = parse_pit("single", source)?;
    match set.models() {
        [only] => Ok(only.clone()),
        models => Err(ModelError::Pit {
            line: 0,
            message: format!("expected exactly one model, found {}", models.len()),
        }),
    }
}

struct Line {
    number: usize,
    indent: usize,
    keyword: String,
    name: String,
    attrs: Vec<(String, String)>,
    flags: Vec<String>,
}

fn tokenize(source: &str) -> Result<Vec<Line>, ModelError> {
    let mut lines = Vec::new();
    for (index, raw) in source.lines().enumerate() {
        let number = index + 1;
        let without_comment = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        if without_comment.trim().is_empty() {
            continue;
        }
        let stripped = without_comment.trim_start();
        let leading = without_comment.len() - stripped.len();
        if leading % 2 != 0 {
            return Err(ModelError::Pit {
                line: number,
                message: "indentation must be a multiple of two spaces".to_string(),
            });
        }
        let indent = leading / 2;
        let mut parts = stripped.split_whitespace();
        let keyword = parts
            .next()
            .expect("non-empty line has a first token")
            .to_string();
        let name = match keyword.as_str() {
            "model" | "block" | "choice" | "number" | "bytes" | "string" => {
                parts.next().map(str::to_string).ok_or(ModelError::Pit {
                    line: number,
                    message: format!("`{keyword}` requires a name"),
                })?
            }
            other => {
                return Err(ModelError::Pit {
                    line: number,
                    message: format!("unknown keyword `{other}`"),
                })
            }
        };
        let mut attrs = Vec::new();
        let mut flags = Vec::new();
        for token in parts {
            match token.split_once('=') {
                Some((key, value)) => attrs.push((key.to_string(), value.to_string())),
                None => flags.push(token.to_string()),
            }
        }
        lines.push(Line {
            number,
            indent,
            keyword,
            name,
            attrs,
            flags,
        });
    }
    Ok(lines)
}

/// Parses consecutive lines at exactly `indent`, recursing for deeper lines.
/// Returns the chunks and the index of the first unconsumed line.
fn parse_children(
    lines: &[Line],
    mut cursor: usize,
    indent: usize,
) -> Result<(Vec<Chunk>, usize), ModelError> {
    let mut children = Vec::new();
    while cursor < lines.len() {
        let line = &lines[cursor];
        if line.indent < indent {
            break;
        }
        if line.indent > indent {
            return Err(ModelError::Pit {
                line: line.number,
                message: "unexpected indentation".to_string(),
            });
        }
        match line.keyword.as_str() {
            "model" => break,
            "block" | "choice" => {
                let (nested, next) = parse_children(lines, cursor + 1, indent + 1)?;
                if nested.is_empty() {
                    return Err(ModelError::Pit {
                        line: line.number,
                        message: format!("`{}` `{}` has no children", line.keyword, line.name),
                    });
                }
                let mut chunk = if line.keyword == "block" {
                    Chunk::block(&line.name, nested)
                } else {
                    Chunk::choice(&line.name, nested)
                };
                if let Some(rule) = attr(line, "rule") {
                    chunk = chunk.with_rule(rule);
                }
                children.push(chunk);
                cursor = next;
            }
            "number" => {
                children.push(parse_number(line)?);
                cursor += 1;
            }
            "bytes" => {
                children.push(parse_bytes(line)?);
                cursor += 1;
            }
            "string" => {
                children.push(parse_string(line)?);
                cursor += 1;
            }
            other => {
                return Err(ModelError::Pit {
                    line: line.number,
                    message: format!("unexpected keyword `{other}`"),
                })
            }
        }
    }
    Ok((children, cursor))
}

fn attr<'line>(line: &'line Line, key: &str) -> Option<&'line str> {
    line.attrs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

fn has_flag(line: &Line, flag: &str) -> bool {
    line.flags.iter().any(|f| f == flag)
}

fn parse_u64(line: &Line, value: &str) -> Result<u64, ModelError> {
    let parsed = if let Some(hex) = value.strip_prefix("0x").or_else(|| value.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        value.parse()
    };
    parsed.map_err(|_| ModelError::Pit {
        line: line.number,
        message: format!("invalid number `{value}`"),
    })
}

fn parse_i64(line: &Line, value: &str) -> Result<i64, ModelError> {
    value.parse().map_err(|_| ModelError::Pit {
        line: line.number,
        message: format!("invalid integer `{value}`"),
    })
}

fn parse_number(line: &Line) -> Result<Chunk, ModelError> {
    let width_bytes = match attr(line, "width") {
        Some(value) => parse_u64(line, value)? as usize,
        None => 1,
    };
    let width = NumberWidth::from_bytes(width_bytes).ok_or(ModelError::Pit {
        line: line.number,
        message: format!("unsupported width {width_bytes}; use 1, 2, 4 or 8"),
    })?;
    let mut spec = NumberSpec::new(width);

    if let Some(endian) = attr(line, "endian") {
        spec = spec.endian(match endian {
            "be" => Endianness::Big,
            "le" => Endianness::Little,
            other => {
                return Err(ModelError::Pit {
                    line: line.number,
                    message: format!("unknown endianness `{other}`"),
                })
            }
        });
    }
    if let Some(default) = attr(line, "default") {
        spec = spec.default_value(parse_u64(line, default)?);
    }
    if let Some(value) = attr(line, "value") {
        spec = spec.fixed_value(parse_u64(line, value)?);
    }
    if let Some(values) = attr(line, "values") {
        let parsed: Result<Vec<u64>, ModelError> =
            values.split(',').map(|v| parse_u64(line, v)).collect();
        spec = spec.allowed_values(parsed?);
    }

    let adjust = match attr(line, "adjust") {
        Some(value) => parse_i64(line, value)?,
        None => 0,
    };
    let scale = match attr(line, "scale") {
        Some(value) => parse_i64(line, value)?,
        None => 1,
    };
    if let Some(target) = attr(line, "sizeof") {
        spec = spec.relation(Relation::SizeOf {
            of: target.into(),
            adjust,
            scale,
        });
    } else if let Some(target) = attr(line, "countof") {
        let element_size = match attr(line, "elemsize") {
            Some(value) => parse_u64(line, value)? as usize,
            None => 1,
        };
        spec = spec.relation(Relation::CountOf {
            of: target.into(),
            element_size,
        });
    }

    let checksum_kinds = [
        ("crc32", ChecksumKind::Crc32),
        ("crc16modbus", ChecksumKind::Crc16Modbus),
        ("crc16dnp", ChecksumKind::Crc16Dnp),
        ("lrc8", ChecksumKind::Lrc8),
        ("sum8", ChecksumKind::Sum8),
        ("sum16", ChecksumKind::Sum16),
        ("internet16", ChecksumKind::Internet16),
    ];
    for (key, kind) in checksum_kinds {
        if let Some(targets) = attr(line, key) {
            let over = targets.split(',').map(Into::into).collect();
            spec = spec.fixup(Fixup::new(kind, over));
        }
    }

    let mut chunk = Chunk::number(&line.name, spec);
    if let Some(rule) = attr(line, "rule") {
        chunk = chunk.with_rule(rule);
    }
    Ok(chunk)
}

fn parse_hex_default(line: &Line, value: &str) -> Result<Vec<u8>, ModelError> {
    let cleaned: String = value.chars().filter(|c| !c.is_whitespace()).collect();
    if !cleaned.len().is_multiple_of(2) {
        return Err(ModelError::Pit {
            line: line.number,
            message: "hex default must have an even number of digits".to_string(),
        });
    }
    (0..cleaned.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&cleaned[i..i + 2], 16).map_err(|_| ModelError::Pit {
                line: line.number,
                message: format!("invalid hex byte `{}`", &cleaned[i..i + 2]),
            })
        })
        .collect()
}

fn parse_bytes(line: &Line) -> Result<Chunk, ModelError> {
    let mut spec = if let Some(len) = attr(line, "length") {
        BytesSpec::fixed(parse_u64(line, len)? as usize)
    } else if let Some(field) = attr(line, "lengthfrom") {
        BytesSpec::length_from(field)
    } else {
        // With an explicit `remainder` flag or no length at all, the blob
        // swallows the rest of its scope.
        BytesSpec::remainder()
    };
    if let Some(default) = attr(line, "default") {
        spec = spec.default_content(parse_hex_default(line, default)?);
    }
    let mut chunk = Chunk::bytes(&line.name, spec);
    if let Some(rule) = attr(line, "rule") {
        chunk = chunk.with_rule(rule);
    }
    Ok(chunk)
}

fn parse_string(line: &Line) -> Result<Chunk, ModelError> {
    let mut spec = if let Some(len) = attr(line, "length") {
        StrSpec::fixed(parse_u64(line, len)? as usize)
    } else if let Some(field) = attr(line, "lengthfrom") {
        StrSpec::length_from(field)
    } else {
        StrSpec::remainder()
    };
    if let Some(default) = attr(line, "default") {
        spec = spec.default_content(default);
    }
    if has_flag(line, "ascii") {
        spec = spec.ascii();
    }
    let mut chunk = Chunk::str(&line.name, spec);
    if let Some(rule) = attr(line, "rule") {
        chunk = chunk.with_rule(rule);
    }
    Ok(chunk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emit::emit_default;

    const MODBUS_PIT: &str = "\
# Modbus/TCP read holding registers
model read_holding_registers
  number transaction width=2 endian=be default=1
  number protocol width=2 endian=be value=0
  number length width=2 endian=be sizeof=body adjust=1
  number unit width=1 default=1
  block body
    number function width=1 value=3
    number start width=2 endian=be rule=register-address
    number quantity width=2 endian=be default=1

model write_single_register
  number transaction width=2 endian=be default=1
  number protocol width=2 endian=be value=0
  number length width=2 endian=be sizeof=body adjust=1
  number unit width=1 default=1
  block body
    number function width=1 value=6
    number address width=2 endian=be rule=register-address
    number value width=2 endian=be
";

    #[test]
    fn parses_multiple_models() {
        let set = parse_pit("modbus", MODBUS_PIT).unwrap();
        assert_eq!(set.len(), 2);
        let read = set.find("read_holding_registers").unwrap();
        assert_eq!(read.linear().len(), 7);
        let write = set.find("write_single_register").unwrap();
        assert_eq!(write.linear().len(), 7);
    }

    #[test]
    fn explicit_rules_link_models() {
        let set = parse_pit("modbus", MODBUS_PIT).unwrap();
        let read = set.find("read_holding_registers").unwrap();
        let write = set.find("write_single_register").unwrap();
        assert_eq!(
            read.find("start").unwrap().rule_id(),
            write.find("address").unwrap().rule_id()
        );
        assert!(set.rule_overlap() > 0.5);
    }

    #[test]
    fn parsed_model_emits_consistent_packet() {
        let set = parse_pit("modbus", MODBUS_PIT).unwrap();
        let model = set.find("read_holding_registers").unwrap();
        let packet = emit_default(model).unwrap();
        // MBAP(7) + PDU(5): transaction 2 + protocol 2 + length 2 + unit 1 + fc 1 + start 2 + qty 2
        assert_eq!(packet.len(), 12);
        // length field must count PDU bytes + unit? Our sizeof=body adjust=1 → 5+1=6.
        assert_eq!(&packet[4..6], &[0x00, 0x06]);
        assert_eq!(packet[7], 0x03);
    }

    #[test]
    fn choice_and_string_and_bytes_directives() {
        let source = "\
model mixed
  number kind width=1 values=1,2
  choice body
    block read
      number r width=1 value=1
    block write
      number w width=1 value=2
  string name length=4 default=ABCD ascii
  bytes tail remainder default=cafe
";
        let set = parse_pit("mixed", source).unwrap();
        let model = set.find("mixed").unwrap();
        assert!(model.find("body").is_some());
        let packet = emit_default(model).unwrap();
        assert_eq!(&packet[2..6], b"ABCD");
        assert_eq!(&packet[6..], &[0xca, 0xfe]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad_keyword = "model m\n  banana x width=1\n";
        let err = parse_pit("p", bad_keyword).unwrap_err();
        assert!(matches!(err, ModelError::Pit { line: 2, .. }));

        let bad_width = "model m\n  number x width=3\n";
        let err = parse_pit("p", bad_width).unwrap_err();
        assert!(matches!(err, ModelError::Pit { line: 2, .. }));

        let bad_indent = "model m\n   number x width=1\n";
        let err = parse_pit("p", bad_indent).unwrap_err();
        assert!(matches!(err, ModelError::Pit { line: 2, .. }));

        let missing_name = "model\n";
        assert!(parse_pit("p", missing_name).is_err());
    }

    #[test]
    fn empty_model_is_rejected() {
        let err = parse_pit("p", "model nothing\n").unwrap_err();
        assert!(matches!(err, ModelError::Pit { .. }));
    }

    #[test]
    fn single_model_helper() {
        assert!(parse_single_model("model a\n  number x width=1\n").is_ok());
        assert!(parse_single_model(MODBUS_PIT).is_err());
    }

    #[test]
    fn hex_and_decimal_values() {
        let source = "model m\n  number x width=2 endian=be default=0x1F4\n";
        let model = parse_single_model(source).unwrap();
        let packet = emit_default(&model).unwrap();
        assert_eq!(packet, vec![0x01, 0xF4]);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let source = "\n# leading comment\nmodel m\n\n  # nested comment\n  number x width=1\n\n";
        assert!(parse_single_model(source).is_ok());
    }
}
