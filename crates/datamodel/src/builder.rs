//! Fluent builders for constructing [`DataModel`]s programmatically.

use crate::chunk::{BytesSpec, Chunk, NumberSpec, StrSpec};
use crate::error::ModelError;
use crate::model::DataModel;

/// Builder for a block of chunks (the body of a model or of a nested block).
///
/// ```
/// use peachstar_datamodel::{BlockBuilder, NumberSpec};
///
/// let block = BlockBuilder::new("header")
///     .number("length", NumberSpec::u16_be())
///     .number("unit", NumberSpec::u8().default_value(1))
///     .build();
/// assert_eq!(block.children().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct BlockBuilder {
    name: String,
    rule: Option<String>,
    children: Vec<Chunk>,
}

impl BlockBuilder {
    /// Starts a block named `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            rule: None,
            children: Vec::new(),
        }
    }

    /// Assigns an explicit construction-rule name to the block itself.
    #[must_use]
    pub fn rule(mut self, rule: impl Into<String>) -> Self {
        self.rule = Some(rule.into());
        self
    }

    /// Appends a numeric chunk.
    #[must_use]
    pub fn number(mut self, name: impl Into<String>, spec: NumberSpec) -> Self {
        self.children.push(Chunk::number(name, spec));
        self
    }

    /// Appends a numeric chunk carrying an explicit rule name.
    #[must_use]
    pub fn number_with_rule(
        mut self,
        name: impl Into<String>,
        spec: NumberSpec,
        rule: impl Into<String>,
    ) -> Self {
        self.children.push(Chunk::number(name, spec).with_rule(rule));
        self
    }

    /// Appends a raw-bytes chunk.
    #[must_use]
    pub fn bytes(mut self, name: impl Into<String>, spec: BytesSpec) -> Self {
        self.children.push(Chunk::bytes(name, spec));
        self
    }

    /// Appends a raw-bytes chunk carrying an explicit rule name.
    #[must_use]
    pub fn bytes_with_rule(
        mut self,
        name: impl Into<String>,
        spec: BytesSpec,
        rule: impl Into<String>,
    ) -> Self {
        self.children.push(Chunk::bytes(name, spec).with_rule(rule));
        self
    }

    /// Appends a string chunk.
    #[must_use]
    pub fn str(mut self, name: impl Into<String>, spec: StrSpec) -> Self {
        self.children.push(Chunk::str(name, spec));
        self
    }

    /// Appends a nested block.
    #[must_use]
    pub fn block(mut self, block: BlockBuilder) -> Self {
        self.children.push(block.build());
        self
    }

    /// Appends an already-constructed chunk.
    #[must_use]
    pub fn chunk(mut self, chunk: Chunk) -> Self {
        self.children.push(chunk);
        self
    }

    /// Appends a choice chunk built from the given options.
    #[must_use]
    pub fn choice(mut self, name: impl Into<String>, options: Vec<Chunk>) -> Self {
        self.children.push(Chunk::choice(name, options));
        self
    }

    /// Finishes the block.
    #[must_use]
    pub fn build(self) -> Chunk {
        let mut chunk = Chunk::block(self.name, self.children);
        if let Some(rule) = self.rule {
            chunk = chunk.with_rule(rule);
        }
        chunk
    }
}

/// Builder for a whole [`DataModel`].
///
/// ```
/// use peachstar_datamodel::{DataModelBuilder, NumberSpec, Relation, Fixup};
///
/// let model = DataModelBuilder::new("read_request")
///     .number("function", NumberSpec::u8().fixed_value(0x03))
///     .number("start", NumberSpec::u16_be())
///     .number("count", NumberSpec::u16_be().default_value(1))
///     .build()?;
/// assert_eq!(model.name(), "read_request");
/// # Ok::<(), peachstar_datamodel::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DataModelBuilder {
    name: String,
    body: BlockBuilder,
}

impl DataModelBuilder {
    /// Starts a model named `name`; the implicit root block is named
    /// `<name>_packet`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        let root_name = format!("{name}_packet");
        Self {
            name,
            body: BlockBuilder::new(root_name),
        }
    }

    /// Appends a numeric chunk to the root block.
    #[must_use]
    pub fn number(mut self, name: impl Into<String>, spec: NumberSpec) -> Self {
        self.body = self.body.number(name, spec);
        self
    }

    /// Appends a numeric chunk with an explicit rule name to the root block.
    #[must_use]
    pub fn number_with_rule(
        mut self,
        name: impl Into<String>,
        spec: NumberSpec,
        rule: impl Into<String>,
    ) -> Self {
        self.body = self.body.number_with_rule(name, spec, rule);
        self
    }

    /// Appends a raw-bytes chunk to the root block.
    #[must_use]
    pub fn bytes(mut self, name: impl Into<String>, spec: BytesSpec) -> Self {
        self.body = self.body.bytes(name, spec);
        self
    }

    /// Appends a raw-bytes chunk with an explicit rule name to the root block.
    #[must_use]
    pub fn bytes_with_rule(
        mut self,
        name: impl Into<String>,
        spec: BytesSpec,
        rule: impl Into<String>,
    ) -> Self {
        self.body = self.body.bytes_with_rule(name, spec, rule);
        self
    }

    /// Appends a string chunk to the root block.
    #[must_use]
    pub fn str(mut self, name: impl Into<String>, spec: StrSpec) -> Self {
        self.body = self.body.str(name, spec);
        self
    }

    /// Appends a nested block to the root block.
    #[must_use]
    pub fn block(mut self, block: BlockBuilder) -> Self {
        self.body = self.body.block(block);
        self
    }

    /// Appends an already-constructed chunk to the root block.
    #[must_use]
    pub fn chunk(mut self, chunk: Chunk) -> Self {
        self.body = self.body.chunk(chunk);
        self
    }

    /// Appends a choice chunk to the root block.
    #[must_use]
    pub fn choice(mut self, name: impl Into<String>, options: Vec<Chunk>) -> Self {
        self.body = self.body.choice(name, options);
        self
    }

    /// Finishes and validates the model.
    ///
    /// # Errors
    ///
    /// Returns the same validation errors as [`DataModel::new`].
    pub fn build(self) -> Result<DataModel, ModelError> {
        DataModel::new(self.name, self.body.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Fixup, Relation};

    #[test]
    fn builder_constructs_nested_model() {
        let model = DataModelBuilder::new("request")
            .number("transaction", NumberSpec::u16_be().default_value(1))
            .number(
                "length",
                NumberSpec::u16_be().relation(Relation::size_of("pdu")),
            )
            .block(
                BlockBuilder::new("pdu")
                    .number("function", NumberSpec::u8().fixed_value(0x03))
                    .number("start", NumberSpec::u16_be())
                    .number("count", NumberSpec::u16_be().default_value(1)),
            )
            .build()
            .expect("valid model");

        assert_eq!(model.name(), "request");
        let names: Vec<&str> = model.linear().iter().map(|l| l.chunk.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["transaction", "length", "function", "start", "count"]
        );
    }

    #[test]
    fn builder_propagates_validation_errors() {
        let result = DataModelBuilder::new("bad")
            .number(
                "crc",
                NumberSpec::u32_be().fixup(Fixup::crc32("missing_field")),
            )
            .build();
        assert!(result.is_err());
    }

    #[test]
    fn explicit_rules_via_builder() {
        let model = DataModelBuilder::new("rules")
            .number_with_rule("addr", NumberSpec::u16_be(), "ioa")
            .bytes_with_rule("payload", crate::chunk::BytesSpec::remainder(), "asdu-body")
            .build()
            .unwrap();
        let addr = model.find("addr").unwrap();
        assert_eq!(addr.rule_id(), crate::chunk::RuleId::named("ioa"));
    }

    #[test]
    fn block_rule_applies_to_block_chunk() {
        let block = BlockBuilder::new("asdu")
            .rule("asdu")
            .number("type", NumberSpec::u8())
            .build();
        assert_eq!(block.rule_id(), crate::chunk::RuleId::named("asdu"));
    }
}
