//! Shared value-level types: endianness, number widths, length specifications,
//! field references, relations and fixups.

use std::fmt;

/// Byte order of a multi-byte number chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Endianness {
    /// Most significant byte first (network order, the common case for ICS
    /// protocols such as Modbus/TCP and IEC 60870).
    #[default]
    Big,
    /// Least significant byte first (used e.g. by DNP3 link-layer fields).
    Little,
}

impl fmt::Display for Endianness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endianness::Big => f.write_str("be"),
            Endianness::Little => f.write_str("le"),
        }
    }
}

/// Width in bytes of a number chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NumberWidth {
    /// One byte.
    U8,
    /// Two bytes.
    U16,
    /// Four bytes.
    U32,
    /// Eight bytes.
    U64,
}

impl NumberWidth {
    /// Width in bytes.
    #[must_use]
    pub const fn bytes(self) -> usize {
        match self {
            NumberWidth::U8 => 1,
            NumberWidth::U16 => 2,
            NumberWidth::U32 => 4,
            NumberWidth::U64 => 8,
        }
    }

    /// Largest value representable at this width.
    #[must_use]
    pub const fn max_value(self) -> u64 {
        match self {
            NumberWidth::U8 => u8::MAX as u64,
            NumberWidth::U16 => u16::MAX as u64,
            NumberWidth::U32 => u32::MAX as u64,
            NumberWidth::U64 => u64::MAX,
        }
    }

    /// Constructs a width from a byte count.
    ///
    /// Returns `None` for widths other than 1, 2, 4 or 8.
    #[must_use]
    pub const fn from_bytes(bytes: usize) -> Option<Self> {
        match bytes {
            1 => Some(NumberWidth::U8),
            2 => Some(NumberWidth::U16),
            4 => Some(NumberWidth::U32),
            8 => Some(NumberWidth::U64),
            _ => None,
        }
    }
}

impl fmt::Display for NumberWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.bytes() * 8)
    }
}

/// Reference to another chunk in the same [`DataModel`](crate::DataModel),
/// by its unique field name.
///
/// ```
/// use peachstar_datamodel::FieldRef;
/// let r = FieldRef::new("payload");
/// assert_eq!(r.name(), "payload");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldRef(String);

impl FieldRef {
    /// Creates a reference to the chunk named `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self(name.into())
    }

    /// The referenced field name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for FieldRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for FieldRef {
    fn from(name: &str) -> Self {
        Self::new(name)
    }
}

impl From<String> for FieldRef {
    fn from(name: String) -> Self {
        Self::new(name)
    }
}

/// How the byte length of a blob/string chunk is determined.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LengthSpec {
    /// Exactly `n` bytes.
    Fixed(usize),
    /// The length is carried by another (numeric) field, as in a classic
    /// length-prefixed payload. The referenced field is typically annotated
    /// with the inverse [`Relation::SizeOf`].
    FromField(FieldRef),
    /// The chunk consumes whatever bytes remain in its enclosing scope.
    Remainder,
}

impl fmt::Display for LengthSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LengthSpec::Fixed(n) => write!(f, "fixed({n})"),
            LengthSpec::FromField(field) => write!(f, "from({field})"),
            LengthSpec::Remainder => f.write_str("remainder"),
        }
    }
}

/// Integrity relation attached to a number chunk: its value is derived from
/// another part of the packet rather than chosen freely.
///
/// This corresponds to the `Relation` mechanism of Peach (Figure 1 of the
/// paper uses `sizeof`). Relations are re-established by the File Fixup step
/// after semantic-aware generation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Relation {
    /// The field carries the emitted size in bytes of the referenced chunk,
    /// multiplied by `scale` and offset by `adjust`.
    SizeOf {
        /// Chunk whose emitted size is measured.
        of: FieldRef,
        /// Added to the measured size (e.g. +1 when the count includes a
        /// trailing unit-identifier byte, as in Modbus/TCP).
        adjust: i64,
        /// Multiplier applied before the adjustment (e.g. 2 when the field
        /// counts 16-bit registers rather than bytes). Must be non-zero.
        scale: i64,
    },
    /// The field carries the number of elements of the referenced chunk,
    /// where each element is `element_size` bytes.
    CountOf {
        /// Chunk whose emitted size is measured.
        of: FieldRef,
        /// Size in bytes of one element. Must be non-zero.
        element_size: usize,
    },
}

impl Relation {
    /// Convenience constructor for a plain `sizeof` relation.
    #[must_use]
    pub fn size_of(of: impl Into<FieldRef>) -> Self {
        Relation::SizeOf {
            of: of.into(),
            adjust: 0,
            scale: 1,
        }
    }

    /// Convenience constructor for a `countof` relation with the given
    /// element size.
    #[must_use]
    pub fn count_of(of: impl Into<FieldRef>, element_size: usize) -> Self {
        Relation::CountOf {
            of: of.into(),
            element_size,
        }
    }

    /// The chunk this relation measures.
    #[must_use]
    pub fn target(&self) -> &FieldRef {
        match self {
            Relation::SizeOf { of, .. } | Relation::CountOf { of, .. } => of,
        }
    }

    /// Computes the field value for a measured target size of `size` bytes.
    #[must_use]
    pub fn value_for_size(&self, size: usize) -> u64 {
        match self {
            Relation::SizeOf { adjust, scale, .. } => {
                let scaled = if *scale == 0 {
                    size as i64
                } else {
                    (size as i64) / *scale
                };
                (scaled + adjust).max(0) as u64
            }
            Relation::CountOf { element_size, .. } => {
                if *element_size == 0 {
                    size as u64
                } else {
                    (size / element_size) as u64
                }
            }
        }
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Relation::SizeOf { of, adjust, scale } => {
                write!(f, "sizeof({of}) / {scale} + {adjust}")
            }
            Relation::CountOf { of, element_size } => {
                write!(f, "countof({of}, {element_size})")
            }
        }
    }
}

/// Checksum algorithm used by a [`Fixup`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChecksumKind {
    /// IEEE CRC-32 (reflected, polynomial `0xEDB88320`), as in `Crc32Fixup`.
    Crc32,
    /// CRC-16/Modbus (polynomial `0xA001`, init `0xFFFF`).
    Crc16Modbus,
    /// DNP3 CRC-16 (polynomial `0xA6BC`, output complemented).
    Crc16Dnp,
    /// Longitudinal redundancy check used by Modbus ASCII.
    Lrc8,
    /// Simple modulo-256 sum of all bytes.
    Sum8,
    /// Simple modulo-65536 sum of all bytes.
    Sum16,
    /// One's-complement 16-bit internet checksum.
    Internet16,
}

impl ChecksumKind {
    /// Width in bytes of the checksum value.
    #[must_use]
    pub const fn width(self) -> NumberWidth {
        match self {
            ChecksumKind::Crc32 => NumberWidth::U32,
            ChecksumKind::Crc16Modbus
            | ChecksumKind::Crc16Dnp
            | ChecksumKind::Sum16
            | ChecksumKind::Internet16 => NumberWidth::U16,
            ChecksumKind::Lrc8 | ChecksumKind::Sum8 => NumberWidth::U8,
        }
    }

    /// Computes the checksum of `data`.
    #[must_use]
    pub fn compute(self, data: &[u8]) -> u64 {
        match self {
            ChecksumKind::Crc32 => u64::from(crate::checksum::crc32(data)),
            ChecksumKind::Crc16Modbus => u64::from(crate::checksum::crc16_modbus(data)),
            ChecksumKind::Crc16Dnp => u64::from(crate::checksum::crc16_dnp(data)),
            ChecksumKind::Lrc8 => u64::from(crate::checksum::lrc8(data)),
            ChecksumKind::Sum8 => u64::from(crate::checksum::sum8(data)),
            ChecksumKind::Sum16 => u64::from(crate::checksum::sum16(data)),
            ChecksumKind::Internet16 => u64::from(crate::checksum::internet16(data)),
        }
    }
}

impl fmt::Display for ChecksumKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ChecksumKind::Crc32 => "crc32",
            ChecksumKind::Crc16Modbus => "crc16-modbus",
            ChecksumKind::Crc16Dnp => "crc16-dnp",
            ChecksumKind::Lrc8 => "lrc8",
            ChecksumKind::Sum8 => "sum8",
            ChecksumKind::Sum16 => "sum16",
            ChecksumKind::Internet16 => "internet16",
        };
        f.write_str(name)
    }
}

/// A fixup attached to a number chunk: after the rest of the packet is
/// emitted, the chunk's value is overwritten with a checksum computed over
/// the emitted bytes of the referenced chunks.
///
/// This corresponds to Peach's `Fixup` mechanism (`Crc32Fixup` in Figure 1
/// of the paper) and is what the File Fixup module re-establishes after
/// semantic-aware generation splices donor chunks into a packet.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Fixup {
    /// Checksum algorithm.
    pub kind: ChecksumKind,
    /// Chunks (in packet order) whose emitted bytes are covered.
    pub over: Vec<FieldRef>,
}

impl Fixup {
    /// Creates a fixup of the given kind over the named chunks.
    #[must_use]
    pub fn new(kind: ChecksumKind, over: Vec<FieldRef>) -> Self {
        Self { kind, over }
    }

    /// Convenience constructor for a CRC-32 fixup over one chunk.
    #[must_use]
    pub fn crc32(over: impl Into<FieldRef>) -> Self {
        Self::new(ChecksumKind::Crc32, vec![over.into()])
    }

    /// Convenience constructor for a Modbus CRC-16 fixup over one chunk.
    #[must_use]
    pub fn crc16_modbus(over: impl Into<FieldRef>) -> Self {
        Self::new(ChecksumKind::Crc16Modbus, vec![over.into()])
    }
}

impl fmt::Display for Fixup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.kind)?;
        for (i, field) in self.over.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{field}")?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_width_roundtrip() {
        for width in [
            NumberWidth::U8,
            NumberWidth::U16,
            NumberWidth::U32,
            NumberWidth::U64,
        ] {
            assert_eq!(NumberWidth::from_bytes(width.bytes()), Some(width));
        }
        assert_eq!(NumberWidth::from_bytes(3), None);
        assert_eq!(NumberWidth::from_bytes(0), None);
    }

    #[test]
    fn number_width_max_values() {
        assert_eq!(NumberWidth::U8.max_value(), 0xff);
        assert_eq!(NumberWidth::U16.max_value(), 0xffff);
        assert_eq!(NumberWidth::U32.max_value(), 0xffff_ffff);
        assert_eq!(NumberWidth::U64.max_value(), u64::MAX);
    }

    #[test]
    fn size_of_relation_value() {
        let plain = Relation::size_of("data");
        assert_eq!(plain.value_for_size(10), 10);

        let modbus_length = Relation::SizeOf {
            of: "pdu".into(),
            adjust: 1, // the MBAP length also counts the unit identifier
            scale: 1,
        };
        assert_eq!(modbus_length.value_for_size(5), 6);

        let registers = Relation::SizeOf {
            of: "values".into(),
            adjust: 0,
            scale: 2,
        };
        assert_eq!(registers.value_for_size(8), 4);
    }

    #[test]
    fn count_of_relation_value() {
        let rel = Relation::count_of("points", 3);
        assert_eq!(rel.value_for_size(9), 3);
        assert_eq!(rel.value_for_size(10), 3, "partial element is truncated");
        assert_eq!(rel.target().name(), "points");
    }

    #[test]
    fn relation_negative_adjust_clamps_at_zero() {
        let rel = Relation::SizeOf {
            of: "x".into(),
            adjust: -10,
            scale: 1,
        };
        assert_eq!(rel.value_for_size(3), 0);
    }

    #[test]
    fn checksum_kind_widths() {
        assert_eq!(ChecksumKind::Crc32.width(), NumberWidth::U32);
        assert_eq!(ChecksumKind::Crc16Modbus.width(), NumberWidth::U16);
        assert_eq!(ChecksumKind::Lrc8.width(), NumberWidth::U8);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Endianness::Big.to_string(), "be");
        assert_eq!(NumberWidth::U16.to_string(), "u16");
        assert_eq!(LengthSpec::Fixed(4).to_string(), "fixed(4)");
        assert_eq!(
            LengthSpec::FromField("len".into()).to_string(),
            "from(len)"
        );
        assert_eq!(Fixup::crc32("body").to_string(), "crc32(body)");
    }
}
