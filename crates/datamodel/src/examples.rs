//! Ready-made example models used in documentation, tests and the
//! quickstart example: the paper's Figure 1 model and a couple of small toy
//! protocols.

use crate::builder::{BlockBuilder, DataModelBuilder};
use crate::chunk::{BytesSpec, NumberSpec};
use crate::model::{DataModel, DataModelSet};
use crate::types::{Fixup, Relation};

/// The data model of Figure 1 in the paper: `ID`, `Size`, a `Data` block with
/// `CompressionCode`, `SampleRate` and `ExtraData`, and a trailing `CRC`,
/// where `Size = sizeof(Data)` and `CRC = Crc32Fixup(Data)`.
///
/// ```
/// use peachstar_datamodel::examples::figure1_model;
/// let model = figure1_model();
/// assert_eq!(model.linear().len(), 6);
/// ```
#[must_use]
pub fn figure1_model() -> DataModel {
    DataModelBuilder::new("figure1")
        .number("id", NumberSpec::u16_be().default_value(0x5249))
        .number(
            "size",
            NumberSpec::u16_be().relation(Relation::size_of("data")),
        )
        .block(
            BlockBuilder::new("data")
                .number("compression_code", NumberSpec::u8().default_value(0x01))
                .number("sample_rate", NumberSpec::u16_be().default_value(44_100))
                .bytes(
                    "extra_data",
                    BytesSpec::fixed(4).default_content(vec![0xde, 0xad, 0xbe, 0xef]),
                ),
        )
        .number("crc", NumberSpec::u32_be().fixup(Fixup::crc32("data")))
        .build()
        .expect("figure1 model is statically valid")
}

/// A toy request/response protocol with three packet types sharing address
/// and length rules, used by unit tests and the `custom_protocol` example.
///
/// The three models (`echo`, `read`, `write`) deliberately share
/// construction rules (`device-address`, `payload-length`) so that puzzles
/// cracked from one packet type can be donated to the others — a miniature
/// version of the Figure 2 insight.
#[must_use]
pub fn toy_protocol() -> DataModelSet {
    let mut set = DataModelSet::new("toy");

    set.push(
        DataModelBuilder::new("echo")
            .number("opcode", NumberSpec::u8().fixed_value(0x01))
            .number_with_rule("device", NumberSpec::u16_be().default_value(1), "device-address")
            .number_with_rule(
                "length",
                NumberSpec::u16_be().relation(Relation::size_of("payload")),
                "payload-length",
            )
            .bytes("payload", BytesSpec::length_from("length").default_content(vec![0x41; 4]))
            .number("checksum", NumberSpec::u16_be().fixup(Fixup::new(
                crate::types::ChecksumKind::Sum16,
                vec!["payload".into()],
            )))
            .build()
            .expect("echo model is statically valid"),
    );

    set.push(
        DataModelBuilder::new("read")
            .number("opcode", NumberSpec::u8().fixed_value(0x02))
            .number_with_rule("device", NumberSpec::u16_be().default_value(1), "device-address")
            .number("register", NumberSpec::u16_be())
            .number("count", NumberSpec::u16_be().default_value(1))
            .build()
            .expect("read model is statically valid"),
    );

    set.push(
        DataModelBuilder::new("write")
            .number("opcode", NumberSpec::u8().fixed_value(0x03))
            .number_with_rule("device", NumberSpec::u16_be().default_value(1), "device-address")
            .number("register_w", NumberSpec::u16_be())
            .number_with_rule(
                "length_w",
                NumberSpec::u16_be().relation(Relation::size_of("values")),
                "payload-length",
            )
            .bytes("values", BytesSpec::length_from("length_w").default_content(vec![0x00, 0x2a]))
            .build()
            .expect("write model is statically valid"),
    );

    set
}

/// A minimal single-model set wrapping [`figure1_model`], convenient for
/// doc-tests that need a [`DataModelSet`].
#[must_use]
pub fn figure1_set() -> DataModelSet {
    let mut set = DataModelSet::new("figure1");
    set.push(figure1_model());
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crack::crack;
    use crate::emit::emit_default;

    #[test]
    fn figure1_default_packet_is_self_consistent() {
        let model = figure1_model();
        let packet = emit_default(&model).unwrap();
        // id(2) + size(2) + data(1 + 2 + 4) + crc(4)
        assert_eq!(packet.len(), 15);
        assert_eq!(&packet[2..4], &[0x00, 0x07], "size counts the data block");
        let crc = crate::checksum::crc32(&packet[4..11]);
        assert_eq!(&packet[11..15], &crc.to_be_bytes());
        // And it cracks back against its own model.
        let tree = crack(&model, &packet).unwrap();
        assert_eq!(tree.find("data").unwrap().content.len(), 7);
    }

    #[test]
    fn toy_protocol_shares_rules_across_models() {
        let set = toy_protocol();
        assert_eq!(set.len(), 3);
        assert!(set.rule_overlap() > 0.0);
        let echo_device = set.find("echo").unwrap().find("device").unwrap().rule_id();
        let read_device = set.find("read").unwrap().find("device").unwrap().rule_id();
        assert_eq!(echo_device, read_device);
    }

    #[test]
    fn toy_models_emit_and_crack() {
        let set = toy_protocol();
        for model in set.models() {
            let packet = emit_default(model).unwrap();
            let tree = crack(model, &packet)
                .unwrap_or_else(|e| panic!("{} default packet should crack: {e}", model.name()));
            assert_eq!(tree.bytes(), &packet[..]);
        }
    }
}
