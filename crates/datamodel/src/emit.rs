//! Packet emission: serialising a data model's instantiation to bytes and
//! re-establishing integrity constraints (the "File Fixup" of the paper).

use std::ops::Range;
use std::sync::Arc;

use crate::chunk::{Chunk, ChunkKind};
use crate::error::ModelError;
use crate::instree::{InsNode, InsTree};
use crate::model::{DataModel, LinearLayout};

/// A leaf-value assignment for emission: raw bytes per leaf position of the
/// model's [`LinearLayout`], in packet order.
///
/// Values are stored as `Arc<[u8]>`, so cloning an assignment (the
/// semantic-aware generator's cross-product expansion does this per
/// candidate packet) bumps reference counts instead of deep-copying byte
/// vectors, and corpus donors can be shared into assignments without
/// copying.
///
/// Missing positions fall back to the leaf's default value; number values of
/// the wrong width are left-truncated or zero-padded to the field width.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValueAssignment {
    values: std::collections::HashMap<usize, Arc<[u8]>>,
}

impl ValueAssignment {
    /// Creates an empty assignment (all defaults).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the bytes for the leaf at linear position `index`.
    ///
    /// Accepts owned `Vec<u8>` (converted once) or a shared `Arc<[u8]>`
    /// (no copy — this is how corpus donors are threaded through).
    pub fn set(&mut self, index: usize, bytes: impl Into<Arc<[u8]>>) {
        self.values.insert(index, bytes.into());
    }

    /// Returns the bytes assigned to position `index`, if any.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<&[u8]> {
        self.values.get(&index).map(AsRef::as_ref)
    }

    /// Number of explicitly assigned positions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when nothing has been assigned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl FromIterator<(usize, Vec<u8>)> for ValueAssignment {
    fn from_iter<T: IntoIterator<Item = (usize, Vec<u8>)>>(iter: T) -> Self {
        Self {
            values: iter
                .into_iter()
                .map(|(index, bytes)| (index, Arc::from(bytes)))
                .collect(),
        }
    }
}

/// Reusable emission workspace: the per-chunk span table and the checksum
/// input buffer.
///
/// One packet emission needs a span per named chunk plus a scratch buffer to
/// concatenate fixup-covered ranges. Allocating those per packet dominates
/// the cost of emitting small ICS frames, so the generation strategies hold
/// one `EmitScratch` and pass it to [`emit_values_with`] for every packet.
#[derive(Debug, Clone, Default)]
pub struct EmitScratch {
    /// Emitted byte range per chunk ordinal (see [`LinearLayout::ordinal`]).
    spans: Vec<Option<Range<usize>>>,
    /// Concatenation buffer for multi-field fixup coverage.
    covered: Vec<u8>,
}

impl EmitScratch {
    /// Creates an empty workspace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, chunk_count: usize) {
        self.spans.clear();
        self.spans.resize(chunk_count, None);
        self.covered.clear();
    }
}

/// Emits the model's default instantiation with all relations and fixups
/// applied.
///
/// # Errors
///
/// Returns [`ModelError::ValueIndexOutOfRange`] only if the model is
/// internally inconsistent (cannot happen for validated models).
///
/// ```
/// use peachstar_datamodel::{examples, emit::emit_default};
/// let packet = emit_default(&examples::figure1_model())?;
/// assert!(!packet.is_empty());
/// # Ok::<(), peachstar_datamodel::ModelError>(())
/// ```
pub fn emit_default(model: &DataModel) -> Result<Vec<u8>, ModelError> {
    emit_values(model, &ValueAssignment::new(), true)
}

/// Emits the model with the given leaf-value assignment.
///
/// When `repair` is `true`, relation fields (sizes, counts) and fixup fields
/// (checksums) are recomputed after the raw bytes are laid out — this is the
/// File Fixup module of Peach\*. When `false`, the assigned/default bytes are
/// emitted verbatim, which is how the ablation without repair is run.
///
/// # Errors
///
/// Returns [`ModelError::ValueIndexOutOfRange`] when the assignment refers to
/// a position beyond the linear model.
pub fn emit_values(
    model: &DataModel,
    assignment: &ValueAssignment,
    repair: bool,
) -> Result<Vec<u8>, ModelError> {
    emit_values_with(model, assignment, repair, &mut EmitScratch::new())
}

/// [`emit_values`] with a caller-provided [`EmitScratch`], so repeated
/// emissions (one per generated packet) reuse the span table and checksum
/// buffer instead of reallocating them.
///
/// # Errors
///
/// Returns [`ModelError::ValueIndexOutOfRange`] when the assignment refers to
/// a position beyond the linear model.
pub fn emit_values_with(
    model: &DataModel,
    assignment: &ValueAssignment,
    repair: bool,
    scratch: &mut EmitScratch,
) -> Result<Vec<u8>, ModelError> {
    let layout = model.linear();
    let leaves = layout.len();
    if let Some(&bad) = assignment
        .values
        .keys()
        .find(|&&index| index >= leaves)
    {
        return Err(ModelError::ValueIndexOutOfRange {
            index: bad,
            leaves,
        });
    }

    scratch.reset(layout.chunk_count());
    let mut bytes = Vec::new();
    let mut emitter = Emitter {
        bytes: &mut bytes,
        spans: &mut scratch.spans,
        layout,
    };
    let mut leaf_index = 0usize;
    emitter.emit_chunk(model.root(), assignment, &mut leaf_index);
    if repair {
        repair_in_place(model, layout, &scratch.spans, &mut scratch.covered, &mut bytes);
    }
    Ok(bytes)
}

/// Re-emits an instantiation tree, optionally repairing relations and fixups.
///
/// The tree's leaf bytes are used as the assignment; structural nodes are
/// ignored (their content is recomputed by concatenation). This is used by
/// the fuzzer to repair a packet assembled from donated puzzles.
///
/// # Errors
///
/// Returns an error if the tree does not structurally correspond to the
/// model (e.g. it was cracked against a different model).
pub fn emit_tree(model: &DataModel, tree: &InsTree, repair: bool) -> Result<Vec<u8>, ModelError> {
    let linear = model.linear();
    let mut assignment = ValueAssignment::new();
    let mut flat = Vec::new();
    flatten_leaves(&tree.root, &mut flat);
    for (index, leaf) in linear.iter().enumerate() {
        if let Some(node) = flat.iter().find(|node| node.name == leaf.chunk.name) {
            assignment.set(index, node.content.clone());
        }
    }
    emit_values(model, &assignment, repair)
}

fn flatten_leaves<'tree>(node: &'tree InsNode, out: &mut Vec<&'tree InsNode>) {
    if node.is_leaf() {
        out.push(node);
    } else {
        for child in &node.children {
            flatten_leaves(child, out);
        }
    }
}

struct Emitter<'a> {
    bytes: &'a mut Vec<u8>,
    /// Emitted byte range per chunk ordinal (leaves and blocks).
    spans: &'a mut Vec<Option<Range<usize>>>,
    layout: &'a LinearLayout,
}

impl Emitter<'_> {
    fn emit_chunk(&mut self, chunk: &Chunk, assignment: &ValueAssignment, leaf_index: &mut usize) {
        let start = self.bytes.len();
        match &chunk.kind {
            ChunkKind::Number(spec) => {
                let provided = assignment.get(*leaf_index);
                *leaf_index += 1;
                let value_bytes = match provided {
                    // Provided content is wire bytes in the field's own
                    // endianness — the convention shared by the cracker and
                    // the mutators. Round-tripping through the decoded value
                    // normalises wrong-width content to the field width and
                    // leaves correctly-sized content untouched.
                    Some(bytes) => spec.encode(spec.decode_lossy(bytes)),
                    None => spec.encode(spec.default),
                };
                self.bytes.extend_from_slice(&value_bytes);
            }
            ChunkKind::Bytes(spec) => {
                let provided = assignment.get(*leaf_index).map(<[u8]>::to_vec);
                *leaf_index += 1;
                let mut content = provided.unwrap_or_else(|| spec.default.clone());
                if let crate::types::LengthSpec::Fixed(len) = spec.length {
                    content.resize(len, 0);
                }
                self.bytes.extend_from_slice(&content);
            }
            ChunkKind::Str(spec) => {
                let provided = assignment.get(*leaf_index).map(<[u8]>::to_vec);
                *leaf_index += 1;
                let mut content = provided.unwrap_or_else(|| spec.default.clone().into_bytes());
                if let crate::types::LengthSpec::Fixed(len) = spec.length {
                    content.resize(len, b' ');
                }
                self.bytes.extend_from_slice(&content);
            }
            ChunkKind::Block(children) => {
                for child in children {
                    self.emit_chunk(child, assignment, leaf_index);
                }
            }
            ChunkKind::Choice(options) => {
                if let Some(first) = options.first() {
                    self.emit_chunk(first, assignment, leaf_index);
                }
            }
        }
        if let Some(ordinal) = self.layout.ordinal(&chunk.name) {
            self.spans[ordinal] = Some(start..self.bytes.len());
        }
    }
}

/// Looks up the emitted span of the chunk named `name`, if it was emitted.
fn span_of<'spans>(
    layout: &LinearLayout,
    spans: &'spans [Option<Range<usize>>],
    name: &str,
) -> Option<&'spans Range<usize>> {
    layout
        .ordinal(name)
        .and_then(|ordinal| spans[ordinal].as_ref())
}

/// Recomputes relation fields first and fixup fields second, overwriting
/// their emitted bytes in place.
fn repair_in_place(
    model: &DataModel,
    layout: &LinearLayout,
    spans: &[Option<Range<usize>>],
    covered: &mut Vec<u8>,
    bytes: &mut [u8],
) {
    // Pass 1: relations (sizes and counts).
    for chunk in model.root().iter() {
        let ChunkKind::Number(spec) = &chunk.kind else {
            continue;
        };
        let Some(relation) = &spec.relation else {
            continue;
        };
        let (Some(own), Some(target)) = (
            span_of(layout, spans, &chunk.name),
            span_of(layout, spans, relation.target().name()),
        ) else {
            continue;
        };
        let value = relation.value_for_size(target.len());
        let encoded = spec.encode(value & spec.width.max_value());
        bytes[own.clone()].copy_from_slice(&encoded);
    }
    // Pass 2: fixups (checksums), computed over the repaired bytes.
    for chunk in model.root().iter() {
        let ChunkKind::Number(spec) = &chunk.kind else {
            continue;
        };
        let Some(fixup) = &spec.fixup else { continue };
        let Some(own) = span_of(layout, spans, &chunk.name) else {
            continue;
        };
        covered.clear();
        for target in &fixup.over {
            if let Some(span) = span_of(layout, spans, target.name()) {
                covered.extend_from_slice(&bytes[span.clone()]);
            }
        }
        let value = fixup.kind.compute(covered);
        let encoded = spec.encode(value & spec.width.max_value());
        bytes[own.clone()].copy_from_slice(&encoded);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DataModelBuilder;
    use crate::chunk::{BytesSpec, NumberSpec};
    use crate::crack::crack;
    use crate::types::{Endianness, Fixup, Relation};

    fn framed_model() -> DataModel {
        DataModelBuilder::new("framed")
            .number("magic", NumberSpec::u8().fixed_value(0x7e))
            .number(
                "len",
                NumberSpec::u16_be().relation(Relation::size_of("payload")),
            )
            .bytes("payload", BytesSpec::length_from("len").default_content(vec![1, 2, 3]))
            .number("crc", NumberSpec::u32_be().fixup(Fixup::crc32("payload")))
            .build()
            .unwrap()
    }

    #[test]
    fn default_emission_is_consistent() {
        let model = framed_model();
        let packet = emit_default(&model).unwrap();
        // magic, len(=3), payload(3), crc.
        assert_eq!(packet.len(), 1 + 2 + 3 + 4);
        assert_eq!(packet[0], 0x7e);
        assert_eq!(&packet[1..3], &[0x00, 0x03]);
        let crc = crate::checksum::crc32(&[1, 2, 3]);
        assert_eq!(&packet[6..10], &crc.to_be_bytes());
    }

    #[test]
    fn emission_then_crack_roundtrips() {
        let model = framed_model();
        let packet = emit_default(&model).unwrap();
        let tree = crack(&model, &packet).unwrap();
        assert_eq!(tree.bytes(), &packet[..]);
        let re_emitted = emit_tree(&model, &tree, true).unwrap();
        assert_eq!(re_emitted, packet);
    }

    #[test]
    fn repair_recomputes_length_after_payload_change() {
        let model = framed_model();
        let mut assignment = ValueAssignment::new();
        // Linear order: magic(0), len(1), payload(2), crc(3).
        assignment.set(2, vec![0xAB; 10]);
        let packet = emit_values(&model, &assignment, true).unwrap();
        assert_eq!(&packet[1..3], &[0x00, 0x0A], "length repaired to 10");
        let crc = crate::checksum::crc32(&[0xAB; 10]);
        assert_eq!(&packet[13..17], &crc.to_be_bytes());
    }

    #[test]
    fn without_repair_constraints_stay_broken() {
        let model = framed_model();
        let mut assignment = ValueAssignment::new();
        assignment.set(1, vec![0xFF, 0xFF]); // bogus length
        assignment.set(2, vec![0x01]);
        let packet = emit_values(&model, &assignment, false).unwrap();
        assert_eq!(&packet[1..3], &[0xFF, 0xFF]);
    }

    #[test]
    fn number_values_are_normalised_to_width() {
        let model = DataModelBuilder::new("norm")
            .number("wide", NumberSpec::u32_be())
            .number("narrow", NumberSpec::u8())
            .number("little", NumberSpec::u16_be().endian(Endianness::Little))
            .build()
            .unwrap();
        let mut assignment = ValueAssignment::new();
        assignment.set(0, vec![0x12]); // too short → zero-padded
        assignment.set(1, vec![0xAA, 0xBB]); // too long → least-significant kept
        assignment.set(2, vec![0x12, 0x34]); // correctly sized wire bytes → verbatim
        let packet = emit_values(&model, &assignment, false).unwrap();
        assert_eq!(&packet[0..4], &[0x00, 0x00, 0x00, 0x12]);
        assert_eq!(packet[4], 0xBB);
        assert_eq!(&packet[5..7], &[0x12, 0x34]);
    }

    #[test]
    fn fixed_blob_is_padded_or_truncated() {
        let model = DataModelBuilder::new("fixed")
            .bytes("body", BytesSpec::fixed(4))
            .build()
            .unwrap();
        let mut short = ValueAssignment::new();
        short.set(0, vec![0x01]);
        assert_eq!(emit_values(&model, &short, false).unwrap(), vec![0x01, 0, 0, 0]);

        let mut long = ValueAssignment::new();
        long.set(0, vec![9; 10]);
        assert_eq!(emit_values(&model, &long, false).unwrap().len(), 4);
    }

    #[test]
    fn out_of_range_assignment_is_rejected() {
        let model = DataModelBuilder::new("tiny")
            .number("only", NumberSpec::u8())
            .build()
            .unwrap();
        let mut assignment = ValueAssignment::new();
        assignment.set(5, vec![0x01]);
        assert!(matches!(
            emit_values(&model, &assignment, true),
            Err(ModelError::ValueIndexOutOfRange { .. })
        ));
    }

    #[test]
    fn multi_field_fixup_covers_all_targets() {
        let model = DataModelBuilder::new("multi")
            .number("a", NumberSpec::u8().default_value(0x11))
            .number("b", NumberSpec::u8().default_value(0x22))
            .number(
                "sum",
                NumberSpec::u8().fixup(Fixup::new(
                    crate::types::ChecksumKind::Sum8,
                    vec!["a".into(), "b".into()],
                )),
            )
            .build()
            .unwrap();
        let packet = emit_default(&model).unwrap();
        assert_eq!(packet[2], 0x33);
    }
}
