//! Packet emission: serialising a data model's instantiation to bytes and
//! re-establishing integrity constraints (the "File Fixup" of the paper).

use std::ops::Range;
use std::sync::Arc;

use crate::chunk::{Chunk, ChunkKind};
use crate::error::ModelError;
use crate::instree::{InsNode, InsTree};
use crate::model::{DataModel, LinearLayout};

/// A leaf-value assignment for emission: raw bytes per leaf position of the
/// model's [`LinearLayout`], in packet order.
///
/// Values are stored as `Arc<[u8]>`, so cloning an assignment (the
/// semantic-aware generator's cross-product expansion does this per
/// candidate packet) bumps reference counts instead of deep-copying byte
/// vectors, and corpus donors can be shared into assignments without
/// copying.
///
/// Missing positions fall back to the leaf's default value; number values of
/// the wrong width are left-truncated or zero-padded to the field width.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValueAssignment {
    values: std::collections::HashMap<usize, Arc<[u8]>>,
}

impl ValueAssignment {
    /// Creates an empty assignment (all defaults).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the bytes for the leaf at linear position `index`.
    ///
    /// Accepts owned `Vec<u8>` (converted once) or a shared `Arc<[u8]>`
    /// (no copy — this is how corpus donors are threaded through).
    pub fn set(&mut self, index: usize, bytes: impl Into<Arc<[u8]>>) {
        self.values.insert(index, bytes.into());
    }

    /// Returns the bytes assigned to position `index`, if any.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<&[u8]> {
        self.values.get(&index).map(AsRef::as_ref)
    }

    /// Number of explicitly assigned positions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when nothing has been assigned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl FromIterator<(usize, Vec<u8>)> for ValueAssignment {
    fn from_iter<T: IntoIterator<Item = (usize, Vec<u8>)>>(iter: T) -> Self {
        Self {
            values: iter
                .into_iter()
                .map(|(index, bytes)| (index, Arc::from(bytes)))
                .collect(),
        }
    }
}

/// A source of leaf content for emission: one optional byte slice per leaf
/// position of the model's [`LinearLayout`] (`None` falls back to the leaf's
/// default value).
///
/// [`ValueAssignment`] is the shared-ownership implementation (corpus donors
/// as `Arc<[u8]>`); generation hot paths can implement the trait over plain
/// reusable buffers instead and emit via [`emit_into`] without building an
/// assignment map per packet.
pub trait LeafSource {
    /// The content for the leaf at linear position `index`, if any.
    fn leaf(&self, index: usize) -> Option<&[u8]>;

    /// A position `>= leaves` this source explicitly assigns content to, if
    /// any — emission rejects such sources with
    /// [`ModelError::ValueIndexOutOfRange`]. Sources that cannot hold
    /// out-of-range positions keep the default `None`.
    fn invalid_index(&self, leaves: usize) -> Option<usize> {
        let _ = leaves;
        None
    }
}

impl LeafSource for ValueAssignment {
    fn leaf(&self, index: usize) -> Option<&[u8]> {
        self.get(index)
    }

    fn invalid_index(&self, leaves: usize) -> Option<usize> {
        self.values
            .keys()
            .copied()
            .filter(|&index| index >= leaves)
            .min()
    }
}

/// Reusable emission workspace: the per-chunk span table and the checksum
/// input buffer.
///
/// One packet emission needs a span per named chunk plus a scratch buffer to
/// concatenate fixup-covered ranges. Allocating those per packet dominates
/// the cost of emitting small ICS frames, so the generation strategies hold
/// one `EmitScratch` and pass it to [`emit_values_with`] for every packet.
#[derive(Debug, Clone, Default)]
pub struct EmitScratch {
    /// Emitted byte range per chunk ordinal (see [`LinearLayout::ordinal`]).
    spans: Vec<Option<Range<usize>>>,
    /// Concatenation buffer for multi-field fixup coverage.
    covered: Vec<u8>,
    /// Encoding buffer for repaired relation/fixup fields.
    encoded: Vec<u8>,
}

impl EmitScratch {
    /// Creates an empty workspace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, chunk_count: usize) {
        self.spans.clear();
        self.spans.resize(chunk_count, None);
        self.covered.clear();
    }
}

/// Emits the model's default instantiation with all relations and fixups
/// applied.
///
/// # Errors
///
/// Returns [`ModelError::ValueIndexOutOfRange`] only if the model is
/// internally inconsistent (cannot happen for validated models).
///
/// ```
/// use peachstar_datamodel::{examples, emit::emit_default};
/// let packet = emit_default(&examples::figure1_model())?;
/// assert!(!packet.is_empty());
/// # Ok::<(), peachstar_datamodel::ModelError>(())
/// ```
pub fn emit_default(model: &DataModel) -> Result<Vec<u8>, ModelError> {
    emit_values(model, &ValueAssignment::new(), true)
}

/// Emits the model with the given leaf-value assignment.
///
/// When `repair` is `true`, relation fields (sizes, counts) and fixup fields
/// (checksums) are recomputed after the raw bytes are laid out — this is the
/// File Fixup module of Peach\*. When `false`, the assigned/default bytes are
/// emitted verbatim, which is how the ablation without repair is run.
///
/// # Errors
///
/// Returns [`ModelError::ValueIndexOutOfRange`] when the assignment refers to
/// a position beyond the linear model.
pub fn emit_values(
    model: &DataModel,
    assignment: &ValueAssignment,
    repair: bool,
) -> Result<Vec<u8>, ModelError> {
    emit_values_with(model, assignment, repair, &mut EmitScratch::new())
}

/// [`emit_values`] with a caller-provided [`EmitScratch`], so repeated
/// emissions (one per generated packet) reuse the span table and checksum
/// buffer instead of reallocating them.
///
/// # Errors
///
/// Returns [`ModelError::ValueIndexOutOfRange`] when the assignment refers to
/// a position beyond the linear model.
pub fn emit_values_with(
    model: &DataModel,
    assignment: &ValueAssignment,
    repair: bool,
    scratch: &mut EmitScratch,
) -> Result<Vec<u8>, ModelError> {
    let mut bytes = Vec::new();
    emit_into(model, assignment, repair, scratch, &mut bytes)?;
    Ok(bytes)
}

/// Emits the model with leaf content from any [`LeafSource`], appending into
/// a caller-provided buffer (cleared first), so a generation loop can emit
/// every packet into one reused allocation.
///
/// This is the allocation-free core of all `emit_*` entry points: together
/// with a reused [`EmitScratch`] and a buffer-backed source, emitting a
/// packet allocates nothing once the buffers have warmed up.
///
/// # Errors
///
/// Returns [`ModelError::ValueIndexOutOfRange`] when the source assigns
/// content to a position beyond the linear model.
pub fn emit_into<S: LeafSource + ?Sized>(
    model: &DataModel,
    source: &S,
    repair: bool,
    scratch: &mut EmitScratch,
    out: &mut Vec<u8>,
) -> Result<(), ModelError> {
    let layout = model.linear();
    let leaves = layout.len();
    if let Some(bad) = source.invalid_index(leaves) {
        return Err(ModelError::ValueIndexOutOfRange {
            index: bad,
            leaves,
        });
    }

    scratch.reset(layout.chunk_count());
    out.clear();
    let mut emitter = Emitter {
        bytes: out,
        spans: &mut scratch.spans,
        layout,
        visit: 0,
    };
    let mut leaf_index = 0usize;
    emitter.emit_chunk(model.root(), source, &mut leaf_index);
    if repair {
        repair_in_place(
            layout,
            &scratch.spans,
            &mut scratch.covered,
            &mut scratch.encoded,
            out,
        );
    }
    Ok(())
}

/// Re-emits an instantiation tree, optionally repairing relations and fixups.
///
/// The tree's leaf bytes are used as the assignment; structural nodes are
/// ignored (their content is recomputed by concatenation). This is used by
/// the fuzzer to repair a packet assembled from donated puzzles.
///
/// # Errors
///
/// Returns an error if the tree does not structurally correspond to the
/// model (e.g. it was cracked against a different model).
pub fn emit_tree(model: &DataModel, tree: &InsTree, repair: bool) -> Result<Vec<u8>, ModelError> {
    let linear = model.linear();
    let mut assignment = ValueAssignment::new();
    let mut flat = Vec::new();
    flatten_leaves(&tree.root, &mut flat);
    for (index, leaf) in linear.iter().enumerate() {
        if let Some(node) = flat.iter().find(|node| node.name == leaf.chunk.name) {
            assignment.set(index, node.content.clone());
        }
    }
    emit_values(model, &assignment, repair)
}

fn flatten_leaves<'tree>(node: &'tree InsNode, out: &mut Vec<&'tree InsNode>) {
    if node.is_leaf() {
        out.push(node);
    } else {
        for child in &node.children {
            flatten_leaves(child, out);
        }
    }
}

struct Emitter<'a> {
    bytes: &'a mut Vec<u8>,
    /// Emitted byte range per chunk ordinal (leaves and blocks).
    spans: &'a mut Vec<Option<Range<usize>>>,
    layout: &'a LinearLayout,
    /// Index of the next chunk in the layout's precomputed visit order —
    /// span ordinals come from an array lookup instead of hashing each
    /// chunk's name per packet.
    visit: usize,
}

impl Emitter<'_> {
    fn emit_chunk<S: LeafSource + ?Sized>(
        &mut self,
        chunk: &Chunk,
        source: &S,
        leaf_index: &mut usize,
    ) {
        let start = self.bytes.len();
        let ordinal = self.layout.visit_ordinals()[self.visit];
        self.visit += 1;
        match &chunk.kind {
            ChunkKind::Number(spec) => {
                let provided = source.leaf(*leaf_index);
                *leaf_index += 1;
                let value = match provided {
                    // Provided content is wire bytes in the field's own
                    // endianness — the convention shared by the cracker and
                    // the mutators. Round-tripping through the decoded value
                    // normalises wrong-width content to the field width and
                    // leaves correctly-sized content untouched.
                    Some(bytes) => spec.decode_lossy(bytes),
                    None => spec.default,
                };
                spec.encode_into(value, self.bytes);
            }
            ChunkKind::Bytes(spec) => {
                let provided = source.leaf(*leaf_index);
                *leaf_index += 1;
                // Emit straight from the borrowed content; a fixed length
                // pads/truncates in place on the output buffer, so neither
                // provided content nor the default is ever cloned.
                self.bytes
                    .extend_from_slice(provided.unwrap_or(&spec.default));
                if let crate::types::LengthSpec::Fixed(len) = spec.length {
                    self.bytes.resize(start + len, 0);
                }
            }
            ChunkKind::Str(spec) => {
                let provided = source.leaf(*leaf_index);
                *leaf_index += 1;
                self.bytes
                    .extend_from_slice(provided.unwrap_or(spec.default.as_bytes()));
                if let crate::types::LengthSpec::Fixed(len) = spec.length {
                    self.bytes.resize(start + len, b' ');
                }
            }
            ChunkKind::Block(children) => {
                for child in children {
                    self.emit_chunk(child, source, leaf_index);
                }
            }
            ChunkKind::Choice(options) => {
                if let Some(first) = options.first() {
                    self.emit_chunk(first, source, leaf_index);
                }
            }
        }
        self.spans[ordinal] = Some(start..self.bytes.len());
    }
}

/// Recomputes relation fields first and fixup fields second, overwriting
/// their emitted bytes in place.
///
/// Both passes walk the layout's *precompiled* repair plans (built once per
/// model) instead of re-walking the chunk tree and re-hashing field names
/// per packet; the per-packet work is exactly the repairs themselves.
fn repair_in_place(
    layout: &LinearLayout,
    spans: &[Option<Range<usize>>],
    covered: &mut Vec<u8>,
    encoded: &mut Vec<u8>,
    bytes: &mut [u8],
) {
    // Pass 1: relations (sizes and counts).
    for repair in layout.relation_repairs() {
        let (Some(own), Some(target)) = (spans[repair.own].as_ref(), spans[repair.target].as_ref())
        else {
            continue;
        };
        let relation = repair
            .spec
            .relation
            .as_ref()
            .expect("precompiled from a relation field");
        let value = relation.value_for_size(target.len());
        encoded.clear();
        repair
            .spec
            .encode_into(value & repair.spec.width.max_value(), encoded);
        bytes[own.clone()].copy_from_slice(encoded);
    }
    // Pass 2: fixups (checksums), computed over the repaired bytes.
    for repair in layout.fixup_repairs() {
        let Some(own) = spans[repair.own].as_ref() else {
            continue;
        };
        covered.clear();
        for &target in &repair.over {
            if let Some(span) = spans[target].as_ref() {
                covered.extend_from_slice(&bytes[span.clone()]);
            }
        }
        let fixup = repair
            .spec
            .fixup
            .as_ref()
            .expect("precompiled from a fixup field");
        let value = fixup.kind.compute(covered);
        encoded.clear();
        repair
            .spec
            .encode_into(value & repair.spec.width.max_value(), encoded);
        bytes[own.clone()].copy_from_slice(encoded);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DataModelBuilder;
    use crate::chunk::{BytesSpec, NumberSpec};
    use crate::crack::crack;
    use crate::types::{Endianness, Fixup, Relation};

    fn framed_model() -> DataModel {
        DataModelBuilder::new("framed")
            .number("magic", NumberSpec::u8().fixed_value(0x7e))
            .number(
                "len",
                NumberSpec::u16_be().relation(Relation::size_of("payload")),
            )
            .bytes("payload", BytesSpec::length_from("len").default_content(vec![1, 2, 3]))
            .number("crc", NumberSpec::u32_be().fixup(Fixup::crc32("payload")))
            .build()
            .unwrap()
    }

    #[test]
    fn default_emission_is_consistent() {
        let model = framed_model();
        let packet = emit_default(&model).unwrap();
        // magic, len(=3), payload(3), crc.
        assert_eq!(packet.len(), 1 + 2 + 3 + 4);
        assert_eq!(packet[0], 0x7e);
        assert_eq!(&packet[1..3], &[0x00, 0x03]);
        let crc = crate::checksum::crc32(&[1, 2, 3]);
        assert_eq!(&packet[6..10], &crc.to_be_bytes());
    }

    #[test]
    fn emission_then_crack_roundtrips() {
        let model = framed_model();
        let packet = emit_default(&model).unwrap();
        let tree = crack(&model, &packet).unwrap();
        assert_eq!(tree.bytes(), &packet[..]);
        let re_emitted = emit_tree(&model, &tree, true).unwrap();
        assert_eq!(re_emitted, packet);
    }

    #[test]
    fn repair_recomputes_length_after_payload_change() {
        let model = framed_model();
        let mut assignment = ValueAssignment::new();
        // Linear order: magic(0), len(1), payload(2), crc(3).
        assignment.set(2, vec![0xAB; 10]);
        let packet = emit_values(&model, &assignment, true).unwrap();
        assert_eq!(&packet[1..3], &[0x00, 0x0A], "length repaired to 10");
        let crc = crate::checksum::crc32(&[0xAB; 10]);
        assert_eq!(&packet[13..17], &crc.to_be_bytes());
    }

    #[test]
    fn without_repair_constraints_stay_broken() {
        let model = framed_model();
        let mut assignment = ValueAssignment::new();
        assignment.set(1, vec![0xFF, 0xFF]); // bogus length
        assignment.set(2, vec![0x01]);
        let packet = emit_values(&model, &assignment, false).unwrap();
        assert_eq!(&packet[1..3], &[0xFF, 0xFF]);
    }

    #[test]
    fn number_values_are_normalised_to_width() {
        let model = DataModelBuilder::new("norm")
            .number("wide", NumberSpec::u32_be())
            .number("narrow", NumberSpec::u8())
            .number("little", NumberSpec::u16_be().endian(Endianness::Little))
            .build()
            .unwrap();
        let mut assignment = ValueAssignment::new();
        assignment.set(0, vec![0x12]); // too short → zero-padded
        assignment.set(1, vec![0xAA, 0xBB]); // too long → least-significant kept
        assignment.set(2, vec![0x12, 0x34]); // correctly sized wire bytes → verbatim
        let packet = emit_values(&model, &assignment, false).unwrap();
        assert_eq!(&packet[0..4], &[0x00, 0x00, 0x00, 0x12]);
        assert_eq!(packet[4], 0xBB);
        assert_eq!(&packet[5..7], &[0x12, 0x34]);
    }

    #[test]
    fn fixed_blob_is_padded_or_truncated() {
        let model = DataModelBuilder::new("fixed")
            .bytes("body", BytesSpec::fixed(4))
            .build()
            .unwrap();
        let mut short = ValueAssignment::new();
        short.set(0, vec![0x01]);
        assert_eq!(emit_values(&model, &short, false).unwrap(), vec![0x01, 0, 0, 0]);

        let mut long = ValueAssignment::new();
        long.set(0, vec![9; 10]);
        assert_eq!(emit_values(&model, &long, false).unwrap().len(), 4);
    }

    #[test]
    fn out_of_range_assignment_is_rejected() {
        let model = DataModelBuilder::new("tiny")
            .number("only", NumberSpec::u8())
            .build()
            .unwrap();
        let mut assignment = ValueAssignment::new();
        assignment.set(5, vec![0x01]);
        assert!(matches!(
            emit_values(&model, &assignment, true),
            Err(ModelError::ValueIndexOutOfRange { .. })
        ));
    }

    #[test]
    fn multi_field_fixup_covers_all_targets() {
        let model = DataModelBuilder::new("multi")
            .number("a", NumberSpec::u8().default_value(0x11))
            .number("b", NumberSpec::u8().default_value(0x22))
            .number(
                "sum",
                NumberSpec::u8().fixup(Fixup::new(
                    crate::types::ChecksumKind::Sum8,
                    vec!["a".into(), "b".into()],
                )),
            )
            .build()
            .unwrap();
        let packet = emit_default(&model).unwrap();
        assert_eq!(packet[2], 0x33);
    }
}
