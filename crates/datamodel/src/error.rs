//! Error types for model construction, cracking, emission and Pit parsing.

use std::error::Error;
use std::fmt;

/// Error returned by data-model operations (building, cracking, emitting and
/// parsing Pit descriptions).
///
/// ```
/// use peachstar_datamodel::ModelError;
/// let err = ModelError::UnknownField { field: "crc".into() };
/// assert!(err.to_string().contains("crc"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A relation or fixup refers to a field name that does not exist in the
    /// model.
    UnknownField {
        /// The missing field name.
        field: String,
    },
    /// Two chunks in the same model share a name, which makes field
    /// references ambiguous.
    DuplicateField {
        /// The duplicated field name.
        field: String,
    },
    /// The model contains no chunks.
    EmptyModel {
        /// Name of the offending model.
        model: String,
    },
    /// Packet bytes ended before the model was fully matched.
    UnexpectedEnd {
        /// Field being parsed when input ran out.
        field: String,
        /// Bytes still required.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// Bytes remained after the model was fully matched.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
    /// A number field constrained to a set of legal values saw something
    /// else (e.g. an unknown function code).
    IllegalValue {
        /// Field being parsed.
        field: String,
        /// The value found in the packet.
        found: u64,
    },
    /// A fixup field's stored value did not match the recomputed checksum.
    ChecksumMismatch {
        /// Field holding the checksum.
        field: String,
        /// Value present in the packet.
        found: u64,
        /// Value the fixup computes.
        expected: u64,
    },
    /// No option of a choice chunk matched the packet bytes.
    NoChoiceMatched {
        /// Name of the choice chunk.
        field: String,
    },
    /// A length taken from another field would exceed the available bytes or
    /// an internal bound.
    LengthOutOfRange {
        /// Field whose length is invalid.
        field: String,
        /// The offending length.
        length: usize,
    },
    /// Error while parsing a Pit DSL document.
    Pit {
        /// 1-based line number of the offending line.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The requested data model does not exist in the [`DataModelSet`](crate::DataModelSet).
    UnknownModel {
        /// The missing model name.
        model: String,
    },
    /// A value assignment for emission referenced a leaf index outside the
    /// linear model.
    ValueIndexOutOfRange {
        /// The out-of-range index.
        index: usize,
        /// Number of leaves in the linear model.
        leaves: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownField { field } => {
                write!(f, "reference to unknown field `{field}`")
            }
            ModelError::DuplicateField { field } => {
                write!(f, "duplicate field name `{field}` in model")
            }
            ModelError::EmptyModel { model } => {
                write!(f, "model `{model}` contains no chunks")
            }
            ModelError::UnexpectedEnd {
                field,
                needed,
                available,
            } => write!(
                f,
                "packet ended while parsing `{field}`: needed {needed} bytes, {available} available"
            ),
            ModelError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after model matched")
            }
            ModelError::IllegalValue { field, found } => {
                write!(f, "illegal value {found:#x} for field `{field}`")
            }
            ModelError::ChecksumMismatch {
                field,
                found,
                expected,
            } => write!(
                f,
                "checksum mismatch in `{field}`: packet has {found:#x}, expected {expected:#x}"
            ),
            ModelError::NoChoiceMatched { field } => {
                write!(f, "no option of choice `{field}` matched the packet")
            }
            ModelError::LengthOutOfRange { field, length } => {
                write!(f, "length {length} out of range for field `{field}`")
            }
            ModelError::Pit { line, message } => {
                write!(f, "pit parse error at line {line}: {message}")
            }
            ModelError::UnknownModel { model } => {
                write!(f, "unknown data model `{model}`")
            }
            ModelError::ValueIndexOutOfRange { index, leaves } => {
                write!(
                    f,
                    "value index {index} out of range for linear model with {leaves} leaves"
                )
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_details() {
        let cases: Vec<(ModelError, &str)> = vec![
            (
                ModelError::UnknownField {
                    field: "size".into(),
                },
                "size",
            ),
            (
                ModelError::UnexpectedEnd {
                    field: "crc".into(),
                    needed: 4,
                    available: 1,
                },
                "crc",
            ),
            (ModelError::TrailingBytes { remaining: 3 }, "3"),
            (
                ModelError::IllegalValue {
                    field: "function".into(),
                    found: 0x99,
                },
                "function",
            ),
            (
                ModelError::Pit {
                    line: 7,
                    message: "bad keyword".into(),
                },
                "line 7",
            ),
        ];
        for (err, expected) in cases {
            assert!(
                err.to_string().contains(expected),
                "{err} should mention {expected}"
            );
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + std::error::Error>() {}
        assert_bounds::<ModelError>();
    }
}
