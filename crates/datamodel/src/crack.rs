//! Packet cracking: parsing concrete bytes against a [`DataModel`] into an
//! [`InsTree`] (the `PARSE` step of Algorithm 2 in the paper).

use std::collections::HashMap;

use crate::chunk::{Chunk, ChunkKind};
use crate::error::ModelError;
use crate::instree::{InsNode, InsTree};
use crate::model::{DataModel, DataModelSet};
use crate::types::LengthSpec;

/// Options controlling how strictly packets are cracked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrackOptions {
    /// Reject packets whose fixup fields do not match the recomputed
    /// checksum. Disabled by default: the File Cracker should accept
    /// packets the fuzzer itself generated with deliberately broken
    /// checksums, as long as the structure matches.
    pub verify_checksums: bool,
    /// Reject packets with bytes left over after the model matched.
    /// Enabled by default so that the first matching model is a structural
    /// fit, not a prefix match.
    pub reject_trailing: bool,
}

impl Default for CrackOptions {
    fn default() -> Self {
        Self {
            verify_checksums: false,
            reject_trailing: true,
        }
    }
}

/// Cracks `packet` against `model` with default [`CrackOptions`].
///
/// # Errors
///
/// Returns a [`ModelError`] when the packet does not structurally match the
/// model (truncated fields, illegal constrained values, trailing bytes, …).
///
/// ```
/// use peachstar_datamodel::{crack::crack, examples};
/// use peachstar_datamodel::emit::emit_default;
///
/// let model = examples::figure1_model();
/// let packet = emit_default(&model)?;
/// let tree = crack(&model, &packet)?;
/// assert_eq!(tree.bytes(), &packet[..]);
/// # Ok::<(), peachstar_datamodel::ModelError>(())
/// ```
pub fn crack(model: &DataModel, packet: &[u8]) -> Result<InsTree, ModelError> {
    crack_with(model, packet, CrackOptions::default())
}

/// Cracks `packet` against `model` with explicit options.
///
/// # Errors
///
/// Returns a [`ModelError`] when the packet does not match the model under
/// the given options.
pub fn crack_with(
    model: &DataModel,
    packet: &[u8],
    options: CrackOptions,
) -> Result<InsTree, ModelError> {
    let mut cracker = Cracker {
        packet,
        cursor: 0,
        values: HashMap::new(),
    };
    let root = cracker.parse_chunk(model.root(), packet.len())?;
    if options.reject_trailing && cracker.cursor != packet.len() {
        return Err(ModelError::TrailingBytes {
            remaining: packet.len() - cracker.cursor,
        });
    }
    if options.verify_checksums {
        verify_checksums(model, &root)?;
    }
    Ok(InsTree::new(model.name(), root))
}

/// Cracks `packet` against every model of `set`, returning the trees of all
/// models that match (the paper's Algorithm 2 tries every data model and
/// keeps the legal instantiation trees).
#[must_use]
pub fn crack_against_set(set: &DataModelSet, packet: &[u8]) -> Vec<InsTree> {
    set.models()
        .iter()
        .filter_map(|model| crack(model, packet).ok())
        .collect()
}

struct Cracker<'packet> {
    packet: &'packet [u8],
    cursor: usize,
    /// Values of already-parsed number fields, used to resolve
    /// [`LengthSpec::FromField`] lengths.
    values: HashMap<String, u64>,
}

impl<'packet> Cracker<'packet> {
    fn remaining(&self) -> usize {
        self.packet.len() - self.cursor
    }

    fn take(&mut self, field: &str, len: usize) -> Result<&'packet [u8], ModelError> {
        if len > self.remaining() {
            return Err(ModelError::UnexpectedEnd {
                field: field.to_string(),
                needed: len,
                available: self.remaining(),
            });
        }
        let slice = &self.packet[self.cursor..self.cursor + len];
        self.cursor += len;
        Ok(slice)
    }

    /// Parses one chunk. `scope_end` is the absolute offset this chunk's
    /// enclosing scope ends at, bounding [`LengthSpec::Remainder`] chunks.
    fn parse_chunk(&mut self, chunk: &Chunk, scope_end: usize) -> Result<InsNode, ModelError> {
        match &chunk.kind {
            ChunkKind::Number(spec) => {
                let bytes = self.take(&chunk.name, spec.width.bytes())?;
                let value = spec
                    .decode(bytes)
                    .expect("take() returned exactly width bytes");
                if let Some(allowed) = &spec.allowed {
                    if !allowed.contains(&value) {
                        return Err(ModelError::IllegalValue {
                            field: chunk.name.clone(),
                            found: value,
                        });
                    }
                }
                self.values.insert(chunk.name.clone(), value);
                Ok(InsNode::leaf(&chunk.name, chunk.rule_id(), bytes.to_vec()))
            }
            ChunkKind::Bytes(spec) => {
                let len = self.resolve_length(&chunk.name, &spec.length, scope_end)?;
                let bytes = self.take(&chunk.name, len)?;
                Ok(InsNode::leaf(&chunk.name, chunk.rule_id(), bytes.to_vec()))
            }
            ChunkKind::Str(spec) => {
                let len = self.resolve_length(&chunk.name, &spec.length, scope_end)?;
                let bytes = self.take(&chunk.name, len)?;
                if spec.ascii_only
                    && !bytes.iter().all(|&b| b.is_ascii_graphic() || b == b' ')
                {
                    return Err(ModelError::IllegalValue {
                        field: chunk.name.clone(),
                        found: u64::from(*bytes.iter().find(|b| !b.is_ascii_graphic()).unwrap_or(&0)),
                    });
                }
                Ok(InsNode::leaf(&chunk.name, chunk.rule_id(), bytes.to_vec()))
            }
            ChunkKind::Block(children) => {
                let mut nodes = Vec::with_capacity(children.len());
                // Reserve the minimal footprint of the siblings after each
                // child, so a greedy remainder field cannot swallow a
                // fixed-size trailer (e.g. a CRC after an opaque body).
                let child_mins: Vec<usize> =
                    children.iter().map(Chunk::min_encoded_size).collect();
                let mut trailing: usize = child_mins.iter().sum();
                for (child, &min) in children.iter().zip(&child_mins) {
                    trailing -= min;
                    let child_end = scope_end.saturating_sub(trailing).max(self.cursor);
                    nodes.push(self.parse_chunk(child, child_end)?);
                }
                Ok(InsNode::internal(&chunk.name, chunk.rule_id(), nodes))
            }
            ChunkKind::Choice(options) => {
                for option in options {
                    let checkpoint_cursor = self.cursor;
                    let checkpoint_values = self.values.clone();
                    match self.parse_chunk(option, scope_end) {
                        Ok(node) => {
                            return Ok(InsNode::internal(
                                &chunk.name,
                                chunk.rule_id(),
                                vec![node],
                            ));
                        }
                        Err(_) => {
                            self.cursor = checkpoint_cursor;
                            self.values = checkpoint_values;
                        }
                    }
                }
                Err(ModelError::NoChoiceMatched {
                    field: chunk.name.clone(),
                })
            }
        }
    }

    fn resolve_length(
        &self,
        field: &str,
        spec: &LengthSpec,
        scope_end: usize,
    ) -> Result<usize, ModelError> {
        match spec {
            LengthSpec::Fixed(n) => Ok(*n),
            LengthSpec::Remainder => Ok(scope_end.saturating_sub(self.cursor)),
            LengthSpec::FromField(reference) => {
                let value = self.values.get(reference.name()).copied().ok_or_else(|| {
                    ModelError::UnknownField {
                        field: reference.name().to_string(),
                    }
                })?;
                let len = usize::try_from(value).map_err(|_| ModelError::LengthOutOfRange {
                    field: field.to_string(),
                    length: usize::MAX,
                })?;
                if len > self.packet.len() {
                    return Err(ModelError::LengthOutOfRange {
                        field: field.to_string(),
                        length: len,
                    });
                }
                Ok(len)
            }
        }
    }
}

fn verify_checksums(model: &DataModel, root: &InsNode) -> Result<(), ModelError> {
    for chunk in model.root().iter() {
        let ChunkKind::Number(spec) = &chunk.kind else {
            continue;
        };
        let Some(fixup) = &spec.fixup else { continue };
        let Some(node) = root.find(&chunk.name) else {
            continue;
        };
        let Some(found) = spec.decode(&node.content) else {
            continue;
        };
        let mut covered = Vec::new();
        for target in &fixup.over {
            if let Some(target_node) = root.find(target.name()) {
                covered.extend_from_slice(&target_node.content);
            }
        }
        let expected = fixup.kind.compute(&covered);
        if expected != found {
            return Err(ModelError::ChecksumMismatch {
                field: chunk.name.clone(),
                found,
                expected,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{BlockBuilder, DataModelBuilder};
    use crate::chunk::{BytesSpec, NumberSpec};
    use crate::types::{Fixup, Relation};

    fn length_prefixed_model() -> DataModel {
        DataModelBuilder::new("length_prefixed")
            .number("magic", NumberSpec::u8().fixed_value(0xAA))
            .number(
                "len",
                NumberSpec::u16_be().relation(Relation::size_of("payload")),
            )
            .bytes("payload", BytesSpec::length_from("len"))
            .number("crc", NumberSpec::u32_be().fixup(Fixup::crc32("payload")))
            .build()
            .unwrap()
    }

    #[test]
    fn cracks_well_formed_packet() {
        let model = length_prefixed_model();
        let payload = [0x01u8, 0x02, 0x03];
        let crc = crate::checksum::crc32(&payload);
        let mut packet = vec![0xAA, 0x00, 0x03];
        packet.extend_from_slice(&payload);
        packet.extend_from_slice(&crc.to_be_bytes());

        let tree = crack(&model, &packet).expect("packet matches model");
        assert_eq!(tree.find("payload").unwrap().content, payload);
        assert_eq!(tree.find("len").unwrap().content, vec![0x00, 0x03]);
        assert_eq!(tree.bytes(), &packet[..]);
    }

    #[test]
    fn rejects_wrong_magic() {
        let model = length_prefixed_model();
        let packet = vec![0xBB, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00];
        assert!(matches!(
            crack(&model, &packet),
            Err(ModelError::IllegalValue { .. })
        ));
    }

    #[test]
    fn rejects_truncated_packet() {
        let model = length_prefixed_model();
        // Claims 16 payload bytes but provides none.
        let packet = vec![0xAA, 0x00, 0x10];
        assert!(matches!(
            crack(&model, &packet),
            Err(ModelError::UnexpectedEnd { .. } | ModelError::LengthOutOfRange { .. })
        ));
    }

    #[test]
    fn rejects_trailing_bytes_by_default() {
        let model = DataModelBuilder::new("short")
            .number("a", NumberSpec::u8())
            .build()
            .unwrap();
        let err = crack(&model, &[0x01, 0x02]).unwrap_err();
        assert_eq!(err, ModelError::TrailingBytes { remaining: 1 });

        let relaxed = crack_with(
            &model,
            &[0x01, 0x02],
            CrackOptions {
                reject_trailing: false,
                ..CrackOptions::default()
            },
        );
        assert!(relaxed.is_ok());
    }

    #[test]
    fn checksum_verification_is_optional() {
        let model = length_prefixed_model();
        let mut packet = vec![0xAA, 0x00, 0x01, 0x55];
        packet.extend_from_slice(&[0, 0, 0, 0]); // wrong CRC

        assert!(crack(&model, &packet).is_ok(), "lenient by default");
        let strict = crack_with(
            &model,
            &packet,
            CrackOptions {
                verify_checksums: true,
                ..CrackOptions::default()
            },
        );
        assert!(matches!(strict, Err(ModelError::ChecksumMismatch { .. })));
    }

    #[test]
    fn remainder_consumes_rest_of_packet() {
        let model = DataModelBuilder::new("rest")
            .number("tag", NumberSpec::u8())
            .bytes("body", BytesSpec::remainder())
            .build()
            .unwrap();
        let tree = crack(&model, &[0x09, 0x01, 0x02, 0x03]).unwrap();
        assert_eq!(tree.find("body").unwrap().content, vec![0x01, 0x02, 0x03]);
    }

    #[test]
    fn choice_selects_matching_option() {
        let read = BlockBuilder::new("read")
            .number("fc_read", NumberSpec::u8().fixed_value(0x01))
            .number("addr_r", NumberSpec::u16_be())
            .build();
        let write = BlockBuilder::new("write")
            .number("fc_write", NumberSpec::u8().fixed_value(0x02))
            .number("addr_w", NumberSpec::u16_be())
            .build();
        let model = DataModelBuilder::new("choice_model")
            .choice("body", vec![read, write])
            .build()
            .unwrap();

        let tree = crack(&model, &[0x02, 0x00, 0x10]).unwrap();
        assert!(tree.find("write").is_some());
        assert!(tree.find("read").is_none());

        let err = crack(&model, &[0x07, 0x00, 0x10]).unwrap_err();
        assert!(matches!(err, ModelError::NoChoiceMatched { .. }));
    }

    #[test]
    fn crack_against_set_returns_all_matches() {
        let generic = DataModelBuilder::new("generic")
            .number("first", NumberSpec::u8())
            .bytes("rest", BytesSpec::remainder())
            .build()
            .unwrap();
        let strict = DataModelBuilder::new("strict")
            .number("first", NumberSpec::u8().fixed_value(0x01))
            .bytes("rest", BytesSpec::remainder())
            .build()
            .unwrap();
        let set: DataModelSet = vec![generic, strict].into_iter().collect();

        let both = crack_against_set(&set, &[0x01, 0xff]);
        assert_eq!(both.len(), 2);
        let one = crack_against_set(&set, &[0x02, 0xff]);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].model, "generic");
    }

    #[test]
    fn cracked_tree_has_puzzles_for_blocks() {
        let model = DataModelBuilder::new("blocky")
            .number("hdr", NumberSpec::u8().fixed_value(0x01))
            .block(
                BlockBuilder::new("body")
                    .number("x", NumberSpec::u16_be())
                    .number("y", NumberSpec::u16_be()),
            )
            .build()
            .unwrap();
        let tree = crack(&model, &[0x01, 0x00, 0x02, 0x00, 0x03]).unwrap();
        let puzzles = tree.puzzles();
        // x, y, body, hdr, root → 5 puzzles.
        assert_eq!(puzzles.len(), 5);
        let body = puzzles.iter().find(|p| p.origin == "body").unwrap();
        assert_eq!(body.content, vec![0x00, 0x02, 0x00, 0x03]);
    }
}
