//! Checksum and CRC implementations used by packet fixups.
//!
//! All algorithms are implemented from scratch (no external crates): IEEE
//! CRC-32, CRC-16/Modbus, the DNP3 link-layer CRC, the Modbus ASCII LRC,
//! plain summation checksums and the one's-complement internet checksum.

/// IEEE CRC-32 (reflected, polynomial `0xEDB88320`, init/final xor `0xFFFFFFFF`).
///
/// This is the algorithm behind Peach's `Crc32Fixup` used in Figure 1 of the
/// paper.
///
/// ```
/// // Well-known check value for the ASCII string "123456789".
/// assert_eq!(peachstar_datamodel::checksum::crc32(b"123456789"), 0xCBF4_3926);
/// ```
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// CRC-16/Modbus (reflected polynomial `0xA001`, init `0xFFFF`, no final xor).
///
/// Used by the Modbus RTU frame check sequence.
///
/// ```
/// assert_eq!(peachstar_datamodel::checksum::crc16_modbus(b"123456789"), 0x4B37);
/// ```
#[must_use]
pub fn crc16_modbus(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xffff;
    for &byte in data {
        crc ^= u16::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xa001 & mask);
        }
    }
    crc
}

/// DNP3 link-layer CRC-16 (reflected polynomial `0xA6BC`, init `0x0000`,
/// output complemented).
///
/// ```
/// assert_eq!(peachstar_datamodel::checksum::crc16_dnp(b"123456789"), 0xEA82);
/// ```
#[must_use]
pub fn crc16_dnp(data: &[u8]) -> u16 {
    let mut crc: u16 = 0x0000;
    for &byte in data {
        crc ^= u16::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xa6bc & mask);
        }
    }
    !crc
}

/// Longitudinal redundancy check as used by Modbus ASCII: the two's
/// complement of the modulo-256 sum of the bytes.
///
/// ```
/// assert_eq!(peachstar_datamodel::checksum::lrc8(&[0x01, 0x03, 0x00, 0x00, 0x00, 0x01]), 0xFB);
/// ```
#[must_use]
pub fn lrc8(data: &[u8]) -> u8 {
    let sum = data
        .iter()
        .fold(0u8, |acc, &byte| acc.wrapping_add(byte));
    sum.wrapping_neg()
}

/// Modulo-256 sum of all bytes.
///
/// ```
/// assert_eq!(peachstar_datamodel::checksum::sum8(&[0xff, 0x02]), 0x01);
/// ```
#[must_use]
pub fn sum8(data: &[u8]) -> u8 {
    data.iter().fold(0u8, |acc, &byte| acc.wrapping_add(byte))
}

/// Modulo-65536 sum of all bytes.
///
/// ```
/// assert_eq!(peachstar_datamodel::checksum::sum16(&[0xff, 0xff, 0x02]), 0x0200);
/// ```
#[must_use]
pub fn sum16(data: &[u8]) -> u16 {
    data.iter()
        .fold(0u16, |acc, &byte| acc.wrapping_add(u16::from(byte)))
}

/// One's-complement 16-bit internet checksum (RFC 1071 style), over the data
/// interpreted as big-endian 16-bit words, padded with a zero byte if the
/// length is odd.
///
/// ```
/// // Complementing the checksum of data that already includes it yields 0.
/// let data = [0x45u8, 0x00, 0x00, 0x1c];
/// let sum = peachstar_datamodel::checksum::internet16(&data);
/// assert_ne!(sum, 0);
/// ```
#[must_use]
pub fn internet16(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let Some(&last) = chunks.remainder().first() {
        sum += u32::from(u16::from_be_bytes([last, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Appends the DNP3 per-block CRC to `block`, returning the framed bytes.
///
/// DNP3 link frames attach a little-endian CRC after the 8-byte header and
/// after every (up to) 16-byte body block; this helper is used by the DNP3
/// target's data model and emitter.
///
/// ```
/// let framed = peachstar_datamodel::checksum::dnp_block_with_crc(&[0x05, 0x64]);
/// assert_eq!(framed.len(), 4);
/// ```
#[must_use]
pub fn dnp_block_with_crc(block: &[u8]) -> Vec<u8> {
    let mut framed = Vec::with_capacity(block.len() + 2);
    framed.extend_from_slice(block);
    framed.extend_from_slice(&crc16_dnp(block).to_le_bytes());
    framed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_empty_is_zero() {
        assert_eq!(crc32(&[]), 0);
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414f_a339);
        assert_eq!(crc32(&[0x00]), 0xd202_ef8d);
    }

    #[test]
    fn crc16_modbus_known_vectors() {
        assert_eq!(crc16_modbus(b"123456789"), 0x4b37);
        // Read-holding-registers request: addr 1, fc 3, start 0, count 1.
        assert_eq!(crc16_modbus(&[0x01, 0x03, 0x00, 0x00, 0x00, 0x01]), 0x0a84);
        assert_eq!(crc16_modbus(&[]), 0xffff);
    }

    #[test]
    fn crc16_dnp_known_vector() {
        assert_eq!(crc16_dnp(b"123456789"), 0xea82);
    }

    #[test]
    fn lrc_of_frame_plus_lrc_is_zero() {
        let frame = [0x11u8, 0x03, 0x00, 0x6b, 0x00, 0x03];
        let lrc = lrc8(&frame);
        let mut with_lrc = frame.to_vec();
        with_lrc.push(lrc);
        assert_eq!(sum8(&with_lrc), 0);
    }

    #[test]
    fn sums_wrap() {
        assert_eq!(sum8(&[0xff, 0x01]), 0);
        assert_eq!(sum16(&[0xff; 1024]), (0xffu16.wrapping_mul(1024)) );
    }

    #[test]
    fn internet16_detects_flip() {
        let data = [0x12u8, 0x34, 0x56, 0x78];
        let mut flipped = data;
        flipped[2] ^= 0x01;
        assert_ne!(internet16(&data), internet16(&flipped));
    }

    #[test]
    fn internet16_odd_length_uses_zero_pad() {
        assert_eq!(internet16(&[0xab]), internet16(&[0xab, 0x00]));
    }

    #[test]
    fn dnp_block_frame_appends_two_bytes() {
        let block = [0x05u8, 0x64, 0x05, 0xc9, 0x03, 0x00, 0x04, 0x00];
        let framed = dnp_block_with_crc(&block);
        assert_eq!(framed.len(), block.len() + 2);
        assert_eq!(&framed[..block.len()], &block);
    }
}
