//! Peach-pit style data models, packet cracking and file fixup for the
//! `peachstar` ICS protocol fuzzer.
//!
//! Generation-based protocol fuzzers such as Peach describe the packets of a
//! protocol with a *data model*: a tree whose leaves are typed chunks
//! (numbers, strings, blobs) and whose internal nodes group chunks into
//! blocks, together with *relations* (e.g. a length field carrying the size
//! of another field) and *fixups* (e.g. a CRC-32 computed over part of the
//! packet). This crate is the from-scratch Rust equivalent of that machinery,
//! providing everything the DAC 2020 Peach\* reproduction needs:
//!
//! * [`DataModel`], [`Chunk`] and the fluent [`DataModelBuilder`] for
//!   describing packet formats programmatically;
//! * the [`pit`] module, a small text DSL (our stand-in for Peach Pit XML)
//!   for describing the same models in external files;
//! * [`checksum`] — CRC-32, CRC-16/Modbus, LRC and summation checksums
//!   implemented from scratch;
//! * [`Relation`] and [`Fixup`] — integrity constraints and how to
//!   re-establish them ("File Fixup" in the paper);
//! * [`crack`] — parsing concrete packet bytes against a model into an
//!   [`InsTree`] (*Instantiation Tree*, Definition 1 of the paper);
//! * [`InsTree::puzzles`] — the sub-tree *puzzle* extraction of
//!   Algorithm 2 (File Cracker);
//! * [`emit`] — serialising an instantiation tree back to bytes, with or
//!   without repairing relations and fixups.
//!
//! # Example: the Figure 1 model
//!
//! The paper's Figure 1 shows a simple model with `ID`, `Size`, `Data`
//! (three sub-chunks) and a `CRC`, where `Size = sizeof(Data)` and
//! `CRC = crc32(...)`. The same model, its emission and its cracking:
//!
//! ```
//! use peachstar_datamodel::{examples, crack::crack, emit::emit_default};
//!
//! let model = examples::figure1_model();
//! // Emit the model's default instantiation (all constraints repaired).
//! let packet = emit_default(&model)?;
//! // Crack the bytes back into an instantiation tree and collect puzzles.
//! let tree = crack(&model, &packet)?;
//! let puzzles = tree.puzzles();
//! assert!(puzzles.len() >= 4, "every sub-tree yields a puzzle");
//! # Ok::<(), peachstar_datamodel::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod checksum;
pub mod chunk;
pub mod crack;
pub mod emit;
pub mod error;
pub mod examples;
pub mod instree;
pub mod model;
pub mod pit;
pub mod types;

pub use builder::{BlockBuilder, DataModelBuilder};
pub use chunk::{BytesSpec, Chunk, ChunkKind, NumberSpec, RuleId, StrSpec};
pub use error::ModelError;
pub use instree::{InsNode, InsTree, Puzzle};
pub use model::{DataModel, DataModelSet, LinearChunk, LinearLayout};
pub use types::{ChecksumKind, Endianness, FieldRef, Fixup, LengthSpec, NumberWidth, Relation};
