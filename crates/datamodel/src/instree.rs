//! The *Instantiation Tree* (paper Definition 1) and *puzzle* extraction
//! (paper Definition 2 and Algorithm 2).

use std::fmt;

use crate::chunk::RuleId;

/// One node of an [`InsTree`]: the instantiation of a chunk's construction
/// rule, i.e. concrete bytes plus the rule they were built by.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsNode {
    /// Field name of the chunk this node instantiates.
    pub name: String,
    /// Construction rule of that chunk.
    pub rule: RuleId,
    /// Concrete bytes of this node (for internal nodes, the concatenation of
    /// the children's bytes in declaration order).
    pub content: Vec<u8>,
    /// Child nodes (empty for leaves).
    pub children: Vec<InsNode>,
}

impl InsNode {
    /// Creates a leaf node.
    #[must_use]
    pub fn leaf(name: impl Into<String>, rule: RuleId, content: Vec<u8>) -> Self {
        Self {
            name: name.into(),
            rule,
            content,
            children: Vec::new(),
        }
    }

    /// Creates an internal node from its children; the node's content is the
    /// in-order concatenation of the children's content.
    #[must_use]
    pub fn internal(name: impl Into<String>, rule: RuleId, children: Vec<InsNode>) -> Self {
        let content = children
            .iter()
            .flat_map(|child| child.content.iter().copied())
            .collect();
        Self {
            name: name.into(),
            rule,
            content,
            children,
        }
    }

    /// `true` when the node has no children.
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Total number of nodes in this subtree (including `self`).
    #[must_use]
    pub fn node_count(&self) -> usize {
        1 + self.children.iter().map(InsNode::node_count).sum::<usize>()
    }

    /// Looks up a descendant (or `self`) by field name.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<&InsNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|child| child.find(name))
    }
}

impl fmt::Display for InsNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{} bytes]", self.name, self.content.len())
    }
}

/// A *puzzle*: the in-order byte content of one sub-tree of an instantiation
/// tree, tagged with the construction rule of the sub-tree's root so that it
/// can later be donated to chunks sharing that rule.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Puzzle {
    /// Construction rule of the sub-tree root this puzzle came from.
    pub rule: RuleId,
    /// Field name of the sub-tree root (diagnostic only).
    pub origin: String,
    /// The puzzle bytes.
    pub content: Vec<u8>,
}

impl Puzzle {
    /// Creates a puzzle.
    #[must_use]
    pub fn new(rule: RuleId, origin: impl Into<String>, content: Vec<u8>) -> Self {
        Self {
            rule,
            origin: origin.into(),
            content,
        }
    }

    /// Length of the puzzle bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.content.len()
    }

    /// `true` when the puzzle carries no bytes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.content.is_empty()
    }
}

impl fmt::Display for Puzzle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "puzzle<{}> from {} ({} bytes)", self.rule, self.origin, self.len())
    }
}

/// The instantiation tree of a packet cracked against a data model.
///
/// It has the same shape as the model tree, but every node carries the
/// concrete bytes that instantiate the corresponding construction rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsTree {
    /// Name of the data model the packet was cracked against.
    pub model: String,
    /// Root node.
    pub root: InsNode,
}

impl InsTree {
    /// Creates a tree from its root node.
    #[must_use]
    pub fn new(model: impl Into<String>, root: InsNode) -> Self {
        Self {
            model: model.into(),
            root,
        }
    }

    /// The packet bytes this tree instantiates.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.root.content
    }

    /// Total number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.root.node_count()
    }

    /// Looks up a node by field name.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<&InsNode> {
        self.root.find(name)
    }

    /// Extracts every puzzle of the tree, following Algorithm 2 of the
    /// paper: a depth-first traversal in which each sub-tree contributes the
    /// in-order combination of its leaves as one puzzle.
    ///
    /// Leaves contribute their own content; internal nodes contribute the
    /// concatenation of their children. Empty puzzles are skipped.
    #[must_use]
    pub fn puzzles(&self) -> Vec<Puzzle> {
        let mut corpus = Vec::new();
        Self::dfs(&self.root, &mut corpus);
        corpus
    }

    /// Extracts only the puzzles of leaf chunks (the `leaves_only` ablation
    /// of the File Cracker).
    #[must_use]
    pub fn leaf_puzzles(&self) -> Vec<Puzzle> {
        self.puzzles_filtered(true)
    }

    fn puzzles_filtered(&self, leaves_only: bool) -> Vec<Puzzle> {
        self.puzzles()
            .into_iter()
            .filter(|puzzle| {
                if !leaves_only {
                    return true;
                }
                self.find(&puzzle.origin)
                    .map(InsNode::is_leaf)
                    .unwrap_or(false)
            })
            .collect()
    }

    // Returns the puzzle content of `node`, pushing every sub-tree puzzle to
    // `corpus` along the way (post-order, mirroring Algorithm 2's DFS).
    fn dfs(node: &InsNode, corpus: &mut Vec<Puzzle>) -> Vec<u8> {
        let content = if node.is_leaf() {
            node.content.clone()
        } else {
            let mut combined = Vec::new();
            for child in &node.children {
                combined.extend(Self::dfs(child, corpus));
            }
            combined
        };
        if !content.is_empty() {
            corpus.push(Puzzle::new(node.rule, node.name.clone(), content.clone()));
        }
        content
    }
}

impl fmt::Display for InsTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "instree of {} ({} bytes)", self.model, self.bytes().len())?;
        fn render(node: &InsNode, depth: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            writeln!(f, "{:indent$}{}", "", node, indent = depth * 2)?;
            for child in &node.children {
                render(child, depth + 1, f)?;
            }
            Ok(())
        }
        render(&self.root, 1, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(n: u64) -> RuleId {
        RuleId::from_raw(n)
    }

    /// Mirrors the paper's Figure 1 as an instantiation tree:
    /// root { ID, Size, Data { CompressionCode, SampleRate, ExtraData }, CRC }.
    fn figure1_tree() -> InsTree {
        let data = InsNode::internal(
            "Data",
            rule(30),
            vec![
                InsNode::leaf("CompressionCode", rule(31), vec![0x01]),
                InsNode::leaf("SampleRate", rule(32), vec![0xAC, 0x44]),
                InsNode::leaf("ExtraData", rule(33), vec![0xde, 0xad, 0xbe, 0xef]),
            ],
        );
        let root = InsNode::internal(
            "TheDataModel",
            rule(1),
            vec![
                InsNode::leaf("ID", rule(10), vec![0x52, 0x49]),
                InsNode::leaf("Size", rule(20), vec![0x00, 0x07]),
                data,
                InsNode::leaf("CRC", rule(40), vec![0x11, 0x22, 0x33, 0x44]),
            ],
        );
        InsTree::new("figure1", root)
    }

    #[test]
    fn internal_node_content_is_concatenation() {
        let tree = figure1_tree();
        let data = tree.find("Data").unwrap();
        assert_eq!(data.content, vec![0x01, 0xAC, 0x44, 0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(tree.bytes().len(), 2 + 2 + 7 + 4);
    }

    #[test]
    fn puzzles_cover_every_subtree() {
        let tree = figure1_tree();
        let puzzles = tree.puzzles();
        // 8 nodes, all non-empty → 8 puzzles.
        assert_eq!(puzzles.len(), tree.node_count());

        // Definition 2 examples: ID and Size are puzzles on their own...
        assert!(puzzles
            .iter()
            .any(|p| p.origin == "ID" && p.content == vec![0x52, 0x49]));
        // ...and the combination of Data's three children, in order, is one.
        assert!(puzzles
            .iter()
            .any(|p| p.origin == "Data"
                && p.content == vec![0x01, 0xAC, 0x44, 0xde, 0xad, 0xbe, 0xef]));
    }

    #[test]
    fn leaf_puzzles_exclude_internal_nodes() {
        let tree = figure1_tree();
        let leaves = tree.leaf_puzzles();
        assert_eq!(leaves.len(), 6);
        assert!(leaves.iter().all(|p| p.origin != "Data"));
        assert!(leaves.iter().all(|p| p.origin != "TheDataModel"));
    }

    #[test]
    fn puzzles_keep_rule_tags() {
        let tree = figure1_tree();
        let puzzles = tree.puzzles();
        let size = puzzles.iter().find(|p| p.origin == "Size").unwrap();
        assert_eq!(size.rule, rule(20));
    }

    #[test]
    fn empty_leaf_produces_no_puzzle() {
        let root = InsNode::internal(
            "root",
            rule(1),
            vec![
                InsNode::leaf("a", rule(2), vec![0x01]),
                InsNode::leaf("empty", rule(3), vec![]),
            ],
        );
        let tree = InsTree::new("m", root);
        let puzzles = tree.puzzles();
        assert!(puzzles.iter().all(|p| p.origin != "empty"));
        assert!(!puzzles.iter().any(|p| p.is_empty()));
    }

    #[test]
    fn find_descends_the_tree() {
        let tree = figure1_tree();
        assert!(tree.find("SampleRate").is_some());
        assert!(tree.find("nonexistent").is_none());
    }

    #[test]
    fn display_renders_all_nodes() {
        let text = figure1_tree().to_string();
        for name in ["TheDataModel", "ID", "Size", "Data", "CRC", "SampleRate"] {
            assert!(text.contains(name), "missing {name} in display output");
        }
    }
}
