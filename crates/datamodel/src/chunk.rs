//! Chunk definitions: the nodes of a data-model tree.

use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::types::{Endianness, Fixup, LengthSpec, NumberWidth, Relation};

/// Identifier of a chunk's *construction rule*.
///
/// The Peach\* insight (paper §III, Figure 2) is that chunks belonging to
/// different packet types often conform to the same or similar construction
/// rules; a puzzle cracked from one packet type can therefore be donated when
/// generating another. The rule id is what links a puzzle in the corpus to
/// the positions where it may be donated.
///
/// By default the id is derived structurally from the chunk specification
/// (width, endianness, length behaviour, …), so identically-specified chunks
/// in different models automatically share a rule. A model author may also
/// assign an explicit rule name (e.g. `"asdu-address"`) to force sharing
/// between chunks whose specs differ superficially.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RuleId(u64);

impl RuleId {
    /// Creates a rule id from an explicit name.
    #[must_use]
    pub fn named(name: &str) -> Self {
        let mut hasher = DefaultHasher::new();
        "explicit-rule".hash(&mut hasher);
        name.hash(&mut hasher);
        Self(hasher.finish())
    }

    /// Creates a rule id from a raw hash value.
    #[must_use]
    pub const fn from_raw(raw: u64) -> Self {
        Self(raw)
    }

    /// Raw hash value of the rule id.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule:{:016x}", self.0)
    }
}

/// Specification of a numeric chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NumberSpec {
    /// Width in bytes.
    pub width: NumberWidth,
    /// Byte order.
    pub endian: Endianness,
    /// Default value emitted when nothing else is specified.
    pub default: u64,
    /// Legal values, if the field is constrained (e.g. a function code).
    /// `None` means any value of the width is legal.
    pub allowed: Option<Vec<u64>>,
    /// Relation deriving this field's value from another chunk's size.
    pub relation: Option<Relation>,
    /// Fixup overwriting this field's value with a checksum.
    pub fixup: Option<Fixup>,
}

impl NumberSpec {
    /// A big-endian number of the given width with default value 0.
    #[must_use]
    pub fn new(width: NumberWidth) -> Self {
        Self {
            width,
            endian: Endianness::Big,
            default: 0,
            allowed: None,
            relation: None,
            fixup: None,
        }
    }

    /// One-byte number.
    #[must_use]
    pub fn u8() -> Self {
        Self::new(NumberWidth::U8)
    }

    /// Two-byte big-endian number.
    #[must_use]
    pub fn u16_be() -> Self {
        Self::new(NumberWidth::U16)
    }

    /// Two-byte little-endian number.
    #[must_use]
    pub fn u16_le() -> Self {
        Self::new(NumberWidth::U16).endian(Endianness::Little)
    }

    /// Four-byte big-endian number.
    #[must_use]
    pub fn u32_be() -> Self {
        Self::new(NumberWidth::U32)
    }

    /// Four-byte little-endian number.
    #[must_use]
    pub fn u32_le() -> Self {
        Self::new(NumberWidth::U32).endian(Endianness::Little)
    }

    /// Sets the byte order.
    #[must_use]
    pub fn endian(mut self, endian: Endianness) -> Self {
        self.endian = endian;
        self
    }

    /// Sets the default value.
    #[must_use]
    pub fn default_value(mut self, value: u64) -> Self {
        self.default = value;
        self
    }

    /// Constrains the field to exactly one legal value (also used as the
    /// default). Typical for function-code / type-id fields.
    #[must_use]
    pub fn fixed_value(mut self, value: u64) -> Self {
        self.default = value;
        self.allowed = Some(vec![value]);
        self
    }

    /// Constrains the field to a set of legal values; the first becomes the
    /// default.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    #[must_use]
    pub fn allowed_values(mut self, values: Vec<u64>) -> Self {
        assert!(!values.is_empty(), "allowed value set must not be empty");
        self.default = values[0];
        self.allowed = Some(values);
        self
    }

    /// Attaches a relation.
    #[must_use]
    pub fn relation(mut self, relation: Relation) -> Self {
        self.relation = Some(relation);
        self
    }

    /// Attaches a fixup.
    #[must_use]
    pub fn fixup(mut self, fixup: Fixup) -> Self {
        self.fixup = Some(fixup);
        self
    }

    /// Encodes `value` at this spec's width and endianness.
    #[must_use]
    pub fn encode(&self, value: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.width.bytes());
        self.encode_into(value, &mut out);
        out
    }

    /// [`encode`](NumberSpec::encode) appended to a caller-provided buffer —
    /// the per-leaf emission path uses this so that emitting a packet never
    /// allocates one small vector per number field.
    pub fn encode_into(&self, value: u64, out: &mut Vec<u8>) {
        let bytes = value.to_be_bytes();
        let width = self.width.bytes();
        let slice = &bytes[8 - width..];
        match self.endian {
            Endianness::Big => out.extend_from_slice(slice),
            Endianness::Little => out.extend(slice.iter().rev().copied()),
        }
    }

    /// Decodes a value from `bytes` (must be exactly the spec's width).
    ///
    /// Returns `None` when `bytes` has the wrong length.
    #[must_use]
    pub fn decode(&self, bytes: &[u8]) -> Option<u64> {
        if bytes.len() != self.width.bytes() {
            return None;
        }
        let mut buf = [0u8; 8];
        match self.endian {
            Endianness::Big => buf[8 - bytes.len()..].copy_from_slice(bytes),
            Endianness::Little => {
                for (i, &byte) in bytes.iter().enumerate() {
                    buf[7 - i] = byte;
                }
            }
        }
        Some(u64::from_be_bytes(buf))
    }

    /// Decodes wire bytes of *any* length in this spec's endianness, keeping
    /// the least significant eight bytes.
    ///
    /// This is the normalisation [`emit_values`](crate::emit::emit_values)
    /// applies to provided number content: cracked trees and mutators both
    /// hand over wire bytes, and re-encoding the decoded value repairs the
    /// width without disturbing a correctly-sized field.
    #[must_use]
    pub fn decode_lossy(&self, bytes: &[u8]) -> u64 {
        let take = bytes.len().min(8);
        let mut value = 0u64;
        match self.endian {
            // Least significant wire bytes are the trailing ones.
            Endianness::Big => {
                for &byte in &bytes[bytes.len() - take..] {
                    value = (value << 8) | u64::from(byte);
                }
            }
            // Least significant wire bytes are the leading ones.
            Endianness::Little => {
                for (index, &byte) in bytes[..take].iter().enumerate() {
                    value |= u64::from(byte) << (8 * index);
                }
            }
        }
        value
    }

    /// Whether `value` is legal for this field.
    #[must_use]
    pub fn is_legal(&self, value: u64) -> bool {
        if value > self.width.max_value() {
            return false;
        }
        match &self.allowed {
            Some(values) => values.contains(&value),
            None => true,
        }
    }
}

/// Specification of a raw-bytes (blob) chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BytesSpec {
    /// How many bytes the chunk occupies.
    pub length: LengthSpec,
    /// Default content emitted when nothing else is specified. For
    /// fixed-length chunks shorter defaults are zero-padded and longer ones
    /// truncated at emission time.
    pub default: Vec<u8>,
}

impl BytesSpec {
    /// Fixed-length blob of `len` bytes, default all zero.
    #[must_use]
    pub fn fixed(len: usize) -> Self {
        Self {
            length: LengthSpec::Fixed(len),
            default: vec![0u8; len],
        }
    }

    /// Blob whose length is carried by the named field.
    #[must_use]
    pub fn length_from(field: impl Into<crate::types::FieldRef>) -> Self {
        Self {
            length: LengthSpec::FromField(field.into()),
            default: Vec::new(),
        }
    }

    /// Blob consuming the rest of the enclosing scope.
    #[must_use]
    pub fn remainder() -> Self {
        Self {
            length: LengthSpec::Remainder,
            default: Vec::new(),
        }
    }

    /// Sets the default content.
    #[must_use]
    pub fn default_content(mut self, content: Vec<u8>) -> Self {
        self.default = content;
        self
    }
}

/// Specification of a string chunk (ASCII payloads such as object names in
/// MMS / ICCP).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrSpec {
    /// How many bytes the string occupies.
    pub length: LengthSpec,
    /// Default content.
    pub default: String,
    /// Whether cracked content must be printable ASCII to be considered
    /// legal.
    pub ascii_only: bool,
}

impl StrSpec {
    /// String whose length is carried by the named field.
    #[must_use]
    pub fn length_from(field: impl Into<crate::types::FieldRef>) -> Self {
        Self {
            length: LengthSpec::FromField(field.into()),
            default: String::new(),
            ascii_only: false,
        }
    }

    /// Fixed-length string.
    #[must_use]
    pub fn fixed(len: usize) -> Self {
        Self {
            length: LengthSpec::Fixed(len),
            default: String::new(),
            ascii_only: false,
        }
    }

    /// String consuming the rest of the enclosing scope.
    #[must_use]
    pub fn remainder() -> Self {
        Self {
            length: LengthSpec::Remainder,
            default: String::new(),
            ascii_only: false,
        }
    }

    /// Sets the default content.
    #[must_use]
    pub fn default_content(mut self, content: impl Into<String>) -> Self {
        self.default = content.into();
        self
    }

    /// Requires cracked content to be printable ASCII.
    #[must_use]
    pub fn ascii(mut self) -> Self {
        self.ascii_only = true;
        self
    }
}

/// The kind of a chunk: a typed leaf or a structural node.
#[derive(Debug, Clone, PartialEq)]
pub enum ChunkKind {
    /// Numeric leaf.
    Number(NumberSpec),
    /// Raw-bytes leaf.
    Bytes(BytesSpec),
    /// String leaf.
    Str(StrSpec),
    /// Ordered group of child chunks.
    Block(Vec<Chunk>),
    /// Exactly one of the child chunks matches (tried in order when
    /// cracking; the first child is the default when generating).
    Choice(Vec<Chunk>),
}

impl ChunkKind {
    /// `true` for leaf kinds (number, bytes, string).
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        matches!(
            self,
            ChunkKind::Number(_) | ChunkKind::Bytes(_) | ChunkKind::Str(_)
        )
    }

    fn structural_signature(&self, hasher: &mut DefaultHasher) {
        match self {
            ChunkKind::Number(spec) => {
                "number".hash(hasher);
                spec.width.bytes().hash(hasher);
                matches!(spec.endian, Endianness::Little).hash(hasher);
                spec.allowed.is_some().hash(hasher);
                spec.relation.is_some().hash(hasher);
                spec.fixup.as_ref().map(|f| f.kind.to_string()).hash(hasher);
            }
            ChunkKind::Bytes(spec) => {
                "bytes".hash(hasher);
                match &spec.length {
                    LengthSpec::Fixed(n) => {
                        "fixed".hash(hasher);
                        n.hash(hasher);
                    }
                    LengthSpec::FromField(_) => "from-field".hash(hasher),
                    LengthSpec::Remainder => "remainder".hash(hasher),
                }
            }
            ChunkKind::Str(spec) => {
                "str".hash(hasher);
                match &spec.length {
                    LengthSpec::Fixed(n) => {
                        "fixed".hash(hasher);
                        n.hash(hasher);
                    }
                    LengthSpec::FromField(_) => "from-field".hash(hasher),
                    LengthSpec::Remainder => "remainder".hash(hasher),
                }
                spec.ascii_only.hash(hasher);
            }
            ChunkKind::Block(children) => {
                "block".hash(hasher);
                children.len().hash(hasher);
                for child in children {
                    child.kind.structural_signature(hasher);
                }
            }
            ChunkKind::Choice(options) => {
                "choice".hash(hasher);
                options.len().hash(hasher);
                for option in options {
                    option.kind.structural_signature(hasher);
                }
            }
        }
    }
}

/// A node of the data-model tree: a named, rule-tagged chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct Chunk {
    /// Field name, unique within its [`DataModel`](crate::DataModel).
    pub name: String,
    /// Explicit rule name, if the model author assigned one.
    pub explicit_rule: Option<String>,
    /// The chunk's kind.
    pub kind: ChunkKind,
}

impl Chunk {
    /// Creates a chunk.
    #[must_use]
    pub fn new(name: impl Into<String>, kind: ChunkKind) -> Self {
        Self {
            name: name.into(),
            explicit_rule: None,
            kind,
        }
    }

    /// Creates a numeric chunk.
    #[must_use]
    pub fn number(name: impl Into<String>, spec: NumberSpec) -> Self {
        Self::new(name, ChunkKind::Number(spec))
    }

    /// Creates a raw-bytes chunk.
    #[must_use]
    pub fn bytes(name: impl Into<String>, spec: BytesSpec) -> Self {
        Self::new(name, ChunkKind::Bytes(spec))
    }

    /// Creates a string chunk.
    #[must_use]
    pub fn str(name: impl Into<String>, spec: StrSpec) -> Self {
        Self::new(name, ChunkKind::Str(spec))
    }

    /// Creates a block chunk with the given children.
    #[must_use]
    pub fn block(name: impl Into<String>, children: Vec<Chunk>) -> Self {
        Self::new(name, ChunkKind::Block(children))
    }

    /// Creates a choice chunk with the given options.
    #[must_use]
    pub fn choice(name: impl Into<String>, options: Vec<Chunk>) -> Self {
        Self::new(name, ChunkKind::Choice(options))
    }

    /// Assigns an explicit construction-rule name, forcing rule sharing with
    /// any other chunk carrying the same name.
    #[must_use]
    pub fn with_rule(mut self, rule: impl Into<String>) -> Self {
        self.explicit_rule = Some(rule.into());
        self
    }

    /// `true` if this chunk is a leaf (number, bytes or string).
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        self.kind.is_leaf()
    }

    /// The chunk's construction-rule identifier.
    ///
    /// Explicit rule names take precedence; otherwise the id is a structural
    /// hash of the specification, so equally-specified chunks share a rule
    /// even across different models.
    #[must_use]
    pub fn rule_id(&self) -> RuleId {
        if let Some(rule) = &self.explicit_rule {
            return RuleId::named(rule);
        }
        let mut hasher = DefaultHasher::new();
        "structural-rule".hash(&mut hasher);
        self.kind.structural_signature(&mut hasher);
        RuleId::from_raw(hasher.finish())
    }

    /// Child chunks (empty for leaves).
    #[must_use]
    pub fn children(&self) -> &[Chunk] {
        match &self.kind {
            ChunkKind::Block(children) | ChunkKind::Choice(children) => children,
            _ => &[],
        }
    }

    /// The minimal number of bytes any instantiation of this chunk occupies
    /// on the wire: variable-length content (remainder / field-driven
    /// lengths) counts as zero.
    ///
    /// The cracker uses this to stop a greedy [`LengthSpec::Remainder`]
    /// field from swallowing the bytes of fixed-size siblings that follow
    /// it (e.g. a trailing CRC).
    #[must_use]
    pub fn min_encoded_size(&self) -> usize {
        match &self.kind {
            ChunkKind::Number(spec) => spec.width.bytes(),
            ChunkKind::Bytes(spec) => match spec.length {
                crate::types::LengthSpec::Fixed(len) => len,
                _ => 0,
            },
            ChunkKind::Str(spec) => match spec.length {
                crate::types::LengthSpec::Fixed(len) => len,
                _ => 0,
            },
            ChunkKind::Block(children) => {
                children.iter().map(Chunk::min_encoded_size).sum()
            }
            ChunkKind::Choice(options) => options
                .iter()
                .map(Chunk::min_encoded_size)
                .min()
                .unwrap_or(0),
        }
    }

    /// Iterates over this chunk and all descendants in depth-first,
    /// declaration order.
    pub fn iter(&self) -> impl Iterator<Item = &Chunk> {
        let mut stack = vec![self];
        std::iter::from_fn(move || {
            let next = stack.pop()?;
            for child in next.children().iter().rev() {
                stack.push(child);
            }
            Some(next)
        })
    }
}

impl fmt::Display for Chunk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match &self.kind {
            ChunkKind::Number(spec) => format!("number<{}>", spec.width),
            ChunkKind::Bytes(spec) => format!("bytes<{}>", spec.length),
            ChunkKind::Str(spec) => format!("str<{}>", spec.length),
            ChunkKind::Block(children) => format!("block[{}]", children.len()),
            ChunkKind::Choice(options) => format!("choice[{}]", options.len()),
        };
        write!(f, "{} : {}", self.name, kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_encode_decode_roundtrip() {
        let spec = NumberSpec::u32_be().default_value(7);
        for value in [0u64, 1, 0xdead_beef, u32::MAX as u64] {
            let encoded = spec.encode(value);
            assert_eq!(encoded.len(), 4);
            assert_eq!(spec.decode(&encoded), Some(value));
        }
    }

    #[test]
    fn number_little_endian_encoding() {
        let spec = NumberSpec::u16_le();
        assert_eq!(spec.encode(0x1234), vec![0x34, 0x12]);
        assert_eq!(spec.decode(&[0x34, 0x12]), Some(0x1234));
    }

    #[test]
    fn number_decode_wrong_length_is_none() {
        assert_eq!(NumberSpec::u16_be().decode(&[0x01]), None);
        assert_eq!(NumberSpec::u8().decode(&[]), None);
    }

    #[test]
    fn legality_respects_allowed_set_and_width() {
        let fc = NumberSpec::u8().allowed_values(vec![1, 2, 3, 4]);
        assert!(fc.is_legal(3));
        assert!(!fc.is_legal(9));
        let narrow = NumberSpec::u8();
        assert!(!narrow.is_legal(0x100));
    }

    #[test]
    fn fixed_value_sets_default_and_allowed() {
        let spec = NumberSpec::u8().fixed_value(0x2a);
        assert_eq!(spec.default, 0x2a);
        assert_eq!(spec.allowed, Some(vec![0x2a]));
    }

    #[test]
    fn structural_rule_ids_shared_across_identical_specs() {
        let a = Chunk::number("start_addr", NumberSpec::u16_be());
        let b = Chunk::number("output_addr", NumberSpec::u16_be());
        assert_eq!(a.rule_id(), b.rule_id(), "same spec, same rule");

        let c = Chunk::number("count", NumberSpec::u16_le());
        assert_ne!(a.rule_id(), c.rule_id(), "different endianness, different rule");
    }

    #[test]
    fn explicit_rule_overrides_structure() {
        let a = Chunk::number("addr", NumberSpec::u16_be()).with_rule("ioa");
        let b = Chunk::number("addr2", NumberSpec::u32_be()).with_rule("ioa");
        assert_eq!(a.rule_id(), b.rule_id());
        assert_eq!(RuleId::named("ioa"), a.rule_id());
    }

    #[test]
    fn iter_visits_depth_first_in_declaration_order() {
        let model = Chunk::block(
            "root",
            vec![
                Chunk::number("a", NumberSpec::u8()),
                Chunk::block(
                    "b",
                    vec![
                        Chunk::number("b1", NumberSpec::u8()),
                        Chunk::number("b2", NumberSpec::u8()),
                    ],
                ),
                Chunk::number("c", NumberSpec::u8()),
            ],
        );
        let names: Vec<&str> = model.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["root", "a", "b", "b1", "b2", "c"]);
    }

    #[test]
    fn display_is_informative() {
        let chunk = Chunk::bytes("payload", BytesSpec::remainder());
        assert!(chunk.to_string().contains("payload"));
        assert!(chunk.to_string().contains("bytes"));
    }
}
