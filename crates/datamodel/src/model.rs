//! The [`DataModel`] (one packet type), the [`DataModelSet`] (a whole format
//! specification) and the linearised view used by the generators.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::chunk::{Chunk, ChunkKind, NumberSpec, RuleId};
use crate::error::ModelError;

/// A complete data model for one packet type, i.e. one `Mᵢ` of the paper.
///
/// A model owns a tree of [`Chunk`]s. ICS protocols usually define one model
/// per function code / type identifier; the whole format specification is the
/// [`DataModelSet`].
///
/// ```
/// use peachstar_datamodel::{Chunk, DataModel, NumberSpec};
///
/// let model = DataModel::new(
///     "ping",
///     Chunk::block("packet", vec![
///         Chunk::number("opcode", NumberSpec::u8().fixed_value(0x01)),
///         Chunk::number("cookie", NumberSpec::u32_be()),
///     ]),
/// )?;
/// assert_eq!(model.linear().len(), 2);
/// # Ok::<(), peachstar_datamodel::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DataModel {
    name: String,
    root: Chunk,
    /// Linearised view, computed once at construction. Models are immutable
    /// after [`DataModel::new`], so the cache can never go stale.
    layout: LinearLayout,
}

impl PartialEq for DataModel {
    fn eq(&self, other: &Self) -> bool {
        // The layout is derived from the root, so comparing it would only
        // re-compare the leaves.
        self.name == other.name && self.root == other.root
    }
}

impl DataModel {
    /// Creates a model from its root chunk, validating that the tree is
    /// non-empty, that field names are unique and that every relation,
    /// fixup and length reference points at an existing field.
    ///
    /// The linearised leaf view ([`DataModel::linear`]) is precomputed here,
    /// once, so the generators' per-packet hot path never re-walks the tree.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyModel`], [`ModelError::DuplicateField`]
    /// or [`ModelError::UnknownField`] when the model is malformed.
    pub fn new(name: impl Into<String>, root: Chunk) -> Result<Self, ModelError> {
        let name = name.into();
        let mut model = Self {
            name,
            root,
            layout: LinearLayout::default(),
        };
        model.validate()?;
        model.layout = LinearLayout::compute(&model.root);
        Ok(model)
    }

    fn validate(&self) -> Result<(), ModelError> {
        if self.root.children().is_empty() && !self.root.is_leaf() {
            return Err(ModelError::EmptyModel {
                model: self.name.clone(),
            });
        }
        let mut seen = HashSet::new();
        for chunk in self.root.iter() {
            if !seen.insert(chunk.name.clone()) {
                return Err(ModelError::DuplicateField {
                    field: chunk.name.clone(),
                });
            }
        }
        // Every reference must resolve.
        for chunk in self.root.iter() {
            let check = |field: &crate::types::FieldRef| -> Result<(), ModelError> {
                if seen.contains(field.name()) {
                    Ok(())
                } else {
                    Err(ModelError::UnknownField {
                        field: field.name().to_string(),
                    })
                }
            };
            match &chunk.kind {
                ChunkKind::Number(spec) => {
                    if let Some(relation) = &spec.relation {
                        check(relation.target())?;
                    }
                    if let Some(fixup) = &spec.fixup {
                        for field in &fixup.over {
                            check(field)?;
                        }
                    }
                }
                ChunkKind::Bytes(spec) => {
                    if let crate::types::LengthSpec::FromField(field) = &spec.length {
                        check(field)?;
                    }
                }
                ChunkKind::Str(spec) => {
                    if let crate::types::LengthSpec::FromField(field) = &spec.length {
                        check(field)?;
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// The model's name (e.g. `"read_holding_registers"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The root chunk of the model tree.
    #[must_use]
    pub fn root(&self) -> &Chunk {
        &self.root
    }

    /// Finds a chunk by field name.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<&Chunk> {
        self.root.iter().find(|chunk| chunk.name == name)
    }

    /// The linearised view of the model: its leaf chunks in packet order,
    /// with choice nodes resolved to their first (default) option.
    ///
    /// This corresponds to the linear model `M_L` of the paper's Figure 2(a)
    /// and Algorithm 3. The view is computed once in [`DataModel::new`] and
    /// returned by reference, so calling this per generated packet is free.
    #[must_use]
    pub fn linear(&self) -> &LinearLayout {
        &self.layout
    }

    /// All construction-rule identifiers appearing in this model (leaves and
    /// internal nodes), in depth-first order, deduplicated.
    #[must_use]
    pub fn rule_ids(&self) -> Vec<RuleId> {
        let mut seen = HashSet::new();
        let mut rules = Vec::new();
        for chunk in self.root.iter() {
            let rule = chunk.rule_id();
            if seen.insert(rule) {
                rules.push(rule);
            }
        }
        rules
    }
}

impl fmt::Display for DataModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "model {}", self.name)?;
        fn render(chunk: &Chunk, depth: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            writeln!(f, "{:indent$}{}", "", chunk, indent = depth * 2)?;
            for child in chunk.children() {
                render(child, depth + 1, f)?;
            }
            Ok(())
        }
        render(&self.root, 1, f)
    }
}

/// One leaf position of a [`LinearLayout`].
///
/// Owns a copy of the leaf chunk (leaves are small type specifications), so
/// the layout needs no lifetime tie to the model tree and can be cached
/// inside the [`DataModel`] itself.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearChunk {
    /// The leaf chunk definition.
    pub chunk: Chunk,
    /// Dotted path from the root to the leaf (e.g. `"packet.pdu.function"`).
    pub path: String,
}

/// Linearised view of a [`DataModel`]: the ordered leaf chunks, plus the
/// per-position construction rules and a name → ordinal index over *all*
/// named chunks of the tree (used by the emitter's span table).
///
/// Computed once per model at construction — the per-packet generators and
/// the emitter only read it.
#[derive(Debug, Clone, Default)]
pub struct LinearLayout {
    leaves: Vec<LinearChunk>,
    rules: Vec<RuleId>,
    /// Ordinal of every named chunk (leaves *and* structural nodes) in
    /// depth-first order. Field names are unique (validated), so the map is
    /// injective; the emitter indexes its span table with these ordinals
    /// instead of allocating `String` keys per packet.
    ordinals: HashMap<String, usize>,
    /// Span-table ordinal of the n-th chunk the *emitter* visits (its DFS
    /// descends only into the first option of a choice, so this is a strict
    /// subsequence of `ordinals`). Precomputed so the per-packet emission
    /// loop indexes an array instead of hashing a chunk name per node.
    visit_ordinals: Vec<usize>,
    /// Relation fields to repair after emission, in tree order.
    relation_repairs: Vec<RelationRepair>,
    /// Fixup fields to repair after emission (after all relations), in tree
    /// order.
    fixup_repairs: Vec<FixupRepair>,
}

/// One precompiled relation repair: re-encode the field at span ordinal
/// `own` from the emitted length of span ordinal `target`.
#[derive(Debug, Clone)]
pub(crate) struct RelationRepair {
    pub(crate) own: usize,
    pub(crate) target: usize,
    pub(crate) spec: NumberSpec,
}

/// One precompiled fixup repair: re-encode the checksum at span ordinal
/// `own` over the emitted bytes of the spans in `over`.
#[derive(Debug, Clone)]
pub(crate) struct FixupRepair {
    pub(crate) own: usize,
    pub(crate) over: Vec<usize>,
    pub(crate) spec: NumberSpec,
}

impl LinearLayout {
    fn compute(root: &Chunk) -> Self {
        let mut layout = Self::default();
        let mut path = Vec::new();
        layout.collect(root, &mut path);
        for chunk in root.iter() {
            let ordinal = layout.ordinals.len();
            layout.ordinals.insert(chunk.name.clone(), ordinal);
        }
        layout.collect_visit_ordinals(root);
        // Precompile the File Fixup passes (relations first, then fixups,
        // both in tree order — the order `repair` historically applied
        // them). Model validation guarantees every referenced field exists,
        // so the ordinal lookups cannot fail here.
        for chunk in root.iter() {
            let ChunkKind::Number(spec) = &chunk.kind else {
                continue;
            };
            let own = layout.ordinals[&chunk.name];
            if let Some(relation) = &spec.relation {
                if let Some(&target) = layout.ordinals.get(relation.target().name()) {
                    layout.relation_repairs.push(RelationRepair {
                        own,
                        target,
                        spec: spec.clone(),
                    });
                }
            }
            if let Some(fixup) = &spec.fixup {
                let over = fixup
                    .over
                    .iter()
                    .filter_map(|field| layout.ordinals.get(field.name()).copied())
                    .collect();
                layout.fixup_repairs.push(FixupRepair {
                    own,
                    over,
                    spec: spec.clone(),
                });
            }
        }
        layout
    }

    /// Mirrors the emitter's traversal (all block children, only the first
    /// choice option), recording each visited chunk's span ordinal in visit
    /// order.
    fn collect_visit_ordinals(&mut self, chunk: &Chunk) {
        self.visit_ordinals.push(self.ordinals[&chunk.name]);
        match &chunk.kind {
            ChunkKind::Block(children) => {
                for child in children {
                    self.collect_visit_ordinals(child);
                }
            }
            ChunkKind::Choice(options) => {
                if let Some(first) = options.first() {
                    self.collect_visit_ordinals(first);
                }
            }
            _ => {}
        }
    }

    fn collect(&mut self, chunk: &Chunk, path: &mut Vec<String>) {
        path.push(chunk.name.clone());
        match &chunk.kind {
            ChunkKind::Block(children) => {
                for child in children {
                    self.collect(child, path);
                }
            }
            ChunkKind::Choice(options) => {
                if let Some(first) = options.first() {
                    self.collect(first, path);
                }
            }
            _ => {
                self.rules.push(chunk.rule_id());
                self.leaves.push(LinearChunk {
                    chunk: chunk.clone(),
                    path: path.join("."),
                });
            }
        }
        path.pop();
    }

    /// Number of leaf positions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// `true` when the model has no leaves.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// The leaf at `index`.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<&LinearChunk> {
        self.leaves.get(index)
    }

    /// Iterates over the leaf positions in packet order.
    pub fn iter(&self) -> impl Iterator<Item = &LinearChunk> {
        self.leaves.iter()
    }

    /// The construction rule at each position, in order.
    #[must_use]
    pub fn rules(&self) -> &[RuleId] {
        &self.rules
    }

    /// Ordinal of the named chunk in the span table, if it exists.
    #[must_use]
    pub fn ordinal(&self, name: &str) -> Option<usize> {
        self.ordinals.get(name).copied()
    }

    /// Number of named chunks (leaves and structural nodes) in the model —
    /// the size of the emitter's span table.
    #[must_use]
    pub fn chunk_count(&self) -> usize {
        self.ordinals.len()
    }

    /// Span ordinals in emitter visit order (see `visit_ordinals`).
    pub(crate) fn visit_ordinals(&self) -> &[usize] {
        &self.visit_ordinals
    }

    /// The precompiled relation repairs, in tree order.
    pub(crate) fn relation_repairs(&self) -> &[RelationRepair] {
        &self.relation_repairs
    }

    /// The precompiled fixup repairs, in tree order.
    pub(crate) fn fixup_repairs(&self) -> &[FixupRepair] {
        &self.fixup_repairs
    }
}

/// A complete format specification `G`: the set of data models of a protocol,
/// one per packet type.
///
/// ```
/// use peachstar_datamodel::{Chunk, DataModel, DataModelSet, NumberSpec};
///
/// let mut set = DataModelSet::new("toy");
/// set.push(DataModel::new(
///     "ping",
///     Chunk::number("opcode", NumberSpec::u8().fixed_value(1)),
/// )?);
/// assert_eq!(set.len(), 1);
/// assert!(set.find("ping").is_some());
/// # Ok::<(), peachstar_datamodel::ModelError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct DataModelSet {
    name: String,
    models: Vec<DataModel>,
}

impl DataModelSet {
    /// Creates an empty set named after the protocol.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            models: Vec::new(),
        }
    }

    /// The protocol name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a model to the set.
    pub fn push(&mut self, model: DataModel) {
        self.models.push(model);
    }

    /// Number of models in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// `true` when the set contains no models.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// The models, in insertion order.
    #[must_use]
    pub fn models(&self) -> &[DataModel] {
        &self.models
    }

    /// Looks a model up by name.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<&DataModel> {
        self.models.iter().find(|m| m.name() == name)
    }

    /// Looks a model up by name, returning an error when absent.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownModel`] when no model has that name.
    pub fn require(&self, name: &str) -> Result<&DataModel, ModelError> {
        self.find(name).ok_or_else(|| ModelError::UnknownModel {
            model: name.to_string(),
        })
    }

    /// Fraction of construction rules shared by at least two models of the
    /// set (the quantity behind Figure 2 of the paper: how much do packet
    /// types overlap structurally?).
    ///
    /// Returns 0.0 for sets with fewer than two models.
    #[must_use]
    pub fn rule_overlap(&self) -> f64 {
        if self.models.len() < 2 {
            return 0.0;
        }
        let mut counts = std::collections::HashMap::new();
        for model in &self.models {
            for rule in model.rule_ids() {
                *counts.entry(rule).or_insert(0usize) += 1;
            }
        }
        if counts.is_empty() {
            return 0.0;
        }
        let shared = counts.values().filter(|&&count| count >= 2).count();
        shared as f64 / counts.len() as f64
    }
}

impl FromIterator<DataModel> for DataModelSet {
    fn from_iter<T: IntoIterator<Item = DataModel>>(iter: T) -> Self {
        let mut set = DataModelSet::new("unnamed");
        for model in iter {
            set.push(model);
        }
        set
    }
}

impl Extend<DataModel> for DataModelSet {
    fn extend<T: IntoIterator<Item = DataModel>>(&mut self, iter: T) {
        for model in iter {
            self.push(model);
        }
    }
}

impl fmt::Display for DataModelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "format {} ({} models)", self.name, self.models.len())?;
        for model in &self.models {
            writeln!(f, "  - {}", model.name())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::{BytesSpec, NumberSpec};
    use crate::types::{Fixup, Relation};

    fn simple_model() -> DataModel {
        DataModel::new(
            "simple",
            Chunk::block(
                "packet",
                vec![
                    Chunk::number("id", NumberSpec::u8().fixed_value(0x10)),
                    Chunk::number(
                        "size",
                        NumberSpec::u16_be().relation(Relation::size_of("data")),
                    ),
                    Chunk::bytes("data", BytesSpec::length_from("size")),
                    Chunk::number("crc", NumberSpec::u32_be().fixup(Fixup::crc32("data"))),
                ],
            ),
        )
        .expect("valid model")
    }

    #[test]
    fn linear_model_orders_leaves() {
        let model = simple_model();
        let linear = model.linear();
        let names: Vec<&str> = linear.iter().map(|l| l.chunk.name.as_str()).collect();
        assert_eq!(names, vec!["id", "size", "data", "crc"]);
        assert_eq!(linear.len(), 4);
        assert!(!linear.is_empty());
        assert_eq!(linear.get(0).unwrap().path, "packet.id");
    }

    #[test]
    fn duplicate_field_rejected() {
        let result = DataModel::new(
            "dup",
            Chunk::block(
                "p",
                vec![
                    Chunk::number("x", NumberSpec::u8()),
                    Chunk::number("x", NumberSpec::u8()),
                ],
            ),
        );
        assert!(matches!(result, Err(ModelError::DuplicateField { .. })));
    }

    #[test]
    fn dangling_reference_rejected() {
        let result = DataModel::new(
            "dangling",
            Chunk::block(
                "p",
                vec![Chunk::number(
                    "size",
                    NumberSpec::u16_be().relation(Relation::size_of("nope")),
                )],
            ),
        );
        assert!(matches!(result, Err(ModelError::UnknownField { .. })));
    }

    #[test]
    fn empty_block_rejected() {
        let result = DataModel::new("empty", Chunk::block("p", vec![]));
        assert!(matches!(result, Err(ModelError::EmptyModel { .. })));
    }

    #[test]
    fn single_leaf_model_is_valid() {
        let model = DataModel::new("leaf", Chunk::number("x", NumberSpec::u8()));
        assert!(model.is_ok());
    }

    #[test]
    fn choice_linearises_first_option() {
        let model = DataModel::new(
            "choice",
            Chunk::block(
                "p",
                vec![Chunk::choice(
                    "body",
                    vec![
                        Chunk::number("read", NumberSpec::u8().fixed_value(1)),
                        Chunk::number("write", NumberSpec::u8().fixed_value(2)),
                    ],
                )],
            ),
        )
        .unwrap();
        let names: Vec<&str> = model.linear().iter().map(|l| l.chunk.name.as_str()).collect();
        assert_eq!(names, vec!["read"]);
    }

    #[test]
    fn find_locates_nested_chunks() {
        let model = simple_model();
        assert!(model.find("data").is_some());
        assert!(model.find("packet").is_some());
        assert!(model.find("missing").is_none());
    }

    #[test]
    fn model_set_lookup_and_require() {
        let mut set = DataModelSet::new("toy");
        set.push(simple_model());
        assert_eq!(set.len(), 1);
        assert!(set.find("simple").is_some());
        assert!(set.require("simple").is_ok());
        assert!(matches!(
            set.require("absent"),
            Err(ModelError::UnknownModel { .. })
        ));
    }

    #[test]
    fn rule_overlap_detects_shared_rules() {
        let model_a = DataModel::new(
            "a",
            Chunk::block(
                "pa",
                vec![
                    Chunk::number("fc_a", NumberSpec::u8().fixed_value(1)),
                    Chunk::number("addr_a", NumberSpec::u16_be()),
                ],
            ),
        )
        .unwrap();
        let model_b = DataModel::new(
            "b",
            Chunk::block(
                "pb",
                vec![
                    Chunk::number("fc_b", NumberSpec::u8().fixed_value(2)),
                    Chunk::number("addr_b", NumberSpec::u16_be()),
                ],
            ),
        )
        .unwrap();
        let set: DataModelSet = vec![model_a, model_b].into_iter().collect();
        assert!(set.rule_overlap() > 0.0, "u16-be address rule is shared");

        let lone: DataModelSet = std::iter::once(simple_model()).collect();
        assert_eq!(lone.rule_overlap(), 0.0);
    }

    #[test]
    fn display_lists_models() {
        let mut set = DataModelSet::new("modbus");
        set.push(simple_model());
        let text = set.to_string();
        assert!(text.contains("modbus"));
        assert!(text.contains("simple"));
    }
}
