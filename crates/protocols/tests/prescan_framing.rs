//! Property suite pinning the prescan ↔ decoder framing agreement for all
//! six targets, over arbitrary byte strings and near-valid mutated traffic.
//!
//! The contract the batched fast path relies on (and debug builds assert per
//! window): a frame the vectorised prescan rejects is *always* rejected by
//! the decoder's own framing checks — the prescan is at least as permissive
//! as the decoder, never stricter. The reverse direction deliberately does
//! not hold (a well-framed packet can still fail semantic validation), so
//! the decoder stays authoritative.

use proptest::prelude::*;

use peachstar_coverage::TraceContext;
use peachstar_datamodel::emit::emit_default;
use peachstar_protocols::{FrameSpec, Outcome, PrescanScratch, TargetId};

/// Each target paired with the framing specification its batched
/// `process_batch` override prescans with.
const PAIRS: [(TargetId, FrameSpec); 6] = [
    (TargetId::Modbus, FrameSpec::Mbap),
    (TargetId::Iec104, FrameSpec::Apci),
    (TargetId::Lib60870, FrameSpec::Apci),
    (TargetId::Dnp3, FrameSpec::Dnp3Link),
    (TargetId::Iccp, FrameSpec::Iccp),
    (TargetId::Iec61850, FrameSpec::TpktCotp),
];

/// Every model's default emission with one byte XOR-mutated: traffic dense
/// around the accept/reject boundary, where framing bugs actually live.
fn mutated_defaults(target: TargetId, index: usize, mask: u8) -> Vec<Vec<u8>> {
    target
        .create()
        .data_models()
        .models()
        .iter()
        .filter_map(|model| emit_default(model).ok())
        .map(|mut packet| {
            if !packet.is_empty() {
                let position = index % packet.len();
                packet[position] ^= mask;
            }
            packet
        })
        .collect()
}

#[test]
fn every_default_emission_passes_its_frame_spec() {
    // Non-vacuity anchor for the reject-direction properties below: the
    // emitter's length/CRC fixups produce frames the prescan accepts, so the
    // mutated traffic genuinely straddles the boundary.
    for (target, spec) in PAIRS {
        let models = target.create().data_models();
        for model in models.models() {
            let packet = emit_default(model).expect("default packet emits");
            assert!(
                spec.check(&packet),
                "{target}/{}: default emission fails {spec:?}",
                model.name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary bytes: a prescan reject is always a decoder
    /// `ProtocolError`, from the fresh state *and* from whatever state the
    /// first decode left behind (framing checks must be state-independent).
    #[test]
    fn a_prescan_reject_is_always_a_decoder_reject(
        data in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        for (target, spec) in PAIRS {
            if spec.check(&data) {
                continue;
            }
            let mut server = target.create();
            let mut ctx = TraceContext::new();
            for round in 0..2 {
                ctx.reset();
                let outcome = server.process(&data, &mut ctx);
                prop_assert!(
                    matches!(outcome, Outcome::ProtocolError(_)),
                    "{target} round {round}: decoder accepted a frame {spec:?} rejects: {data:02x?}"
                );
            }
        }
    }

    /// Near-valid traffic (mutated default emissions): same agreement, but
    /// concentrated where single-bit damage flips individual header checks.
    #[test]
    fn mutated_defaults_keep_the_prescan_at_least_as_permissive(
        index in any::<usize>(),
        mask in any::<u8>(),
    ) {
        for (target, spec) in PAIRS {
            let mut server = target.create();
            let mut ctx = TraceContext::new();
            for packet in mutated_defaults(target, index, mask) {
                if spec.check(&packet) {
                    continue;
                }
                ctx.reset();
                let outcome = server.process(&packet, &mut ctx);
                prop_assert!(
                    matches!(outcome, Outcome::ProtocolError(_)),
                    "{target}: decoder accepted a frame {spec:?} rejects: {packet:02x?}"
                );
            }
        }
    }

    /// The chunked (vectorisable) kernels agree with the scalar oracle on
    /// arbitrary mixed windows — including the lane remainder and windows
    /// built from near-valid traffic.
    #[test]
    fn chunked_prescan_matches_the_scalar_oracle_on_mixed_windows(
        raw in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 0..40),
        index in any::<usize>(),
        mask in any::<u8>(),
    ) {
        let mut scratch = PrescanScratch::new();
        for (target, spec) in PAIRS {
            let mut packets = mutated_defaults(target, index, mask);
            packets.extend(raw.iter().cloned());
            let refs: Vec<&[u8]> = packets.iter().map(Vec::as_slice).collect();
            let expected: Vec<bool> = refs.iter().map(|p| spec.check(p)).collect();
            prop_assert_eq!(
                scratch.run(spec, &refs),
                &expected[..],
                "{}: chunked kernels diverged from the scalar oracle", target
            );
        }
    }
}
