//! Property suite for the framed-TCP wire: header round-trips, partial-read
//! reassembly, and agreement between the TPKT framer and the vectorised
//! `FrameSpec::TpktCotp` prescan oracle.
//!
//! The transport seam's equivalence story (`tests/transport_equivalence.rs`
//! at the workspace root) rests on this layer never corrupting, splitting,
//! or reordering a message — these properties pin that foundation over
//! arbitrary payloads and arbitrary stream chunkings.

use std::io::Cursor;

use proptest::prelude::*;

use peachstar_protocols::wire::{FrameReassembler, MessageStream, WireFraming};
use peachstar_protocols::{FrameSpec, PrescanScratch, TargetId};

const FRAMINGS: [WireFraming; 2] = [WireFraming::Raw, WireFraming::Tpkt];

/// Feeds `stream` to a fresh reassembler in the given chunks and returns
/// every completed message.
fn reassemble(framing: WireFraming, chunks: &[&[u8]]) -> Vec<Vec<u8>> {
    let mut reassembler = FrameReassembler::new(framing);
    let mut messages = Vec::new();
    for chunk in chunks {
        reassembler.push(chunk);
        while let Some(message) = reassembler.next_message().expect("well-formed stream") {
            messages.push(message);
        }
    }
    assert!(
        !reassembler.is_mid_message(),
        "whole frames must leave nothing buffered"
    );
    messages
}

#[test]
fn framing_table_matches_the_six_targets() {
    // The ISO-stack targets ride ISO-on-TCP; everything else is raw-framed.
    for target in TargetId::ALL {
        let expected = match target {
            TargetId::Iec61850 | TargetId::Iccp => WireFraming::Tpkt,
            _ => WireFraming::Raw,
        };
        assert_eq!(
            WireFraming::for_target(target.project_name()),
            expected,
            "{target:?} speaks the wrong framing"
        );
    }
}

#[test]
fn tpkt_segmentation_chains_dt_tpdus_for_oversized_messages() {
    // A message past one TPKT's u16 capacity crosses as a DT chain where
    // only the last TPDU carries the end-of-TSDU bit — and reassembles
    // whole. 150_000 bytes forces three frames.
    let payload: Vec<u8> = (0..150_000u32).map(|i| (i % 251) as u8).collect();
    let frame = WireFraming::Tpkt.frame(&payload);
    assert!(frame.len() > payload.len() + 14, "at least three headers");
    let messages = reassemble(WireFraming::Tpkt, &[&frame]);
    assert_eq!(messages, vec![payload]);
}

#[test]
fn reassembler_rejects_corrupted_tpkt_headers() {
    let frame = WireFraming::Tpkt.frame(b"hello");
    for (index, name) in [(0, "version"), (4, "COTP length"), (5, "TPDU code")] {
        let mut bad = frame.clone();
        bad[index] ^= 0xFF;
        let mut reassembler = FrameReassembler::new(WireFraming::Tpkt);
        reassembler.push(&bad);
        assert!(
            reassembler.next_message().is_err(),
            "corrupted {name} byte must fail loudly, not desynchronise"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Frame → reassemble is the identity for arbitrary payloads under both
    /// framings, including the empty message.
    #[test]
    fn framed_messages_round_trip(
        payload in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        for framing in FRAMINGS {
            let frame = framing.frame(&payload);
            prop_assert_eq!(
                reassemble(framing, &[&frame]),
                vec![payload.clone()],
                "{:?}: frame/reassemble is not the identity", framing
            );
        }
    }

    /// Reassembly is split-invariant: cutting the stream at *every* byte
    /// boundary recovers the same single message.
    #[test]
    fn reassembly_survives_a_split_at_every_byte_boundary(
        payload in proptest::collection::vec(any::<u8>(), 0..96),
    ) {
        for framing in FRAMINGS {
            let frame = framing.frame(&payload);
            for split in 0..=frame.len() {
                let (head, tail) = frame.split_at(split);
                prop_assert_eq!(
                    reassemble(framing, &[head, tail]),
                    vec![payload.clone()],
                    "{:?}: split at byte {} corrupted the message", framing, split
                );
            }
        }
    }

    /// Back-to-back messages survive arbitrary re-chunking of the byte
    /// stream: no boundary bleed, no reordering, no loss.
    #[test]
    fn message_sequences_survive_arbitrary_chunking(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64),
            1..6,
        ),
        cuts in proptest::collection::vec(any::<usize>(), 0..8),
    ) {
        for framing in FRAMINGS {
            let mut stream = Vec::new();
            for payload in &payloads {
                framing.frame_into(payload, &mut stream);
            }
            let mut boundaries: Vec<usize> =
                cuts.iter().map(|&cut| cut % (stream.len() + 1)).collect();
            boundaries.extend([0, stream.len()]);
            boundaries.sort_unstable();
            let chunks: Vec<&[u8]> = boundaries
                .windows(2)
                .map(|pair| &stream[pair[0]..pair[1]])
                .collect();
            prop_assert_eq!(
                reassemble(framing, &chunks),
                payloads.clone(),
                "{:?}: re-chunking corrupted the message sequence", framing
            );
        }
    }

    /// The TPKT framer and the batched fast path's prescan oracle agree:
    /// every frame the transport emits for a one-TPKT message passes
    /// `FrameSpec::TpktCotp` — scalar check and vectorised kernels alike.
    #[test]
    fn tpkt_frames_satisfy_the_prescan_oracle(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..256),
            // Past one SIMD lane width (16), so chunked kernels run too.
            17..24,
        ),
    ) {
        let frames: Vec<Vec<u8>> =
            payloads.iter().map(|p| WireFraming::Tpkt.frame(p)).collect();
        for frame in &frames {
            prop_assert!(
                FrameSpec::TpktCotp.check(frame),
                "the prescan oracle rejects a framer-built TPKT frame: {frame:02x?}"
            );
        }
        let refs: Vec<&[u8]> = frames.iter().map(Vec::as_slice).collect();
        let verdicts = PrescanScratch::new().run(FrameSpec::TpktCotp, &refs).to_vec();
        prop_assert!(
            verdicts.iter().all(|&ok| ok),
            "the vectorised prescan rejects a framer-built TPKT frame"
        );
    }

    /// `MessageStream` (the production send/recv pair) round-trips message
    /// sequences over an in-memory stream, then reports a clean EOF.
    #[test]
    fn message_stream_round_trips_and_detects_clean_eof(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..128),
            0..5,
        ),
    ) {
        for framing in FRAMINGS {
            let mut wire = Vec::new();
            let mut sender = MessageStream::new(framing);
            for payload in &payloads {
                sender.send(&mut wire, payload).expect("in-memory send");
            }
            let mut reader = Cursor::new(wire);
            let mut receiver = MessageStream::new(framing);
            for payload in &payloads {
                let received = receiver.recv(&mut reader).expect("in-memory recv");
                prop_assert_eq!(received.as_ref(), Some(payload));
            }
            prop_assert_eq!(
                receiver.recv(&mut reader).expect("clean EOF"),
                None,
                "{:?}: EOF after the last frame must read as a clean shutdown", framing
            );
        }
    }
}
