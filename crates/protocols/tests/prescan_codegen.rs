//! Codegen smoke test: the chunked prescan kernels must autovectorise.
//!
//! `src/prescan.rs` is deliberately self-contained (no crate-internal
//! imports outside `#[cfg(test)]`), so it compiles standalone. This test
//! builds it with the same optimisation level as release campaigns and
//! asserts the optimiser emitted packed byte-compare instructions — the
//! signature of the 16-lane header checks actually vectorising, without the
//! file ever touching unstable SIMD intrinsics.

use std::path::PathBuf;
use std::process::Command;

#[test]
fn optimised_prescan_emits_packed_compare_instructions() {
    let source = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("src/prescan.rs");
    let asm = std::env::temp_dir().join("peachstar_prescan_codegen.s");
    let output = Command::new("rustc")
        .args(["--edition", "2021", "--crate-type", "lib", "-C", "opt-level=3"])
        .arg("--emit")
        .arg(format!("asm={}", asm.display()))
        .arg(&source)
        .output()
        .expect("rustc runs");
    assert!(
        output.status.success(),
        "standalone prescan.rs build failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let listing = std::fs::read_to_string(&asm).expect("assembly listing written");
    let _ = std::fs::remove_file(&asm);
    // SSE2 is baseline on x86_64, so `pcmpeq*` (or its AVX form `vpcmpeq*`)
    // must appear if — and only if — the lane loops vectorised. Other
    // architectures get the correctness guarantees from the proptest suite;
    // the vectorisation claim is only asserted where we know the mnemonics.
    if cfg!(target_arch = "x86_64") {
        let packed_compares = listing
            .lines()
            .filter(|line| line.contains("pcmpeq") || line.contains("vpcmpeq"))
            .count();
        assert!(
            packed_compares >= 8,
            "expected packed byte compares in the optimised prescan kernels, found \
             {packed_compares} — the chunked loops stopped autovectorising"
        );
    }
}
