//! The framed-TCP wire format: how a transport request/response crosses a
//! real socket.
//!
//! Two layers live here, both speaking plain `std` byte buffers so they are
//! testable without sockets:
//!
//! 1. **Framing** ([`WireFraming`]): how a message's bytes are delimited on
//!    the stream. The non-ISO targets (modbus, iec104, dnp3, lib60870) use
//!    [`WireFraming::Raw`] — a big-endian `u32` length prefix. The ISO-stack
//!    targets (iec61850, iccp) use [`WireFraming::Tpkt`] — RFC 1006
//!    TPKT packets carrying COTP DT TPDUs, the same ISO-on-TCP framing the
//!    real MMS/TASE.2 servers speak: `03 00 LL LL` (TPKT version, reserved,
//!    big-endian total length) followed by `02 F0 EOT` (COTP length
//!    indicator, DT code, end-of-TSDU flag). Messages larger than one TPKT
//!    packet (65 535 bytes total) are segmented into a chain of DT TPDUs
//!    whose last — and only the last — sets the EOT bit `0x80`. Every frame
//!    this framer emits satisfies the
//!    [`FrameSpec::TpktCotp`](crate::prescan::FrameSpec) prescan oracle
//!    (`crates/protocols/tests/wire_framing.rs` proves the agreement by
//!    property test).
//! 2. **Messages** ([`Request`], [`Response`]): the transport protocol
//!    itself — process one packet, process a batch, reset — with outcomes,
//!    fault records and sparse coverage traces serialised symmetrically on
//!    both sides. Fault sites cross the wire as strings and are re-interned
//!    on decode ([`crate::intern_site`]), so a fault that travelled through
//!    a socket deduplicates against the same fault recorded in process.
//!
//! [`FrameReassembler`] is the streaming decoder: bytes arrive in arbitrary
//! splits (TCP guarantees nothing about read boundaries) and messages pop
//! out whole once their final byte lands.

use std::io::{self, Read, Write};

use peachstar_coverage::SparseTrace;

use crate::{intern_site, DecodeSink, Fault, FaultKind, Outcome, OutcomeSummary};

/// TPKT version byte (RFC 1006).
const TPKT_VERSION: u8 = 0x03;
/// COTP length indicator of a DT TPDU: two header bytes follow (code, EOT).
const COTP_DT_LI: u8 = 0x02;
/// COTP TPDU code of a DT (data) TPDU with credit 0.
const COTP_DT_CODE: u8 = 0xF0;
/// End-of-TSDU flag: set on the last DT TPDU of a message.
const COTP_EOT: u8 = 0x80;
/// Bytes of TPKT + COTP DT header per frame.
const TPKT_HEADER: usize = 7;
/// Maximum user-data bytes in one TPKT frame (total length is a `u16`).
const TPKT_MAX_USER: usize = u16::MAX as usize - TPKT_HEADER;

/// How messages are delimited on the TCP stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFraming {
    /// Big-endian `u32` length prefix, one frame per message.
    Raw,
    /// RFC 1006 TPKT packets carrying COTP DT TPDUs; one message is a chain
    /// of DT TPDUs ending with the EOT bit.
    Tpkt,
}

impl WireFraming {
    /// The framing a target speaks on the wire, by target name: the
    /// ISO-stack targets (libiec61850's MMS, libiec_iccp_mod's TASE.2) ride
    /// on ISO-on-TCP (TPKT/COTP); everything else is raw-framed.
    #[must_use]
    pub fn for_target(name: &str) -> Self {
        match name {
            "libiec61850" | "libiec_iccp_mod" => WireFraming::Tpkt,
            _ => WireFraming::Raw,
        }
    }

    /// Appends the framed encoding of one whole message to `out`.
    pub fn frame_into(self, payload: &[u8], out: &mut Vec<u8>) {
        match self {
            WireFraming::Raw => {
                let len = u32::try_from(payload.len())
                    .expect("a wire message never exceeds 4 GiB");
                out.extend_from_slice(&len.to_be_bytes());
                out.extend_from_slice(payload);
            }
            WireFraming::Tpkt => {
                // Chunk into maximal DT TPDUs; only the last carries EOT. An
                // empty message is one empty DT with EOT set.
                let mut chunks = payload.chunks(TPKT_MAX_USER);
                let mut remaining = chunks.len().max(1);
                loop {
                    let chunk: &[u8] = chunks.next().unwrap_or(&[]);
                    remaining = remaining.saturating_sub(1);
                    let total = (TPKT_HEADER + chunk.len()) as u16;
                    out.push(TPKT_VERSION);
                    out.push(0x00);
                    out.extend_from_slice(&total.to_be_bytes());
                    out.push(COTP_DT_LI);
                    out.push(COTP_DT_CODE);
                    out.push(if remaining == 0 { COTP_EOT } else { 0x00 });
                    out.extend_from_slice(chunk);
                    if remaining == 0 {
                        break;
                    }
                }
            }
        }
    }

    /// The framed encoding of one whole message.
    #[must_use]
    pub fn frame(self, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(payload.len() + TPKT_HEADER);
        self.frame_into(payload, &mut out);
        out
    }
}

/// A framing violation on the stream. Both endpoints are ours, so this only
/// fires on a desynchronised or corrupted connection; the reader treats it
/// as fatal for the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireError(&'static str);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire framing error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for io::Error {
    fn from(error: WireError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, error)
    }
}

/// Streaming frame decoder: feed bytes in arbitrary splits with
/// [`push`](FrameReassembler::push), pop whole messages with
/// [`next_message`](FrameReassembler::next_message).
#[derive(Debug)]
pub struct FrameReassembler {
    framing: WireFraming,
    /// Unconsumed stream bytes; `consumed` marks the parse position so
    /// steady-state reassembly never shifts the buffer per frame.
    buffer: Vec<u8>,
    consumed: usize,
    /// User data of the in-flight TPKT message (DT TPDUs seen so far).
    partial: Vec<u8>,
}

impl FrameReassembler {
    /// Creates a reassembler for the given framing.
    #[must_use]
    pub fn new(framing: WireFraming) -> Self {
        Self {
            framing,
            buffer: Vec::new(),
            consumed: 0,
            partial: Vec::new(),
        }
    }

    /// Appends raw stream bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.consumed == self.buffer.len() {
            self.buffer.clear();
            self.consumed = 0;
        }
        self.buffer.extend_from_slice(bytes);
    }

    /// `true` when unconsumed bytes or a partial message are pending — a
    /// clean connection shutdown must not leave any.
    #[must_use]
    pub fn is_mid_message(&self) -> bool {
        self.consumed < self.buffer.len() || !self.partial.is_empty()
    }

    /// Pops the next complete message, if one is fully buffered.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] when the buffered bytes violate the framing
    /// (bad TPKT version, non-DT TPDU, impossible length).
    pub fn next_message(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        loop {
            let pending = &self.buffer[self.consumed..];
            match self.framing {
                WireFraming::Raw => {
                    let Some(header) = pending.get(..4) else {
                        return Ok(None);
                    };
                    let len = u32::from_be_bytes(header.try_into().expect("4 bytes")) as usize;
                    let Some(payload) = pending.get(4..4 + len) else {
                        return Ok(None);
                    };
                    let message = payload.to_vec();
                    self.consumed += 4 + len;
                    return Ok(Some(message));
                }
                WireFraming::Tpkt => {
                    let Some(header) = pending.get(..4) else {
                        return Ok(None);
                    };
                    if header[0] != TPKT_VERSION || header[1] != 0x00 {
                        return Err(WireError("bad TPKT header"));
                    }
                    let total = u16::from_be_bytes([header[2], header[3]]) as usize;
                    if total < TPKT_HEADER {
                        return Err(WireError("TPKT length below the COTP DT header"));
                    }
                    let Some(frame) = pending.get(..total) else {
                        return Ok(None);
                    };
                    if frame[4] != COTP_DT_LI || frame[5] != COTP_DT_CODE {
                        return Err(WireError("expected a COTP DT TPDU"));
                    }
                    let eot = frame[6];
                    if eot != COTP_EOT && eot != 0x00 {
                        return Err(WireError("bad COTP end-of-TSDU flag"));
                    }
                    self.partial.extend_from_slice(&frame[TPKT_HEADER..]);
                    self.consumed += total;
                    if eot == COTP_EOT {
                        return Ok(Some(std::mem::take(&mut self.partial)));
                    }
                    // Continuation TPDU: keep consuming buffered frames.
                }
            }
        }
    }
}

/// A message-oriented view of a byte stream: framed sends, reassembled
/// receives. Generic over `Read`/`Write` so the codec is testable on
/// in-memory buffers; in production both are the two halves of a
/// `TcpStream`.
#[derive(Debug)]
pub struct MessageStream {
    framing: WireFraming,
    reassembler: FrameReassembler,
    scratch: Vec<u8>,
}

impl MessageStream {
    /// Creates a message stream speaking the given framing.
    #[must_use]
    pub fn new(framing: WireFraming) -> Self {
        Self {
            framing,
            reassembler: FrameReassembler::new(framing),
            scratch: Vec::new(),
        }
    }

    /// Frames and writes one whole message.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write error.
    pub fn send(&mut self, writer: &mut impl Write, payload: &[u8]) -> io::Result<()> {
        self.scratch.clear();
        self.framing.frame_into(payload, &mut self.scratch);
        writer.write_all(&self.scratch)
    }

    /// Reads until one whole message is reassembled. Returns `Ok(None)` on a
    /// clean end-of-stream at a message boundary.
    ///
    /// # Errors
    ///
    /// Propagates read errors; end-of-stream mid-message and framing
    /// violations surface as [`io::ErrorKind::InvalidData`] /
    /// [`io::ErrorKind::UnexpectedEof`].
    pub fn recv(&mut self, reader: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some(message) = self.reassembler.next_message()? {
                return Ok(Some(message));
            }
            let read = reader.read(&mut chunk)?;
            if read == 0 {
                if self.reassembler.is_mid_message() {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-message",
                    ));
                }
                return Ok(None);
            }
            self.reassembler.push(&chunk[..read]);
        }
    }
}

// === Message payload codec =================================================

const REQ_PROCESS: u8 = 0x01;
const REQ_BATCH: u8 = 0x02;
const REQ_RESET: u8 = 0x03;
const RESP_PROCESS: u8 = 0x81;
const RESP_BATCH: u8 = 0x82;
const RESP_RESET: u8 = 0x83;

/// One transport request, client → server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Process one packet ([`Target::process`](crate::Target::process)).
    Process(Vec<u8>),
    /// Process one reset-aligned window of packets under the given decode
    /// sink ([`Target::process_batch`](crate::Target::process_batch)).
    Batch {
        /// Output fidelity the server decodes under.
        sink: DecodeSink,
        /// The window's packets, in execution order.
        packets: Vec<Vec<u8>>,
    },
    /// Reset the connection's target to the just-started state
    /// ([`Target::reset`](crate::Target::reset)).
    Reset,
}

/// One transport response, server → client.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Outcome and coverage trace of one processed packet.
    Process(Outcome, SparseTrace),
    /// Per-packet summaries and traces of one processed window.
    Batch(Vec<(OutcomeSummary, SparseTrace)>),
    /// Acknowledges a [`Request::Reset`].
    ResetDone,
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    let len = u32::try_from(bytes.len()).expect("wire payloads fit in u32");
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(bytes);
}

fn put_trace(out: &mut Vec<u8>, trace: &SparseTrace) {
    let hits = u32::try_from(trace.edges_hit()).expect("trace fits in u32");
    out.extend_from_slice(&hits.to_le_bytes());
    for (slot, count) in trace.iter_hits() {
        out.extend_from_slice(&(slot as u16).to_le_bytes());
        out.push(count);
    }
}

fn put_outcome(out: &mut Vec<u8>, outcome: &Outcome) {
    match outcome {
        Outcome::Response(bytes) => {
            out.push(0);
            put_bytes(out, bytes);
        }
        Outcome::ProtocolError(reason) => {
            out.push(1);
            put_bytes(out, reason.as_bytes());
        }
        Outcome::Fault(fault) => {
            out.push(2);
            put_fault(out, *fault);
        }
    }
}

fn put_fault(out: &mut Vec<u8>, fault: Fault) {
    out.push(match fault.kind {
        FaultKind::Segv => 0,
        FaultKind::HeapUseAfterFree => 1,
        FaultKind::HeapBufferOverflow => 2,
        FaultKind::Hang => 3,
        FaultKind::Panic => 4,
    });
    put_bytes(out, fault.site.as_bytes());
}

fn put_summary(out: &mut Vec<u8>, summary: OutcomeSummary) {
    match summary {
        OutcomeSummary::Response => out.push(0),
        OutcomeSummary::ProtocolError => out.push(1),
        OutcomeSummary::Fault(fault) => {
            out.push(2);
            put_fault(out, fault);
        }
    }
}

/// A cursor over a received message payload.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        let byte = *self
            .bytes
            .get(self.at)
            .ok_or(WireError("truncated message"))?;
        self.at += 1;
        Ok(byte)
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let raw = self
            .bytes
            .get(self.at..self.at + 4)
            .ok_or(WireError("truncated message"))?;
        self.at += 4;
        Ok(u32::from_le_bytes(raw.try_into().expect("4 bytes")))
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], WireError> {
        let raw = self
            .bytes
            .get(self.at..self.at + len)
            .ok_or(WireError("truncated message"))?;
        self.at += len;
        Ok(raw)
    }

    fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    fn string(&mut self) -> Result<&'a str, WireError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| WireError("non-UTF-8 string"))
    }

    fn trace(&mut self) -> Result<SparseTrace, WireError> {
        let hits = self.u32()? as usize;
        let raw = self.take(hits * 3)?;
        Ok(SparseTrace::from_hits(raw.chunks_exact(3).map(|hit| {
            (u16::from_le_bytes([hit[0], hit[1]]), hit[2])
        })))
    }

    fn fault(&mut self) -> Result<Fault, WireError> {
        let kind = match self.u8()? {
            0 => FaultKind::Segv,
            1 => FaultKind::HeapUseAfterFree,
            2 => FaultKind::HeapBufferOverflow,
            3 => FaultKind::Hang,
            4 => FaultKind::Panic,
            _ => return Err(WireError("unknown fault kind")),
        };
        // Re-interning restores pointer-stable dedup across the wire.
        Ok(Fault::new(kind, intern_site(self.string()?)))
    }

    fn outcome(&mut self) -> Result<Outcome, WireError> {
        match self.u8()? {
            0 => Ok(Outcome::Response(self.bytes()?.to_vec())),
            1 => Ok(Outcome::ProtocolError(self.string()?.to_owned())),
            2 => Ok(Outcome::Fault(self.fault()?)),
            _ => Err(WireError("unknown outcome variant")),
        }
    }

    fn summary(&mut self) -> Result<OutcomeSummary, WireError> {
        match self.u8()? {
            0 => Ok(OutcomeSummary::Response),
            1 => Ok(OutcomeSummary::ProtocolError),
            2 => Ok(OutcomeSummary::Fault(self.fault()?)),
            _ => Err(WireError("unknown summary variant")),
        }
    }

    fn finish(self) -> Result<(), WireError> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(WireError("trailing bytes after message"))
        }
    }
}

impl Request {
    /// Serialises the request into a message payload.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.clear();
        match self {
            Request::Process(packet) => {
                out.push(REQ_PROCESS);
                put_bytes(out, packet);
            }
            Request::Batch { sink, packets } => {
                out.push(REQ_BATCH);
                out.push(match sink {
                    DecodeSink::Full => 0,
                    DecodeSink::Summary => 1,
                });
                let count = u32::try_from(packets.len()).expect("window fits in u32");
                out.extend_from_slice(&count.to_le_bytes());
                for packet in packets {
                    put_bytes(out, packet);
                }
            }
            Request::Reset => out.push(REQ_RESET),
        }
    }

    /// Deserialises a request from a message payload.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncated or malformed payloads.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut reader = Reader::new(payload);
        let request = match reader.u8()? {
            REQ_PROCESS => Request::Process(reader.bytes()?.to_vec()),
            REQ_BATCH => {
                let sink = match reader.u8()? {
                    0 => DecodeSink::Full,
                    1 => DecodeSink::Summary,
                    _ => return Err(WireError("unknown decode sink")),
                };
                let count = reader.u32()? as usize;
                let mut packets = Vec::with_capacity(count.min(1 << 16));
                for _ in 0..count {
                    packets.push(reader.bytes()?.to_vec());
                }
                Request::Batch { sink, packets }
            }
            REQ_RESET => Request::Reset,
            _ => return Err(WireError("unknown request tag")),
        };
        reader.finish()?;
        Ok(request)
    }
}

impl Response {
    /// Serialises the response into a message payload.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.clear();
        match self {
            Response::Process(outcome, trace) => {
                out.push(RESP_PROCESS);
                put_outcome(out, outcome);
                put_trace(out, trace);
            }
            Response::Batch(records) => {
                out.push(RESP_BATCH);
                let count = u32::try_from(records.len()).expect("window fits in u32");
                out.extend_from_slice(&count.to_le_bytes());
                for (summary, trace) in records {
                    put_summary(out, *summary);
                    put_trace(out, trace);
                }
            }
            Response::ResetDone => out.push(RESP_RESET),
        }
    }

    /// Deserialises a response from a message payload.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncated or malformed payloads.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut reader = Reader::new(payload);
        let response = match reader.u8()? {
            RESP_PROCESS => {
                let outcome = reader.outcome()?;
                let trace = reader.trace()?;
                Response::Process(outcome, trace)
            }
            RESP_BATCH => {
                let count = reader.u32()? as usize;
                let mut records = Vec::with_capacity(count.min(1 << 16));
                for _ in 0..count {
                    let summary = reader.summary()?;
                    let trace = reader.trace()?;
                    records.push((summary, trace));
                }
                Response::Batch(records)
            }
            RESP_RESET => Response::ResetDone,
            _ => return Err(WireError("unknown response tag")),
        };
        reader.finish()?;
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(framing: WireFraming, payload: &[u8]) {
        let framed = framing.frame(payload);
        let mut reassembler = FrameReassembler::new(framing);
        reassembler.push(&framed);
        let message = reassembler
            .next_message()
            .expect("valid framing")
            .expect("complete message");
        assert_eq!(message, payload);
        assert!(!reassembler.is_mid_message());
    }

    #[test]
    fn raw_and_tpkt_round_trip_basic_payloads() {
        for framing in [WireFraming::Raw, WireFraming::Tpkt] {
            round_trip(framing, b"");
            round_trip(framing, b"x");
            round_trip(framing, &[0xA5; 1_000]);
        }
    }

    #[test]
    fn tpkt_segments_large_messages_and_reassembles_them() {
        let big = vec![0x42u8; TPKT_MAX_USER * 2 + 17];
        let framed = WireFraming::Tpkt.frame(&big);
        // Three DT TPDUs: two full continuations plus the EOT tail.
        assert_eq!(framed.len(), big.len() + 3 * TPKT_HEADER);
        let mut reassembler = FrameReassembler::new(WireFraming::Tpkt);
        reassembler.push(&framed);
        assert_eq!(reassembler.next_message().unwrap().as_deref(), Some(&big[..]));
    }

    #[test]
    fn tpkt_frames_satisfy_the_prescan_oracle() {
        use crate::prescan::FrameSpec;
        for payload in [&b""[..], b"abc", &[0u8; 512]] {
            let framed = WireFraming::Tpkt.frame(payload);
            assert!(
                FrameSpec::TpktCotp.check(&framed),
                "single-frame TPKT messages are oracle-valid"
            );
        }
    }

    #[test]
    fn reassembler_rejects_desynchronised_streams() {
        let mut reassembler = FrameReassembler::new(WireFraming::Tpkt);
        reassembler.push(&[0x04, 0x00, 0x00, 0x07, 0x02, 0xF0, 0x80]);
        assert!(reassembler.next_message().is_err(), "bad TPKT version");
        let mut reassembler = FrameReassembler::new(WireFraming::Tpkt);
        reassembler.push(&[0x03, 0x00, 0x00, 0x07, 0x02, 0xE0, 0x80]);
        assert!(reassembler.next_message().is_err(), "not a DT TPDU");
    }

    #[test]
    fn framing_assignment_matches_the_iso_stack_split() {
        assert_eq!(WireFraming::for_target("libiec61850"), WireFraming::Tpkt);
        assert_eq!(WireFraming::for_target("libiec_iccp_mod"), WireFraming::Tpkt);
        for raw in ["libmodbus", "IEC104", "lib60870", "opendnp3"] {
            assert_eq!(WireFraming::for_target(raw), WireFraming::Raw, "{raw}");
        }
    }

    #[test]
    fn request_codec_round_trips() {
        let requests = [
            Request::Process(vec![1, 2, 3]),
            Request::Process(Vec::new()),
            Request::Batch {
                sink: DecodeSink::Summary,
                packets: vec![vec![0xFF; 9], Vec::new(), vec![7]],
            },
            Request::Reset,
        ];
        let mut buffer = Vec::new();
        for request in requests {
            request.encode_into(&mut buffer);
            assert_eq!(Request::decode(&buffer), Ok(request));
        }
    }

    #[test]
    fn response_codec_round_trips_and_reinterns_fault_sites() {
        let fault = Fault::new(FaultKind::HeapUseAfterFree, intern_site("mms.c:parse"));
        let trace = SparseTrace::from_hits([(3, 1), (9, 200), (65_000, 2)]);
        let responses = [
            Response::Process(Outcome::Response(vec![5, 6]), trace.clone()),
            Response::Process(Outcome::ProtocolError("bad frame".into()), SparseTrace::new()),
            Response::Process(Outcome::Fault(fault), trace.clone()),
            Response::Batch(vec![
                (OutcomeSummary::Response, trace.clone()),
                (OutcomeSummary::Fault(fault), SparseTrace::new()),
            ]),
            Response::ResetDone,
        ];
        let mut buffer = Vec::new();
        for response in responses {
            response.encode_into(&mut buffer);
            let decoded = Response::decode(&buffer).expect("valid payload");
            assert_eq!(decoded, response);
            // Decoded fault sites are pointer-identical to the interned
            // originals, so wire faults dedup against in-process ones.
            if let Response::Process(Outcome::Fault(decoded_fault), _) = &decoded {
                assert!(std::ptr::eq(decoded_fault.site, fault.site));
            }
        }
    }

    #[test]
    fn message_stream_round_trips_over_a_buffer() {
        let mut wire = Vec::new();
        let mut sender = MessageStream::new(WireFraming::Tpkt);
        sender.send(&mut wire, b"first").unwrap();
        sender.send(&mut wire, b"second message").unwrap();
        let mut receiver = MessageStream::new(WireFraming::Tpkt);
        let mut cursor = io::Cursor::new(wire);
        assert_eq!(receiver.recv(&mut cursor).unwrap().as_deref(), Some(&b"first"[..]));
        assert_eq!(
            receiver.recv(&mut cursor).unwrap().as_deref(),
            Some(&b"second message"[..])
        );
        assert_eq!(receiver.recv(&mut cursor).unwrap(), None, "clean EOF");
    }
}
