//! The IEC 60870-5-104 server target (stand-in for the `IEC104` project used
//! in the paper).
//!
//! Implements APCI framing (start byte `0x68`, length, four control-field
//! octets distinguishing I/S/U frames), U-frame link management (STARTDT /
//! STOPDT / TESTFR), sequence-number handling for I/S frames and an ASDU
//! decoder for the common monitoring and control type identifiers. This
//! target has no Table I bugs planted — in the paper the bugs were found in
//! lib60870, libmodbus and libiec_iccp_mod — but its decoder is deliberately
//! deep so that coverage growth has room to differ between fuzzers.

use peachstar_coverage::{cov_edge, TraceContext};
use peachstar_datamodel::{
    BlockBuilder, BytesSpec, DataModelBuilder, DataModelSet, NumberSpec, Relation,
};

use crate::common::{read_u16_le, read_u24_le, PointDatabase};
use crate::{Outcome, SessionPacket, SessionTemplate, Target};

/// ASDU type identifiers understood by the server.
mod type_id {
    pub const M_SP_NA_1: u8 = 1; // single point information
    pub const M_DP_NA_1: u8 = 3; // double point information
    pub const M_ME_NA_1: u8 = 9; // measured value, normalised
    pub const M_ME_NC_1: u8 = 13; // measured value, short float
    pub const C_SC_NA_1: u8 = 45; // single command
    pub const C_DC_NA_1: u8 = 46; // double command
    pub const C_SE_NA_1: u8 = 48; // set point command, normalised
    pub const C_IC_NA_1: u8 = 100; // interrogation command
    pub const C_CI_NA_1: u8 = 101; // counter interrogation
    pub const C_RD_NA_1: u8 = 102; // read command
    pub const C_CS_NA_1: u8 = 103; // clock synchronisation
}

/// Connection state of the 104 link layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LinkState {
    /// Connection established, data transfer not yet started.
    Idle,
    /// STARTDT confirmed; I-frames are accepted.
    Started,
}

/// The IEC 60870-5-104 server.
#[derive(Debug)]
pub struct Iec104Server {
    db: PointDatabase,
    state: LinkState,
    receive_sequence: u16,
    send_sequence: u16,
    common_address: u16,
}

impl Iec104Server {
    /// Creates a server with common address 1.
    #[must_use]
    pub fn new() -> Self {
        Self {
            db: PointDatabase::default(),
            state: LinkState::Idle,
            receive_sequence: 0,
            send_sequence: 0,
            common_address: 1,
        }
    }

    /// The receive sequence number (number of I-frames accepted).
    #[must_use]
    pub fn receive_sequence(&self) -> u16 {
        self.receive_sequence
    }

    fn u_frame_response(control: u8) -> Outcome {
        crate::sink::response_array([0x68, 0x04, control, 0x00, 0x00, 0x00])
    }

    fn s_frame(&self) -> Outcome {
        let ack = self.receive_sequence << 1;
        crate::sink::response_array([
            0x68,
            0x04,
            0x01,
            0x00,
            (ack & 0xff) as u8,
            (ack >> 8) as u8,
        ])
    }

    fn i_frame_response(&mut self, asdu: Vec<u8>) -> Outcome {
        let send = self.send_sequence << 1;
        let receive = self.receive_sequence << 1;
        // The sequence number advances under both sinks (a state mutation,
        // not output); only the frame assembly below is sink-elidable.
        self.send_sequence = self.send_sequence.wrapping_add(1) & 0x7fff;
        crate::sink::response_with(6 + asdu.len(), |frame| {
            frame.push(0x68);
            frame.push((4 + asdu.len()) as u8);
            frame.extend_from_slice(&[(send & 0xff) as u8, (send >> 8) as u8]);
            frame.extend_from_slice(&[(receive & 0xff) as u8, (receive >> 8) as u8]);
            frame.extend_from_slice(&asdu);
        })
    }

    /// Builds a mirrored confirmation ASDU with the given cause of
    /// transmission.
    fn confirmation(asdu: &[u8], cot: u8) -> Vec<u8> {
        let mut reply = asdu.to_vec();
        if reply.len() > 2 {
            reply[2] = cot;
        }
        reply
    }

    #[allow(clippy::too_many_lines)]
    fn handle_asdu(&mut self, asdu: &[u8], ctx: &mut TraceContext) -> Outcome {
        cov_edge!(ctx);
        // ASDU header: type(1) vsq(1) cot(1) originator(1) common-address(2).
        if asdu.len() < 6 {
            cov_edge!(ctx);
            return crate::sink::protocol_error("ASDU shorter than its header");
        }
        let type_identifier = asdu[0];
        let vsq = asdu[1];
        let element_count = usize::from(vsq & 0x7f);
        let sequence = vsq & 0x80 != 0;
        let cot = asdu[2] & 0x3f;
        let common_address = read_u16_le(asdu, 4).expect("length checked");
        if common_address != self.common_address && common_address != 0xffff {
            cov_edge!(ctx);
            return crate::sink::protocol_error_fmt(format_args!("unknown common address {common_address}"));
        }
        if element_count == 0 {
            cov_edge!(ctx);
            return crate::sink::protocol_error("ASDU with zero information objects");
        }
        let objects = &asdu[6..];
        match type_identifier {
            type_id::C_IC_NA_1 => {
                cov_edge!(ctx);
                // Interrogation: QOI in the single information object.
                let Some(ioa) = read_u24_le(objects, 0) else {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("interrogation without IOA");
                };
                if ioa != 0 {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("interrogation IOA must be zero");
                }
                let qoi = objects.get(3).copied().unwrap_or(20);
                cov_edge!(ctx);
                // Activation confirmation followed by a burst of M_SP_NA_1
                // points; we only return the confirmation frame here.
                let mut confirmation = Self::confirmation(asdu, 7);
                confirmation[1] = 1;
                if (20..=36).contains(&qoi) {
                    cov_edge!(ctx);
                    // Per-group interrogation handlers of the original server.
                    cov_edge!(ctx, qoi - 20);
                    self.i_frame_response(confirmation)
                } else {
                    cov_edge!(ctx);
                    // Unknown qualifier: negative confirmation (P/N bit).
                    confirmation[2] |= 0x40;
                    self.i_frame_response(confirmation)
                }
            }
            type_id::C_CI_NA_1 | type_id::C_CS_NA_1 | type_id::C_RD_NA_1 => {
                cov_edge!(ctx);
                if objects.len() < 3 {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("command without information object");
                }
                cov_edge!(ctx);
                self.i_frame_response(Self::confirmation(asdu, 7))
            }
            type_id::C_SC_NA_1 | type_id::C_DC_NA_1 => {
                cov_edge!(ctx);
                if cot != 6 {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error_fmt(format_args!(
                        "command with unexpected cause of transmission {cot}"
                    ));
                }
                let Some(ioa) = read_u24_le(objects, 0) else {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("command without IOA");
                };
                let Some(&qualifier) = objects.get(3) else {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("command without qualifier");
                };
                let select = qualifier & 0x80 != 0;
                let state = qualifier & 0x01 != 0;
                let address = ioa as usize;
                if address >= self.db.coil_count() {
                    cov_edge!(ctx);
                    // Unknown information object address: negative confirmation.
                    let mut reply = Self::confirmation(asdu, 47);
                    reply[2] |= 0x40;
                    return self.i_frame_response(reply);
                }
                cov_edge!(ctx);
                // Per-information-object dispatch of the original server.
                cov_edge!(ctx, address);
                cov_edge!(ctx, qualifier & 0x03);
                if !select {
                    cov_edge!(ctx);
                    self.db.set_coil(address, state);
                }
                self.i_frame_response(Self::confirmation(asdu, 7))
            }
            type_id::C_SE_NA_1 => {
                cov_edge!(ctx);
                let Some(ioa) = read_u24_le(objects, 0) else {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("set point without IOA");
                };
                let Some(value) = read_u16_le(objects, 3) else {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("set point without value");
                };
                let address = ioa as usize;
                if address >= self.db.register_count() {
                    cov_edge!(ctx);
                    let mut reply = Self::confirmation(asdu, 47);
                    reply[2] |= 0x40;
                    return self.i_frame_response(reply);
                }
                cov_edge!(ctx);
                cov_edge!(ctx, address / 2);
                cov_edge!(ctx, value >> 12);
                self.db.set_register(address, value);
                self.i_frame_response(Self::confirmation(asdu, 7))
            }
            type_id::M_SP_NA_1 | type_id::M_DP_NA_1 | type_id::M_ME_NA_1 | type_id::M_ME_NC_1 => {
                cov_edge!(ctx);
                // Monitoring ASDUs arriving at the controlled station are
                // mirrored back with COT 44 (unknown type id in this
                // direction) — but only after walking the element list, which
                // is where the branchy per-element decode happens.
                let element_size = match type_identifier {
                    type_id::M_SP_NA_1 => 1,
                    type_id::M_DP_NA_1 => 1,
                    type_id::M_ME_NA_1 => 3,
                    _ => 5,
                };
                let mut offset = 0usize;
                for index in 0..element_count {
                    cov_edge!(ctx);
                    if sequence && index > 0 {
                        // In sequence mode only the first element carries an
                        // IOA.
                        offset += element_size;
                    } else {
                        offset += 3 + element_size;
                    }
                    if offset > objects.len() {
                        cov_edge!(ctx);
                        return crate::sink::protocol_error_fmt(format_args!(
                            "information object {index} truncated"
                        ));
                    }
                }
                cov_edge!(ctx);
                cov_edge!(ctx, element_count.min(8));
                self.i_frame_response(Self::confirmation(asdu, 44))
            }
            _ => {
                cov_edge!(ctx);
                // Unknown type identification: COT 44 negative confirmation.
                let mut reply = Self::confirmation(asdu, 44);
                reply[2] |= 0x40;
                self.i_frame_response(reply)
            }
        }
    }
}

impl Default for Iec104Server {
    fn default() -> Self {
        Self::new()
    }
}

impl Target for Iec104Server {
    fn name(&self) -> &'static str {
        "IEC104"
    }

    fn data_models(&self) -> DataModelSet {
        data_models()
    }

    fn process(&mut self, packet: &[u8], ctx: &mut TraceContext) -> Outcome {
        cov_edge!(ctx);
        if packet.len() < 6 {
            cov_edge!(ctx);
            return crate::sink::protocol_error("frame shorter than APCI");
        }
        if packet[0] != 0x68 {
            cov_edge!(ctx);
            return crate::sink::protocol_error("missing start byte 0x68");
        }
        let length = usize::from(packet[1]);
        if length < 4 || length != packet.len() - 2 {
            cov_edge!(ctx);
            return crate::sink::protocol_error_fmt(format_args!(
                "APCI length {length} does not match frame length {}",
                packet.len() - 2
            ));
        }
        let control = &packet[2..6];
        // U-frame: bits 0..1 of the first control octet are 11.
        if control[0] & 0x03 == 0x03 {
            cov_edge!(ctx);
            return match control[0] {
                0x07 => {
                    cov_edge!(ctx);
                    self.state = LinkState::Started;
                    Self::u_frame_response(0x0b) // STARTDT con
                }
                0x13 => {
                    cov_edge!(ctx);
                    self.state = LinkState::Idle;
                    Self::u_frame_response(0x23) // STOPDT con
                }
                0x43 => {
                    cov_edge!(ctx);
                    Self::u_frame_response(0x83) // TESTFR con
                }
                other => {
                    cov_edge!(ctx);
                    crate::sink::protocol_error_fmt(format_args!("unknown U-frame control {other:#04x}"))
                }
            };
        }
        // S-frame: bits 0..1 are 01.
        if control[0] & 0x03 == 0x01 {
            cov_edge!(ctx);
            return self.s_frame();
        }
        // I-frame: bit 0 is 0.
        cov_edge!(ctx);
        if self.state != LinkState::Started {
            cov_edge!(ctx);
            return crate::sink::protocol_error("I-frame before STARTDT");
        }
        if length == 4 {
            cov_edge!(ctx);
            return crate::sink::protocol_error("I-frame without ASDU");
        }
        self.receive_sequence = self.receive_sequence.wrapping_add(1) & 0x7fff;
        let asdu = &packet[6..];
        self.handle_asdu(asdu, ctx)
    }

    fn reset(&mut self) {
        *self = Self::new();
    }

    fn clone_fresh(&self) -> Box<dyn Target + Send> {
        Box::new(Self::new())
    }

    fn session_template(&self) -> Option<SessionTemplate> {
        // The 104 link layer only accepts I-frames between STARTDT act and
        // STOPDT act (IEC 60870-5-104 §5.3), so a session brackets its
        // mutated ASDUs with exactly that U-frame pair.
        Some(SessionTemplate::new(
            vec![SessionPacket::new(
                vec![0x68, 0x04, 0x07, 0x00, 0x00, 0x00],
                "STARTDT act",
            )],
            vec![SessionPacket::new(
                vec![0x68, 0x04, 0x13, 0x00, 0x00, 0x00],
                "STOPDT act",
            )],
        ))
    }

    fn process_batch(
        &mut self,
        packets: &[&[u8]],
        ctx: &mut TraceContext,
        out: &mut crate::WindowResults,
        sink: crate::DecodeSink,
    ) {
        let _armed = sink.arm();
        out.begin();
        // Window-hoisted framing prescan: APCI validation (start byte,
        // length octet) is a pure function of the packet bytes, so the whole
        // window's verdicts come from one pass of the vectorised
        // [`crate::prescan`] kernels before the stateful I/S/U dispatch runs.
        // The per-packet decode below stays authoritative and re-records the
        // same checks edge-for-edge — skipping them would change the recorded
        // traces and break the batched/sequential bit-identity contract — so
        // the prescan is cross-checked in debug builds, with its verdict
        // buffer pooled in `out` to keep the hot path allocation-free.
        #[cfg(debug_assertions)]
        let mut scratch = out.take_prescan();
        #[cfg(debug_assertions)]
        let well_framed = scratch.run(crate::FrameSpec::Apci, packets);
        for (index, packet) in packets.iter().enumerate() {
            ctx.reset();
            // `self` is the concrete server here, so this loop is statically
            // dispatched: one virtual call per window instead of per packet.
            let outcome = self.process(packet, ctx);
            if outcome.is_fault() {
                self.reset();
            }
            #[cfg(debug_assertions)]
            debug_assert!(
                well_framed[index] || matches!(outcome, Outcome::ProtocolError(_)),
                "prescan rejected packet {index}, but the decoder accepted it"
            );
            let _ = index;
            out.record(&outcome, ctx.trace());
        }
        #[cfg(debug_assertions)]
        out.return_prescan(scratch);
    }
}

/// Whether `packet` passes the pure APCI framing checks of
/// [`Iec104Server::process`](Target::process): start byte `0x68` and a
/// length octet of at least 4 matching the frame length. Depends only on the
/// packet bytes (never on the link state), which is what lets
/// [`Target::process_batch`] prevalidate a whole window in one pass; the
/// decoder's own checks remain authoritative.
#[must_use]
pub fn apci_well_framed(packet: &[u8]) -> bool {
    crate::FrameSpec::Apci.check(packet)
}

/// The format specification of the IEC 104 packets the fuzzer generates.
///
/// One model per frame type (STARTDT, TESTFR, plus the common command
/// ASDUs), sharing APCI and information-object-address rules.
#[must_use]
pub fn data_models() -> DataModelSet {
    let mut set = DataModelSet::new("iec104");

    set.push(
        DataModelBuilder::new("startdt")
            .number_with_rule("start", NumberSpec::u8().fixed_value(0x68), "apci-start")
            .number_with_rule("length", NumberSpec::u8().fixed_value(4), "apci-length")
            .number("control1", NumberSpec::u8().fixed_value(0x07))
            .number("control2", NumberSpec::u8().fixed_value(0x00))
            .number("control3", NumberSpec::u8().fixed_value(0x00))
            .number("control4", NumberSpec::u8().fixed_value(0x00))
            .build()
            .expect("startdt model is statically valid"),
    );

    set.push(
        DataModelBuilder::new("testfr")
            .number_with_rule("start", NumberSpec::u8().fixed_value(0x68), "apci-start")
            .number_with_rule("length", NumberSpec::u8().fixed_value(4), "apci-length")
            .number("control1", NumberSpec::u8().fixed_value(0x43))
            .number("control2", NumberSpec::u8().fixed_value(0x00))
            .number("control3", NumberSpec::u8().fixed_value(0x00))
            .number("control4", NumberSpec::u8().fixed_value(0x00))
            .build()
            .expect("testfr model is statically valid"),
    );

    // An I-frame with one command ASDU. Shared rule names let the single
    // command, double command and set point models donate chunks to each
    // other, and the ASDU header rules are shared with the lib60870 models.
    let i_frame = |name: &str, type_identifier: u64, object: BlockBuilder| {
        DataModelBuilder::new(name)
            .number_with_rule("start", NumberSpec::u8().fixed_value(0x68), "apci-start")
            .number_with_rule(
                "length",
                NumberSpec::u8().relation(Relation::SizeOf {
                    of: "apdu".into(),
                    adjust: 0,
                    scale: 1,
                }),
                "apci-length",
            )
            .block(
                BlockBuilder::new("apdu")
                    .number_with_rule("send_seq", NumberSpec::u16_le(), "iframe-sequence")
                    .number_with_rule("recv_seq", NumberSpec::u16_le(), "iframe-sequence")
                    .block(
                        BlockBuilder::new("asdu")
                            .rule("asdu")
                            .number(
                                "type_id",
                                NumberSpec::u8().fixed_value(type_identifier),
                            )
                            .number_with_rule("vsq", NumberSpec::u8().default_value(1), "asdu-vsq")
                            .number_with_rule(
                                "cot",
                                NumberSpec::u8().default_value(6),
                                "asdu-cot",
                            )
                            .number_with_rule("originator", NumberSpec::u8(), "asdu-originator")
                            .number_with_rule(
                                "common_address",
                                NumberSpec::u16_le().default_value(1),
                                "asdu-common-address",
                            )
                            .block(object),
                    ),
            )
            .build()
            .expect("iec104 I-frame model is statically valid")
    };

    set.push(i_frame(
        "single_command",
        u64::from(type_id::C_SC_NA_1),
        BlockBuilder::new("object_sc")
            .bytes_with_rule(
                "ioa_sc",
                BytesSpec::fixed(3).default_content(vec![0x01, 0x00, 0x00]),
                "information-object-address",
            )
            .number("sco", NumberSpec::u8().default_value(0x01)),
    ));

    set.push(i_frame(
        "double_command",
        u64::from(type_id::C_DC_NA_1),
        BlockBuilder::new("object_dc")
            .bytes_with_rule(
                "ioa_dc",
                BytesSpec::fixed(3).default_content(vec![0x02, 0x00, 0x00]),
                "information-object-address",
            )
            .number("dco", NumberSpec::u8().default_value(0x02)),
    ));

    set.push(i_frame(
        "set_point",
        u64::from(type_id::C_SE_NA_1),
        BlockBuilder::new("object_se")
            .bytes_with_rule(
                "ioa_se",
                BytesSpec::fixed(3).default_content(vec![0x03, 0x00, 0x00]),
                "information-object-address",
            )
            .number_with_rule("value_se", NumberSpec::u16_le().default_value(0x1234), "setpoint-value")
            .number("qos", NumberSpec::u8()),
    ));

    set.push(i_frame(
        "interrogation",
        u64::from(type_id::C_IC_NA_1),
        BlockBuilder::new("object_ic")
            .bytes_with_rule(
                "ioa_ic",
                BytesSpec::fixed(3).default_content(vec![0x00, 0x00, 0x00]),
                "information-object-address",
            )
            .number("qoi", NumberSpec::u8().default_value(20)),
    ));

    set.push(i_frame(
        "clock_sync",
        u64::from(type_id::C_CS_NA_1),
        BlockBuilder::new("object_cs")
            .bytes_with_rule(
                "ioa_cs",
                BytesSpec::fixed(3).default_content(vec![0x00, 0x00, 0x00]),
                "information-object-address",
            )
            .bytes("cp56time", BytesSpec::fixed(7).default_content(vec![0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07])),
    ));

    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use peachstar_datamodel::emit::emit_default;

    fn run(server: &mut Iec104Server, packet: &[u8]) -> Outcome {
        let mut ctx = TraceContext::new();
        server.process(packet, &mut ctx)
    }

    fn startdt(server: &mut Iec104Server) {
        let outcome = run(server, &[0x68, 0x04, 0x07, 0x00, 0x00, 0x00]);
        assert_eq!(
            outcome.response().unwrap(),
            &[0x68, 0x04, 0x0b, 0x00, 0x00, 0x00]
        );
    }

    fn i_frame(asdu: &[u8]) -> Vec<u8> {
        let mut frame = vec![0x68, (4 + asdu.len()) as u8, 0x00, 0x00, 0x00, 0x00];
        frame.extend_from_slice(asdu);
        frame
    }

    #[test]
    fn u_frames_manage_the_link() {
        let mut server = Iec104Server::new();
        startdt(&mut server);
        let testfr = run(&mut server, &[0x68, 0x04, 0x43, 0x00, 0x00, 0x00]);
        assert_eq!(testfr.response().unwrap()[2], 0x83);
        let stopdt = run(&mut server, &[0x68, 0x04, 0x13, 0x00, 0x00, 0x00]);
        assert_eq!(stopdt.response().unwrap()[2], 0x23);
    }

    #[test]
    fn i_frame_before_startdt_is_rejected() {
        let mut server = Iec104Server::new();
        let asdu = [45, 1, 6, 0, 1, 0, 0x01, 0x00, 0x00, 0x01];
        assert!(matches!(
            run(&mut server, &i_frame(&asdu)),
            Outcome::ProtocolError(_)
        ));
    }

    #[test]
    fn single_command_is_confirmed_and_updates_a_coil() {
        let mut server = Iec104Server::new();
        startdt(&mut server);
        // C_SC_NA_1, one object, COT=activation, CA=1, IOA=5, execute ON.
        let asdu = [45, 1, 6, 0, 1, 0, 0x05, 0x00, 0x00, 0x01];
        let outcome = run(&mut server, &i_frame(&asdu));
        let response = outcome.response().expect("activation confirmation");
        assert_eq!(response[6], 45);
        assert_eq!(response[8] & 0x3f, 7, "COT becomes activation confirmation");
        assert_eq!(server.receive_sequence(), 1);
    }

    #[test]
    fn interrogation_with_bad_qoi_gets_negative_confirmation() {
        let mut server = Iec104Server::new();
        startdt(&mut server);
        let good = [100, 1, 6, 0, 1, 0, 0x00, 0x00, 0x00, 20];
        let response = run(&mut server, &i_frame(&good));
        assert_eq!(response.response().unwrap()[8] & 0x40, 0);

        let bad = [100, 1, 6, 0, 1, 0, 0x00, 0x00, 0x00, 99];
        let response = run(&mut server, &i_frame(&bad));
        assert_ne!(response.response().unwrap()[8] & 0x40, 0, "P/N bit set");
    }

    #[test]
    fn set_point_updates_register() {
        let mut server = Iec104Server::new();
        startdt(&mut server);
        let asdu = [48, 1, 6, 0, 1, 0, 0x07, 0x00, 0x00, 0xCD, 0xAB, 0x00];
        let outcome = run(&mut server, &i_frame(&asdu));
        assert!(outcome.response().is_some());
        assert_eq!(server.db.register(7), Some(0xABCD));
    }

    #[test]
    fn malformed_frames_are_protocol_errors() {
        let mut server = Iec104Server::new();
        startdt(&mut server);
        assert!(matches!(run(&mut server, &[]), Outcome::ProtocolError(_)));
        assert!(matches!(
            run(&mut server, &[0x67, 0x04, 0x07, 0, 0, 0]),
            Outcome::ProtocolError(_)
        ));
        assert!(matches!(
            run(&mut server, &[0x68, 0x10, 0x07, 0, 0, 0]),
            Outcome::ProtocolError(_)
        ));
        // ASDU with zero elements.
        let asdu = [45, 0, 6, 0, 1, 0, 0x05, 0x00, 0x00, 0x01];
        assert!(matches!(
            run(&mut server, &i_frame(&asdu)),
            Outcome::ProtocolError(_)
        ));
        // Wrong common address.
        let asdu = [45, 1, 6, 0, 9, 0, 0x05, 0x00, 0x00, 0x01];
        assert!(matches!(
            run(&mut server, &i_frame(&asdu)),
            Outcome::ProtocolError(_)
        ));
    }

    #[test]
    fn truncated_measurement_sequence_is_detected() {
        let mut server = Iec104Server::new();
        startdt(&mut server);
        // M_ME_NA_1 claiming 5 elements but carrying far fewer bytes.
        let asdu = [9, 5, 3, 0, 1, 0, 0x01, 0x00, 0x00, 0x11, 0x22, 0x00];
        assert!(matches!(
            run(&mut server, &i_frame(&asdu)),
            Outcome::ProtocolError(_)
        ));
    }

    #[test]
    fn s_frame_acknowledges_received_count() {
        let mut server = Iec104Server::new();
        startdt(&mut server);
        let asdu = [45, 1, 6, 0, 1, 0, 0x05, 0x00, 0x00, 0x01];
        run(&mut server, &i_frame(&asdu));
        let outcome = run(&mut server, &[0x68, 0x04, 0x01, 0x00, 0x00, 0x00]);
        let response = outcome.response().unwrap();
        assert_eq!(response[4], 2, "receive sequence 1 encoded as <<1");
    }

    #[test]
    fn default_model_packets_are_accepted_after_startdt() {
        let mut server = Iec104Server::new();
        startdt(&mut server);
        for model in data_models().models() {
            let packet = emit_default(model).unwrap();
            let outcome = run(&mut server, &packet);
            assert!(
                !outcome.is_fault(),
                "{}: default packet must not fault",
                model.name()
            );
            assert!(
                outcome.response().is_some(),
                "{}: default packet should elicit a response, got {outcome:?}",
                model.name()
            );
        }
    }

    #[test]
    fn models_share_rules_with_each_other() {
        let set = data_models();
        assert!(set.len() >= 6);
        assert!(set.rule_overlap() > 0.3, "overlap: {}", set.rule_overlap());
    }

    #[test]
    fn apci_prescan_agrees_with_the_decoder_on_framing() {
        assert!(apci_well_framed(&[0x68, 0x04, 0x07, 0x00, 0x00, 0x00])); // STARTDT act
        assert!(!apci_well_framed(&[])); // too short
        assert!(!apci_well_framed(&[0x67, 0x04, 0x07, 0x00, 0x00, 0x00])); // bad start byte
        assert!(!apci_well_framed(&[0x68, 0x03, 0x07, 0x00, 0x00])); // length below APCI minimum
        assert!(!apci_well_framed(&[0x68, 0x05, 0x07, 0x00, 0x00, 0x00])); // length mismatch
        // Prescan-rejected frames must be decoder-rejected too.
        let mut server = Iec104Server::new();
        let mut ctx = TraceContext::new();
        for frame in [&[0x67u8, 0x04, 0x07, 0x00, 0x00, 0x00][..], &[0x68, 0x05, 0x07, 0x00, 0x00, 0x00]] {
            assert!(matches!(server.process(frame, &mut ctx), Outcome::ProtocolError(_)));
        }
    }
}
