//! The ICCP / TASE.2 server target (stand-in for `libiec_iccp_mod`).
//!
//! ICCP (Inter-Control Center Communications Protocol, IEC 60870-6 / TASE.2)
//! runs on top of MMS. This target models the library the paper fuzzed: an
//! association handshake, bilateral-table lookups, data-value (indication
//! point) reads/writes, data-set creation and transfer-set reporting — with
//! four planted faults matching the `libiec_iccp_mod` row of Table I:
//!
//! 1. **SEGV** in the association handler: the peer's AP title is copied via
//!    an index derived from an unvalidated length octet;
//! 2. **SEGV** in the data-set handler: a data-set referencing more entries
//!    than the request carries walks past the element array;
//! 3. **SEGV** in the transfer-set report builder: a report interval of zero
//!    makes the scheduler divide and index with a wrapped value;
//! 4. **heap buffer overflow** in the information-message handler: the
//!    `InfoReference` copy trusts the 16-bit size field and overflows the
//!    fixed 64-byte buffer of the original implementation.

use peachstar_coverage::{cov_edge, TraceContext};
use peachstar_datamodel::{
    BlockBuilder, BytesSpec, DataModelBuilder, DataModelSet, NumberSpec, Relation, StrSpec,
};

use crate::common::{read_u16_be, PointDatabase};
use crate::{Fault, FaultKind, Outcome, SessionPacket, SessionTemplate, Target};

/// ICCP message opcodes (simplified from the real library's MMS mapping).
mod opcode {
    pub const ASSOCIATE: u8 = 0x01;
    pub const CONCLUDE: u8 = 0x02;
    pub const GET_DATA_VALUE: u8 = 0x10;
    pub const SET_DATA_VALUE: u8 = 0x11;
    pub const CREATE_DATA_SET: u8 = 0x20;
    pub const READ_DATA_SET: u8 = 0x21;
    pub const START_TRANSFER_SET: u8 = 0x30;
    pub const INFORMATION_MESSAGE: u8 = 0x40;
}

/// Size of the fixed InfoReference buffer in the original C implementation.
const INFO_REFERENCE_BUFFER: usize = 64;

/// Maximum number of entries a data set may hold.
const MAX_DATA_SET_ENTRIES: usize = 32;

/// The ICCP / TASE.2 server.
#[derive(Debug)]
pub struct IccpServer {
    db: PointDatabase,
    associated: bool,
    data_sets: Vec<Vec<String>>,
    transfer_sets_started: u32,
}

impl IccpServer {
    /// Creates a server with a small bilateral table of indication points.
    #[must_use]
    pub fn new() -> Self {
        let mut db = PointDatabase::default();
        db.set_named_point("icc1/VoltageA", 230.1);
        db.set_named_point("icc1/VoltageB", 229.8);
        db.set_named_point("icc1/BreakerState", 1.0);
        db.set_named_point("icc1/Frequency", 50.02);
        Self {
            db,
            associated: false,
            data_sets: Vec::new(),
            transfer_sets_started: 0,
        }
    }

    /// Number of transfer sets started so far.
    #[must_use]
    pub fn transfer_sets_started(&self) -> u32 {
        self.transfer_sets_started
    }

    /// Number of data sets created so far.
    #[must_use]
    pub fn data_set_count(&self) -> usize {
        self.data_sets.len()
    }

    fn ok_response(opcode: u8, payload: &[u8]) -> Outcome {
        crate::sink::response_with(5 + payload.len(), |response| {
            response.extend_from_slice(&[0x54, 0x32, opcode | 0x80]);
            response.extend_from_slice(&(payload.len() as u16).to_be_bytes());
            response.extend_from_slice(payload);
        })
    }

    fn read_reference(body: &[u8], offset: usize) -> Option<(&str, usize)> {
        let length = usize::from(*body.get(offset)?);
        let bytes = body.get(offset + 1..offset + 1 + length)?;
        let text = std::str::from_utf8(bytes).ok()?;
        Some((text, offset + 1 + length))
    }

    #[allow(clippy::too_many_lines)]
    fn handle_message(&mut self, opcode: u8, body: &[u8], ctx: &mut TraceContext) -> Outcome {
        cov_edge!(ctx);
        match opcode {
            opcode::ASSOCIATE => {
                cov_edge!(ctx);
                // Body: version(2) ap-title-length(1) ap-title(n) bltable-id…
                if body.len() < 3 {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("associate request too short");
                }
                let version = read_u16_be(body, 0).expect("length checked");
                if version != 0x0001 && version != 0x0002 {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error_fmt(format_args!("unsupported TASE.2 version {version}"));
                }
                let ap_title_length = usize::from(body[2]);
                // Planted bug 1 (Table I, libiec_iccp_mod, SEGV): the length
                // octet is used to index the receive buffer without checking
                // it against the actual message size.
                if ap_title_length > body.len().saturating_sub(3) {
                    cov_edge!(ctx);
                    return Outcome::Fault(Fault::new(
                        FaultKind::Segv,
                        "acse.c:parseApTitle",
                    ));
                }
                cov_edge!(ctx);
                self.associated = true;
                Self::ok_response(opcode, &[0x00])
            }
            opcode::CONCLUDE => {
                cov_edge!(ctx);
                self.associated = false;
                Self::ok_response(opcode, &[])
            }
            opcode::GET_DATA_VALUE => {
                cov_edge!(ctx);
                if !self.associated {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("not associated");
                }
                let Some((reference, _)) = Self::read_reference(body, 0) else {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("missing point reference");
                };
                cov_edge!(ctx);
                match self.db.named_point(reference) {
                    Some(value) => {
                        cov_edge!(ctx);
                        // Per-point handlers of the original bilateral table.
                        cov_edge!(ctx, reference.bytes().map(u32::from).sum::<u32>());
                        Self::ok_response(opcode, &(value as f32).to_be_bytes())
                    }
                    None => {
                        cov_edge!(ctx);
                        Self::ok_response(opcode, &[0xff])
                    }
                }
            }
            opcode::SET_DATA_VALUE => {
                cov_edge!(ctx);
                if !self.associated {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("not associated");
                }
                let Some((reference, next)) = Self::read_reference(body, 0) else {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("missing point reference");
                };
                let Some(raw) = body.get(next..next + 4) else {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("missing point value");
                };
                cov_edge!(ctx);
                let value = f64::from(f32::from_be_bytes([raw[0], raw[1], raw[2], raw[3]]));
                if self.db.named_point(reference).is_some() {
                    cov_edge!(ctx);
                    cov_edge!(ctx, reference.bytes().map(u32::from).sum::<u32>());
                    cov_edge!(ctx, raw[0] >> 3);
                    self.db.set_named_point(reference.to_string(), value);
                    Self::ok_response(opcode, &[0x00])
                } else {
                    cov_edge!(ctx);
                    Self::ok_response(opcode, &[0xff])
                }
            }
            opcode::CREATE_DATA_SET => {
                cov_edge!(ctx);
                if !self.associated {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("not associated");
                }
                if body.is_empty() {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("empty data set request");
                }
                let declared_entries = usize::from(body[0]);
                if declared_entries == 0 || declared_entries > MAX_DATA_SET_ENTRIES {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error_fmt(format_args!(
                        "data set entry count {declared_entries} out of range"
                    ));
                }
                let mut entries = Vec::with_capacity(declared_entries);
                let mut offset = 1usize;
                for index in 0..declared_entries {
                    cov_edge!(ctx);
                    match Self::read_reference(body, offset) {
                        Some((reference, next)) => {
                            entries.push(reference.to_string());
                            offset = next;
                        }
                        None => {
                            cov_edge!(ctx);
                            // Planted bug 2 (Table I, SEGV): the element loop
                            // trusts the declared count and dereferences a
                            // NULL entry pointer when the request runs out of
                            // references early.
                            let _ = index;
                            return Outcome::Fault(Fault::new(
                                FaultKind::Segv,
                                "data_sets.c:createDataSet",
                            ));
                        }
                    }
                }
                cov_edge!(ctx);
                cov_edge!(ctx, entries.len());
                self.data_sets.push(entries);
                Self::ok_response(opcode, &[(self.data_sets.len() - 1) as u8])
            }
            opcode::READ_DATA_SET => {
                cov_edge!(ctx);
                if !self.associated {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("not associated");
                }
                let Some(&index) = body.first() else {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("missing data set index");
                };
                cov_edge!(ctx);
                match self.data_sets.get(usize::from(index)) {
                    Some(entries) => {
                        cov_edge!(ctx);
                        let mut payload = vec![entries.len() as u8];
                        for entry in entries {
                            let value = self.db.named_point(entry).unwrap_or(0.0);
                            payload.extend_from_slice(&(value as f32).to_be_bytes());
                        }
                        Self::ok_response(opcode, &payload)
                    }
                    None => {
                        cov_edge!(ctx);
                        Self::ok_response(opcode, &[0xff])
                    }
                }
            }
            opcode::START_TRANSFER_SET => {
                cov_edge!(ctx);
                if !self.associated {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("not associated");
                }
                // Body: data-set index(1) report-interval(2) rbe-flag(1).
                if body.len() < 4 {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("transfer set request too short");
                }
                let data_set_index = usize::from(body[0]);
                let interval = read_u16_be(body, 1).expect("length checked");
                if data_set_index >= self.data_sets.len() {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("unknown data set");
                }
                // Planted bug 3 (Table I, SEGV): interval zero makes the
                // original scheduler compute `next_report = now % interval`
                // and index the report ring with the wrapped result.
                if interval == 0 {
                    cov_edge!(ctx);
                    return Outcome::Fault(Fault::new(
                        FaultKind::Segv,
                        "transfer_sets.c:scheduleReport",
                    ));
                }
                if interval > 3600 {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("report interval out of range");
                }
                cov_edge!(ctx);
                cov_edge!(ctx, data_set_index);
                cov_edge!(ctx, interval / 60);
                self.transfer_sets_started += 1;
                Self::ok_response(opcode, &[0x00])
            }
            opcode::INFORMATION_MESSAGE => {
                cov_edge!(ctx);
                if !self.associated {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("not associated");
                }
                // Body: info-reference-size(2) info-reference(n) message…
                let Some(size) = read_u16_be(body, 0) else {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("missing info reference size");
                };
                let reference = body.get(2..2 + usize::from(size));
                // Planted bug 4 (Table I, heap buffer overflow): the copy
                // into the fixed InfoReference buffer trusts the size field.
                if usize::from(size) > INFO_REFERENCE_BUFFER {
                    cov_edge!(ctx);
                    return Outcome::Fault(Fault::new(
                        FaultKind::HeapBufferOverflow,
                        "information_messages.c:copyInfoReference",
                    ));
                }
                let Some(reference) = reference else {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("info reference truncated");
                };
                cov_edge!(ctx);
                cov_edge!(ctx, size / 4);
                let echo_len = reference.len().min(8) as u8;
                Self::ok_response(opcode, &[echo_len])
            }
            other => {
                cov_edge!(ctx);
                crate::sink::protocol_error_fmt(format_args!("unknown ICCP opcode {other:#04x}"))
            }
        }
    }
}

impl Default for IccpServer {
    fn default() -> Self {
        Self::new()
    }
}

impl Target for IccpServer {
    fn name(&self) -> &'static str {
        "libiec_iccp_mod"
    }

    fn data_models(&self) -> DataModelSet {
        data_models()
    }

    fn process(&mut self, packet: &[u8], ctx: &mut TraceContext) -> Outcome {
        cov_edge!(ctx);
        // Header: magic "T2" (0x54 0x32), opcode(1), length(2), body.
        if packet.len() < 5 {
            cov_edge!(ctx);
            return crate::sink::protocol_error("packet shorter than ICCP header");
        }
        if packet[0] != 0x54 || packet[1] != 0x32 {
            cov_edge!(ctx);
            return crate::sink::protocol_error("bad ICCP magic");
        }
        let opcode = packet[2];
        let length = usize::from(read_u16_be(packet, 3).expect("length checked"));
        if length != packet.len() - 5 {
            cov_edge!(ctx);
            return crate::sink::protocol_error_fmt(format_args!(
                "ICCP length {length} does not match body length {}",
                packet.len() - 5
            ));
        }
        cov_edge!(ctx);
        let body = &packet[5..];
        self.handle_message(opcode, body, ctx)
    }

    fn reset(&mut self) {
        *self = Self::new();
    }

    fn clone_fresh(&self) -> Box<dyn Target + Send> {
        Box::new(Self::new())
    }

    fn session_template(&self) -> Option<SessionTemplate> {
        // TASE.2 services answer "not associated" until the associate
        // handshake succeeds, so a session is associate → mutated service
        // requests → conclude. Body: version 0x0001, AP title "icc1".
        Some(SessionTemplate::new(
            vec![SessionPacket::new(
                vec![
                    0x54, 0x32, // magic "T2"
                    0x01, // ASSOCIATE
                    0x00, 0x07, // body length
                    0x00, 0x01, // TASE.2 version 1
                    0x04, b'i', b'c', b'c', b'1', // AP title
                ],
                "associate",
            )],
            vec![SessionPacket::new(
                vec![0x54, 0x32, 0x02, 0x00, 0x00],
                "conclude",
            )],
        ))
    }

    fn process_batch(
        &mut self,
        packets: &[&[u8]],
        ctx: &mut TraceContext,
        out: &mut crate::WindowResults,
        sink: crate::DecodeSink,
    ) {
        let _armed = sink.arm();
        out.begin();
        // Window-hoisted ICCP header prescan (magic, opcode, length field),
        // via the vectorised [`crate::prescan`] kernels with the verdict
        // buffer pooled in `out`. The decoder below stays authoritative;
        // debug builds assert the prescan is never stricter than it.
        #[cfg(debug_assertions)]
        let mut scratch = out.take_prescan();
        #[cfg(debug_assertions)]
        let well_framed = scratch.run(crate::FrameSpec::Iccp, packets);
        for (index, packet) in packets.iter().enumerate() {
            ctx.reset();
            // Statically dispatched: one virtual call per window.
            let outcome = self.process(packet, ctx);
            if outcome.is_fault() {
                self.reset();
            }
            #[cfg(debug_assertions)]
            debug_assert!(
                well_framed[index] || matches!(outcome, Outcome::ProtocolError(_)),
                "prescan rejected packet {index}, but the decoder accepted it"
            );
            let _ = index;
            out.record(&outcome, ctx.trace());
        }
        #[cfg(debug_assertions)]
        out.return_prescan(scratch);
    }
}

/// The format specification of the ICCP packets the fuzzer generates.
#[must_use]
pub fn data_models() -> DataModelSet {
    let mut set = DataModelSet::new("iccp");

    let with_header = |name: &str, opcode: u64, body: BlockBuilder| {
        DataModelBuilder::new(name)
            .number_with_rule("magic1", NumberSpec::u8().fixed_value(0x54), "iccp-magic")
            .number_with_rule("magic2", NumberSpec::u8().fixed_value(0x32), "iccp-magic")
            .number("opcode", NumberSpec::u8().fixed_value(opcode))
            .number_with_rule(
                "length",
                NumberSpec::u16_be().relation(Relation::size_of("body")),
                "iccp-length",
            )
            .chunk(body.rule("iccp-body").build())
            .build()
            .expect("iccp data model is statically valid")
    };

    set.push(with_header(
        "associate",
        u64::from(opcode::ASSOCIATE),
        BlockBuilder::new("body")
            .number("version", NumberSpec::u16_be().allowed_values(vec![1, 2]))
            // Coarse-grained: the pit treats the AP-title length as an
            // ordinary byte rather than deriving it from the title, so the
            // fuzzer can produce the overclaiming packets that reach the
            // parseApTitle bug.
            .number("ap_title_length", NumberSpec::u8().default_value(8))
            .str("ap_title", StrSpec::fixed(8).default_content("ctrl-ctr"))
            .number("bilateral_table", NumberSpec::u8().default_value(1)),
    ));

    set.push(with_header(
        "get_data_value",
        u64::from(opcode::GET_DATA_VALUE),
        BlockBuilder::new("body")
            .number_with_rule(
                "reference_length",
                NumberSpec::u8().relation(Relation::size_of("reference")),
                "iccp-reference-length",
            )
            .str_with_default_rule("reference", "icc1/VoltageA", "iccp-reference"),
    ));

    set.push(with_header(
        "set_data_value",
        u64::from(opcode::SET_DATA_VALUE),
        BlockBuilder::new("body")
            .number_with_rule(
                "reference_length_set",
                NumberSpec::u8().relation(Relation::size_of("reference_set")),
                "iccp-reference-length",
            )
            .str_with_default_rule("reference_set", "icc1/VoltageB", "iccp-reference")
            .bytes(
                "value_set",
                BytesSpec::fixed(4).default_content(231.0f32.to_be_bytes().to_vec()),
            ),
    ));

    set.push(with_header(
        "create_data_set",
        u64::from(opcode::CREATE_DATA_SET),
        BlockBuilder::new("body")
            .number("entry_count", NumberSpec::u8().fixed_value(2))
            .number_with_rule(
                "entry1_length",
                NumberSpec::u8().relation(Relation::size_of("entry1")),
                "iccp-reference-length",
            )
            .str_with_default_rule("entry1", "icc1/VoltageA", "iccp-reference")
            .number_with_rule(
                "entry2_length",
                NumberSpec::u8().relation(Relation::size_of("entry2")),
                "iccp-reference-length",
            )
            .str_with_default_rule("entry2", "icc1/Frequency", "iccp-reference"),
    ));

    set.push(with_header(
        "start_transfer_set",
        u64::from(opcode::START_TRANSFER_SET),
        BlockBuilder::new("body")
            .number("data_set_index", NumberSpec::u8())
            .number("report_interval", NumberSpec::u16_be().default_value(60))
            .number("report_by_exception", NumberSpec::u8().allowed_values(vec![0, 1])),
    ));

    set.push(with_header(
        "information_message",
        u64::from(opcode::INFORMATION_MESSAGE),
        BlockBuilder::new("body")
            // Coarse-grained: the size field is not tied to the reference, so
            // oversized claims (the copyInfoReference overflow) can appear.
            .number("info_reference_size", NumberSpec::u16_be().default_value(12))
            .str("info_reference", StrSpec::fixed(12).default_content("alarm/zone-1"))
            .str("message_text", StrSpec::remainder().default_content("breaker trip")),
    ));

    set
}

/// Helper extension used by the model definitions above: a fixed-length
/// string chunk whose default content determines its length, with an
/// explicit rule name.
trait StrWithRule {
    fn str_with_default_rule(
        self,
        name: &str,
        default: &str,
        rule: &str,
    ) -> Self;
}

impl StrWithRule for BlockBuilder {
    fn str_with_default_rule(self, name: &str, default: &str, rule: &str) -> Self {
        self.chunk(
            peachstar_datamodel::Chunk::str(
                name,
                StrSpec::fixed(default.len()).default_content(default),
            )
            .with_rule(rule),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peachstar_datamodel::emit::emit_default;

    fn run(server: &mut IccpServer, packet: &[u8]) -> Outcome {
        let mut ctx = TraceContext::new();
        server.process(packet, &mut ctx)
    }

    fn message(opcode: u8, body: &[u8]) -> Vec<u8> {
        let mut packet = vec![0x54, 0x32, opcode];
        packet.extend_from_slice(&(body.len() as u16).to_be_bytes());
        packet.extend_from_slice(body);
        packet
    }

    fn associate(server: &mut IccpServer) {
        let mut body = vec![0x00, 0x01, 0x04];
        body.extend_from_slice(b"ctrl");
        body.push(0x01);
        assert!(run(server, &message(opcode::ASSOCIATE, &body))
            .response()
            .is_some());
    }

    fn reference(text: &str) -> Vec<u8> {
        let mut out = vec![text.len() as u8];
        out.extend_from_slice(text.as_bytes());
        out
    }

    #[test]
    fn associate_then_read_point() {
        let mut server = IccpServer::new();
        associate(&mut server);
        let outcome = run(
            &mut server,
            &message(opcode::GET_DATA_VALUE, &reference("icc1/VoltageA")),
        );
        let response = outcome.response().unwrap();
        let value = f32::from_be_bytes([response[5], response[6], response[7], response[8]]);
        assert!((value - 230.1).abs() < 0.01);
    }

    #[test]
    fn requests_before_association_are_rejected() {
        let mut server = IccpServer::new();
        let outcome = run(
            &mut server,
            &message(opcode::GET_DATA_VALUE, &reference("icc1/VoltageA")),
        );
        assert!(matches!(outcome, Outcome::ProtocolError(_)));
    }

    #[test]
    fn set_then_get_roundtrip() {
        let mut server = IccpServer::new();
        associate(&mut server);
        let mut body = reference("icc1/Frequency");
        body.extend_from_slice(&49.95f32.to_be_bytes());
        assert!(run(&mut server, &message(opcode::SET_DATA_VALUE, &body))
            .response()
            .is_some());
        assert!((server.db.named_point("icc1/Frequency").unwrap() - 49.95).abs() < 0.01);
    }

    #[test]
    fn data_set_create_and_read() {
        let mut server = IccpServer::new();
        associate(&mut server);
        let mut body = vec![2u8];
        body.extend(reference("icc1/VoltageA"));
        body.extend(reference("icc1/VoltageB"));
        let outcome = run(&mut server, &message(opcode::CREATE_DATA_SET, &body));
        assert!(outcome.response().is_some());
        assert_eq!(server.data_set_count(), 1);

        let outcome = run(&mut server, &message(opcode::READ_DATA_SET, &[0]));
        let response = outcome.response().unwrap();
        assert_eq!(response[5], 2, "two values in the data set");
    }

    #[test]
    fn planted_segv_in_associate_ap_title() {
        let mut server = IccpServer::new();
        // Version ok, but the AP title length claims more bytes than exist.
        let body = vec![0x00, 0x01, 0x30, b'x'];
        let outcome = run(&mut server, &message(opcode::ASSOCIATE, &body));
        let fault = outcome.fault().expect("SEGV in parseApTitle");
        assert_eq!(fault.site, "acse.c:parseApTitle");
        assert_eq!(fault.kind, FaultKind::Segv);
    }

    #[test]
    fn planted_segv_in_create_data_set() {
        let mut server = IccpServer::new();
        associate(&mut server);
        // Claims 4 entries but only carries one reference.
        let mut body = vec![4u8];
        body.extend(reference("icc1/VoltageA"));
        let outcome = run(&mut server, &message(opcode::CREATE_DATA_SET, &body));
        let fault = outcome.fault().expect("SEGV in createDataSet");
        assert_eq!(fault.site, "data_sets.c:createDataSet");
    }

    #[test]
    fn planted_segv_in_transfer_set_interval_zero() {
        let mut server = IccpServer::new();
        associate(&mut server);
        let mut body = vec![2u8];
        body.extend(reference("icc1/VoltageA"));
        body.extend(reference("icc1/VoltageB"));
        run(&mut server, &message(opcode::CREATE_DATA_SET, &body));
        // interval = 0
        let outcome = run(
            &mut server,
            &message(opcode::START_TRANSFER_SET, &[0, 0x00, 0x00, 0x01]),
        );
        let fault = outcome.fault().expect("SEGV in scheduleReport");
        assert_eq!(fault.site, "transfer_sets.c:scheduleReport");
    }

    #[test]
    fn valid_transfer_set_starts() {
        let mut server = IccpServer::new();
        associate(&mut server);
        let mut body = vec![1u8];
        body.extend(reference("icc1/VoltageA"));
        run(&mut server, &message(opcode::CREATE_DATA_SET, &body));
        let outcome = run(
            &mut server,
            &message(opcode::START_TRANSFER_SET, &[0, 0x00, 0x3c, 0x01]),
        );
        assert!(outcome.response().is_some());
        assert_eq!(server.transfer_sets_started(), 1);
    }

    #[test]
    fn planted_heap_overflow_in_information_message() {
        let mut server = IccpServer::new();
        associate(&mut server);
        // Info reference size of 300 bytes overflows the 64-byte buffer.
        let mut body = vec![0x01, 0x2c];
        body.extend(std::iter::repeat_n(b'A', 20));
        let outcome = run(&mut server, &message(opcode::INFORMATION_MESSAGE, &body));
        let fault = outcome.fault().expect("heap overflow in copyInfoReference");
        assert_eq!(fault.kind, FaultKind::HeapBufferOverflow);
    }

    #[test]
    fn small_information_message_is_fine() {
        let mut server = IccpServer::new();
        associate(&mut server);
        let mut body = vec![0x00, 0x05];
        body.extend_from_slice(b"alarm");
        body.extend_from_slice(b"text");
        assert!(run(&mut server, &message(opcode::INFORMATION_MESSAGE, &body))
            .response()
            .is_some());
    }

    #[test]
    fn four_distinct_bug_sites_exist() {
        let mut sites = std::collections::HashSet::new();
        // Bug 1 (pre-association).
        let mut server = IccpServer::new();
        if let Some(fault) = run(
            &mut server,
            &message(opcode::ASSOCIATE, &[0x00, 0x01, 0x30, b'x']),
        )
        .fault()
        {
            sites.insert(fault.site);
        }
        // Bugs 2-4 need an association.
        let mut server = IccpServer::new();
        associate(&mut server);
        let mut short_dataset = vec![4u8];
        short_dataset.extend(reference("icc1/VoltageA"));
        let mut dataset = vec![1u8];
        dataset.extend(reference("icc1/VoltageA"));
        run(&mut server, &message(opcode::CREATE_DATA_SET, &dataset));
        let probes = vec![
            message(opcode::CREATE_DATA_SET, &short_dataset),
            message(opcode::START_TRANSFER_SET, &[0, 0x00, 0x00, 0x01]),
            message(opcode::INFORMATION_MESSAGE, &[0x01, 0x2c, b'A', b'B']),
        ];
        for probe in probes {
            if let Some(fault) = run(&mut server, &probe).fault() {
                sites.insert(fault.site);
            }
        }
        assert_eq!(sites.len(), 4, "three SEGV sites plus one overflow site");
    }

    #[test]
    fn malformed_header_is_a_protocol_error() {
        let mut server = IccpServer::new();
        assert!(matches!(run(&mut server, &[]), Outcome::ProtocolError(_)));
        assert!(matches!(
            run(&mut server, &[0x55, 0x32, 0x01, 0x00, 0x00]),
            Outcome::ProtocolError(_)
        ));
        assert!(matches!(
            run(&mut server, &[0x54, 0x32, 0x01, 0x00, 0x09]),
            Outcome::ProtocolError(_)
        ));
    }

    #[test]
    fn default_model_packets_do_not_fault() {
        let mut server = IccpServer::new();
        // Associate first so the deeper models are reachable.
        for model in data_models().models() {
            let packet = emit_default(model).unwrap();
            let outcome = run(&mut server, &packet);
            assert!(
                !outcome.is_fault(),
                "{}: default packet must not fault: {outcome:?}",
                model.name()
            );
        }
    }

    #[test]
    fn models_share_reference_rules() {
        let set = data_models();
        assert!(set.len() >= 6);
        assert!(set.rule_overlap() > 0.2, "overlap: {}", set.rule_overlap());
    }
}
