//! Socket-server mode: run any [`Target`] behind a real TCP listener.
//!
//! [`serve`] spawns an accept loop; every accepted connection gets its own
//! handler thread with its own fresh target instance (built with
//! [`Target::clone_fresh`] from the server's blueprint), its own spare for
//! panic rebuilds, and its own [`TraceContext`] — exactly the ownership
//! model of one in-process executor lane. The handler speaks the
//! [`wire`](crate::wire) protocol: [`Request::Process`] / [`Request::Batch`]
//! / [`Request::Reset`] in, [`Response`] with outcomes and sparse traces out,
//! framed per [`WireFraming::for_target`].
//!
//! Server-side semantics replicate the in-process executor bit for bit:
//!
//! * **Process**: `ctx.reset()` → [`contained`] `process` → a panic rebuilds
//!   the target from the spare and becomes a [`panic_fault`] outcome → a
//!   fault outcome triggers `target.reset()` — the exact sequence of the
//!   in-process `TargetExecutor` and its watchdog worker.
//! * **Batch**: the requested [`DecodeSink`](crate::DecodeSink) is armed around a *per-packet
//!   contained loop* (never a whole-window `process_batch` call). This is
//!   deliberate: the in-process engines fall back to exactly this per-packet
//!   contained sequence whenever a window fails (executor rebuild-and-finish,
//!   sharded failed-window re-execution), and for windows that *don't* fail
//!   the per-packet results are identical to the batched ones (proven by the
//!   batch-equivalence tests). Containing per packet server-side means a
//!   client-visible window never fails, which is what makes TCP campaigns
//!   reduce to the same records as in-process ones.
//! * **Panic containment is server-side** ([`crate::containment`]): a target
//!   panic must become a `Panic` fault on the wire, not a dead handler
//!   thread and a broken socket.
//!
//! The server never calls `target.reset()` on its own schedule: reset policy
//! (window boundaries, post-fault hygiene beyond the mirrored sequence
//! above) belongs to the client-side executor, which ships explicit
//! [`Request::Reset`] messages. That keeps the reset cadence — and therefore
//! coverage — byte-identical to the in-process path.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use peachstar_coverage::TraceContext;

use crate::containment::{contained, panic_fault};
use crate::wire::{MessageStream, Request, Response, WireFraming};
use crate::{Outcome, OutcomeSummary, Target};

/// A running socket server: owns the accept thread and shuts it down on
/// drop. Connection handler threads are detached — each exits when its
/// client disconnects.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on (use with a port-0 bind to
    /// discover the ephemeral port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting new connections and joins the accept thread.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            // The accept loop is blocked in `accept()`; a throwaway connect
            // wakes it so it can observe the flag and exit.
            let _ = TcpStream::connect(self.addr);
            let _ = accept.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Runs `target` behind `listener`: every accepted connection is served by
/// its own thread with its own [`Target::clone_fresh`] instance. Returns a
/// handle that stops the accept loop on drop.
///
/// # Errors
///
/// Propagates the listener's local-address lookup failure.
pub fn serve(listener: TcpListener, target: Box<dyn Target + Send>) -> io::Result<ServerHandle> {
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let accept_shutdown = Arc::clone(&shutdown);
    let accept = std::thread::Builder::new()
        .name(format!("peachstar-serve-{}", target.name()))
        .spawn(move || {
            for connection in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = connection else { continue };
                let connection_target = target.clone_fresh();
                let spare = target.clone_fresh();
                let _ = std::thread::Builder::new()
                    .name("peachstar-serve-conn".to_owned())
                    .spawn(move || {
                        // Handler errors mean the client vanished (or the
                        // stream desynchronised); either way the connection
                        // is done and the client rebuilds via clone_fresh.
                        let _ = handle_connection(stream, connection_target, spare);
                    });
            }
        })?;
    Ok(ServerHandle {
        addr,
        shutdown,
        accept: Some(accept),
    })
}

/// Serves one connection until EOF: the request/reply loop described in the
/// module docs.
fn handle_connection(
    mut stream: TcpStream,
    mut target: Box<dyn Target + Send>,
    spare: Box<dyn Target + Send>,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let framing = WireFraming::for_target(target.name());
    let mut messages = MessageStream::new(framing);
    let mut ctx = TraceContext::new();
    let mut payload = Vec::new();
    let mut records: Vec<(OutcomeSummary, peachstar_coverage::SparseTrace)> = Vec::new();
    while let Some(message) = messages.recv(&mut stream)? {
        let request = Request::decode(&message)?;
        let response = match request {
            Request::Process(packet) => {
                let (outcome, trace) = execute_one(&mut target, &*spare, &mut ctx, &packet);
                Response::Process(outcome, trace)
            }
            Request::Batch { sink, packets } => {
                let _armed = sink.arm();
                records.clear();
                for packet in &packets {
                    let (outcome, trace) = execute_one(&mut target, &*spare, &mut ctx, packet);
                    records.push((OutcomeSummary::from(&outcome), trace));
                }
                Response::Batch(std::mem::take(&mut records))
            }
            Request::Reset => {
                target.reset();
                Response::ResetDone
            }
        };
        response.encode_into(&mut payload);
        messages.send(&mut stream, &payload)?;
    }
    Ok(())
}

/// One contained execution: the in-process executor's exact sequence —
/// trace reset, contained `process`, rebuild-from-spare on panic, post-fault
/// target reset — returning the outcome with its sparse trace snapshot.
fn execute_one(
    target: &mut Box<dyn Target + Send>,
    spare: &(dyn Target + Send),
    ctx: &mut TraceContext,
    packet: &[u8],
) -> (Outcome, peachstar_coverage::SparseTrace) {
    ctx.reset();
    let outcome = match contained(|| target.process(packet, ctx)) {
        Ok(outcome) => outcome,
        Err(message) => {
            *target = spare.clone_fresh();
            Outcome::Fault(panic_fault(&message))
        }
    };
    if outcome.is_fault() {
        target.reset();
    }
    (outcome, ctx.trace().to_sparse())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modbus::ModbusServer;
    use crate::wire::FrameReassembler;

    fn roundtrip(stream: &mut TcpStream, messages: &mut MessageStream, request: &Request) -> Response {
        let mut payload = Vec::new();
        request.encode_into(&mut payload);
        messages.send(stream, &payload).expect("send");
        let reply = messages.recv(stream).expect("recv").expect("reply");
        Response::decode(&reply).expect("valid response")
    }

    #[test]
    fn serves_process_batch_and_reset_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let mut server = serve(listener, Box::new(ModbusServer::new())).expect("serve");
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        let framing = WireFraming::for_target("libmodbus");
        assert_eq!(framing, WireFraming::Raw);
        let mut messages = MessageStream::new(framing);

        // A syntactically hopeless packet must come back as the same
        // protocol error the in-process target produces.
        let mut reference = ModbusServer::new();
        let mut ctx = TraceContext::new();
        ctx.reset();
        let expected = reference.process(&[0x01], &mut ctx);
        let expected_trace = ctx.trace().to_sparse();
        let Response::Process(outcome, trace) =
            roundtrip(&mut stream, &mut messages, &Request::Process(vec![0x01]))
        else {
            panic!("expected a process response");
        };
        assert_eq!(outcome, expected);
        assert_eq!(trace, expected_trace);

        // Batch: per-packet summaries in order, matching the sequential
        // reference loop.
        let packets = vec![vec![0x01u8], vec![0x02], vec![0x01]];
        let Response::Batch(records) = roundtrip(
            &mut stream,
            &mut messages,
            &Request::Batch {
                sink: crate::DecodeSink::Full,
                packets: packets.clone(),
            },
        ) else {
            panic!("expected a batch response");
        };
        assert_eq!(records.len(), packets.len());
        for (packet, (summary, trace)) in packets.iter().zip(&records) {
            ctx.reset();
            let outcome = reference.process(packet, &mut ctx);
            assert_eq!(*summary, OutcomeSummary::from(&outcome));
            assert_eq!(*trace, ctx.trace().to_sparse());
        }

        let reply = roundtrip(&mut stream, &mut messages, &Request::Reset);
        assert_eq!(reply, Response::ResetDone);

        server.shutdown();
    }

    #[test]
    fn each_connection_gets_its_own_target_instance() {
        // Two interleaved connections must not share protocol state: a
        // session opened on one is invisible to the other. We use the raw
        // reassembler here only to prove frames survive byte-split delivery
        // through a real socket.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let server = serve(listener, Box::new(ModbusServer::new())).expect("serve");
        let mut first = TcpStream::connect(server.addr()).expect("connect");
        let mut second = TcpStream::connect(server.addr()).expect("connect");
        let mut messages_first = MessageStream::new(WireFraming::Raw);
        let mut messages_second = MessageStream::new(WireFraming::Raw);
        let packet = vec![0x00u8, 0x01, 0x00, 0x00, 0x00, 0x06, 0x11, 0x03, 0x00, 0x6B, 0x00, 0x03];
        let a = roundtrip(&mut first, &mut messages_first, &Request::Process(packet.clone()));
        let b = roundtrip(&mut second, &mut messages_second, &Request::Process(packet));
        assert_eq!(a, b, "independent fresh instances answer identically");
        let _ = FrameReassembler::new(WireFraming::Raw);
    }
}
