//! Socket-server mode: run any [`Target`] behind a real TCP listener.
//!
//! [`serve`] spawns an accept loop; every accepted connection gets its own
//! handler thread with its own fresh target instance (built with
//! [`Target::clone_fresh`] from the server's blueprint), its own spare for
//! panic rebuilds, and its own [`TraceContext`] — exactly the ownership
//! model of one in-process executor lane. The handler speaks the
//! [`wire`](crate::wire) protocol: [`Request::Process`] / [`Request::Batch`]
//! / [`Request::Reset`] in, [`Response`] with outcomes and sparse traces out,
//! framed per [`WireFraming::for_target`].
//!
//! Server-side semantics replicate the in-process executor bit for bit:
//!
//! * **Process**: `ctx.reset()` → [`contained`] `process` → a panic rebuilds
//!   the target from the spare and becomes a [`panic_fault`] outcome → a
//!   fault outcome triggers `target.reset()` — the exact sequence of the
//!   in-process `TargetExecutor` and its watchdog worker.
//! * **Batch**: the requested [`DecodeSink`](crate::DecodeSink) is armed around a *per-packet
//!   contained loop* (never a whole-window `process_batch` call). This is
//!   deliberate: the in-process engines fall back to exactly this per-packet
//!   contained sequence whenever a window fails (executor rebuild-and-finish,
//!   sharded failed-window re-execution), and for windows that *don't* fail
//!   the per-packet results are identical to the batched ones (proven by the
//!   batch-equivalence tests). Containing per packet server-side means a
//!   client-visible window never fails, which is what makes TCP campaigns
//!   reduce to the same records as in-process ones.
//! * **Panic containment is server-side** ([`crate::containment`]): a target
//!   panic must become a `Panic` fault on the wire, not a dead handler
//!   thread and a broken socket.
//!
//! The server never calls `target.reset()` on its own schedule: reset policy
//! (window boundaries, post-fault hygiene beyond the mirrored sequence
//! above) belongs to the client-side executor, which ships explicit
//! [`Request::Reset`] messages. That keeps the reset cadence — and therefore
//! coverage — byte-identical to the in-process path.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use peachstar_coverage::TraceContext;

use crate::containment::{contained, panic_fault};
use crate::wire::{MessageStream, Request, Response, WireFraming};
use crate::{Outcome, OutcomeSummary, Target};

/// Deterministic server-side failure injection for [`serve_with_chaos`]:
/// the wire-level counterpart of [`ChaosTarget`](crate::chaos::ChaosTarget).
/// Where the chaos *target* fails inside `process`, wire chaos fails the
/// *connection* — the shapes a flapping production endpoint actually shows
/// a fuzzer.
///
/// Frames are counted globally across all connections; on every
/// `drop_every_frames`-th received frame the handler drops its connection
/// *before processing that frame* (so the client-side journal replay plus
/// request retry reproduces the undisturbed packet sequence exactly — the
/// basis of the bit-identical-report guarantee), then the accept loop
/// rejects the next `reject_accepts_after_drop` connection attempts
/// (accept-and-close), modelling a server that goes away for a window and
/// comes back. `max_drops` bounds the total injected incidents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireChaos {
    /// Drop the handling connection on every Nth received frame (`None`
    /// disables wire chaos entirely).
    pub drop_every_frames: Option<u64>,
    /// After each drop, accept-and-immediately-close this many incoming
    /// connections before serving again.
    pub reject_accepts_after_drop: u64,
    /// Stop injecting after this many drops (`None` = unbounded).
    pub max_drops: Option<u64>,
}

impl WireChaos {
    /// Drops a connection on every `frames`-th received frame.
    #[must_use]
    pub const fn drop_every(frames: u64) -> Self {
        Self {
            drop_every_frames: Some(if frames == 0 { 1 } else { frames }),
            reject_accepts_after_drop: 0,
            max_drops: None,
        }
    }

    /// After each drop, also reject this many reconnect attempts.
    #[must_use]
    pub const fn reject_after_drop(mut self, rejects: u64) -> Self {
        self.reject_accepts_after_drop = rejects;
        self
    }

    /// Bounds the total number of injected drops.
    #[must_use]
    pub const fn limit(mut self, drops: u64) -> Self {
        self.max_drops = Some(drops);
        self
    }
}

/// The shared mutable side of [`WireChaos`]: global frame/drop counters plus
/// the pending accept-rejection budget.
#[derive(Debug, Default)]
struct WireChaosState {
    frames: AtomicU64,
    drops: AtomicU64,
    pending_rejects: AtomicU64,
}

impl WireChaosState {
    /// Counts one received frame and decides whether the handler must drop
    /// its connection before processing it.
    fn should_drop(&self, config: &WireChaos) -> bool {
        let Some(every) = config.drop_every_frames else {
            return false;
        };
        let frame = self.frames.fetch_add(1, Ordering::SeqCst) + 1;
        if !frame.is_multiple_of(every) {
            return false;
        }
        if let Some(max) = config.max_drops {
            // Claim a drop slot; back off once the budget is spent.
            if self.drops.fetch_add(1, Ordering::SeqCst) >= max {
                return false;
            }
        } else {
            self.drops.fetch_add(1, Ordering::SeqCst);
        }
        self.pending_rejects
            .store(config.reject_accepts_after_drop, Ordering::SeqCst);
        true
    }

    /// Whether the accept loop should reject (accept-and-close) the next
    /// incoming connection.
    fn should_reject_accept(&self) -> bool {
        self.pending_rejects
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |pending| {
                pending.checked_sub(1)
            })
            .is_ok()
    }
}

/// A running socket server: owns the accept thread and shuts it down on
/// drop. Connection handler threads are detached — each exits when its
/// client disconnects.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on (use with a port-0 bind to
    /// discover the ephemeral port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting new connections and joins the accept thread.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            // The accept loop is blocked in `accept()`; a throwaway connect
            // wakes it so it can observe the flag and exit.
            let _ = TcpStream::connect(self.addr);
            let _ = accept.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Runs `target` behind `listener`: every accepted connection is served by
/// its own thread with its own [`Target::clone_fresh`] instance. Returns a
/// handle that stops the accept loop on drop.
///
/// # Errors
///
/// Propagates the listener's local-address lookup failure.
pub fn serve(listener: TcpListener, target: Box<dyn Target + Send>) -> io::Result<ServerHandle> {
    serve_with_chaos(listener, target, WireChaos::default())
}

/// [`serve`] with deterministic server-side failure injection: connections
/// are dropped mid-stream and reconnects rejected per `chaos` (see
/// [`WireChaos`]). With the default (no-op) config this is exactly `serve`.
///
/// # Errors
///
/// Propagates the listener's local-address lookup failure.
pub fn serve_with_chaos(
    listener: TcpListener,
    target: Box<dyn Target + Send>,
    chaos: WireChaos,
) -> io::Result<ServerHandle> {
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let accept_shutdown = Arc::clone(&shutdown);
    let state = Arc::new(WireChaosState::default());
    let accept = std::thread::Builder::new()
        .name(format!("peachstar-serve-{}", target.name()))
        .spawn(move || {
            for connection in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = connection else { continue };
                if state.should_reject_accept() {
                    // "Server went away": accept-and-close, so the client
                    // sees an immediate reset and must burn a retry.
                    drop(stream);
                    continue;
                }
                let connection_target = target.clone_fresh();
                let spare = target.clone_fresh();
                let connection_state = Arc::clone(&state);
                let _ = std::thread::Builder::new()
                    .name("peachstar-serve-conn".to_owned())
                    .spawn(move || {
                        // Handler errors mean the client vanished (or the
                        // stream desynchronised); either way the connection
                        // is done and the client rebuilds via clone_fresh.
                        let _ = handle_connection(
                            stream,
                            connection_target,
                            spare,
                            chaos,
                            &connection_state,
                        );
                    });
            }
        })?;
    Ok(ServerHandle {
        addr,
        shutdown,
        accept: Some(accept),
    })
}

/// Serves one connection until EOF: the request/reply loop described in the
/// module docs.
fn handle_connection(
    mut stream: TcpStream,
    mut target: Box<dyn Target + Send>,
    spare: Box<dyn Target + Send>,
    chaos: WireChaos,
    chaos_state: &WireChaosState,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let framing = WireFraming::for_target(target.name());
    let mut messages = MessageStream::new(framing);
    let mut ctx = TraceContext::new();
    let mut payload = Vec::new();
    let mut records: Vec<(OutcomeSummary, peachstar_coverage::SparseTrace)> = Vec::new();
    while let Some(message) = messages.recv(&mut stream)? {
        if chaos_state.should_drop(&chaos) {
            // Drop BEFORE processing: the request was never executed, so the
            // client's journal replay plus retry reproduces the healthy
            // sequence with no at-least-once ambiguity.
            return Ok(());
        }
        let request = Request::decode(&message)?;
        let response = match request {
            Request::Process(packet) => {
                let (outcome, trace) = execute_one(&mut target, &*spare, &mut ctx, &packet);
                Response::Process(outcome, trace)
            }
            Request::Batch { sink, packets } => {
                let _armed = sink.arm();
                records.clear();
                for packet in &packets {
                    let (outcome, trace) = execute_one(&mut target, &*spare, &mut ctx, packet);
                    records.push((OutcomeSummary::from(&outcome), trace));
                }
                Response::Batch(std::mem::take(&mut records))
            }
            Request::Reset => {
                target.reset();
                Response::ResetDone
            }
        };
        response.encode_into(&mut payload);
        messages.send(&mut stream, &payload)?;
    }
    Ok(())
}

/// One contained execution: the in-process executor's exact sequence —
/// trace reset, contained `process`, rebuild-from-spare on panic, post-fault
/// target reset — returning the outcome with its sparse trace snapshot.
fn execute_one(
    target: &mut Box<dyn Target + Send>,
    spare: &(dyn Target + Send),
    ctx: &mut TraceContext,
    packet: &[u8],
) -> (Outcome, peachstar_coverage::SparseTrace) {
    ctx.reset();
    let outcome = match contained(|| target.process(packet, ctx)) {
        Ok(outcome) => outcome,
        Err(message) => {
            *target = spare.clone_fresh();
            Outcome::Fault(panic_fault(&message))
        }
    };
    if outcome.is_fault() {
        target.reset();
    }
    (outcome, ctx.trace().to_sparse())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modbus::ModbusServer;
    use crate::wire::FrameReassembler;

    fn roundtrip(stream: &mut TcpStream, messages: &mut MessageStream, request: &Request) -> Response {
        let mut payload = Vec::new();
        request.encode_into(&mut payload);
        messages.send(stream, &payload).expect("send");
        let reply = messages.recv(stream).expect("recv").expect("reply");
        Response::decode(&reply).expect("valid response")
    }

    #[test]
    fn serves_process_batch_and_reset_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let mut server = serve(listener, Box::new(ModbusServer::new())).expect("serve");
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        let framing = WireFraming::for_target("libmodbus");
        assert_eq!(framing, WireFraming::Raw);
        let mut messages = MessageStream::new(framing);

        // A syntactically hopeless packet must come back as the same
        // protocol error the in-process target produces.
        let mut reference = ModbusServer::new();
        let mut ctx = TraceContext::new();
        ctx.reset();
        let expected = reference.process(&[0x01], &mut ctx);
        let expected_trace = ctx.trace().to_sparse();
        let Response::Process(outcome, trace) =
            roundtrip(&mut stream, &mut messages, &Request::Process(vec![0x01]))
        else {
            panic!("expected a process response");
        };
        assert_eq!(outcome, expected);
        assert_eq!(trace, expected_trace);

        // Batch: per-packet summaries in order, matching the sequential
        // reference loop.
        let packets = vec![vec![0x01u8], vec![0x02], vec![0x01]];
        let Response::Batch(records) = roundtrip(
            &mut stream,
            &mut messages,
            &Request::Batch {
                sink: crate::DecodeSink::Full,
                packets: packets.clone(),
            },
        ) else {
            panic!("expected a batch response");
        };
        assert_eq!(records.len(), packets.len());
        for (packet, (summary, trace)) in packets.iter().zip(&records) {
            ctx.reset();
            let outcome = reference.process(packet, &mut ctx);
            assert_eq!(*summary, OutcomeSummary::from(&outcome));
            assert_eq!(*trace, ctx.trace().to_sparse());
        }

        let reply = roundtrip(&mut stream, &mut messages, &Request::Reset);
        assert_eq!(reply, Response::ResetDone);

        server.shutdown();
    }

    #[test]
    fn wire_chaos_drops_the_connection_before_processing_the_frame() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let server = serve_with_chaos(
            listener,
            Box::new(ModbusServer::new()),
            WireChaos::drop_every(3).limit(1),
        )
        .expect("serve");
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        let mut messages = MessageStream::new(WireFraming::Raw);

        // Frames 1 and 2 are answered; frame 3 hits the injector and the
        // connection dies without a reply.
        for _ in 0..2 {
            let reply = roundtrip(&mut stream, &mut messages, &Request::Process(vec![0x01]));
            assert!(matches!(reply, Response::Process(..)));
        }
        let mut payload = Vec::new();
        Request::Process(vec![0x01]).encode_into(&mut payload);
        messages.send(&mut stream, &payload).expect("send");
        assert_eq!(
            messages.recv(&mut stream).expect("clean close"),
            None,
            "the chaos frame is dropped before processing, closing the stream"
        );

        // `limit(1)` spent the budget: a fresh connection serves normally.
        let mut retry = TcpStream::connect(server.addr()).expect("reconnect");
        let mut retry_messages = MessageStream::new(WireFraming::Raw);
        let reply = roundtrip(&mut retry, &mut retry_messages, &Request::Process(vec![0x01]));
        assert!(matches!(reply, Response::Process(..)));
    }

    #[test]
    fn wire_chaos_rejects_reconnects_after_a_drop() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let server = serve_with_chaos(
            listener,
            Box::new(ModbusServer::new()),
            WireChaos::drop_every(1).limit(1).reject_after_drop(2),
        )
        .expect("serve");
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        let mut messages = MessageStream::new(WireFraming::Raw);

        // The very first frame is dropped and arms two accept-rejections.
        let mut payload = Vec::new();
        Request::Process(vec![0x01]).encode_into(&mut payload);
        messages.send(&mut stream, &payload).expect("send");
        assert_eq!(messages.recv(&mut stream).expect("clean close"), None);

        // The next two connection attempts are accepted-and-closed: the
        // socket opens but dies before answering a request.
        for _ in 0..2 {
            let mut rejected = TcpStream::connect(server.addr()).expect("connect");
            let mut rejected_messages = MessageStream::new(WireFraming::Raw);
            rejected_messages.send(&mut rejected, &payload).ok();
            match rejected_messages.recv(&mut rejected) {
                Ok(None) | Err(_) => {}
                Ok(Some(_)) => panic!("rejected connection must not be served"),
            }
        }

        // The third attempt is served again (and chaos is out of budget).
        let mut healthy = TcpStream::connect(server.addr()).expect("connect");
        let mut healthy_messages = MessageStream::new(WireFraming::Raw);
        let reply = roundtrip(&mut healthy, &mut healthy_messages, &Request::Process(vec![0x01]));
        assert!(matches!(reply, Response::Process(..)));
    }

    #[test]
    fn each_connection_gets_its_own_target_instance() {
        // Two interleaved connections must not share protocol state: a
        // session opened on one is invisible to the other. We use the raw
        // reassembler here only to prove frames survive byte-split delivery
        // through a real socket.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let server = serve(listener, Box::new(ModbusServer::new())).expect("serve");
        let mut first = TcpStream::connect(server.addr()).expect("connect");
        let mut second = TcpStream::connect(server.addr()).expect("connect");
        let mut messages_first = MessageStream::new(WireFraming::Raw);
        let mut messages_second = MessageStream::new(WireFraming::Raw);
        let packet = vec![0x00u8, 0x01, 0x00, 0x00, 0x00, 0x06, 0x11, 0x03, 0x00, 0x6B, 0x00, 0x03];
        let a = roundtrip(&mut first, &mut messages_first, &Request::Process(packet.clone()));
        let b = roundtrip(&mut second, &mut messages_second, &Request::Process(packet));
        assert_eq!(a, b, "independent fresh instances answer identically");
        let _ = FrameReassembler::new(WireFraming::Raw);
    }
}
