//! The lib60870 target: an IEC 60870-5-101/104 controlled station modelled
//! on the mz-automation `lib60870-C` library the paper fuzzed.
//!
//! Unlike the [`iec104`](crate::iec104) target (which models the `IEC104`
//! project, a different implementation of the same protocol), this server
//! mimics the internal structure of lib60870: ASDUs are wrapped in a
//! `CS101_ASDU` object whose accessors read fixed offsets of the raw buffer.
//! Three **SEGV** faults are planted, matching the lib60870 row of Table I:
//!
//! 1. `CS101_ASDU_getCOT` reads `asdu[2] & 0x3f` without verifying the ASDU
//!    is long enough (Listing 1/2 of the paper) — reachable with a truncated
//!    ASDU that still passes APCI length checks;
//! 2. `CS101_ASDU_getElement` trusts the VSQ element count and walks past
//!    the end of the buffer when decoding a short-float measurement;
//! 3. `CP56Time2a_getEncodedValue` reads a 7-byte timestamp that a clock
//!    synchronisation command fails to carry.

use peachstar_coverage::{cov_edge, TraceContext};
use peachstar_datamodel::{
    BlockBuilder, BytesSpec, DataModelBuilder, DataModelSet, NumberSpec, Relation,
};

use crate::common::{read_u16_le, read_u24_le, PointDatabase};
use crate::{Fault, FaultKind, Outcome, SessionPacket, SessionTemplate, Target};

/// ASDU type identifiers relevant to this target.
mod type_id {
    pub const M_ME_NC_1: u8 = 13; // measured value, short float
    pub const C_SC_NA_1: u8 = 45; // single command
    pub const C_SE_NB_1: u8 = 49; // set point, scaled
    pub const C_IC_NA_1: u8 = 100; // interrogation
    pub const C_CS_NA_1: u8 = 103; // clock synchronisation
    pub const C_TS_TA_1: u8 = 107; // test command with CP56 timestamp
}

/// Minimum ASDU length the *original* code should have enforced before
/// calling `CS101_ASDU_getCOT`: type, VSQ and COT.
const MIN_ASDU_WITH_COT: usize = 3;

/// The lib60870 controlled station.
#[derive(Debug)]
pub struct Lib60870Server {
    db: PointDatabase,
    started: bool,
    common_address: u16,
    activations_seen: u64,
}

impl Lib60870Server {
    /// Creates a station with common address 1.
    #[must_use]
    pub fn new() -> Self {
        Self {
            db: PointDatabase::default(),
            started: false,
            common_address: 1,
            activations_seen: 0,
        }
    }

    /// Number of command activations processed so far.
    #[must_use]
    pub fn activations_seen(&self) -> u64 {
        self.activations_seen
    }

    fn u_frame_response(control: u8) -> Outcome {
        crate::sink::response_array([0x68, 0x04, control, 0x00, 0x00, 0x00])
    }

    fn confirmation(asdu: &[u8], cot: u8) -> Vec<u8> {
        let mut frame = vec![0x68, (4 + asdu.len()) as u8, 0x00, 0x00, 0x00, 0x00];
        frame.extend_from_slice(asdu);
        if frame.len() > 8 {
            frame[8] = cot;
        }
        frame
    }

    /// `CS101_ASDU_getCOT` — the function of Listing 1 in the paper. The
    /// original reads `self->asdu[2]` unconditionally; the planted fault
    /// fires whenever the ASDU is too short for that access.
    fn asdu_cot(asdu: &[u8], ctx: &mut TraceContext) -> Result<u8, Fault> {
        cov_edge!(ctx);
        if asdu.len() < MIN_ASDU_WITH_COT {
            cov_edge!(ctx);
            // Planted bug 1 (Table I, lib60870, SEGV).
            return Err(Fault::new(
                FaultKind::Segv,
                "cs101_asdu.c:CS101_ASDU_getCOT",
            ));
        }
        Ok(asdu[2] & 0x3f)
    }

    /// `CS101_ASDU_getElement` for short-float measurements: trusts the VSQ
    /// element count.
    fn decode_float_elements(
        objects: &[u8],
        element_count: usize,
        ctx: &mut TraceContext,
    ) -> Result<Vec<f32>, Fault> {
        cov_edge!(ctx);
        const ELEMENT_SIZE: usize = 3 + 4 + 1; // IOA + float + quality
        let mut values = Vec::with_capacity(element_count);
        for index in 0..element_count {
            let offset = index * ELEMENT_SIZE;
            // The original computes the element pointer from the VSQ count
            // without checking the payload length.
            if offset + ELEMENT_SIZE > objects.len() {
                cov_edge!(ctx);
                // Planted bug 2 (Table I, lib60870, SEGV).
                return Err(Fault::new(
                    FaultKind::Segv,
                    "cs101_asdu.c:CS101_ASDU_getElement",
                ));
            }
            cov_edge!(ctx);
            let raw = u32::from_le_bytes([
                objects[offset + 3],
                objects[offset + 4],
                objects[offset + 5],
                objects[offset + 6],
            ]);
            values.push(f32::from_bits(raw));
        }
        Ok(values)
    }

    /// `CP56Time2a_getEncodedValue`: reads a 7-byte timestamp.
    fn decode_cp56(objects: &[u8], offset: usize, ctx: &mut TraceContext) -> Result<[u8; 7], Fault> {
        cov_edge!(ctx);
        if objects.len() < offset + 7 {
            cov_edge!(ctx);
            // Planted bug 3 (Table I, lib60870, SEGV).
            return Err(Fault::new(
                FaultKind::Segv,
                "cp56time2a.c:CP56Time2a_getEncodedValue",
            ));
        }
        let mut time = [0u8; 7];
        time.copy_from_slice(&objects[offset..offset + 7]);
        Ok(time)
    }

    #[allow(clippy::too_many_lines)]
    fn handle_asdu(&mut self, asdu: &[u8], ctx: &mut TraceContext) -> Outcome {
        cov_edge!(ctx);
        // The original parser reads type and VSQ before COT, and only checks
        // that *those two* bytes exist.
        if asdu.len() < 2 {
            cov_edge!(ctx);
            return crate::sink::protocol_error("ASDU shorter than type + VSQ");
        }
        let type_identifier = asdu[0];
        let vsq = asdu[1];
        let element_count = usize::from(vsq & 0x7f);

        // Listing 1: the COT accessor runs before any further length check.
        let cot = match Self::asdu_cot(asdu, ctx) {
            Ok(cot) => cot,
            Err(fault) => return Outcome::Fault(fault),
        };

        if asdu.len() < 6 {
            cov_edge!(ctx);
            return crate::sink::protocol_error("ASDU header truncated");
        }
        let common_address = read_u16_le(asdu, 4).expect("length checked");
        if common_address != self.common_address && common_address != 0xffff {
            cov_edge!(ctx);
            return crate::sink::protocol_error_fmt(format_args!("unknown common address {common_address}"));
        }
        if element_count == 0 {
            cov_edge!(ctx);
            return crate::sink::protocol_error("ASDU with zero elements");
        }
        let objects = &asdu[6..];

        match type_identifier {
            type_id::C_SC_NA_1 => {
                cov_edge!(ctx);
                if cot != 6 && cot != 8 {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error_fmt(format_args!("single command with COT {cot}"));
                }
                let Some(ioa) = read_u24_le(objects, 0) else {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("single command without IOA");
                };
                let Some(&sco) = objects.get(3) else {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("single command without SCO");
                };
                let address = ioa as usize;
                if address >= self.db.coil_count() {
                    cov_edge!(ctx);
                    let mut reply = Self::confirmation(asdu, 47);
                    if reply.len() > 8 {
                        reply[8] |= 0x40;
                    }
                    return crate::sink::response_vec(reply);
                }
                cov_edge!(ctx);
                self.activations_seen += 1;
                // Per-point dispatch of the original interlock handlers.
                cov_edge!(ctx, address);
                cov_edge!(ctx, sco & 0x03);
                if sco & 0x80 == 0 {
                    cov_edge!(ctx);
                    self.db.set_coil(address, sco & 0x01 != 0);
                }
                crate::sink::response_vec(Self::confirmation(asdu, 7))
            }
            type_id::C_SE_NB_1 => {
                cov_edge!(ctx);
                let Some(ioa) = read_u24_le(objects, 0) else {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("set point without IOA");
                };
                let Some(value) = read_u16_le(objects, 3) else {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("set point without value");
                };
                let address = ioa as usize;
                if address >= self.db.register_count() {
                    cov_edge!(ctx);
                    let mut reply = Self::confirmation(asdu, 47);
                    if reply.len() > 8 {
                        reply[8] |= 0x40;
                    }
                    return crate::sink::response_vec(reply);
                }
                cov_edge!(ctx);
                cov_edge!(ctx, address / 2);
                cov_edge!(ctx, value >> 12);
                self.activations_seen += 1;
                self.db.set_register(address, value);
                crate::sink::response_vec(Self::confirmation(asdu, 7))
            }
            type_id::C_IC_NA_1 => {
                cov_edge!(ctx);
                if objects.len() < 4 {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("interrogation without QOI");
                }
                cov_edge!(ctx);
                self.activations_seen += 1;
                crate::sink::response_vec(Self::confirmation(asdu, 7))
            }
            type_id::C_CS_NA_1 | type_id::C_TS_TA_1 => {
                cov_edge!(ctx);
                // Clock synchronisation / test command: IOA then CP56Time2a.
                if objects.len() < 3 {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("command without IOA");
                }
                let time = match Self::decode_cp56(objects, 3, ctx) {
                    Ok(time) => time,
                    Err(fault) => return Outcome::Fault(fault),
                };
                let minute = time[2] & 0x3f;
                let hour = time[4] & 0x1f;
                if minute >= 60 || hour >= 24 {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("invalid CP56Time2a timestamp");
                }
                cov_edge!(ctx);
                cov_edge!(ctx, minute / 10);
                cov_edge!(ctx, hour / 4);
                self.activations_seen += 1;
                let mut reply = Self::confirmation(asdu, 7);
                // Echo the timestamp minute byte as a visible state change.
                if let Some(last) = reply.last_mut() {
                    *last = time[2];
                }
                crate::sink::response_vec(reply)
            }
            type_id::M_ME_NC_1 => {
                cov_edge!(ctx);
                match Self::decode_float_elements(objects, element_count, ctx) {
                    Ok(values) => {
                        cov_edge!(ctx);
                        cov_edge!(ctx, values.len());
                        for (index, value) in values.iter().enumerate() {
                            let address = index % self.db.register_count().max(1);
                            self.db.set_register(address, *value as u16);
                        }
                        crate::sink::response_vec(Self::confirmation(asdu, 44))
                    }
                    Err(fault) => Outcome::Fault(fault),
                }
            }
            _ => {
                cov_edge!(ctx);
                let mut reply = Self::confirmation(asdu, 44);
                if reply.len() > 8 {
                    reply[8] |= 0x40;
                }
                crate::sink::response_vec(reply)
            }
        }
    }
}

impl Default for Lib60870Server {
    fn default() -> Self {
        Self::new()
    }
}

impl Target for Lib60870Server {
    fn name(&self) -> &'static str {
        "lib60870"
    }

    fn data_models(&self) -> DataModelSet {
        data_models()
    }

    fn process(&mut self, packet: &[u8], ctx: &mut TraceContext) -> Outcome {
        cov_edge!(ctx);
        if packet.len() < 6 {
            cov_edge!(ctx);
            return crate::sink::protocol_error("frame shorter than APCI");
        }
        if packet[0] != 0x68 {
            cov_edge!(ctx);
            return crate::sink::protocol_error("missing start byte");
        }
        let length = usize::from(packet[1]);
        if length < 4 || length != packet.len() - 2 {
            cov_edge!(ctx);
            return crate::sink::protocol_error("APCI length mismatch");
        }
        let control = packet[2];
        if control & 0x03 == 0x03 {
            cov_edge!(ctx);
            return match control {
                0x07 => {
                    cov_edge!(ctx);
                    self.started = true;
                    Self::u_frame_response(0x0b)
                }
                0x13 => {
                    cov_edge!(ctx);
                    self.started = false;
                    Self::u_frame_response(0x23)
                }
                0x43 => {
                    cov_edge!(ctx);
                    Self::u_frame_response(0x83)
                }
                other => {
                    cov_edge!(ctx);
                    crate::sink::protocol_error_fmt(format_args!("unknown U-frame {other:#04x}"))
                }
            };
        }
        if control & 0x03 == 0x01 {
            cov_edge!(ctx);
            return crate::sink::response_array([0x68, 0x04, 0x01, 0x00, 0x00, 0x00]);
        }
        cov_edge!(ctx);
        if !self.started {
            cov_edge!(ctx);
            return crate::sink::protocol_error("I-frame before STARTDT");
        }
        // Unlike the IEC104 target, lib60870 accepts an I-frame whose APCI
        // length covers only part of the ASDU header — which is exactly what
        // lets the truncated-ASDU bug fire.
        let asdu = &packet[6..];
        if asdu.is_empty() {
            cov_edge!(ctx);
            return crate::sink::protocol_error("I-frame without ASDU");
        }
        self.handle_asdu(asdu, ctx)
    }

    fn reset(&mut self) {
        *self = Self::new();
    }

    fn clone_fresh(&self) -> Box<dyn Target + Send> {
        Box::new(Self::new())
    }

    fn session_template(&self) -> Option<SessionTemplate> {
        // Same CS 104 link layer as the IEC104 target: I-frames (and with
        // them every planted ASDU bug) are reachable only between STARTDT
        // act and STOPDT act.
        Some(SessionTemplate::new(
            vec![SessionPacket::new(
                vec![0x68, 0x04, 0x07, 0x00, 0x00, 0x00],
                "STARTDT act",
            )],
            vec![SessionPacket::new(
                vec![0x68, 0x04, 0x13, 0x00, 0x00, 0x00],
                "STOPDT act",
            )],
        ))
    }

    fn process_batch(
        &mut self,
        packets: &[&[u8]],
        ctx: &mut TraceContext,
        out: &mut crate::WindowResults,
        sink: crate::DecodeSink,
    ) {
        let _armed = sink.arm();
        out.begin();
        // Window-hoisted APCI framing prescan, via the vectorised
        // [`crate::prescan`] kernels and the verdict buffer pooled in `out`.
        // The decoder below stays authoritative (skipping it would change
        // the recorded traces); debug builds assert the prescan is never
        // stricter than the decoder's own framing checks.
        #[cfg(debug_assertions)]
        let mut scratch = out.take_prescan();
        #[cfg(debug_assertions)]
        let well_framed = scratch.run(crate::FrameSpec::Apci, packets);
        for (index, packet) in packets.iter().enumerate() {
            ctx.reset();
            // Statically dispatched: one virtual call per window.
            let outcome = self.process(packet, ctx);
            if outcome.is_fault() {
                self.reset();
            }
            #[cfg(debug_assertions)]
            debug_assert!(
                well_framed[index] || matches!(outcome, Outcome::ProtocolError(_)),
                "prescan rejected packet {index}, but the decoder accepted it"
            );
            let _ = index;
            out.record(&outcome, ctx.trace());
        }
        #[cfg(debug_assertions)]
        out.return_prescan(scratch);
    }
}

/// The format specification of the lib60870 (CS104) packets the fuzzer
/// generates.
///
/// The ASDU header rules are shared with the [`iec104`](crate::iec104)
/// models (same explicit rule names), reflecting that the two projects
/// implement the same wire format.
#[must_use]
pub fn data_models() -> DataModelSet {
    let mut set = DataModelSet::new("lib60870");

    set.push(
        DataModelBuilder::new("startdt_act")
            .number_with_rule("start", NumberSpec::u8().fixed_value(0x68), "apci-start")
            .number_with_rule("length", NumberSpec::u8().fixed_value(4), "apci-length")
            .number("control1", NumberSpec::u8().fixed_value(0x07))
            .number("control2", NumberSpec::u8().fixed_value(0x00))
            .number("control3", NumberSpec::u8().fixed_value(0x00))
            .number("control4", NumberSpec::u8().fixed_value(0x00))
            .build()
            .expect("startdt model is statically valid"),
    );

    let i_frame = |name: &str, type_identifier: u64, body: BlockBuilder| {
        DataModelBuilder::new(name)
            .number_with_rule("start", NumberSpec::u8().fixed_value(0x68), "apci-start")
            .number_with_rule(
                "length",
                NumberSpec::u8().relation(Relation::size_of("apdu")),
                "apci-length",
            )
            .block(
                BlockBuilder::new("apdu")
                    .number_with_rule("send_seq", NumberSpec::u16_le(), "iframe-sequence")
                    .number_with_rule("recv_seq", NumberSpec::u16_le(), "iframe-sequence")
                    .block(
                        BlockBuilder::new("asdu")
                            .rule("asdu")
                            .number("type_id", NumberSpec::u8().fixed_value(type_identifier))
                            .number_with_rule("vsq", NumberSpec::u8().default_value(1), "asdu-vsq")
                            .number_with_rule("cot", NumberSpec::u8().default_value(6), "asdu-cot")
                            .number_with_rule("originator", NumberSpec::u8(), "asdu-originator")
                            .number_with_rule(
                                "common_address",
                                NumberSpec::u16_le().default_value(1),
                                "asdu-common-address",
                            )
                            .block(body),
                    ),
            )
            .build()
            .expect("lib60870 I-frame model is statically valid")
    };

    set.push(i_frame(
        "single_command_cs104",
        u64::from(type_id::C_SC_NA_1),
        BlockBuilder::new("object_sc104")
            .bytes_with_rule(
                "ioa_sc104",
                BytesSpec::fixed(3).default_content(vec![0x01, 0x00, 0x00]),
                "information-object-address",
            )
            .number("sco104", NumberSpec::u8().default_value(0x01)),
    ));

    set.push(i_frame(
        "setpoint_scaled",
        u64::from(type_id::C_SE_NB_1),
        BlockBuilder::new("object_senb")
            .bytes_with_rule(
                "ioa_senb",
                BytesSpec::fixed(3).default_content(vec![0x04, 0x00, 0x00]),
                "information-object-address",
            )
            .number_with_rule("value_senb", NumberSpec::u16_le().default_value(0x0102), "setpoint-value")
            .number("qos_senb", NumberSpec::u8()),
    ));

    set.push(i_frame(
        "interrogation_cs104",
        u64::from(type_id::C_IC_NA_1),
        BlockBuilder::new("object_ic104")
            .bytes_with_rule(
                "ioa_ic104",
                BytesSpec::fixed(3).default_content(vec![0x00, 0x00, 0x00]),
                "information-object-address",
            )
            .number("qoi104", NumberSpec::u8().default_value(20)),
    ));

    set.push(i_frame(
        "clock_sync_cs104",
        u64::from(type_id::C_CS_NA_1),
        BlockBuilder::new("object_cs104")
            .bytes_with_rule(
                "ioa_cs104",
                BytesSpec::fixed(3).default_content(vec![0x00, 0x00, 0x00]),
                "information-object-address",
            )
            .bytes(
                // Coarse-grained: the pit does not pin the timestamp length,
                // so generated packets may truncate it (which is exactly how
                // the CP56Time2a bug is reached).
                "cp56_cs104",
                BytesSpec::remainder()
                    .default_content(vec![0x10, 0x20, 0x1e, 0x0a, 0x0f, 0x06, 0x14]),
            ),
    ));

    // A coarse-grained catch-all model: an I-frame whose ASDU is a single
    // opaque blob. Real Peach pits often describe rarely-used packet types
    // this way; it is also what allows severely truncated ASDUs (the
    // CS101_ASDU_getCOT packet of Listing 1) to be generated at all.
    set.push(
        DataModelBuilder::new("raw_asdu")
            .number_with_rule("start", NumberSpec::u8().fixed_value(0x68), "apci-start")
            .number_with_rule(
                "length",
                NumberSpec::u8().relation(Relation::size_of("apdu")),
                "apci-length",
            )
            .block(
                BlockBuilder::new("apdu")
                    .number_with_rule("send_seq", NumberSpec::u16_le(), "iframe-sequence")
                    .number_with_rule("recv_seq", NumberSpec::u16_le(), "iframe-sequence")
                    .bytes_with_rule(
                        // Default: a read command (C_RD_NA_1, type 102) —
                        // a packet type no fine-grained model describes, so
                        // the default instantiation of this model is distinct
                        // from every other model's and donates fresh puzzles.
                        "asdu_raw",
                        BytesSpec::remainder().default_content(vec![102, 1, 5, 0, 1, 0, 2, 0, 0]),
                        "asdu",
                    ),
            )
            .build()
            .expect("raw asdu model is statically valid"),
    );

    set.push(i_frame(
        "measurement_float",
        u64::from(type_id::M_ME_NC_1),
        BlockBuilder::new("object_float")
            .bytes_with_rule(
                "ioa_float",
                BytesSpec::fixed(3).default_content(vec![0x09, 0x00, 0x00]),
                "information-object-address",
            )
            .bytes("float_value", BytesSpec::fixed(4).default_content(vec![0x00, 0x00, 0x80, 0x3f]))
            .number("quality_float", NumberSpec::u8()),
    ));

    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use peachstar_datamodel::emit::emit_default;

    fn run(server: &mut Lib60870Server, packet: &[u8]) -> Outcome {
        let mut ctx = TraceContext::new();
        server.process(packet, &mut ctx)
    }

    fn startdt(server: &mut Lib60870Server) {
        assert!(run(server, &[0x68, 0x04, 0x07, 0x00, 0x00, 0x00])
            .response()
            .is_some());
    }

    fn i_frame(asdu: &[u8]) -> Vec<u8> {
        let mut frame = vec![0x68, (4 + asdu.len()) as u8, 0x00, 0x00, 0x00, 0x00];
        frame.extend_from_slice(asdu);
        frame
    }

    #[test]
    fn single_command_activation_is_confirmed() {
        let mut server = Lib60870Server::new();
        startdt(&mut server);
        let asdu = [45, 1, 6, 0, 1, 0, 0x03, 0x00, 0x00, 0x01];
        let outcome = run(&mut server, &i_frame(&asdu));
        let response = outcome.response().expect("confirmation");
        assert_eq!(response[8] & 0x3f, 7);
        assert_eq!(server.activations_seen(), 1);
        assert_eq!(server.db.coil(3), Some(true));
    }

    #[test]
    fn listing1_truncated_asdu_triggers_getcot_segv() {
        let mut server = Lib60870Server::new();
        startdt(&mut server);
        // An I-frame whose ASDU carries only type id and VSQ — exactly the
        // malformed packet the paper describes for CS101_ASDU_getCOT.
        let outcome = run(&mut server, &i_frame(&[45, 1]));
        let fault = outcome.fault().expect("SEGV in getCOT");
        assert_eq!(fault.kind, FaultKind::Segv);
        assert_eq!(fault.site, "cs101_asdu.c:CS101_ASDU_getCOT");
    }

    #[test]
    fn overclaimed_float_elements_trigger_getelement_segv() {
        let mut server = Lib60870Server::new();
        startdt(&mut server);
        // M_ME_NC_1 with VSQ claiming 4 elements but only one present.
        let asdu = [13, 4, 3, 0, 1, 0, 0x01, 0x00, 0x00, 0x00, 0x00, 0x80, 0x3f, 0x00];
        let outcome = run(&mut server, &i_frame(&asdu));
        let fault = outcome.fault().expect("SEGV in getElement");
        assert_eq!(fault.site, "cs101_asdu.c:CS101_ASDU_getElement");
    }

    #[test]
    fn short_clock_sync_triggers_cp56_segv() {
        let mut server = Lib60870Server::new();
        startdt(&mut server);
        // C_CS_NA_1 with an IOA but only 3 of the 7 timestamp bytes.
        let asdu = [103, 1, 6, 0, 1, 0, 0x00, 0x00, 0x00, 0x10, 0x20, 0x1e];
        let outcome = run(&mut server, &i_frame(&asdu));
        let fault = outcome.fault().expect("SEGV in CP56Time2a");
        assert_eq!(fault.site, "cp56time2a.c:CP56Time2a_getEncodedValue");
    }

    #[test]
    fn well_formed_clock_sync_is_confirmed() {
        let mut server = Lib60870Server::new();
        startdt(&mut server);
        let asdu = [
            103, 1, 6, 0, 1, 0, 0x00, 0x00, 0x00, 0x10, 0x20, 0x1e, 0x0a, 0x0f, 0x06, 0x14,
        ];
        let outcome = run(&mut server, &i_frame(&asdu));
        assert!(outcome.response().is_some());
    }

    #[test]
    fn well_formed_float_measurements_update_registers() {
        let mut server = Lib60870Server::new();
        startdt(&mut server);
        // One element: IOA(3) + float 2.0 + quality.
        let asdu = [13, 1, 3, 0, 1, 0, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x40, 0x00];
        let outcome = run(&mut server, &i_frame(&asdu));
        assert!(outcome.response().is_some());
        assert_eq!(server.db.register(0), Some(2));
    }

    #[test]
    fn faults_require_the_link_to_be_started() {
        let mut server = Lib60870Server::new();
        // Without STARTDT the truncated ASDU never reaches the parser.
        let outcome = run(&mut server, &i_frame(&[45, 1]));
        assert!(!outcome.is_fault());
    }

    #[test]
    fn all_three_planted_bug_sites_are_distinct() {
        let mut sites = std::collections::HashSet::new();
        let mut server = Lib60870Server::new();
        startdt(&mut server);
        for asdu in [
            vec![45u8, 1],
            vec![13, 4, 3, 0, 1, 0, 0x01, 0x00, 0x00, 0x00, 0x00, 0x80, 0x3f, 0x00],
            vec![103, 1, 6, 0, 1, 0, 0x00, 0x00, 0x00, 0x10, 0x20, 0x1e],
        ] {
            if let Some(fault) = run(&mut server, &i_frame(&asdu)).fault() {
                sites.insert(fault.site);
            }
        }
        assert_eq!(sites.len(), 3, "three distinct lib60870 SEGV sites");
    }

    #[test]
    fn default_model_packets_do_not_fault() {
        let mut server = Lib60870Server::new();
        startdt(&mut server);
        for model in data_models().models() {
            let packet = emit_default(model).unwrap();
            let outcome = run(&mut server, &packet);
            assert!(
                !outcome.is_fault(),
                "{}: default packet must not fault: {outcome:?}",
                model.name()
            );
        }
    }

    #[test]
    fn shares_asdu_rules_with_the_iec104_models() {
        let ours = data_models();
        let theirs = crate::iec104::data_models();
        let our_cot = ours
            .find("single_command_cs104")
            .unwrap()
            .find("cot")
            .unwrap()
            .rule_id();
        let their_cot = theirs
            .find("single_command")
            .unwrap()
            .find("cot")
            .unwrap()
            .rule_id();
        assert_eq!(our_cot, their_cot, "asdu-cot rule is shared across projects");
    }
}
