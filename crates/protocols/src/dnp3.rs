//! The DNP3 outstation target (stand-in for opendnp3).
//!
//! Implements the three DNP3 layers the real library exposes to incoming
//! traffic: the link layer (0x0564 start bytes, length, control, destination
//! and source addresses, per-block CRC-16/DNP), the transport layer
//! (FIR/FIN/sequence octet) and the application layer (function codes READ,
//! WRITE, SELECT, OPERATE, DIRECT_OPERATE, COLD_RESTART, DELAY_MEASURE and
//! ENABLE/DISABLE_UNSOLICITED with group/variation object headers). No
//! Table I faults are planted here; the target exists to provide a sixth
//! coverage landscape with yet another framing style (little-endian
//! addresses, CRC-protected blocks).

use peachstar_coverage::{cov_edge, TraceContext};
use peachstar_datamodel::{
    checksum::crc16_dnp, BlockBuilder, BytesSpec, DataModelBuilder, DataModelSet, Fixup,
    NumberSpec, Relation,
};

use crate::common::{read_u16_le, PointDatabase};
use crate::{Outcome, Target};

/// Application-layer function codes handled by the outstation.
mod function {
    pub const CONFIRM: u8 = 0x00;
    pub const READ: u8 = 0x01;
    pub const WRITE: u8 = 0x02;
    pub const SELECT: u8 = 0x03;
    pub const OPERATE: u8 = 0x04;
    pub const DIRECT_OPERATE: u8 = 0x05;
    pub const COLD_RESTART: u8 = 0x0d;
    pub const DELAY_MEASURE: u8 = 0x17;
    pub const ENABLE_UNSOLICITED: u8 = 0x14;
    pub const DISABLE_UNSOLICITED: u8 = 0x15;
}

/// The DNP3 outstation.
#[derive(Debug)]
pub struct Dnp3Outstation {
    db: PointDatabase,
    address: u16,
    selected_point: Option<u16>,
    unsolicited_enabled: bool,
    application_sequence: u8,
    restarts: u32,
}

impl Dnp3Outstation {
    /// Creates an outstation with link address 1024.
    #[must_use]
    pub fn new() -> Self {
        Self {
            db: PointDatabase::default(),
            address: 1024,
            selected_point: None,
            unsolicited_enabled: false,
            application_sequence: 0,
            restarts: 0,
        }
    }

    /// Number of cold restarts requested so far.
    #[must_use]
    pub fn restarts(&self) -> u32 {
        self.restarts
    }

    /// Whether unsolicited responses are currently enabled.
    #[must_use]
    pub fn unsolicited_enabled(&self) -> bool {
        self.unsolicited_enabled
    }

    /// Validates the link header CRC and the per-block body CRCs, returning
    /// the reassembled user data.
    fn strip_link_layer(packet: &[u8], ctx: &mut TraceContext) -> Result<(u8, Vec<u8>), String> {
        cov_edge!(ctx);
        if packet.len() < 10 {
            return Err(crate::sink::reject_str("frame shorter than the link header"));
        }
        if packet[0] != 0x05 || packet[1] != 0x64 {
            return Err(crate::sink::reject_str("bad start bytes"));
        }
        let length = usize::from(packet[2]);
        if length < 5 {
            return Err(crate::sink::reject_str("link length too small"));
        }
        let control = packet[3];
        let header_crc = read_u16_le(packet, 8).expect("length checked");
        if crc16_dnp(&packet[0..8]) != header_crc {
            cov_edge!(ctx);
            return Err(crate::sink::reject_str("link header CRC mismatch"));
        }
        cov_edge!(ctx);
        // `length` counts control, dest, src and user data (not CRCs).
        let user_data_len = length - 5;
        let mut user_data = Vec::with_capacity(user_data_len);
        let mut remaining = user_data_len;
        let mut offset = 10usize;
        while remaining > 0 {
            cov_edge!(ctx);
            let block_len = remaining.min(16);
            let Some(block) = packet.get(offset..offset + block_len) else {
                return Err(crate::sink::reject_str("user data truncated"));
            };
            let Some(crc) = read_u16_le(packet, offset + block_len) else {
                return Err(crate::sink::reject_str("block CRC missing"));
            };
            if crc16_dnp(block) != crc {
                cov_edge!(ctx);
                return Err(crate::sink::reject_str("block CRC mismatch"));
            }
            user_data.extend_from_slice(block);
            offset += block_len + 2;
            remaining -= block_len;
        }
        if offset != packet.len() {
            cov_edge!(ctx);
            return Err(crate::sink::reject_fmt(format_args!("{} trailing bytes after link frame", packet.len() - offset)));
        }
        Ok((control, user_data))
    }

    fn response_frame(&mut self, function: u8, payload: &[u8]) -> Vec<u8> {
        // Minimal response: we return the application fragment without
        // re-framing the link layer (the fuzzer only inspects outcomes).
        // The sequence advances whether or not the bytes get built.
        let sequence = self.application_sequence;
        self.application_sequence = self.application_sequence.wrapping_add(1);
        crate::sink::bytes_with(5 + payload.len(), |fragment| {
            fragment.push(0xC0 | (sequence & 0x3f)); // transport header
            fragment.push(0xC0 | (sequence & 0x0f));
            fragment.push(function);
            fragment.push(if self.restarts > 0 { 0x80 } else { 0x00 }); // IIN: restart flag
            fragment.push(0x00);
            fragment.extend_from_slice(payload);
        })
    }

    #[allow(clippy::too_many_lines)]
    fn handle_application(&mut self, fragment: &[u8], ctx: &mut TraceContext) -> Outcome {
        cov_edge!(ctx);
        // Application header: control(1) function(1), then object headers.
        if fragment.len() < 2 {
            cov_edge!(ctx);
            return crate::sink::protocol_error("application fragment too short");
        }
        let function = fragment[1];
        let objects = &fragment[2..];
        match function {
            function::CONFIRM => {
                cov_edge!(ctx);
                Outcome::Response(Vec::new())
            }
            function::READ => {
                cov_edge!(ctx);
                // Object header: group(1) variation(1) qualifier(1) [range].
                if objects.len() < 3 {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("read without object header");
                }
                let group = objects[0];
                let qualifier = objects[2];
                let payload = match (group, qualifier) {
                    // Class data or binary inputs with all-objects qualifier.
                    (60, 0x06) | (1, 0x06) => {
                        cov_edge!(ctx);
                        let mut data = vec![1, 2, 0x00];
                        for index in 0..8usize {
                            if self.db.coil(index) == Some(true) {
                                data.push(0x81);
                            } else {
                                data.push(0x01);
                            }
                        }
                        data
                    }
                    // Analog inputs, 8-bit start/stop range.
                    (30, 0x00) => {
                        cov_edge!(ctx);
                        if objects.len() < 5 {
                            cov_edge!(ctx);
                            return crate::sink::protocol_error("read range truncated");
                        }
                        let start = usize::from(objects[3]);
                        let stop = usize::from(objects[4]);
                        if stop < start || stop >= self.db.register_count() {
                            cov_edge!(ctx);
                            return crate::sink::protocol_error("read range out of bounds");
                        }
                        // Per-range handlers of the original outstation.
                        cov_edge!(ctx, start / 4);
                        cov_edge!(ctx, stop - start);
                        let mut data = vec![30, 2, 0x00, objects[3], objects[4]];
                        for index in start..=stop {
                            cov_edge!(ctx);
                            let value = self.db.register(index).unwrap_or(0);
                            data.push(0x01);
                            data.extend_from_slice(&value.to_le_bytes());
                        }
                        data
                    }
                    _ => {
                        cov_edge!(ctx);
                        vec![group, 0, qualifier]
                    }
                };
                Outcome::Response(self.response_frame(0x81, &payload))
            }
            function::WRITE => {
                cov_edge!(ctx);
                if objects.len() < 3 {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("write without object header");
                }
                // Group 34: analog deadband write with 8-bit index prefix.
                if objects[0] == 34 && objects.len() >= 7 {
                    cov_edge!(ctx);
                    cov_edge!(ctx, objects[4] / 4);
                    let index = usize::from(objects[4]);
                    let value = read_u16_le(objects, 5).unwrap_or(0);
                    if !self.db.set_register(index, value) {
                        cov_edge!(ctx);
                        return crate::sink::protocol_error("write index out of range");
                    }
                }
                Outcome::Response(self.response_frame(0x81, &[]))
            }
            function::SELECT => {
                cov_edge!(ctx);
                if objects.len() < 5 {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("select without CROB");
                }
                let index = read_u16_le(objects, 3).unwrap_or(0);
                if usize::from(index) >= self.db.coil_count() {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("select point out of range");
                }
                cov_edge!(ctx);
                cov_edge!(ctx, index);
                self.selected_point = Some(index);
                Outcome::Response(self.response_frame(0x81, objects))
            }
            function::OPERATE => {
                cov_edge!(ctx);
                if objects.len() < 5 {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("operate without CROB");
                }
                let index = read_u16_le(objects, 3).unwrap_or(0);
                match self.selected_point {
                    Some(selected) if selected == index => {
                        cov_edge!(ctx);
                        self.selected_point = None;
                        let address = usize::from(index) % self.db.coil_count().max(1);
                        let current = self.db.coil(address).unwrap_or(false);
                        self.db.set_coil(address, !current);
                        Outcome::Response(self.response_frame(0x81, objects))
                    }
                    _ => {
                        cov_edge!(ctx);
                        // Status code 2: no previous matching select.
                        let mut status = objects.to_vec();
                        if let Some(last) = status.last_mut() {
                            *last = 0x02;
                        }
                        Outcome::Response(self.response_frame(0x81, &status))
                    }
                }
            }
            function::DIRECT_OPERATE => {
                cov_edge!(ctx);
                if objects.len() < 5 {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("direct operate without CROB");
                }
                let index = read_u16_le(objects, 3).unwrap_or(0);
                let address = usize::from(index);
                let Some(current) = self.db.coil(address) else {
                    cov_edge!(ctx);
                    return crate::sink::protocol_error("control point out of range");
                };
                cov_edge!(ctx);
                cov_edge!(ctx, address);
                self.db.set_coil(address, !current);
                Outcome::Response(self.response_frame(0x81, objects))
            }
            function::COLD_RESTART => {
                cov_edge!(ctx);
                self.restarts += 1;
                self.selected_point = None;
                // Time delay fine object (group 52 var 2): 5000 ms.
                Outcome::Response(self.response_frame(0x81, &[52, 2, 0x07, 0x88, 0x13]))
            }
            function::DELAY_MEASURE => {
                cov_edge!(ctx);
                Outcome::Response(self.response_frame(0x81, &[52, 2, 0x07, 0x0a, 0x00]))
            }
            function::ENABLE_UNSOLICITED => {
                cov_edge!(ctx);
                self.unsolicited_enabled = true;
                Outcome::Response(self.response_frame(0x81, &[]))
            }
            function::DISABLE_UNSOLICITED => {
                cov_edge!(ctx);
                self.unsolicited_enabled = false;
                Outcome::Response(self.response_frame(0x81, &[]))
            }
            other => {
                cov_edge!(ctx);
                crate::sink::protocol_error_fmt(format_args!("unsupported function code {other:#04x}"))
            }
        }
    }
}

impl Default for Dnp3Outstation {
    fn default() -> Self {
        Self::new()
    }
}

impl Target for Dnp3Outstation {
    fn name(&self) -> &'static str {
        "opendnp3"
    }

    fn data_models(&self) -> DataModelSet {
        data_models()
    }

    fn process(&mut self, packet: &[u8], ctx: &mut TraceContext) -> Outcome {
        cov_edge!(ctx);
        let (control, user_data) = match Self::strip_link_layer(packet, ctx) {
            Ok(parts) => parts,
            Err(reason) => {
                cov_edge!(ctx);
                return Outcome::ProtocolError(reason);
            }
        };
        // Only primary user-data frames carry application fragments.
        if control & 0x40 == 0 {
            cov_edge!(ctx);
            return crate::sink::protocol_error("secondary frame ignored");
        }
        let destination = read_u16_le(packet, 4).expect("header length checked");
        if destination != self.address && destination != 0xffff {
            cov_edge!(ctx);
            return crate::sink::protocol_error_fmt(format_args!("frame for other outstation {destination}"));
        }
        if user_data.is_empty() {
            cov_edge!(ctx);
            return crate::sink::protocol_error("link frame without user data");
        }
        // Transport octet: FIR/FIN/sequence. Multi-fragment reassembly is not
        // modelled; FIR and FIN must both be set.
        let transport = user_data[0];
        if transport & 0xC0 != 0xC0 {
            cov_edge!(ctx);
            return crate::sink::protocol_error("multi-fragment messages unsupported");
        }
        cov_edge!(ctx);
        self.handle_application(&user_data[1..], ctx)
    }

    fn reset(&mut self) {
        *self = Self::new();
    }

    fn clone_fresh(&self) -> Box<dyn Target + Send> {
        Box::new(Self::new())
    }

    fn process_batch(
        &mut self,
        packets: &[&[u8]],
        ctx: &mut TraceContext,
        out: &mut crate::WindowResults,
        sink: crate::DecodeSink,
    ) {
        let _armed = sink.arm();
        out.begin();
        // Window-hoisted link-layer prescan (start bytes, length octet and
        // the header CRC, computed 16 frames in lock-step), via the
        // vectorised [`crate::prescan`] kernels with the verdict buffer
        // pooled in `out`. The decoder below stays authoritative; debug
        // builds assert the prescan is never stricter than the link checks.
        #[cfg(debug_assertions)]
        let mut scratch = out.take_prescan();
        #[cfg(debug_assertions)]
        let well_framed = scratch.run(crate::FrameSpec::Dnp3Link, packets);
        for (index, packet) in packets.iter().enumerate() {
            ctx.reset();
            // Statically dispatched: one virtual call per window.
            let outcome = self.process(packet, ctx);
            if outcome.is_fault() {
                self.reset();
            }
            #[cfg(debug_assertions)]
            debug_assert!(
                well_framed[index] || matches!(outcome, Outcome::ProtocolError(_)),
                "prescan rejected packet {index}, but the decoder accepted it"
            );
            let _ = index;
            out.record(&outcome, ctx.trace());
        }
        #[cfg(debug_assertions)]
        out.return_prescan(scratch);
    }
}

/// The format specification of the DNP3 request frames the fuzzer generates.
///
/// All models share the link-header rules (start bytes, length, addresses,
/// header CRC) and the transport/application control rules; only the
/// function code and object payload differ.
#[must_use]
pub fn data_models() -> DataModelSet {
    let mut set = DataModelSet::new("dnp3");

    let request = |name: &str, function: u64, objects: Vec<u8>| {
        DataModelBuilder::new(name)
            .block(
                BlockBuilder::new("link_header")
                    .rule("dnp3-link-header")
                    .number("start1", NumberSpec::u8().fixed_value(0x05))
                    .number("start2", NumberSpec::u8().fixed_value(0x64))
                    .number(
                        "length",
                        NumberSpec::u8().relation(Relation::SizeOf {
                            of: "user_data".into(),
                            adjust: 5,
                            scale: 1,
                        }),
                    )
                    .number("control", NumberSpec::u8().fixed_value(0xC4))
                    .number_with_rule(
                        "destination",
                        NumberSpec::u16_le().default_value(1024),
                        "dnp3-address",
                    )
                    .number_with_rule(
                        "source",
                        NumberSpec::u16_le().default_value(1),
                        "dnp3-address",
                    ),
            )
            .number(
                "header_crc",
                NumberSpec::u16_le().fixup(Fixup::new(
                    peachstar_datamodel::ChecksumKind::Crc16Dnp,
                    vec!["link_header".into()],
                )),
            )
            .block(
                BlockBuilder::new("user_data")
                    .number_with_rule(
                        "transport",
                        NumberSpec::u8().default_value(0xC0),
                        "dnp3-transport",
                    )
                    .number_with_rule(
                        "app_control",
                        NumberSpec::u8().default_value(0xC0),
                        "dnp3-app-control",
                    )
                    .number("function", NumberSpec::u8().fixed_value(function))
                    .bytes_with_rule(
                        "objects",
                        BytesSpec::remainder().default_content(objects),
                        "dnp3-objects",
                    ),
            )
            .number(
                "body_crc",
                NumberSpec::u16_le().fixup(Fixup::new(
                    peachstar_datamodel::ChecksumKind::Crc16Dnp,
                    vec!["user_data".into()],
                )),
            )
            .build()
            .expect("dnp3 data model is statically valid")
    };

    set.push(request(
        "read_class_data",
        u64::from(function::READ),
        vec![60, 2, 0x06],
    ));
    set.push(request(
        "read_analog_range",
        u64::from(function::READ),
        vec![30, 2, 0x00, 0x00, 0x03],
    ));
    set.push(request(
        "write_deadband",
        u64::from(function::WRITE),
        vec![34, 1, 0x17, 0x01, 0x05, 0x64, 0x00],
    ));
    set.push(request(
        "select_crob",
        u64::from(function::SELECT),
        vec![12, 1, 0x17, 0x03, 0x00, 0x03, 0x01, 0x00],
    ));
    set.push(request(
        "operate_crob",
        u64::from(function::OPERATE),
        vec![12, 1, 0x17, 0x03, 0x00, 0x03, 0x01, 0x00],
    ));
    set.push(request(
        "direct_operate_crob",
        u64::from(function::DIRECT_OPERATE),
        vec![12, 1, 0x17, 0x05, 0x00, 0x03, 0x01, 0x00],
    ));
    set.push(request(
        "cold_restart",
        u64::from(function::COLD_RESTART),
        Vec::new(),
    ));
    set.push(request(
        "delay_measure",
        u64::from(function::DELAY_MEASURE),
        Vec::new(),
    ));
    set.push(request(
        "enable_unsolicited",
        u64::from(function::ENABLE_UNSOLICITED),
        vec![60, 2, 0x06],
    ));

    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use peachstar_datamodel::emit::emit_default;

    fn run(outstation: &mut Dnp3Outstation, packet: &[u8]) -> Outcome {
        let mut ctx = TraceContext::new();
        outstation.process(packet, &mut ctx)
    }

    /// Builds a fully framed request with correct CRCs.
    fn framed(function: u8, objects: &[u8]) -> Vec<u8> {
        let mut user_data = vec![0xC0, 0xC0, function];
        user_data.extend_from_slice(objects);

        let mut header = vec![0x05, 0x64, (user_data.len() + 5) as u8, 0xC4];
        header.extend_from_slice(&1024u16.to_le_bytes());
        header.extend_from_slice(&1u16.to_le_bytes());

        let mut packet = header.clone();
        packet.extend_from_slice(&crc16_dnp(&header).to_le_bytes());
        for block in user_data.chunks(16) {
            packet.extend_from_slice(block);
            packet.extend_from_slice(&crc16_dnp(block).to_le_bytes());
        }
        packet
    }

    #[test]
    fn class_read_returns_binary_inputs() {
        let mut outstation = Dnp3Outstation::new();
        let outcome = run(&mut outstation, &framed(function::READ, &[60, 2, 0x06]));
        let response = outcome.response().unwrap();
        assert_eq!(response[2], 0x81, "response function code");
        assert!(response.len() > 8);
    }

    #[test]
    fn analog_range_read_returns_values() {
        let mut outstation = Dnp3Outstation::new();
        let outcome = run(
            &mut outstation,
            &framed(function::READ, &[30, 2, 0x00, 0x01, 0x03]),
        );
        let response = outcome.response().unwrap();
        // Values for registers 1..=3 with the ramp pattern 3, 6, 9.
        assert!(response.windows(2).any(|w| w == 3u16.to_le_bytes()));
        assert!(response.windows(2).any(|w| w == 9u16.to_le_bytes()));
    }

    #[test]
    fn out_of_bounds_range_is_rejected() {
        let mut outstation = Dnp3Outstation::new();
        let outcome = run(
            &mut outstation,
            &framed(function::READ, &[30, 2, 0x00, 0x05, 0x01]),
        );
        assert!(matches!(outcome, Outcome::ProtocolError(_)));
    }

    #[test]
    fn select_before_operate_protocol() {
        let mut outstation = Dnp3Outstation::new();
        let crob = [12, 1, 0x17, 0x03, 0x00, 0x03, 0x01, 0x00];
        // Operate without select → status code 2 in the echoed CROB.
        let outcome = run(&mut outstation, &framed(function::OPERATE, &crob));
        let response = outcome.response().unwrap();
        assert_eq!(*response.last().unwrap(), 0x02);
        // Select then operate toggles the coil.
        let before = outstation.db.coil(3).unwrap();
        run(&mut outstation, &framed(function::SELECT, &crob));
        run(&mut outstation, &framed(function::OPERATE, &crob));
        assert_ne!(outstation.db.coil(3).unwrap(), before);
    }

    #[test]
    fn direct_operate_skips_select() {
        let mut outstation = Dnp3Outstation::new();
        let crob = [12, 1, 0x17, 0x05, 0x00, 0x05, 0x01, 0x00];
        let before = outstation.db.coil(5).unwrap();
        run(&mut outstation, &framed(function::DIRECT_OPERATE, &crob));
        assert_ne!(outstation.db.coil(5).unwrap(), before);
    }

    #[test]
    fn cold_restart_sets_iin_flag() {
        let mut outstation = Dnp3Outstation::new();
        run(&mut outstation, &framed(function::COLD_RESTART, &[]));
        assert_eq!(outstation.restarts(), 1);
        let outcome = run(&mut outstation, &framed(function::DELAY_MEASURE, &[]));
        let response = outcome.response().unwrap();
        assert_eq!(response[3] & 0x80, 0x80, "device restart IIN bit");
    }

    #[test]
    fn unsolicited_enable_disable() {
        let mut outstation = Dnp3Outstation::new();
        run(
            &mut outstation,
            &framed(function::ENABLE_UNSOLICITED, &[60, 2, 0x06]),
        );
        assert!(outstation.unsolicited_enabled());
        run(
            &mut outstation,
            &framed(function::DISABLE_UNSOLICITED, &[60, 2, 0x06]),
        );
        assert!(!outstation.unsolicited_enabled());
    }

    #[test]
    fn corrupted_crcs_are_rejected() {
        let mut outstation = Dnp3Outstation::new();
        let mut packet = framed(function::READ, &[60, 2, 0x06]);
        // Flip a bit in the header CRC.
        packet[8] ^= 0x01;
        assert!(matches!(
            run(&mut outstation, &packet),
            Outcome::ProtocolError(_)
        ));
        // Flip a bit inside the body block.
        let mut packet = framed(function::READ, &[60, 2, 0x06]);
        let last = packet.len() - 3;
        packet[last] ^= 0x10;
        assert!(matches!(
            run(&mut outstation, &packet),
            Outcome::ProtocolError(_)
        ));
    }

    #[test]
    fn wrong_destination_is_ignored() {
        let mut outstation = Dnp3Outstation::new();
        let mut header = vec![0x05, 0x64, 8u8, 0xC4];
        header.extend_from_slice(&99u16.to_le_bytes());
        header.extend_from_slice(&1u16.to_le_bytes());
        let user_data = [0xC0, 0xC0, function::READ];
        let mut packet = header.clone();
        packet.extend_from_slice(&crc16_dnp(&header).to_le_bytes());
        packet.extend_from_slice(&user_data);
        packet.extend_from_slice(&crc16_dnp(&user_data).to_le_bytes());
        assert!(matches!(
            run(&mut outstation, &packet),
            Outcome::ProtocolError(_)
        ));
    }

    #[test]
    fn malformed_link_frames_are_rejected() {
        let mut outstation = Dnp3Outstation::new();
        assert!(matches!(run(&mut outstation, &[]), Outcome::ProtocolError(_)));
        assert!(matches!(
            run(&mut outstation, &[0x05, 0x65, 5, 0xC4, 0, 4, 1, 0, 0, 0]),
            Outcome::ProtocolError(_)
        ));
    }

    #[test]
    fn default_model_packets_are_processed() {
        let mut outstation = Dnp3Outstation::new();
        for model in data_models().models() {
            let packet = emit_default(model).unwrap();
            let outcome = run(&mut outstation, &packet);
            assert!(
                !outcome.is_fault(),
                "{}: default packet must not fault",
                model.name()
            );
            assert!(
                outcome.response().is_some(),
                "{}: default packet should get a response, got {outcome:?}",
                model.name()
            );
        }
    }

    #[test]
    fn models_share_link_layer_rules() {
        let set = data_models();
        assert!(set.len() >= 9);
        assert!(set.rule_overlap() > 0.4, "overlap: {}", set.rule_overlap());
    }
}
