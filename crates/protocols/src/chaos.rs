//! [`ChaosTarget`]: a deterministic failure-injection wrapper around any
//! [`Target`].
//!
//! The fault-tolerance layer (panic containment, hang watchdog, supervised
//! shard workers) needs a target that *actually* panics and hangs — the six
//! built-in targets only ever return the polite [`Outcome::Fault`] of their
//! planted bugs. `ChaosTarget` wraps an inner target and injects real
//! `panic!`s, real blocking sleeps and garbage response bytes, selected
//! **by packet content**, not by execution count:
//!
//! ```text
//! h = FNV-1a(seed ‖ packet bytes)
//! h % panic_every == 0  → panic!("chaos: injected panic #<h % sites>")
//! h % hang_every  == 0  → sleep(hang) before processing
//! h % garbage_every == 0 → XOR a keystream derived from h over the response
//! ```
//!
//! Content-keyed selection is what makes the chaos stream deterministic in
//! every execution topology: the same packet misbehaves identically whether
//! it is executed sequentially, inside a batched window, on any of N shard
//! workers, or alone from a replayed crash artifact — so campaigns under
//! chaos stay worker-count-invariant and their artifacts reproduce.
//!
//! ```
//! use peachstar_protocols::chaos::{ChaosConfig, ChaosTarget};
//! use peachstar_protocols::{Target, TargetId};
//!
//! let config = ChaosConfig::new(7).panic_every(101);
//! let chaotic = ChaosTarget::new(TargetId::Modbus.create_send(), config);
//! assert_eq!(chaotic.name(), "libmodbus");
//! ```

use std::thread;
use std::time::Duration;

use peachstar_coverage::TraceContext;
use peachstar_datamodel::DataModelSet;

use crate::{Outcome, SessionTemplate, Target};

/// Failure-injection policy of a [`ChaosTarget`].
///
/// All selection is content-keyed (see the module docs); a period of `0`
/// disables that failure class. The defaults inject a panic roughly every
/// ~100th distinct packet and garbage on every ~50th, with hangs disabled
/// (enable them explicitly where a watchdog is armed — an unsupervised
/// campaign would simply stall for [`hang`](ChaosConfig::hang) per
/// selected packet).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Seed mixed into the content hash, so two chaos campaigns over the
    /// same packets can misbehave on different packets.
    pub seed: u64,
    /// Inject a panic when `h % panic_every == 0` (0 disables).
    pub panic_every: u64,
    /// Inject a blocking sleep when `h % hang_every == 0` (0 disables).
    pub hang_every: u64,
    /// How long an injected hang blocks.
    pub hang: Duration,
    /// Corrupt the response bytes when `h % garbage_every == 0` (0 disables).
    pub garbage_every: u64,
    /// Number of distinct panic sites to synthesise (dedup fodder).
    pub sites: u32,
}

impl ChaosConfig {
    /// Default policy for `seed`: panics every ~101st distinct packet,
    /// garbage every ~53rd, hangs disabled, 3 distinct panic sites.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        Self {
            seed,
            panic_every: 101,
            hang_every: 0,
            hang: Duration::from_millis(100),
            garbage_every: 53,
            sites: 3,
        }
    }

    /// Sets the panic injection period (0 disables).
    #[must_use]
    pub const fn panic_every(mut self, every: u64) -> Self {
        self.panic_every = every;
        self
    }

    /// Sets the hang injection period (0 disables).
    #[must_use]
    pub const fn hang_every(mut self, every: u64) -> Self {
        self.hang_every = every;
        self
    }

    /// Sets how long an injected hang blocks.
    #[must_use]
    pub const fn hang_ms(mut self, millis: u64) -> Self {
        self.hang = Duration::from_millis(millis);
        self
    }

    /// Sets the garbage-response injection period (0 disables).
    #[must_use]
    pub const fn garbage_every(mut self, every: u64) -> Self {
        self.garbage_every = every;
        self
    }

    /// Sets the number of distinct synthetic panic sites.
    #[must_use]
    pub const fn sites(mut self, sites: u32) -> Self {
        self.sites = sites;
        self
    }
}

/// What a [`ChaosTarget`] will do to one packet, decided purely from the
/// packet bytes and the chaos seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosDecision {
    /// Process the packet untouched.
    Pass,
    /// `panic!` with the numbered synthetic site before processing.
    Panic(u32),
    /// Block for [`ChaosConfig::hang`] before processing.
    Hang,
    /// Process, then XOR a keystream over the response bytes.
    Garbage,
}

/// A [`Target`] wrapper that deterministically injects panics, hangs and
/// garbage responses around an inner target. See the module docs for the
/// selection scheme and the determinism argument.
pub struct ChaosTarget {
    inner: Box<dyn Target + Send>,
    config: ChaosConfig,
}

impl ChaosTarget {
    /// Wraps `inner` with the injection policy `config`.
    #[must_use]
    pub fn new(inner: Box<dyn Target + Send>, config: ChaosConfig) -> Self {
        Self { inner, config }
    }

    /// The injection policy.
    #[must_use]
    pub fn config(&self) -> ChaosConfig {
        self.config
    }

    /// The decision this wrapper will take for `packet` — pure, so tests
    /// and replay tooling can predict injected failures without executing.
    #[must_use]
    pub fn decision(&self, packet: &[u8]) -> ChaosDecision {
        decision_for(&self.config, packet)
    }
}

fn content_hash(seed: u64, packet: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in seed.to_le_bytes().iter().chain(packet) {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn decision_for(config: &ChaosConfig, packet: &[u8]) -> ChaosDecision {
    let h = content_hash(config.seed, packet);
    if config.panic_every > 0 && h.is_multiple_of(config.panic_every) {
        ChaosDecision::Panic(h as u32 % config.sites.max(1))
    } else if config.hang_every > 0 && h.is_multiple_of(config.hang_every) {
        ChaosDecision::Hang
    } else if config.garbage_every > 0 && h.is_multiple_of(config.garbage_every) {
        ChaosDecision::Garbage
    } else {
        ChaosDecision::Pass
    }
}

impl Target for ChaosTarget {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn data_models(&self) -> DataModelSet {
        self.inner.data_models()
    }

    fn process(&mut self, packet: &[u8], ctx: &mut TraceContext) -> Outcome {
        match self.decision(packet) {
            ChaosDecision::Panic(site) => {
                panic!("chaos: injected panic #{site}");
            }
            ChaosDecision::Hang => {
                thread::sleep(self.config.hang);
                self.inner.process(packet, ctx)
            }
            ChaosDecision::Garbage => {
                let mut outcome = self.inner.process(packet, ctx);
                if let Outcome::Response(bytes) = &mut outcome {
                    let mut state = content_hash(self.config.seed, packet) | 1;
                    for byte in bytes.iter_mut() {
                        state = state.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(13);
                        *byte ^= (state >> 56) as u8;
                    }
                }
                outcome
            }
            ChaosDecision::Pass => self.inner.process(packet, ctx),
        }
    }

    // `process_batch` deliberately keeps the default per-packet loop: the
    // batched fast paths of the inner targets would bypass the injection
    // point, and a window must misbehave on exactly the packets a
    // sequential run would.

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn clone_fresh(&self) -> Box<dyn Target + Send> {
        Box::new(ChaosTarget {
            inner: self.inner.clone_fresh(),
            config: self.config,
        })
    }

    fn session_template(&self) -> Option<SessionTemplate> {
        self.inner.session_template()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TargetId;

    #[test]
    fn decisions_are_content_keyed_and_deterministic() {
        let config = ChaosConfig::new(7).panic_every(3).garbage_every(2);
        let target = ChaosTarget::new(TargetId::Modbus.create_send(), config);
        let clone = target.clone_fresh();
        // Same bytes → same decision, across instances and clone_fresh.
        let packets: Vec<Vec<u8>> = (0u8..32).map(|i| vec![i, i ^ 0x5A, 0x68]).collect();
        let mut injected = 0;
        for packet in &packets {
            let first = target.decision(packet);
            assert_eq!(first, target.decision(packet));
            assert_eq!(first, decision_for(&config, packet));
            if first != ChaosDecision::Pass {
                injected += 1;
            }
        }
        assert!(injected > 0, "periods of 2 and 3 must select something");
        drop(clone);
        // A different seed re-keys the selection.
        let other = ChaosConfig::new(8).panic_every(3).garbage_every(2);
        assert!(
            packets
                .iter()
                .any(|p| decision_for(&config, p) != decision_for(&other, p)),
            "seed must influence the decisions"
        );
    }

    #[test]
    fn injected_panic_carries_the_numbered_site() {
        let config = ChaosConfig::new(0).panic_every(1).sites(4);
        let mut target = ChaosTarget::new(TargetId::Modbus.create_send(), config);
        let mut ctx = TraceContext::new();
        let packet = [0x01, 0x02, 0x03];
        let ChaosDecision::Panic(site) = target.decision(&packet) else {
            panic!("panic_every=1 must select every packet");
        };
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            target.process(&packet, &mut ctx)
        }));
        let payload = caught.expect_err("must panic");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("panic! with format args carries a String");
        assert_eq!(message, format!("chaos: injected panic #{site}"));
    }

    #[test]
    fn pass_and_garbage_preserve_inner_semantics() {
        // With panics and hangs disabled, the wrapper's outcomes differ from
        // the inner target's only in garbage-scrambled response payloads:
        // same variant, same trace, and the scrambling itself is
        // deterministic.
        use peachstar_datamodel::emit::emit_default;
        let config = ChaosConfig::new(3).panic_every(0).hang_every(0).garbage_every(2);
        let mut plain = TargetId::Modbus.create_send();
        let mut chaotic = ChaosTarget::new(TargetId::Modbus.create_send(), config);
        let packets: Vec<Vec<u8>> = plain
            .data_models()
            .models()
            .iter()
            .map(|model| emit_default(model).expect("default emission"))
            .collect();
        let mut scrambled = 0;
        for packet in &packets {
            let mut ctx_a = TraceContext::new();
            let mut ctx_b = TraceContext::new();
            let expected = plain.process(packet, &mut ctx_a);
            let actual = chaotic.process(packet, &mut ctx_b);
            assert_eq!(ctx_a.trace().path_id(), ctx_b.trace().path_id());
            match (&expected, &actual) {
                (Outcome::Response(a), Outcome::Response(b)) => {
                    assert_eq!(a.len(), b.len(), "garbage keeps the length");
                    if a != b {
                        scrambled += 1;
                        assert_eq!(chaotic.decision(packet), ChaosDecision::Garbage);
                    }
                }
                _ => assert_eq!(expected, actual),
            }
            // Determinism: a second chaotic instance produces identical bytes.
            let mut again = ChaosTarget::new(TargetId::Modbus.create_send(), config);
            let mut ctx_c = TraceContext::new();
            assert_eq!(actual, again.process(packet, &mut ctx_c));
        }
        assert!(scrambled > 0, "garbage_every=2 must scramble something");
    }

    #[test]
    fn hang_injection_blocks_for_the_configured_duration() {
        let config = ChaosConfig::new(0)
            .panic_every(0)
            .garbage_every(0)
            .hang_every(1)
            .hang_ms(30);
        let mut target = ChaosTarget::new(TargetId::Modbus.create_send(), config);
        let mut ctx = TraceContext::new();
        let started = std::time::Instant::now();
        let _ = target.process(&[0x00], &mut ctx);
        assert!(started.elapsed() >= Duration::from_millis(30));
    }
}
