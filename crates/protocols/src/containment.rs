//! Panic containment: run target code, catch its panics, and turn them into
//! deduplicatable [`FaultKind::Panic`] faults.
//!
//! This is the substrate under every fault-tolerant execution path — the
//! in-process executor and sharded workers in the `peachstar` core crate,
//! and the per-connection handlers of the framed-TCP [`server`](crate::server)
//! in this one. It lives here (rather than in the engine) because the
//! socket server must contain panics *server-side*: a panic unwinding out of
//! a connection handler would kill the handler thread and surface to the
//! fuzzer as a dead socket instead of as the `Panic` bug the in-process
//! path records. Keeping one module also keeps one process-global panic
//! hook, so contained and uncontained threads never fight over it.
//!
//! Two primitives:
//!
//! * [`contained`] wraps a closure in `catch_unwind` with a process-global
//!   panic hook that (only while a contained call is on the stack of the
//!   panicking thread) swallows the default stderr backtrace and captures
//!   the panic message. A caught panic becomes an `Err(message)`.
//! * [`panic_fault`] converts a captured message into the synthetic fault
//!   the campaign records: kind [`FaultKind::Panic`],
//!   site = the interned message, so identical panics dedup into one unique
//!   bug exactly like planted faults do.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

use crate::{intern_site, Fault, FaultKind};

std::thread_local! {
    static CONTAINING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    static CAPTURED: std::cell::RefCell<Option<String>> = const { std::cell::RefCell::new(None) };
}

fn install_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if CONTAINING.with(std::cell::Cell::get) {
                let message = info
                    .payload()
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| info.payload().downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| {
                        info.location()
                            .map(|l| format!("panic at {}:{}", l.file(), l.line()))
                            .unwrap_or_else(|| "panic with non-string payload".to_owned())
                    });
                CAPTURED.with(|c| *c.borrow_mut() = Some(message));
            } else {
                previous(info);
            }
        }));
    });
}

/// Runs `f`, containing any panic it raises: `Err(message)` instead of an
/// unwound stack, with nothing written to stderr. Panics raised outside a
/// contained call (other threads, test assertions) are untouched.
///
/// # Errors
///
/// Returns the panic message when `f` panicked.
pub fn contained<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    install_hook();
    CONTAINING.with(|c| c.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    CONTAINING.with(|c| c.set(false));
    result.map_err(|payload| {
        CAPTURED
            .with(|c| c.borrow_mut().take())
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "panic with non-string payload".to_owned())
    })
}

/// The synthetic fault a contained panic turns into: kind
/// [`FaultKind::Panic`], site = the interned panic message, so identical
/// panics dedup into one unique bug exactly like planted faults do.
#[must_use]
pub fn panic_fault(message: &str) -> Fault {
    Fault::new(FaultKind::Panic, intern_site(message))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contained_returns_the_value_or_the_panic_message() {
        assert_eq!(contained(|| 41 + 1), Ok(42));
        assert_eq!(contained(|| panic!("boom")), Err::<(), _>("boom".into()));
        let formatted = contained(|| -> u32 { panic!("chaos: injected panic #{}", 2) });
        assert_eq!(formatted, Err("chaos: injected panic #2".into()));
        // Containment is per-call: a later normal call is unaffected.
        assert_eq!(contained(|| "ok"), Ok("ok"));
    }

    #[test]
    fn panic_fault_dedups_by_message() {
        let a = panic_fault("chaos: injected panic #1");
        let b = panic_fault(&format!("chaos: injected panic #{}", 1));
        assert_eq!(a, b);
        assert_eq!(a.kind, FaultKind::Panic);
        assert!(std::ptr::eq(a.site, b.site));
        assert_ne!(a, panic_fault("chaos: injected panic #2"));
    }
}
