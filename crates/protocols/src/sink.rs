//! The decode-output seam: full-fidelity vs. summary-only decoding.
//!
//! Batched campaigns record one [`OutcomeSummary`](crate::OutcomeSummary)
//! per execution — the outcome *variant* plus the fault record — and throw
//! the response bytes and rejection strings away immediately. Yet every
//! decoder historically paid for them: `format!`-ed error reasons,
//! `Vec`-assembled response frames, all constructed only to be summarised
//! and dropped. [`DecodeSink`] names the two fidelities, and the free
//! functions in this module are the *only* places a decoder builds output
//! payloads, so switching the sink switches all of them at once:
//!
//! * [`DecodeSink::Full`] builds every response and error string
//!   bit-for-bit — the historical behaviour, required whenever outcome
//!   payloads are inspected (the sequential engine, session handshakes,
//!   replay, tests).
//! * [`DecodeSink::Summary`] keeps the **identical control flow** — every
//!   `cov_edge!` site, branch and state mutation fires exactly as before,
//!   so recorded traces and `path_id`s are untouched by construction — but
//!   returns empty payloads instead of formatting/assembling them.
//!
//! The sink is armed per thread ([`DecodeSink::arm`]) for the duration of a
//! batched window, not threaded through every decoder helper: the decoders'
//! call graphs stay signature-identical, which is what keeps their
//! `cov_edge!` call sites (and therefore edge IDs, which hash the source
//! position) pinned. The guard restores the previous mode on drop, so panic
//! containment (`catch_unwind` in the executor) and nested arming are safe.
//!
//! Debug builds can cross-check the two fidelities end to end with
//! [`debug_cross_check_sinks`]: both sinks run the same packet on fresh
//! clones and must produce an identical summary and trace.

use std::cell::Cell;
use std::fmt;

use crate::Outcome;

/// How much of a decode's output the caller will actually read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DecodeSink {
    /// Build responses and rejection strings bit-for-bit.
    #[default]
    Full,
    /// Identical control flow, but skip response-buffer assembly and
    /// error-string formatting; outcome payloads come back empty.
    Summary,
}

thread_local! {
    /// Whether the current thread is decoding in summary mode.
    static SUMMARY_MODE: Cell<bool> = const { Cell::new(false) };
}

impl DecodeSink {
    /// Arms this sink on the current thread until the returned guard drops.
    #[must_use = "the sink is only armed while the guard lives"]
    pub fn arm(self) -> SinkGuard {
        let previous = SUMMARY_MODE.with(|mode| mode.replace(self == Self::Summary));
        SinkGuard { previous }
    }

    /// The sink currently armed on this thread ([`DecodeSink::Full`] unless
    /// a [`SinkGuard`] is live).
    #[must_use]
    pub fn current() -> Self {
        if SUMMARY_MODE.with(Cell::get) {
            Self::Summary
        } else {
            Self::Full
        }
    }
}

/// RAII guard of [`DecodeSink::arm`]: restores the previously armed sink on
/// drop. Unwinding through the guard (panic containment) restores it too.
#[derive(Debug)]
pub struct SinkGuard {
    previous: bool,
}

impl Drop for SinkGuard {
    fn drop(&mut self) {
        SUMMARY_MODE.with(|mode| mode.set(self.previous));
    }
}

/// `true` when the current thread decodes in summary mode.
#[inline]
fn summary() -> bool {
    SUMMARY_MODE.with(Cell::get)
}

/// A [`Outcome::ProtocolError`] with a static rejection reason.
#[inline]
#[must_use]
pub fn protocol_error(reason: &str) -> Outcome {
    Outcome::ProtocolError(reject_str(reason))
}

/// A [`Outcome::ProtocolError`] with a formatted rejection reason; the
/// formatting itself is skipped in summary mode (`format_args!` captures
/// references without evaluating the format string).
#[inline]
#[must_use]
pub fn protocol_error_fmt(reason: fmt::Arguments<'_>) -> Outcome {
    Outcome::ProtocolError(reject_fmt(reason))
}

/// A rejection-reason `String` from a static description — for decoders
/// whose internal plumbing is `Result<_, String>` rather than [`Outcome`].
#[inline]
#[must_use]
pub fn reject_str(reason: &str) -> String {
    if summary() {
        String::new()
    } else {
        reason.to_owned()
    }
}

/// A rejection-reason `String` from format arguments, skipped in summary
/// mode. Full mode renders exactly what `format!` would.
#[inline]
#[must_use]
pub fn reject_fmt(reason: fmt::Arguments<'_>) -> String {
    if summary() {
        String::new()
    } else {
        fmt::format(reason)
    }
}

/// An output buffer built by `fill` — or an empty one, with `fill` never
/// run, in summary mode. `fill` must only *assemble bytes*: state mutations
/// (sequence counters, register writes) belong outside the closure, where
/// they run under both sinks.
#[inline]
#[must_use]
pub fn bytes_with(capacity: usize, fill: impl FnOnce(&mut Vec<u8>)) -> Vec<u8> {
    if summary() {
        Vec::new()
    } else {
        let mut bytes = Vec::with_capacity(capacity);
        fill(&mut bytes);
        bytes
    }
}

/// A [`Outcome::Response`] whose bytes are assembled by `fill` under the
/// same rules as [`bytes_with`].
#[inline]
#[must_use]
pub fn response_with(capacity: usize, fill: impl FnOnce(&mut Vec<u8>)) -> Outcome {
    Outcome::Response(bytes_with(capacity, fill))
}

/// A [`Outcome::Response`] from a fixed byte array (heap-allocated only in
/// full mode).
#[inline]
#[must_use]
pub fn response_array<const N: usize>(bytes: [u8; N]) -> Outcome {
    if summary() {
        Outcome::Response(Vec::new())
    } else {
        Outcome::Response(bytes.to_vec())
    }
}

/// A [`Outcome::Response`] from an already-built buffer. The buffer is
/// dropped in summary mode — use this for responses whose bytes had to be
/// assembled anyway (e.g. a confirmation the decoder patches in place).
#[inline]
#[must_use]
pub fn response_vec(bytes: Vec<u8>) -> Outcome {
    if summary() {
        Outcome::Response(Vec::new())
    } else {
        Outcome::Response(bytes)
    }
}

/// Debug-build cross-check of the sink seam: runs `packet` on two fresh
/// clones of `target`, one per sink, and asserts the recorded
/// [`OutcomeSummary`](crate::OutcomeSummary) and trace are identical.
///
/// Batched executors call this on a sampled packet per window when decoding
/// in summary mode, so every debug campaign continuously re-proves the
/// bit-identity argument on real campaign traffic.
#[cfg(debug_assertions)]
pub fn debug_cross_check_sinks(target: &dyn crate::Target, packet: &[u8]) {
    use peachstar_coverage::TraceContext;
    let run = |sink: DecodeSink| {
        let mut fresh = target.clone_fresh();
        let mut ctx = TraceContext::new();
        let _armed = sink.arm();
        let outcome = fresh.process(packet, &mut ctx);
        (crate::OutcomeSummary::from(&outcome), ctx.trace().to_sparse())
    };
    let full = run(DecodeSink::Full);
    let summary = run(DecodeSink::Summary);
    assert_eq!(
        full.0, summary.0,
        "{}: summary sink changed the outcome of {packet:02x?}",
        target.name()
    );
    assert_eq!(
        full.1, summary.1,
        "{}: summary sink changed the trace of {packet:02x?}",
        target.name()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_is_the_default_and_builds_everything() {
        assert_eq!(DecodeSink::current(), DecodeSink::Full);
        assert_eq!(reject_str("bad frame"), "bad frame");
        assert_eq!(reject_fmt(format_args!("len {}", 7)), "len 7");
        assert_eq!(
            bytes_with(2, |out| out.extend_from_slice(&[1, 2])),
            vec![1, 2]
        );
        assert_eq!(response_array([3, 4]).response(), Some(&[3u8, 4][..]));
        assert_eq!(response_vec(vec![5]).response(), Some(&[5u8][..]));
    }

    #[test]
    fn summary_guard_empties_payloads_and_restores_on_drop() {
        {
            let _armed = DecodeSink::Summary.arm();
            assert_eq!(DecodeSink::current(), DecodeSink::Summary);
            assert_eq!(reject_str("bad frame"), "");
            assert_eq!(reject_fmt(format_args!("len {}", 7)), "");
            assert_eq!(bytes_with(8, |_| panic!("fill must not run")), Vec::new());
            assert_eq!(response_array([3, 4]).response(), Some(&[][..]));
            assert_eq!(response_vec(vec![5]).response(), Some(&[][..]));
            // Nested arming restores the *enclosing* mode, not Full.
            {
                let _inner = DecodeSink::Full.arm();
                assert_eq!(DecodeSink::current(), DecodeSink::Full);
            }
            assert_eq!(DecodeSink::current(), DecodeSink::Summary);
        }
        assert_eq!(DecodeSink::current(), DecodeSink::Full);
    }

    #[test]
    fn guard_restores_across_a_contained_panic() {
        let result = std::panic::catch_unwind(|| {
            let _armed = DecodeSink::Summary.arm();
            panic!("contained");
        });
        assert!(result.is_err());
        assert_eq!(
            DecodeSink::current(),
            DecodeSink::Full,
            "unwinding through the guard must disarm summary mode"
        );
    }

    #[cfg(debug_assertions)]
    #[test]
    fn cross_check_accepts_every_target_on_mixed_traffic() {
        use peachstar_datamodel::emit::emit_default;
        for id in crate::TargetId::ALL {
            let target = id.create();
            let mut packets: Vec<Vec<u8>> = target
                .data_models()
                .models()
                .iter()
                .map(|model| emit_default(model).expect("default emission"))
                .collect();
            packets.push(Vec::new());
            packets.push(vec![0xFF; 3]);
            for packet in &packets {
                debug_cross_check_sinks(target.as_ref(), packet);
            }
        }
    }
}
