//! Shared infrastructure for the protocol targets: point/register databases
//! and small parsing helpers.

use std::collections::HashMap;

/// A bank of 16-bit holding/input registers plus single-bit coils, shared by
/// the Modbus, IEC 60870 and DNP3 targets as their simulated process image.
#[derive(Debug, Clone)]
pub struct PointDatabase {
    registers: Vec<u16>,
    coils: Vec<bool>,
    /// Named analogue values addressed by object reference (used by the MMS
    /// and ICCP targets).
    named_points: HashMap<String, f64>,
}

impl PointDatabase {
    /// Creates a database with the given number of registers and coils,
    /// initialised to a deterministic ramp pattern.
    #[must_use]
    pub fn new(registers: usize, coils: usize) -> Self {
        Self {
            registers: (0..registers).map(|i| (i as u16).wrapping_mul(3)).collect(),
            coils: (0..coils).map(|i| i % 3 == 0).collect(),
            named_points: HashMap::new(),
        }
    }

    /// Number of registers.
    #[must_use]
    pub fn register_count(&self) -> usize {
        self.registers.len()
    }

    /// Number of coils.
    #[must_use]
    pub fn coil_count(&self) -> usize {
        self.coils.len()
    }

    /// Reads register `address`, if in range.
    #[must_use]
    pub fn register(&self, address: usize) -> Option<u16> {
        self.registers.get(address).copied()
    }

    /// Writes register `address`; returns `false` when out of range.
    pub fn set_register(&mut self, address: usize, value: u16) -> bool {
        match self.registers.get_mut(address) {
            Some(slot) => {
                *slot = value;
                true
            }
            None => false,
        }
    }

    /// Reads coil `address`, if in range.
    #[must_use]
    pub fn coil(&self, address: usize) -> Option<bool> {
        self.coils.get(address).copied()
    }

    /// Writes coil `address`; returns `false` when out of range.
    pub fn set_coil(&mut self, address: usize, value: bool) -> bool {
        match self.coils.get_mut(address) {
            Some(slot) => {
                *slot = value;
                true
            }
            None => false,
        }
    }

    /// Reads a named point.
    #[must_use]
    pub fn named_point(&self, reference: &str) -> Option<f64> {
        self.named_points.get(reference).copied()
    }

    /// Writes a named point, creating it if necessary. Returns the previous
    /// value, if any.
    pub fn set_named_point(&mut self, reference: impl Into<String>, value: f64) -> Option<f64> {
        self.named_points.insert(reference.into(), value)
    }

    /// Number of named points currently defined.
    #[must_use]
    pub fn named_point_count(&self) -> usize {
        self.named_points.len()
    }
}

impl Default for PointDatabase {
    fn default() -> Self {
        Self::new(128, 64)
    }
}

/// Reads a big-endian `u16` at `offset`, if the slice is long enough.
#[must_use]
pub fn read_u16_be(data: &[u8], offset: usize) -> Option<u16> {
    let bytes = data.get(offset..offset + 2)?;
    Some(u16::from_be_bytes([bytes[0], bytes[1]]))
}

/// Reads a little-endian `u16` at `offset`, if the slice is long enough.
#[must_use]
pub fn read_u16_le(data: &[u8], offset: usize) -> Option<u16> {
    let bytes = data.get(offset..offset + 2)?;
    Some(u16::from_le_bytes([bytes[0], bytes[1]]))
}

/// Reads a big-endian `u32` at `offset`, if the slice is long enough.
#[must_use]
pub fn read_u32_be(data: &[u8], offset: usize) -> Option<u32> {
    let bytes = data.get(offset..offset + 4)?;
    Some(u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
}

/// Reads a 24-bit little-endian unsigned integer at `offset` (IEC 60870
/// information object addresses).
#[must_use]
pub fn read_u24_le(data: &[u8], offset: usize) -> Option<u32> {
    let bytes = data.get(offset..offset + 3)?;
    Some(u32::from(bytes[0]) | (u32::from(bytes[1]) << 8) | (u32::from(bytes[2]) << 16))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_bank_bounds() {
        let mut db = PointDatabase::new(4, 2);
        assert_eq!(db.register_count(), 4);
        assert!(db.register(3).is_some());
        assert!(db.register(4).is_none());
        assert!(db.set_register(2, 0xbeef));
        assert_eq!(db.register(2), Some(0xbeef));
        assert!(!db.set_register(100, 1));
    }

    #[test]
    fn coil_bank_bounds() {
        let mut db = PointDatabase::new(1, 3);
        assert!(db.set_coil(2, true));
        assert_eq!(db.coil(2), Some(true));
        assert!(!db.set_coil(3, true));
        assert_eq!(db.coil(5), None);
    }

    #[test]
    fn named_points_insert_and_lookup() {
        let mut db = PointDatabase::default();
        assert_eq!(db.named_point("ld0/MMXU1.TotW"), None);
        assert_eq!(db.set_named_point("ld0/MMXU1.TotW", 42.5), None);
        assert_eq!(db.named_point("ld0/MMXU1.TotW"), Some(42.5));
        assert_eq!(db.set_named_point("ld0/MMXU1.TotW", 1.0), Some(42.5));
        assert_eq!(db.named_point_count(), 1);
    }

    #[test]
    fn byte_readers_handle_bounds() {
        let data = [0x12u8, 0x34, 0x56, 0x78, 0x9a];
        assert_eq!(read_u16_be(&data, 0), Some(0x1234));
        assert_eq!(read_u16_le(&data, 0), Some(0x3412));
        assert_eq!(read_u32_be(&data, 1), Some(0x3456789a));
        assert_eq!(read_u24_le(&data, 2), Some(0x9a7856));
        assert_eq!(read_u16_be(&data, 4), None);
        assert_eq!(read_u32_be(&data, 2), None);
        assert_eq!(read_u24_le(&data, 3), None);
    }

    #[test]
    fn default_database_has_ramp_pattern() {
        let db = PointDatabase::default();
        assert_eq!(db.register(0), Some(0));
        assert_eq!(db.register(1), Some(3));
        assert_eq!(db.coil(0), Some(true));
        assert_eq!(db.coil(1), Some(false));
    }
}
