//! Vectorised framing prescans: window-level header validation for the
//! batched decode path.
//!
//! A batched window hands a target its packets all at once, so the pure,
//! stateless part of frame validation — start bytes, declared-vs-actual
//! lengths, link CRCs — can be hoisted out of the per-packet decode loop
//! into one tight prepass over the headers. This module is that prepass,
//! shared by all six targets: one [`FrameSpec`] per wire framing, a scalar
//! reference predicate ([`FrameSpec::check`]), and a chunked batch
//! validator ([`FrameSpec::prescan_into`]) shaped for LLVM's
//! autovectoriser.
//!
//! # Vectorisation shape
//!
//! The batch validator processes [`LANES`] (16) packets per inner loop: the
//! fixed-offset header bytes are first *gathered* into per-offset columns
//! (`[[u8; LANES]; H]`, a structure-of-arrays transpose), then every check
//! runs as a branch-free mask loop over the lanes —
//! `ok[lane] &= u8::from(condition)` — which LLVM lowers to packed SIMD
//! compares (`pcmpeqb`/`pcmpeqd` on x86_64) with no per-packet branches.
//! The DNP3 link CRC runs the same way: sixteen CRC registers advance in
//! lock-step through the gathered header columns. No unstable intrinsics,
//! no `unsafe`: plain fixed-length array loops the optimiser can prove
//! bound-free. The remainder of a window (fewer than [`LANES`] packets)
//! falls back to the scalar predicate, which is also the oracle the
//! property tests compare the chunked kernels against.
//!
//! This file is deliberately self-contained (no imports from the rest of
//! the crate or its dependencies) so the codegen smoke test can compile
//! *exactly this source* standalone (`rustc -C opt-level=3 --emit asm`) and
//! assert the packed compares are really emitted.
//!
//! # Contract with the decoders
//!
//! A prescan verdict is one-directional: `false` means the target's decoder
//! is guaranteed to reject the packet as a protocol error *from any state*;
//! `true` promises nothing (stateful checks still run in the decoder). The
//! debug builds of every `process_batch` override assert exactly this
//! direction against the real decoder on every packet.

/// Packets validated per inner-loop iteration of the chunked kernels: the
/// `u8x16` lane width every SSE2-class vector unit natively supports.
pub const LANES: usize = 16;

/// The wire framings the six built-in targets prevalidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameSpec {
    /// Modbus/TCP MBAP: protocol id 0, declared length, unit id 0/1.
    Mbap,
    /// IEC 60870-5-104 APCI (shared by the iec104 and lib60870 targets):
    /// 0x68 start byte and a declared length covering the whole APDU.
    Apci,
    /// DNP3 link layer: 0x05 0x64 sync, length field, header CRC.
    Dnp3Link,
    /// ICCP/TASE.2 transport header: "T2" magic and declared payload length.
    Iccp,
    /// TPKT + COTP data TPDU (IEC 61850 MMS transport): TPKT version/length
    /// and a COTP DT header.
    TpktCotp,
}

impl FrameSpec {
    /// Scalar reference predicate: `true` when `packet`'s framing passes
    /// every stateless header check of this spec.
    ///
    /// This is the oracle the vectorised kernels are tested against, and
    /// the fallback for a window's sub-[`LANES`] remainder.
    #[must_use]
    pub fn check(self, packet: &[u8]) -> bool {
        let len = packet.len();
        match self {
            FrameSpec::Mbap => {
                len >= 8
                    && packet[2] == 0
                    && packet[3] == 0
                    && usize::from(u16::from_be_bytes([packet[4], packet[5]])) + 6 == len
                    && packet[6] <= 1
            }
            FrameSpec::Apci => {
                len >= 6 && packet[0] == 0x68 && packet[1] >= 4 && usize::from(packet[1]) + 2 == len
            }
            FrameSpec::Dnp3Link => {
                len >= 10
                    && packet[0] == 0x05
                    && packet[1] == 0x64
                    && packet[2] >= 5
                    && crc16_dnp(&packet[..8]) == u16::from_le_bytes([packet[8], packet[9]])
            }
            FrameSpec::Iccp => {
                len >= 5
                    && packet[0] == 0x54
                    && packet[1] == 0x32
                    && usize::from(u16::from_be_bytes([packet[3], packet[4]])) + 5 == len
            }
            FrameSpec::TpktCotp => {
                len >= 7
                    && packet[0] == 0x03
                    && packet[1] == 0x00
                    && usize::from(u16::from_be_bytes([packet[2], packet[3]])) == len
                    && packet[4] >= 2
                    && usize::from(packet[4]) + 5 <= len
                    && packet[5] == 0xF0
            }
        }
    }

    /// Validates a whole window, replacing `verdicts` with one bool per
    /// packet (in order): [`LANES`]-packet chunks go through the
    /// vectorised kernels, the remainder through [`check`](Self::check).
    ///
    /// `verdicts` is a caller-pooled buffer (see [`PrescanScratch`]):
    /// steady-state windows revalidate without allocating.
    pub fn prescan_into(self, packets: &[&[u8]], verdicts: &mut Vec<bool>) {
        verdicts.clear();
        verdicts.reserve(packets.len());
        let mut chunks = packets.chunks_exact(LANES);
        let mut ok = [0u8; LANES];
        for chunk in &mut chunks {
            match self {
                FrameSpec::Mbap => {
                    let (bytes, lens) = gather::<7>(chunk);
                    mbap_chunk(&bytes, &lens, &mut ok);
                }
                FrameSpec::Apci => {
                    let (bytes, lens) = gather::<2>(chunk);
                    apci_chunk(&bytes, &lens, &mut ok);
                }
                FrameSpec::Dnp3Link => {
                    let (bytes, lens) = gather::<10>(chunk);
                    dnp3_chunk(&bytes, &lens, &mut ok);
                }
                FrameSpec::Iccp => {
                    let (bytes, lens) = gather::<5>(chunk);
                    iccp_chunk(&bytes, &lens, &mut ok);
                }
                FrameSpec::TpktCotp => {
                    let (bytes, lens) = gather::<6>(chunk);
                    tpkt_cotp_chunk(&bytes, &lens, &mut ok);
                }
            }
            verdicts.extend(ok.iter().map(|&bit| bit != 0));
        }
        for packet in chunks.remainder() {
            verdicts.push(self.check(packet));
        }
    }
}

/// A pooled prescan verdict buffer: `run` revalidates a window in place, so
/// a batched campaign's steady-state prescans are allocation-free.
#[derive(Debug, Default)]
pub struct PrescanScratch {
    verdicts: Vec<bool>,
}

impl PrescanScratch {
    /// Creates an empty scratch buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Prescans `packets` under `spec`, returning one verdict per packet in
    /// order. The backing buffer is reused across calls.
    pub fn run(&mut self, spec: FrameSpec, packets: &[&[u8]]) -> &[bool] {
        spec.prescan_into(packets, &mut self.verdicts);
        &self.verdicts
    }
}

/// Transposes one [`LANES`]-packet chunk into per-offset header columns
/// plus saturated lengths: `bytes[offset][lane]` is packet `lane`'s byte at
/// `offset` (0 past the end — every kernel masks short packets out on
/// length first), `lens[lane]` its length clamped to `u32::MAX`.
#[inline]
fn gather<const H: usize>(chunk: &[&[u8]]) -> ([[u8; LANES]; H], [u32; LANES]) {
    let mut bytes = [[0u8; LANES]; H];
    let mut lens = [0u32; LANES];
    for (lane, packet) in chunk.iter().enumerate() {
        lens[lane] = u32::try_from(packet.len()).unwrap_or(u32::MAX);
        for (offset, row) in bytes.iter_mut().enumerate() {
            row[lane] = packet.get(offset).copied().unwrap_or(0);
        }
    }
    (bytes, lens)
}

/// Big-endian u16 at `(hi, lo)` widened per lane.
#[inline]
fn be16(hi: &[u8; LANES], lo: &[u8; LANES], lane: usize) -> u32 {
    (u32::from(hi[lane]) << 8) | u32::from(lo[lane])
}

/// MBAP header lanes: `len >= 8`, protocol id 0, declared length + 6 ==
/// frame length, unit id 0 or 1.
#[inline]
fn mbap_chunk(bytes: &[[u8; LANES]; 7], lens: &[u32; LANES], ok: &mut [u8; LANES]) {
    for lane in 0..LANES {
        ok[lane] = u8::from(lens[lane] >= 8)
            & u8::from(be16(&bytes[2], &bytes[3], lane) == 0)
            & u8::from(be16(&bytes[4], &bytes[5], lane) + 6 == lens[lane])
            & u8::from(bytes[6][lane] <= 1);
    }
}

/// APCI lanes: 0x68 start, APDU length >= 4 and covering the whole frame.
/// (`length + 2 == len` instead of `length == len - 2`: no underflow lane.)
#[inline]
fn apci_chunk(bytes: &[[u8; LANES]; 2], lens: &[u32; LANES], ok: &mut [u8; LANES]) {
    for lane in 0..LANES {
        ok[lane] = u8::from(lens[lane] >= 6)
            & u8::from(bytes[0][lane] == 0x68)
            & u8::from(bytes[1][lane] >= 4)
            & u8::from(u32::from(bytes[1][lane]) + 2 == lens[lane]);
    }
}

/// DNP3 link-layer lanes: 0x0564 sync, length field >= 5, and the header
/// CRC — sixteen CRC registers advancing in lock-step down the gathered
/// header columns, so even the CRC check is a packed-lane loop.
#[inline]
fn dnp3_chunk(bytes: &[[u8; LANES]; 10], lens: &[u32; LANES], ok: &mut [u8; LANES]) {
    let mut crc = [0u16; LANES];
    for row in &bytes[..8] {
        for lane in 0..LANES {
            crc[lane] ^= u16::from(row[lane]);
        }
        for _ in 0..8 {
            for register in crc.iter_mut() {
                let mask = (*register & 1).wrapping_neg();
                *register = (*register >> 1) ^ (0xa6bc & mask);
            }
        }
    }
    for lane in 0..LANES {
        let stored = u32::from(bytes[8][lane]) | (u32::from(bytes[9][lane]) << 8);
        ok[lane] = u8::from(lens[lane] >= 10)
            & u8::from(bytes[0][lane] == 0x05)
            & u8::from(bytes[1][lane] == 0x64)
            & u8::from(bytes[2][lane] >= 5)
            & u8::from(u32::from(!crc[lane]) == stored);
    }
}

/// ICCP transport lanes: "T2" magic and declared length + 5 == frame
/// length.
#[inline]
fn iccp_chunk(bytes: &[[u8; LANES]; 5], lens: &[u32; LANES], ok: &mut [u8; LANES]) {
    for lane in 0..LANES {
        ok[lane] = u8::from(lens[lane] >= 5)
            & u8::from(bytes[0][lane] == 0x54)
            & u8::from(bytes[1][lane] == 0x32)
            & u8::from(be16(&bytes[3], &bytes[4], lane) + 5 == lens[lane]);
    }
}

/// TPKT/COTP lanes: TPKT version 3, declared length == frame length, and a
/// COTP DT header (length indicator >= 2 fitting in the frame, code 0xF0).
#[inline]
fn tpkt_cotp_chunk(bytes: &[[u8; LANES]; 6], lens: &[u32; LANES], ok: &mut [u8; LANES]) {
    for lane in 0..LANES {
        ok[lane] = u8::from(lens[lane] >= 7)
            & u8::from(bytes[0][lane] == 0x03)
            & u8::from(bytes[1][lane] == 0x00)
            & u8::from(be16(&bytes[2], &bytes[3], lane) == lens[lane])
            & u8::from(bytes[4][lane] >= 2)
            & u8::from(u32::from(bytes[4][lane]) + 5 <= lens[lane])
            & u8::from(bytes[5][lane] == 0xF0);
    }
}

/// DNP3 link-layer CRC-16 (reflected polynomial 0xA6BC, init 0, output
/// complemented) — a local copy of `peachstar_datamodel::checksum::
/// crc16_dnp`, duplicated so this file stays dependency-free for the
/// standalone codegen smoke test (a unit test pins the two equal).
#[must_use]
fn crc16_dnp(data: &[u8]) -> u16 {
    let mut crc: u16 = 0x0000;
    for &byte in data {
        crc ^= u16::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xa6bc & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPECS: [FrameSpec; 5] = [
        FrameSpec::Mbap,
        FrameSpec::Apci,
        FrameSpec::Dnp3Link,
        FrameSpec::Iccp,
        FrameSpec::TpktCotp,
    ];

    #[test]
    fn local_crc_matches_the_datamodel_crc() {
        assert_eq!(crc16_dnp(b"123456789"), 0xEA82);
        for data in [&b""[..], &[0x05, 0x64, 0x05, 0xC0, 0x01, 0x00, 0x00, 0x04]] {
            assert_eq!(crc16_dnp(data), peachstar_datamodel::checksum::crc16_dnp(data));
        }
    }

    #[test]
    fn known_good_frames_pass_their_spec() {
        // Modbus read-holding-registers request.
        assert!(FrameSpec::Mbap
            .check(&[0x00, 0x01, 0x00, 0x00, 0x00, 0x06, 0x01, 0x03, 0x00, 0x00, 0x00, 0x02]));
        // IEC 104 STARTDT act.
        assert!(FrameSpec::Apci.check(&[0x68, 0x04, 0x07, 0x00, 0x00, 0x00]));
        // DNP3 link header with a correct CRC.
        let mut dnp = vec![0x05, 0x64, 0x05, 0xC0, 0x01, 0x00, 0x00, 0x04];
        let crc = crc16_dnp(&dnp);
        dnp.extend_from_slice(&crc.to_le_bytes());
        assert!(FrameSpec::Dnp3Link.check(&dnp));
        // ICCP header with a 1-byte payload.
        assert!(FrameSpec::Iccp.check(&[0x54, 0x32, 0x01, 0x00, 0x01, 0xAA]));
        // TPKT + COTP DT with an empty MMS payload.
        assert!(FrameSpec::TpktCotp.check(&[0x03, 0x00, 0x00, 0x07, 0x02, 0xF0, 0x80]));
    }

    #[test]
    fn broken_framing_fails_its_spec() {
        for spec in SPECS {
            assert!(!spec.check(&[]), "{spec:?}: empty");
            assert!(!spec.check(&[0xFF; 3]), "{spec:?}: short garbage");
            assert!(!spec.check(&[0x00; 64]), "{spec:?}: zero-filled");
        }
        // Declared-length mismatches.
        assert!(!FrameSpec::Apci.check(&[0x68, 0x05, 0x07, 0x00, 0x00, 0x00]));
        assert!(!FrameSpec::Iccp.check(&[0x54, 0x32, 0x01, 0x00, 0x09, 0xAA]));
        // A flipped CRC bit.
        let mut dnp = vec![0x05, 0x64, 0x05, 0xC0, 0x01, 0x00, 0x00, 0x04];
        let crc = crc16_dnp(&dnp) ^ 1;
        dnp.extend_from_slice(&crc.to_le_bytes());
        assert!(!FrameSpec::Dnp3Link.check(&dnp));
    }

    #[test]
    fn chunked_kernels_match_the_scalar_oracle_on_awkward_windows() {
        // Deterministic pseudo-random packets: lengths straddling every
        // header size, plus deliberate near-misses (right magic, wrong
        // length and vice versa). Window sizes cover empty, sub-chunk,
        // exact-chunk and chunk+remainder shapes.
        let mut state = 0x9E37_79B9_u32;
        let mut step = move || {
            state = state.wrapping_mul(0x0001_9660D).wrapping_add(0x3C6E_F35F);
            state
        };
        let mut packets: Vec<Vec<u8>> = Vec::new();
        for _ in 0..200 {
            let len = (step() % 24) as usize;
            let mut packet: Vec<u8> = (0..len).map(|_| (step() >> 13) as u8).collect();
            if len >= 2 && step() % 3 == 0 {
                // Plant plausible magics so verdicts are not all-false.
                let magic = [[0x68, 0x04], [0x05, 0x64], [0x54, 0x32], [0x03, 0x00], [0x00, 0x00]]
                    [(step() % 5) as usize];
                packet[0] = magic[0];
                packet[1] = magic[1];
            }
            packets.push(packet);
        }
        let refs: Vec<&[u8]> = packets.iter().map(Vec::as_slice).collect();
        let mut scratch = PrescanScratch::new();
        for spec in SPECS {
            for window in [0, 1, 15, 16, 17, 32, 200] {
                let window = &refs[..window];
                let expected: Vec<bool> = window.iter().map(|p| spec.check(p)).collect();
                assert_eq!(
                    scratch.run(spec, window),
                    expected.as_slice(),
                    "{spec:?}: chunked kernel diverged from the scalar oracle"
                );
            }
        }
    }

    #[test]
    fn scratch_is_reused_and_rewound() {
        let mut scratch = PrescanScratch::new();
        let long: Vec<&[u8]> = vec![&[0u8; 4]; 40];
        assert_eq!(scratch.run(FrameSpec::Mbap, &long).len(), 40);
        let short: Vec<&[u8]> = vec![&[0x68, 0x04, 0x07, 0x00, 0x00, 0x00]; 2];
        assert_eq!(scratch.run(FrameSpec::Apci, &short), &[true, true]);
    }
}
